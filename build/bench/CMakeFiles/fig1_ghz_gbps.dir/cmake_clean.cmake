file(REMOVE_RECURSE
  "CMakeFiles/fig1_ghz_gbps.dir/fig1_ghz_gbps.cc.o"
  "CMakeFiles/fig1_ghz_gbps.dir/fig1_ghz_gbps.cc.o.d"
  "fig1_ghz_gbps"
  "fig1_ghz_gbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ghz_gbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
