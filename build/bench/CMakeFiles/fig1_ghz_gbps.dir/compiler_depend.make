# Empty compiler generated dependencies file for fig1_ghz_gbps.
# This may be replaced when dependencies are built.
