file(REMOVE_RECURSE
  "CMakeFiles/fig9_jitter.dir/fig9_jitter.cc.o"
  "CMakeFiles/fig9_jitter.dir/fig9_jitter.cc.o.d"
  "fig9_jitter"
  "fig9_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
