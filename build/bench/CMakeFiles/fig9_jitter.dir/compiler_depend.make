# Empty compiler generated dependencies file for fig9_jitter.
# This may be replaced when dependencies are built.
