file(REMOVE_RECURSE
  "CMakeFiles/onload_vs_offload.dir/onload_vs_offload.cc.o"
  "CMakeFiles/onload_vs_offload.dir/onload_vs_offload.cc.o.d"
  "onload_vs_offload"
  "onload_vs_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onload_vs_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
