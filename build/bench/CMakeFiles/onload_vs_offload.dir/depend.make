# Empty dependencies file for onload_vs_offload.
# This may be replaced when dependencies are built.
