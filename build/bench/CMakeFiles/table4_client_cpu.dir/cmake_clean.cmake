file(REMOVE_RECURSE
  "CMakeFiles/table4_client_cpu.dir/table4_client_cpu.cc.o"
  "CMakeFiles/table4_client_cpu.dir/table4_client_cpu.cc.o.d"
  "table4_client_cpu"
  "table4_client_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_client_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
