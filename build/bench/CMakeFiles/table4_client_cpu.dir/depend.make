# Empty dependencies file for table4_client_cpu.
# This may be replaced when dependencies are built.
