file(REMOVE_RECURSE
  "CMakeFiles/fig10_l2_slowdown.dir/fig10_l2_slowdown.cc.o"
  "CMakeFiles/fig10_l2_slowdown.dir/fig10_l2_slowdown.cc.o.d"
  "fig10_l2_slowdown"
  "fig10_l2_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_l2_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
