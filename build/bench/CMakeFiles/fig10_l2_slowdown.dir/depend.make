# Empty dependencies file for fig10_l2_slowdown.
# This may be replaced when dependencies are built.
