file(REMOVE_RECURSE
  "CMakeFiles/ilp_layout.dir/ilp_layout.cc.o"
  "CMakeFiles/ilp_layout.dir/ilp_layout.cc.o.d"
  "ilp_layout"
  "ilp_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
