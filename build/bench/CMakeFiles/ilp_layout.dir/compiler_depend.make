# Empty compiler generated dependencies file for ilp_layout.
# This may be replaced when dependencies are built.
