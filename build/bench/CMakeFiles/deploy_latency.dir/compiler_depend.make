# Empty compiler generated dependencies file for deploy_latency.
# This may be replaced when dependencies are built.
