file(REMOVE_RECURSE
  "CMakeFiles/deploy_latency.dir/deploy_latency.cc.o"
  "CMakeFiles/deploy_latency.dir/deploy_latency.cc.o.d"
  "deploy_latency"
  "deploy_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
