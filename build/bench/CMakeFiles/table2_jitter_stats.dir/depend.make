# Empty dependencies file for table2_jitter_stats.
# This may be replaced when dependencies are built.
