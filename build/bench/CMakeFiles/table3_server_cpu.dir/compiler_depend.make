# Empty compiler generated dependencies file for table3_server_cpu.
# This may be replaced when dependencies are built.
