file(REMOVE_RECURSE
  "CMakeFiles/table3_server_cpu.dir/table3_server_cpu.cc.o"
  "CMakeFiles/table3_server_cpu.dir/table3_server_cpu.cc.o.d"
  "table3_server_cpu"
  "table3_server_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_server_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
