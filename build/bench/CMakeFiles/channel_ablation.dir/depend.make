# Empty dependencies file for channel_ablation.
# This may be replaced when dependencies are built.
