file(REMOVE_RECURSE
  "CMakeFiles/channel_ablation.dir/channel_ablation.cc.o"
  "CMakeFiles/channel_ablation.dir/channel_ablation.cc.o.d"
  "channel_ablation"
  "channel_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
