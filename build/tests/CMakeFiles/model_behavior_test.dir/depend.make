# Empty dependencies file for model_behavior_test.
# This may be replaced when dependencies are built.
