file(REMOVE_RECURSE
  "CMakeFiles/model_behavior_test.dir/model_behavior_test.cc.o"
  "CMakeFiles/model_behavior_test.dir/model_behavior_test.cc.o.d"
  "model_behavior_test"
  "model_behavior_test.pdb"
  "model_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
