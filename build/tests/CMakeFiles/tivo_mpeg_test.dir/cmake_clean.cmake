file(REMOVE_RECURSE
  "CMakeFiles/tivo_mpeg_test.dir/tivo_mpeg_test.cc.o"
  "CMakeFiles/tivo_mpeg_test.dir/tivo_mpeg_test.cc.o.d"
  "tivo_mpeg_test"
  "tivo_mpeg_test.pdb"
  "tivo_mpeg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tivo_mpeg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
