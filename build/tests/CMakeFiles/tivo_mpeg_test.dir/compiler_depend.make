# Empty compiler generated dependencies file for tivo_mpeg_test.
# This may be replaced when dependencies are built.
