
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_runtime_test.cc" "tests/CMakeFiles/core_runtime_test.dir/core_runtime_test.cc.o" "gcc" "tests/CMakeFiles/core_runtime_test.dir/core_runtime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tivo/CMakeFiles/hydra_tivo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hydra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/hydra_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/odf/CMakeFiles/hydra_odf.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/hydra_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hydra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hydra_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
