# Empty compiler generated dependencies file for core_channel_test.
# This may be replaced when dependencies are built.
