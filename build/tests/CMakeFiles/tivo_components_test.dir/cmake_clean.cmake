file(REMOVE_RECURSE
  "CMakeFiles/tivo_components_test.dir/tivo_components_test.cc.o"
  "CMakeFiles/tivo_components_test.dir/tivo_components_test.cc.o.d"
  "tivo_components_test"
  "tivo_components_test.pdb"
  "tivo_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tivo_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
