# Empty dependencies file for tivo_components_test.
# This may be replaced when dependencies are built.
