file(REMOVE_RECURSE
  "CMakeFiles/core_loader_test.dir/core_loader_test.cc.o"
  "CMakeFiles/core_loader_test.dir/core_loader_test.cc.o.d"
  "core_loader_test"
  "core_loader_test.pdb"
  "core_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
