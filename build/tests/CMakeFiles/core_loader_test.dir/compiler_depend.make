# Empty compiler generated dependencies file for core_loader_test.
# This may be replaced when dependencies are built.
