# Empty dependencies file for odf_test.
# This may be replaced when dependencies are built.
