# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dev_test[1]_include.cmake")
include("/root/repo/build/tests/odf_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/core_channel_test[1]_include.cmake")
include("/root/repo/build/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tivo_mpeg_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tivo_components_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/core_loader_test[1]_include.cmake")
include("/root/repo/build/tests/model_behavior_test[1]_include.cmake")
