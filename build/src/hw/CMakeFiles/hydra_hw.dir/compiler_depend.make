# Empty compiler generated dependencies file for hydra_hw.
# This may be replaced when dependencies are built.
