
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bus.cc" "src/hw/CMakeFiles/hydra_hw.dir/bus.cc.o" "gcc" "src/hw/CMakeFiles/hydra_hw.dir/bus.cc.o.d"
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/hydra_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/hydra_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/cpu.cc" "src/hw/CMakeFiles/hydra_hw.dir/cpu.cc.o" "gcc" "src/hw/CMakeFiles/hydra_hw.dir/cpu.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/hydra_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/hydra_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/os.cc" "src/hw/CMakeFiles/hydra_hw.dir/os.cc.o" "gcc" "src/hw/CMakeFiles/hydra_hw.dir/os.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
