file(REMOVE_RECURSE
  "libhydra_hw.a"
)
