file(REMOVE_RECURSE
  "CMakeFiles/hydra_hw.dir/bus.cc.o"
  "CMakeFiles/hydra_hw.dir/bus.cc.o.d"
  "CMakeFiles/hydra_hw.dir/cache.cc.o"
  "CMakeFiles/hydra_hw.dir/cache.cc.o.d"
  "CMakeFiles/hydra_hw.dir/cpu.cc.o"
  "CMakeFiles/hydra_hw.dir/cpu.cc.o.d"
  "CMakeFiles/hydra_hw.dir/machine.cc.o"
  "CMakeFiles/hydra_hw.dir/machine.cc.o.d"
  "CMakeFiles/hydra_hw.dir/os.cc.o"
  "CMakeFiles/hydra_hw.dir/os.cc.o.d"
  "libhydra_hw.a"
  "libhydra_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
