file(REMOVE_RECURSE
  "CMakeFiles/hydra_common.dir/bytes.cc.o"
  "CMakeFiles/hydra_common.dir/bytes.cc.o.d"
  "CMakeFiles/hydra_common.dir/error.cc.o"
  "CMakeFiles/hydra_common.dir/error.cc.o.d"
  "CMakeFiles/hydra_common.dir/guid.cc.o"
  "CMakeFiles/hydra_common.dir/guid.cc.o.d"
  "CMakeFiles/hydra_common.dir/logging.cc.o"
  "CMakeFiles/hydra_common.dir/logging.cc.o.d"
  "CMakeFiles/hydra_common.dir/rng.cc.o"
  "CMakeFiles/hydra_common.dir/rng.cc.o.d"
  "CMakeFiles/hydra_common.dir/stats.cc.o"
  "CMakeFiles/hydra_common.dir/stats.cc.o.d"
  "CMakeFiles/hydra_common.dir/strings.cc.o"
  "CMakeFiles/hydra_common.dir/strings.cc.o.d"
  "libhydra_common.a"
  "libhydra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
