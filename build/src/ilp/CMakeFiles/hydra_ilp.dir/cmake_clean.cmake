file(REMOVE_RECURSE
  "CMakeFiles/hydra_ilp.dir/layout.cc.o"
  "CMakeFiles/hydra_ilp.dir/layout.cc.o.d"
  "CMakeFiles/hydra_ilp.dir/model.cc.o"
  "CMakeFiles/hydra_ilp.dir/model.cc.o.d"
  "CMakeFiles/hydra_ilp.dir/solver.cc.o"
  "CMakeFiles/hydra_ilp.dir/solver.cc.o.d"
  "libhydra_ilp.a"
  "libhydra_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
