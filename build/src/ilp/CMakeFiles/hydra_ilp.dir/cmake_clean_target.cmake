file(REMOVE_RECURSE
  "libhydra_ilp.a"
)
