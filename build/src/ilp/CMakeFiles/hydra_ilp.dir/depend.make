# Empty dependencies file for hydra_ilp.
# This may be replaced when dependencies are built.
