# Empty dependencies file for hydra_tivo.
# This may be replaced when dependencies are built.
