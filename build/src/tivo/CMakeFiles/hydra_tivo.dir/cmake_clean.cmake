file(REMOVE_RECURSE
  "CMakeFiles/hydra_tivo.dir/client.cc.o"
  "CMakeFiles/hydra_tivo.dir/client.cc.o.d"
  "CMakeFiles/hydra_tivo.dir/components.cc.o"
  "CMakeFiles/hydra_tivo.dir/components.cc.o.d"
  "CMakeFiles/hydra_tivo.dir/harness.cc.o"
  "CMakeFiles/hydra_tivo.dir/harness.cc.o.d"
  "CMakeFiles/hydra_tivo.dir/mpeg.cc.o"
  "CMakeFiles/hydra_tivo.dir/mpeg.cc.o.d"
  "CMakeFiles/hydra_tivo.dir/server.cc.o"
  "CMakeFiles/hydra_tivo.dir/server.cc.o.d"
  "libhydra_tivo.a"
  "libhydra_tivo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_tivo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
