file(REMOVE_RECURSE
  "libhydra_tivo.a"
)
