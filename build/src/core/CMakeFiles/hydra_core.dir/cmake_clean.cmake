file(REMOVE_RECURSE
  "CMakeFiles/hydra_core.dir/call.cc.o"
  "CMakeFiles/hydra_core.dir/call.cc.o.d"
  "CMakeFiles/hydra_core.dir/channel.cc.o"
  "CMakeFiles/hydra_core.dir/channel.cc.o.d"
  "CMakeFiles/hydra_core.dir/depot.cc.o"
  "CMakeFiles/hydra_core.dir/depot.cc.o.d"
  "CMakeFiles/hydra_core.dir/executive.cc.o"
  "CMakeFiles/hydra_core.dir/executive.cc.o.d"
  "CMakeFiles/hydra_core.dir/layout.cc.o"
  "CMakeFiles/hydra_core.dir/layout.cc.o.d"
  "CMakeFiles/hydra_core.dir/loader.cc.o"
  "CMakeFiles/hydra_core.dir/loader.cc.o.d"
  "CMakeFiles/hydra_core.dir/memory.cc.o"
  "CMakeFiles/hydra_core.dir/memory.cc.o.d"
  "CMakeFiles/hydra_core.dir/offcode.cc.o"
  "CMakeFiles/hydra_core.dir/offcode.cc.o.d"
  "CMakeFiles/hydra_core.dir/providers.cc.o"
  "CMakeFiles/hydra_core.dir/providers.cc.o.d"
  "CMakeFiles/hydra_core.dir/proxy.cc.o"
  "CMakeFiles/hydra_core.dir/proxy.cc.o.d"
  "CMakeFiles/hydra_core.dir/resource.cc.o"
  "CMakeFiles/hydra_core.dir/resource.cc.o.d"
  "CMakeFiles/hydra_core.dir/runtime.cc.o"
  "CMakeFiles/hydra_core.dir/runtime.cc.o.d"
  "CMakeFiles/hydra_core.dir/site.cc.o"
  "CMakeFiles/hydra_core.dir/site.cc.o.d"
  "libhydra_core.a"
  "libhydra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
