
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/call.cc" "src/core/CMakeFiles/hydra_core.dir/call.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/call.cc.o.d"
  "/root/repo/src/core/channel.cc" "src/core/CMakeFiles/hydra_core.dir/channel.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/channel.cc.o.d"
  "/root/repo/src/core/depot.cc" "src/core/CMakeFiles/hydra_core.dir/depot.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/depot.cc.o.d"
  "/root/repo/src/core/executive.cc" "src/core/CMakeFiles/hydra_core.dir/executive.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/executive.cc.o.d"
  "/root/repo/src/core/layout.cc" "src/core/CMakeFiles/hydra_core.dir/layout.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/layout.cc.o.d"
  "/root/repo/src/core/loader.cc" "src/core/CMakeFiles/hydra_core.dir/loader.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/loader.cc.o.d"
  "/root/repo/src/core/memory.cc" "src/core/CMakeFiles/hydra_core.dir/memory.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/memory.cc.o.d"
  "/root/repo/src/core/offcode.cc" "src/core/CMakeFiles/hydra_core.dir/offcode.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/offcode.cc.o.d"
  "/root/repo/src/core/providers.cc" "src/core/CMakeFiles/hydra_core.dir/providers.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/providers.cc.o.d"
  "/root/repo/src/core/proxy.cc" "src/core/CMakeFiles/hydra_core.dir/proxy.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/proxy.cc.o.d"
  "/root/repo/src/core/resource.cc" "src/core/CMakeFiles/hydra_core.dir/resource.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/resource.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/hydra_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/site.cc" "src/core/CMakeFiles/hydra_core.dir/site.cc.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hydra_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hydra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/hydra_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/odf/CMakeFiles/hydra_odf.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/hydra_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
