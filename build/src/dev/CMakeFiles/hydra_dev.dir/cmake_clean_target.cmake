file(REMOVE_RECURSE
  "libhydra_dev.a"
)
