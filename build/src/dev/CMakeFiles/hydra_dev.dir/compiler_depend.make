# Empty compiler generated dependencies file for hydra_dev.
# This may be replaced when dependencies are built.
