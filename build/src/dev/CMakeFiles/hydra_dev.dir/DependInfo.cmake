
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dev/device.cc" "src/dev/CMakeFiles/hydra_dev.dir/device.cc.o" "gcc" "src/dev/CMakeFiles/hydra_dev.dir/device.cc.o.d"
  "/root/repo/src/dev/disk.cc" "src/dev/CMakeFiles/hydra_dev.dir/disk.cc.o" "gcc" "src/dev/CMakeFiles/hydra_dev.dir/disk.cc.o.d"
  "/root/repo/src/dev/gpu.cc" "src/dev/CMakeFiles/hydra_dev.dir/gpu.cc.o" "gcc" "src/dev/CMakeFiles/hydra_dev.dir/gpu.cc.o.d"
  "/root/repo/src/dev/nic.cc" "src/dev/CMakeFiles/hydra_dev.dir/nic.cc.o" "gcc" "src/dev/CMakeFiles/hydra_dev.dir/nic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hydra_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hydra_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
