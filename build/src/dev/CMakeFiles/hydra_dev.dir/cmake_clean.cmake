file(REMOVE_RECURSE
  "CMakeFiles/hydra_dev.dir/device.cc.o"
  "CMakeFiles/hydra_dev.dir/device.cc.o.d"
  "CMakeFiles/hydra_dev.dir/disk.cc.o"
  "CMakeFiles/hydra_dev.dir/disk.cc.o.d"
  "CMakeFiles/hydra_dev.dir/gpu.cc.o"
  "CMakeFiles/hydra_dev.dir/gpu.cc.o.d"
  "CMakeFiles/hydra_dev.dir/nic.cc.o"
  "CMakeFiles/hydra_dev.dir/nic.cc.o.d"
  "libhydra_dev.a"
  "libhydra_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
