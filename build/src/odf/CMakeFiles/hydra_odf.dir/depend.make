# Empty dependencies file for hydra_odf.
# This may be replaced when dependencies are built.
