file(REMOVE_RECURSE
  "CMakeFiles/hydra_odf.dir/odf.cc.o"
  "CMakeFiles/hydra_odf.dir/odf.cc.o.d"
  "CMakeFiles/hydra_odf.dir/xml.cc.o"
  "CMakeFiles/hydra_odf.dir/xml.cc.o.d"
  "libhydra_odf.a"
  "libhydra_odf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_odf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
