file(REMOVE_RECURSE
  "libhydra_odf.a"
)
