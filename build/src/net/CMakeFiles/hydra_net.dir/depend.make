# Empty dependencies file for hydra_net.
# This may be replaced when dependencies are built.
