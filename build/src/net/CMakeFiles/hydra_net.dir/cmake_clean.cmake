file(REMOVE_RECURSE
  "CMakeFiles/hydra_net.dir/network.cc.o"
  "CMakeFiles/hydra_net.dir/network.cc.o.d"
  "CMakeFiles/hydra_net.dir/nfs.cc.o"
  "CMakeFiles/hydra_net.dir/nfs.cc.o.d"
  "CMakeFiles/hydra_net.dir/tcp_model.cc.o"
  "CMakeFiles/hydra_net.dir/tcp_model.cc.o.d"
  "libhydra_net.a"
  "libhydra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
