file(REMOVE_RECURSE
  "libhydra_net.a"
)
