# Empty compiler generated dependencies file for tivo_pc.
# This may be replaced when dependencies are built.
