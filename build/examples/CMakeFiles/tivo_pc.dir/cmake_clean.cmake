file(REMOVE_RECURSE
  "CMakeFiles/tivo_pc.dir/tivo_pc.cpp.o"
  "CMakeFiles/tivo_pc.dir/tivo_pc.cpp.o.d"
  "tivo_pc"
  "tivo_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tivo_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
