# Empty compiler generated dependencies file for storage_indexer.
# This may be replaced when dependencies are built.
