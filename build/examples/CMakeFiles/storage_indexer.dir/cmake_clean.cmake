file(REMOVE_RECURSE
  "CMakeFiles/storage_indexer.dir/storage_indexer.cpp.o"
  "CMakeFiles/storage_indexer.dir/storage_indexer.cpp.o.d"
  "storage_indexer"
  "storage_indexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_indexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
