# Empty compiler generated dependencies file for vm_switch.
# This may be replaced when dependencies are built.
