file(REMOVE_RECURSE
  "CMakeFiles/vm_switch.dir/vm_switch.cpp.o"
  "CMakeFiles/vm_switch.dir/vm_switch.cpp.o.d"
  "vm_switch"
  "vm_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
