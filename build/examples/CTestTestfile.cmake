# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_filter "/root/repo/build/examples/packet_filter")
set_tests_properties(example_packet_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_storage_indexer "/root/repo/build/examples/storage_indexer")
set_tests_properties(example_storage_indexer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vm_switch "/root/repo/build/examples/vm_switch")
set_tests_properties(example_vm_switch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tivo_pc "/root/repo/build/examples/tivo_pc")
set_tests_properties(example_tivo_pc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
