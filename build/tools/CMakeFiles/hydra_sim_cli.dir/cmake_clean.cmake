file(REMOVE_RECURSE
  "CMakeFiles/hydra_sim_cli.dir/hydra_sim.cc.o"
  "CMakeFiles/hydra_sim_cli.dir/hydra_sim.cc.o.d"
  "hydra_sim"
  "hydra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
