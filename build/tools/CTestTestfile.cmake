# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_offloaded "/root/repo/build/tools/hydra_sim" "--server" "offloaded" "--client" "receiver" "--seconds" "8")
set_tests_properties(cli_offloaded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lossy "/root/repo/build/tools/hydra_sim" "--server" "offloaded" "--client" "offloaded" "--seconds" "8" "--drop" "0.05")
set_tests_properties(cli_lossy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_quiet_host "/root/repo/build/tools/hydra_sim" "--server" "simple" "--client" "receiver" "--seconds" "8" "--quiet-host" "--histogram")
set_tests_properties(cli_quiet_host PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
