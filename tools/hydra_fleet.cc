/**
 * @file
 * hydra_fleet — command-line driver for multi-host scale runs
 * (DESIGN.md §14).
 *
 * Builds an N-host fleet on one shared fabric, drives it with the
 * open-loop load generator, and prints the measurement set a capacity
 * study needs: offered vs delivered, end-to-end delivery latency
 * percentiles (p50/p99/p999), payload-copy accounting, and per-host
 * CPU (host CPU + NIC firmware busy time over the window).
 *
 * Usage:
 *   hydra_fleet [--hosts N] [--streams N] [--rate MSGS_PER_SEC]
 *               [--bytes N] [--duration-ms N] [--tick-us N]
 *               [--executor sim|threaded] [--churn N]
 *               [--remote-only] [--drivers] [--seed N]
 *               [--background-load] [--json]
 *               [--metrics] [--metrics-out FILE]
 *               [--chaos SEED[:spec]]
 *
 * --chaos arms the deterministic fault injector (same grammar as
 * hydra_sim). Scheduled resets match fleet NICs by name ("host0-nic",
 * "host1-nic", ...).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "chaos/chaos.hh"
#include "exec/executor.hh"
#include "fleet/fleet.hh"
#include "fleet/loadgen.hh"
#include "obs/metrics.hh"

using namespace hydra;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--hosts N] [--streams N] [--rate MSGS_PER_SEC]\n"
        "          [--bytes N] [--duration-ms N] [--tick-us N]\n"
        "          [--executor sim|threaded] [--churn N]\n"
        "          [--remote-only] [--drivers] [--seed N]\n"
        "          [--background-load] [--json]\n"
        "          [--metrics] [--metrics-out FILE]\n"
        "          [--chaos SEED[:drop=P,dup=P,corrupt=P,slow=P,"
        "stall=P,poolfail=P,ringfull=P,reset@MS=dev[/ms]]]\n",
        argv0);
    return 2;
}

bool
parseU64(const char *value, std::uint64_t &out)
{
    if (!value || *value == '\0')
        return false;
    std::uint64_t parsed = 0;
    for (const char *p = value; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        parsed = parsed * 10 + static_cast<std::uint64_t>(*p - '0');
    }
    out = parsed;
    return true;
}

void
printTable(const fleet::LoadgenReport &report)
{
    std::printf("fleet: %zu hosts, %zu streams (%zu remote, %zu local)\n",
                report.hosts, report.streams, report.remoteStreams,
                report.localStreams);
    std::printf(
        "load:  offered %llu, delivered %llu (%.1f%%), churned %llu, "
        "write failures %llu\n",
        static_cast<unsigned long long>(report.offered),
        static_cast<unsigned long long>(report.delivered),
        report.offered
            ? 100.0 * static_cast<double>(report.delivered) /
                  static_cast<double>(report.offered)
            : 0.0,
        static_cast<unsigned long long>(report.churned),
        static_cast<unsigned long long>(report.writeFailures));
    std::printf(
        "rate:  %.0f msgs/virtual-sec over %.1f ms window "
        "(simulated in %.1f ms wall)\n",
        report.deliveredPerVirtualSec,
        static_cast<double>(report.elapsed) / 1e6, report.wallMs);
    std::printf("copies: wire %llu (one per cross-host message), "
                "zero-copy-path copies %llu (0 = no hidden copies)\n",
                static_cast<unsigned long long>(report.wireCopies),
                static_cast<unsigned long long>(report.zeroCopies));
    std::printf("latency (write -> handler, us): p50 %.1f  p99 %.1f  "
                "p999 %.1f  max %.1f  [n=%llu]\n",
                report.latency.p50 / 1e3, report.latency.p99 / 1e3,
                report.latency.p999 / 1e3,
                static_cast<double>(report.latency.max) / 1e3,
                static_cast<unsigned long long>(report.latency.count));
    std::printf("%-8s %10s %12s %12s %8s\n", "host", "streams",
                "delivered", "busy-ms", "cpu%");
    const double window = static_cast<double>(report.elapsed);
    for (const auto &slice : report.perHost) {
        std::printf("%-8s %10zu %12llu %12.2f %7.1f%%\n",
                    slice.host.c_str(), slice.streamsHomed,
                    static_cast<unsigned long long>(slice.delivered),
                    static_cast<double>(slice.busyNs) / 1e6,
                    window > 0.0 ? 100.0 *
                                       static_cast<double>(slice.busyNs) /
                                       window
                                 : 0.0);
    }
}

void
printJson(const fleet::LoadgenReport &report)
{
    std::printf("{\n");
    std::printf("  \"hosts\": %zu,\n", report.hosts);
    std::printf("  \"streams\": %zu,\n", report.streams);
    std::printf("  \"remote_streams\": %zu,\n", report.remoteStreams);
    std::printf("  \"offered\": %llu,\n",
                static_cast<unsigned long long>(report.offered));
    std::printf("  \"delivered\": %llu,\n",
                static_cast<unsigned long long>(report.delivered));
    std::printf("  \"churned\": %llu,\n",
                static_cast<unsigned long long>(report.churned));
    std::printf("  \"write_failures\": %llu,\n",
                static_cast<unsigned long long>(report.writeFailures));
    std::printf("  \"wire_copies\": %llu,\n",
                static_cast<unsigned long long>(report.wireCopies));
    std::printf("  \"delivered_per_virtual_sec\": %.1f,\n",
                report.deliveredPerVirtualSec);
    std::printf("  \"latency_ns\": {\"p50\": %.1f, \"p99\": %.1f, "
                "\"p999\": %.1f, \"max\": %llu, \"count\": %llu},\n",
                report.latency.p50, report.latency.p99,
                report.latency.p999,
                static_cast<unsigned long long>(report.latency.max),
                static_cast<unsigned long long>(report.latency.count));
    std::printf("  \"per_host\": [");
    for (std::size_t i = 0; i < report.perHost.size(); ++i) {
        const auto &slice = report.perHost[i];
        std::printf("%s\n    {\"host\": \"%s\", \"streams\": %zu, "
                    "\"delivered\": %llu, \"busy_ns\": %llu}",
                    i ? "," : "", slice.host.c_str(),
                    slice.streamsHomed,
                    static_cast<unsigned long long>(slice.delivered),
                    static_cast<unsigned long long>(slice.busyNs));
    }
    std::printf("\n  ]\n}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fleet::FleetConfig fleetConfig;
    fleet::LoadgenConfig load;
    exec::ExecutorKind kind = exec::ExecutorKind::Sim;
    bool json = false;
    bool printMetrics = false;
    std::string metricsOut;
    std::uint64_t durationMs = 100;
    std::uint64_t tickUs = 100;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        std::uint64_t parsed = 0;
        if (arg == "--hosts" && parseU64(value, parsed) && parsed > 0) {
            fleetConfig.hosts = parsed;
            ++i;
        } else if (arg == "--streams" && parseU64(value, parsed) &&
                   parsed > 0) {
            load.streams = parsed;
            ++i;
        } else if (arg == "--rate" && parseU64(value, parsed)) {
            load.offeredMsgsPerSec = static_cast<double>(parsed);
            ++i;
        } else if (arg == "--bytes" && parseU64(value, parsed) &&
                   parsed >= 8) {
            load.messageBytes = parsed;
            ++i;
        } else if (arg == "--duration-ms" && parseU64(value, parsed) &&
                   parsed > 0) {
            durationMs = parsed;
            ++i;
        } else if (arg == "--tick-us" && parseU64(value, parsed) &&
                   parsed > 0) {
            tickUs = parsed;
            ++i;
        } else if (arg == "--churn" && parseU64(value, parsed)) {
            load.churnPerTick = parsed;
            ++i;
        } else if (arg == "--seed" && parseU64(value, parsed)) {
            fleetConfig.seed = parsed;
            ++i;
        } else if (arg == "--executor" && value) {
            if (!exec::parseExecutorKind(value, kind))
                return usage(argv[0]);
            ++i;
        } else if (arg == "--remote-only") {
            load.remoteOnly = true;
        } else if (arg == "--drivers") {
            load.useDrivers = true;
        } else if (arg == "--background-load") {
            fleetConfig.backgroundLoad = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--metrics") {
            printMetrics = true;
        } else if (arg == "--metrics-out" && value) {
            metricsOut = value;
            ++i;
        } else if (arg == "--chaos" && value) {
            auto spec = chaos::parseChaosSpec(value);
            if (!spec) {
                std::fprintf(stderr, "%s: bad --chaos spec: %s\n",
                             argv[0],
                             spec.error().describe().c_str());
                return usage(argv[0]);
            }
            chaos::ChaosEngine::instance().configure(spec.value());
            ++i;
        } else {
            return usage(argv[0]);
        }
    }
    load.duration = sim::milliseconds(durationMs);
    load.tick = sim::microseconds(tickUs);

    auto executor = exec::makeExecutor(kind);
    fleet::Fleet fleet(*executor, fleetConfig);

    // Chaos reset schedule: match fleet NICs by device name.
    auto &chaosEngine = chaos::ChaosEngine::instance();
    if (chaosEngine.enabled()) {
        for (const chaos::ScheduledReset &reset :
             chaosEngine.spec().resets) {
            dev::ProgrammableNic *target = nullptr;
            for (std::size_t h = 0; h < fleet.hostCount(); ++h)
                if (fleet.host(h).nic().name() == reset.device)
                    target = &fleet.host(h).nic();
            if (!target) {
                std::fprintf(stderr,
                             "hydra_fleet: chaos: no NIC named '%s'; "
                             "reset skipped\n",
                             reset.device.c_str());
                continue;
            }
            executor->scheduleAt(
                reset.at, [target, at = reset.at,
                           downtime = reset.downtime]() {
                    chaos::ChaosEngine::instance().recordFault(
                        "device_reset", at);
                    target->reset(downtime);
                });
        }
    }

    const fleet::LoadgenReport report = fleet::runOpenLoop(fleet, load);

    if (json)
        printJson(report);
    else
        printTable(report);

    if (printMetrics)
        std::printf("\n%s\n",
                    obs::MetricsRegistry::instance().toJson().c_str());
    if (!metricsOut.empty()) {
        std::ofstream out(metricsOut);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", metricsOut.c_str());
            return 1;
        }
        out << obs::MetricsRegistry::instance().toJson() << "\n";
        if (!json)
            std::printf("(wrote metrics to %s)\n", metricsOut.c_str());
    }

    // A run that delivered nothing (or saw channel-layer failures) is
    // a broken testbed, not a measurement.
    if (report.delivered == 0 || report.writeFailures != 0) {
        std::fprintf(stderr, "hydra_fleet: run did not deliver cleanly\n");
        return 1;
    }
    return 0;
}
