/**
 * @file
 * hydra_top — render an introspection snapshot as a per-Offcode
 * table, the "top" view onto a finished (or checkpointed) run.
 *
 * Reads the JSON written by `hydra_sim --introspect-out FILE`:
 * either the two-runtime wrapper {"server":...,"client":...} or one
 * bare snapshot {"machine":...,"offcodes":[...]}.
 *
 * Usage:
 *   hydra_top FILE
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace {

struct Row
{
    std::string machine;
    std::string bindname;
    std::string site;
    std::string state;
    std::uint64_t calls = 0;
    std::uint64_t data = 0;
    std::uint64_t mgmt = 0;
    std::uint64_t errors = 0;
    std::uint64_t busyNs = 0;
    std::uint64_t watchdogNs = 0;
    std::uint64_t oobQueued = 0;
};

std::string
stringField(const hydra::json::Value &object, const std::string &key)
{
    const hydra::json::Value *value = object.find(key);
    return value ? value->string : std::string();
}

std::uint64_t
u64Field(const hydra::json::Value &object, const std::string &key)
{
    const hydra::json::Value *value = object.find(key);
    return value ? value->asU64() : 0;
}

/** Collect rows from one {"machine":...,"offcodes":[...]} snapshot. */
void
collectSnapshot(const hydra::json::Value &snapshot,
                std::vector<Row> &rows)
{
    if (!snapshot.isObject())
        return;
    const std::string machine = stringField(snapshot, "machine");
    const hydra::json::Value *offcodes = snapshot.find("offcodes");
    if (!offcodes || !offcodes->isArray())
        return;
    for (const hydra::json::Value &oc : offcodes->array) {
        if (!oc.isObject())
            continue;
        Row row;
        row.machine = machine;
        row.bindname = stringField(oc, "bindname");
        row.site = stringField(oc, "site");
        row.state = stringField(oc, "state");
        row.calls = u64Field(oc, "calls_handled");
        row.data = u64Field(oc, "data_handled");
        row.mgmt = u64Field(oc, "mgmt_handled");
        row.errors = u64Field(oc, "invoke_errors");
        row.busyNs = u64Field(oc, "busy_ns");
        row.watchdogNs = u64Field(oc, "watchdog_age_ns");
        row.oobQueued = u64Field(oc, "oob_queued");
        rows.push_back(std::move(row));
    }
}

int
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s INTROSPECTION_JSON\n", argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2)
        return usage(argv[0]);

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "hydra_top: cannot read %s\n", argv[1]);
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    auto doc = hydra::json::parse(buffer.str());
    if (!doc) {
        std::fprintf(stderr, "hydra_top: %s: %s\n", argv[1],
                     doc.error().describe().c_str());
        return 1;
    }

    std::vector<Row> rows;
    if (doc.value().find("offcodes")) {
        collectSnapshot(doc.value(), rows);
    } else if (doc.value().isObject()) {
        // The hydra_sim wrapper: one snapshot (or null) per runtime.
        for (const auto &[name, snapshot] : doc.value().object)
            collectSnapshot(snapshot, rows);
    }
    if (rows.empty()) {
        std::fprintf(stderr, "hydra_top: %s holds no offcodes\n",
                     argv[1]);
        return 1;
    }

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.machine != b.machine ? a.machine < b.machine
                                      : a.bindname < b.bindname;
    });

    std::size_t nameWidth = std::strlen("OFFCODE");
    std::size_t siteWidth = std::strlen("SITE");
    for (const Row &row : rows) {
        nameWidth = std::max(nameWidth, row.bindname.size());
        siteWidth = std::max(siteWidth, row.site.size());
    }

    std::printf("%-8s %-*s %-*s %-11s %9s %9s %6s %5s %10s %11s %5s\n",
                "MACHINE", static_cast<int>(nameWidth), "OFFCODE",
                static_cast<int>(siteWidth), "SITE",
                "STATE", "CALLS", "DATA", "MGMT", "ERR",
                "BUSY(ms)", "IDLE(ms)", "OOBQ");
    for (const Row &row : rows) {
        std::printf(
            "%-8s %-*s %-*s %-11s %9llu %9llu %6llu %5llu %10.3f "
            "%11.3f %5llu\n",
            row.machine.c_str(), static_cast<int>(nameWidth),
            row.bindname.c_str(), static_cast<int>(siteWidth),
            row.site.c_str(), row.state.c_str(),
            static_cast<unsigned long long>(row.calls),
            static_cast<unsigned long long>(row.data),
            static_cast<unsigned long long>(row.mgmt),
            static_cast<unsigned long long>(row.errors),
            static_cast<double>(row.busyNs) / 1e6,
            static_cast<double>(row.watchdogNs) / 1e6,
            static_cast<unsigned long long>(row.oobQueued));
    }
    return 0;
}
