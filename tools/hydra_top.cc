/**
 * @file
 * hydra_top — render an introspection snapshot as a per-Offcode
 * table, the "top" view onto a finished (or checkpointed) run.
 *
 * Reads the JSON written by `hydra_sim --introspect-out FILE`:
 * either the two-runtime wrapper {"server":...,"client":...} or one
 * bare snapshot {"machine":...,"offcodes":[...]}.
 *
 * Also reads flight recordings (`hydra_sim --flight-out FILE`, or the
 * hydra.Monitor "Flight" OOB reply): the latest snapshot's histogram
 * summaries render as percentile columns and every gauge series (ring
 * depths, queue occupancy) renders as a sparkline over time.
 *
 * Usage:
 *   hydra_top FILE
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/strings.hh"

namespace {

struct Row
{
    std::string machine;
    std::string bindname;
    std::string site;
    std::string state;
    std::uint64_t calls = 0;
    std::uint64_t data = 0;
    std::uint64_t mgmt = 0;
    std::uint64_t errors = 0;
    std::uint64_t busyNs = 0;
    std::uint64_t watchdogNs = 0;
    std::uint64_t oobQueued = 0;
};

std::string
stringField(const hydra::json::Value &object, const std::string &key)
{
    const hydra::json::Value *value = object.find(key);
    return value ? value->string : std::string();
}

std::uint64_t
u64Field(const hydra::json::Value &object, const std::string &key)
{
    const hydra::json::Value *value = object.find(key);
    return value ? value->asU64() : 0;
}

/** Collect rows from one {"machine":...,"offcodes":[...]} snapshot. */
void
collectSnapshot(const hydra::json::Value &snapshot,
                std::vector<Row> &rows)
{
    if (!snapshot.isObject())
        return;
    const std::string machine = stringField(snapshot, "machine");
    const hydra::json::Value *offcodes = snapshot.find("offcodes");
    if (!offcodes || !offcodes->isArray())
        return;
    for (const hydra::json::Value &oc : offcodes->array) {
        if (!oc.isObject())
            continue;
        Row row;
        row.machine = machine;
        row.bindname = stringField(oc, "bindname");
        row.site = stringField(oc, "site");
        row.state = stringField(oc, "state");
        row.calls = u64Field(oc, "calls_handled");
        row.data = u64Field(oc, "data_handled");
        row.mgmt = u64Field(oc, "mgmt_handled");
        row.errors = u64Field(oc, "invoke_errors");
        row.busyNs = u64Field(oc, "busy_ns");
        row.watchdogNs = u64Field(oc, "watchdog_age_ns");
        row.oobQueued = u64Field(oc, "oob_queued");
        rows.push_back(std::move(row));
    }
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s INTROSPECTION_JSON | FLIGHT_JSON\n", argv0);
    return 2;
}

double
numberField(const hydra::json::Value &object, const std::string &key)
{
    const hydra::json::Value *value = object.find(key);
    return value ? value->number : 0.0;
}

using hydra::sparkline;

/** Utilization gauges get their own percent panel, not the generic
 * GAUGE table. */
bool
isUtilizationKey(const std::string &key)
{
    return key.rfind("device.cpu_utilization{", 0) == 0 ||
           key.rfind("offcode.utilization{", 0) == 0;
}

/** Value of one label inside a display key "name{k=v,...}"; empty when
 * the label is absent. */
std::string
labelOf(const std::string &key, const std::string &label)
{
    const std::string needle = label + "=";
    std::size_t pos = key.find("{" + needle);
    if (pos == std::string::npos)
        pos = key.find("," + needle);
    if (pos == std::string::npos)
        return "";
    pos += 1 + needle.size();
    const std::size_t end = key.find_first_of(",}", pos);
    return key.substr(pos, end == std::string::npos ? end : end - pos);
}

/**
 * PER-HOST panel: fleet runs label site/device series with host=;
 * group them so N-host runs read as N rows — total site-busy time,
 * device count, mean device utilization, and a busy-delta trend.
 */
void
renderHostPanel(const hydra::json::Value &snapshots)
{
    // Host -> per-snapshot summed cumulative busy ns.
    std::vector<std::pair<std::string, std::vector<double>>> busyByHost;
    auto seriesFor =
        [&](const std::string &host) -> std::vector<double> & {
        for (auto &[known, series] : busyByHost)
            if (known == host)
                return series;
        busyByHost.emplace_back(host, std::vector<double>());
        return busyByHost.back().second;
    };
    std::size_t index = 0;
    for (const hydra::json::Value &snapshot : snapshots.array) {
        const hydra::json::Value *counters = snapshot.find("counters");
        if (counters && counters->isObject()) {
            for (const auto &[key, value] : counters->object) {
                if (key.rfind("exec.site_busy_ns{", 0) != 0)
                    continue;
                const std::string host = labelOf(key, "host");
                if (host.empty())
                    continue;
                std::vector<double> &series = seriesFor(host);
                series.resize(snapshots.array.size(), 0.0);
                series[index] += value.number;
            }
        }
        ++index;
    }
    if (busyByHost.empty())
        return;

    // Device stats come from the newest snapshot that carries gauges.
    auto deviceStats = [&](const std::string &host) {
        std::pair<std::size_t, double> stats{0, 0.0};
        for (auto it = snapshots.array.rbegin();
             it != snapshots.array.rend(); ++it) {
            const hydra::json::Value *gauges = it->find("gauges");
            if (!gauges || !gauges->isObject())
                continue;
            for (const auto &[key, value] : gauges->object) {
                if (key.rfind("device.cpu_utilization{", 0) == 0 &&
                    labelOf(key, "host") == host) {
                    ++stats.first;
                    stats.second += value.number;
                }
            }
            if (stats.first)
                break;
        }
        if (stats.first)
            stats.second /= static_cast<double>(stats.first);
        return stats;
    };

    std::sort(busyByHost.begin(), busyByHost.end());
    std::size_t keyWidth = std::strlen("HOST");
    for (const auto &[host, series] : busyByHost)
        keyWidth = std::max(keyWidth, host.size());
    std::printf("\n%-*s %12s %5s %9s  %s\n",
                static_cast<int>(keyWidth), "HOST", "BUSY(ms)", "DEVS",
                "DEV-UTIL", "TREND");
    for (const auto &[host, series] : busyByHost) {
        // Counters are cumulative; the trend is the per-interval delta.
        std::vector<double> deltas;
        double previous = 0.0;
        for (double cumulative : series) {
            deltas.push_back(cumulative > previous ? cumulative - previous
                                                   : 0.0);
            previous = cumulative;
        }
        const auto [devices, meanUtil] = deviceStats(host);
        std::printf("%-*s %12.3f %5zu %8.1f%%  %s\n",
                    static_cast<int>(keyWidth), host.c_str(),
                    series.back() / 1e6, devices, meanUtil * 100.0,
                    sparkline(deltas).c_str());
    }
}

/**
 * Render a flight recording: percentile columns from the newest
 * snapshot, then per-gauge sparklines (one glyph per snapshot) so
 * queue depths can be eyeballed over time.
 */
int
renderFlight(const hydra::json::Value &doc, const char *path)
{
    const hydra::json::Value *snapshots = doc.find("snapshots");
    if (!snapshots || !snapshots->isArray() ||
        snapshots->array.empty()) {
        std::fprintf(stderr, "hydra_top: %s holds no flight snapshots\n",
                     path);
        return 1;
    }

    const hydra::json::Value &last = snapshots->array.back();
    std::printf("flight: %zu snapshots (captured=%llu dropped=%llu)  "
                "t=%.3fms..%.3fms\n",
                snapshots->array.size(),
                static_cast<unsigned long long>(
                    doc.find("captured") ? doc.find("captured")->asU64()
                                         : 0),
                static_cast<unsigned long long>(
                    doc.find("dropped") ? doc.find("dropped")->asU64()
                                        : 0),
                numberField(snapshots->array.front(), "t") / 1e6,
                numberField(last, "t") / 1e6);

    // Snapshots are delta-encoded: a histogram appears only in
    // snapshots where its count grew, so the freshest digest for each
    // series is the newest snapshot that carries it (a quiet tail
    // snapshot would otherwise blank the whole table).
    std::vector<std::pair<std::string, const hydra::json::Value *>>
        latest;
    for (auto it = snapshots->array.rbegin();
         it != snapshots->array.rend(); ++it) {
        const hydra::json::Value *hists = it->find("histograms");
        if (!hists || !hists->isObject())
            continue;
        for (const auto &[key, summary] : hists->object) {
            if (!summary.isObject())
                continue;
            bool seen = false;
            for (const auto &[known, unused] : latest)
                if (known == key) {
                    seen = true;
                    break;
                }
            if (!seen)
                latest.emplace_back(key, &summary);
        }
    }
    // Batch-size digests get their own panel: these percentiles are
    // item counts per drain, not nanoseconds, so mixing them into the
    // latency table would invite misreading.
    std::vector<std::pair<std::string, const hydra::json::Value *>>
        batches;
    latest.erase(
        std::remove_if(
            latest.begin(), latest.end(),
            [&](const auto &entry) {
                if (entry.first.rfind("exec.batch_size{", 0) != 0)
                    return false;
                batches.push_back(entry);
                return true;
            }),
        latest.end());
    if (!latest.empty()) {
        std::sort(latest.begin(), latest.end());
        std::size_t keyWidth = std::strlen("SERIES");
        for (const auto &[key, summary] : latest)
            keyWidth = std::max(keyWidth, key.size());
        std::printf("\n%-*s %9s %9s %9s %9s %9s %9s\n",
                    static_cast<int>(keyWidth), "SERIES", "N", "P50",
                    "P90", "P99", "P999", "MAX");
        for (const auto &[key, summary] : latest) {
            std::printf(
                "%-*s %9llu %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                static_cast<int>(keyWidth), key.c_str(),
                static_cast<unsigned long long>(
                    u64Field(*summary, "n")),
                numberField(*summary, "p50"),
                numberField(*summary, "p90"),
                numberField(*summary, "p99"),
                numberField(*summary, "p999"),
                numberField(*summary, "max"));
        }
    }
    if (!batches.empty()) {
        std::sort(batches.begin(), batches.end());
        std::size_t keyWidth = std::strlen("BATCH (items/drain)");
        for (const auto &[key, summary] : batches)
            keyWidth = std::max(keyWidth, key.size());
        std::printf("\n%-*s %9s %9s %9s %9s %9s\n",
                    static_cast<int>(keyWidth), "BATCH (items/drain)",
                    "N", "P50", "P90", "P99", "MAX");
        for (const auto &[key, summary] : batches) {
            std::printf("%-*s %9llu %9.0f %9.0f %9.0f %9.0f\n",
                        static_cast<int>(keyWidth), key.c_str(),
                        static_cast<unsigned long long>(
                            u64Field(*summary, "n")),
                        numberField(*summary, "p50"),
                        numberField(*summary, "p90"),
                        numberField(*summary, "p99"),
                        numberField(*summary, "max"));
        }
        // Doorbell coalescing totals ride along: saved notifies are
        // the batch panel's other half (N posts, one wake).
        std::vector<std::string> bellKeys;
        for (const hydra::json::Value &snapshot : snapshots->array) {
            const hydra::json::Value *counters =
                snapshot.find("counters");
            if (!counters || !counters->isObject())
                continue;
            for (const auto &[key, value] : counters->object)
                if (key.rfind("exec.doorbells_coalesced{", 0) == 0 &&
                    std::find(bellKeys.begin(), bellKeys.end(), key) ==
                        bellKeys.end())
                    bellKeys.push_back(key);
        }
        std::sort(bellKeys.begin(), bellKeys.end());
        for (const std::string &key : bellKeys) {
            // Snapshots carry the cumulative count; the trend is the
            // per-interval delta and the headline number is the
            // final cumulative value.
            std::vector<double> deltas;
            double previous = 0.0;
            double last = 0.0;
            for (const hydra::json::Value &snapshot :
                 snapshots->array) {
                const hydra::json::Value *counters =
                    snapshot.find("counters");
                const hydra::json::Value *value =
                    counters ? counters->find(key) : nullptr;
                const double cumulative =
                    value ? value->number : previous;
                deltas.push_back(cumulative > previous
                                     ? cumulative - previous
                                     : 0.0);
                previous = cumulative;
                last = cumulative;
            }
            std::printf("%-*s %9.0f  %s\n",
                        static_cast<int>(keyWidth), key.c_str(), last,
                        sparkline(deltas).c_str());
        }
    }

    // Gauge sparklines: gather the union of keys, then one aligned
    // series per key (absent-in-snapshot means zero). Utilization
    // gauges render in their own percent panel.
    std::vector<std::string> gaugeKeys;
    std::vector<std::string> utilKeys;
    for (const hydra::json::Value &snapshot : snapshots->array) {
        const hydra::json::Value *gauges = snapshot.find("gauges");
        if (!gauges || !gauges->isObject())
            continue;
        for (const auto &[key, value] : gauges->object) {
            std::vector<std::string> &bucket =
                isUtilizationKey(key) ? utilKeys : gaugeKeys;
            if (std::find(bucket.begin(), bucket.end(), key) ==
                bucket.end())
                bucket.push_back(key);
        }
    }
    auto gaugeSeries = [&](const std::string &key) {
        std::vector<double> series;
        for (const hydra::json::Value &snapshot : snapshots->array) {
            const hydra::json::Value *gauges = snapshot.find("gauges");
            const hydra::json::Value *value =
                gauges ? gauges->find(key) : nullptr;
            series.push_back(value ? value->number : 0.0);
        }
        return series;
    };
    if (!utilKeys.empty()) {
        std::sort(utilKeys.begin(), utilKeys.end());
        std::size_t keyWidth = std::strlen("UTILIZATION");
        for (const std::string &key : utilKeys)
            keyWidth = std::max(keyWidth, key.size());
        std::printf("\n%-*s %9s  %s\n", static_cast<int>(keyWidth),
                    "UTILIZATION", "LAST", "TREND");
        for (const std::string &key : utilKeys) {
            const std::vector<double> series = gaugeSeries(key);
            std::printf("%-*s %8.1f%%  %s\n",
                        static_cast<int>(keyWidth), key.c_str(),
                        series.back() * 100.0,
                        sparkline(series).c_str());
        }
    }
    if (!gaugeKeys.empty()) {
        std::sort(gaugeKeys.begin(), gaugeKeys.end());
        std::size_t keyWidth = std::strlen("GAUGE");
        for (const std::string &key : gaugeKeys)
            keyWidth = std::max(keyWidth, key.size());
        std::printf("\n%-*s %10s  %s\n", static_cast<int>(keyWidth),
                    "GAUGE", "LAST", "TREND");
        for (const std::string &key : gaugeKeys) {
            const std::vector<double> series = gaugeSeries(key);
            std::printf("%-*s %10.1f  %s\n",
                        static_cast<int>(keyWidth), key.c_str(),
                        series.back(), sparkline(series).c_str());
        }
    }

    renderHostPanel(*snapshots);

    // ALERTS: SLO violation counters are delta-encoded per snapshot,
    // so the trend shows when each rule fired and TOTAL sums the run.
    std::vector<std::string> alertKeys;
    for (const hydra::json::Value &snapshot : snapshots->array) {
        const hydra::json::Value *counters = snapshot.find("counters");
        if (!counters || !counters->isObject())
            continue;
        for (const auto &[key, value] : counters->object)
            if (key.rfind("obs.slo.violations{", 0) == 0 &&
                std::find(alertKeys.begin(), alertKeys.end(), key) ==
                    alertKeys.end())
                alertKeys.push_back(key);
    }
    if (!alertKeys.empty()) {
        std::sort(alertKeys.begin(), alertKeys.end());
        std::size_t keyWidth = std::strlen("ALERT");
        for (const std::string &key : alertKeys)
            keyWidth = std::max(keyWidth, key.size());
        std::printf("\n%-*s %9s  %s\n", static_cast<int>(keyWidth),
                    "ALERT", "TOTAL", "TREND");
        for (const std::string &key : alertKeys) {
            std::vector<double> deltas;
            double total = 0.0;
            for (const hydra::json::Value &snapshot :
                 snapshots->array) {
                const hydra::json::Value *counters =
                    snapshot.find("counters");
                const hydra::json::Value *value =
                    counters ? counters->find(key) : nullptr;
                const double delta = value ? value->number : 0.0;
                deltas.push_back(delta);
                total += delta;
            }
            std::printf("%-*s %9.0f  %s\n",
                        static_cast<int>(keyWidth), key.c_str(), total,
                        sparkline(deltas).c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2)
        return usage(argv[0]);

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "hydra_top: cannot read %s\n", argv[1]);
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    auto doc = hydra::json::parse(buffer.str());
    if (!doc) {
        std::fprintf(stderr, "hydra_top: %s: %s\n", argv[1],
                     doc.error().describe().c_str());
        return 1;
    }

    if (doc.value().find("snapshots"))
        return renderFlight(doc.value(), argv[1]);

    std::vector<Row> rows;
    if (doc.value().find("offcodes")) {
        collectSnapshot(doc.value(), rows);
    } else if (doc.value().isObject()) {
        // The hydra_sim wrapper: one snapshot (or null) per runtime.
        for (const auto &[name, snapshot] : doc.value().object)
            collectSnapshot(snapshot, rows);
    }
    if (rows.empty()) {
        std::fprintf(stderr, "hydra_top: %s holds no offcodes\n",
                     argv[1]);
        return 1;
    }

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.machine != b.machine ? a.machine < b.machine
                                      : a.bindname < b.bindname;
    });

    std::size_t nameWidth = std::strlen("OFFCODE");
    std::size_t siteWidth = std::strlen("SITE");
    for (const Row &row : rows) {
        nameWidth = std::max(nameWidth, row.bindname.size());
        siteWidth = std::max(siteWidth, row.site.size());
    }

    std::printf("%-8s %-*s %-*s %-11s %9s %9s %6s %5s %10s %11s %5s\n",
                "MACHINE", static_cast<int>(nameWidth), "OFFCODE",
                static_cast<int>(siteWidth), "SITE",
                "STATE", "CALLS", "DATA", "MGMT", "ERR",
                "BUSY(ms)", "IDLE(ms)", "OOBQ");
    for (const Row &row : rows) {
        std::printf(
            "%-8s %-*s %-*s %-11s %9llu %9llu %6llu %5llu %10.3f "
            "%11.3f %5llu\n",
            row.machine.c_str(), static_cast<int>(nameWidth),
            row.bindname.c_str(), static_cast<int>(siteWidth),
            row.site.c_str(), row.state.c_str(),
            static_cast<unsigned long long>(row.calls),
            static_cast<unsigned long long>(row.data),
            static_cast<unsigned long long>(row.mgmt),
            static_cast<unsigned long long>(row.errors),
            static_cast<double>(row.busyNs) / 1e6,
            static_cast<double>(row.watchdogNs) / 1e6,
            static_cast<unsigned long long>(row.oobQueued));
    }
    return 0;
}
