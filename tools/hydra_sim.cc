/**
 * @file
 * hydra_sim — command-line driver for the evaluation testbed.
 *
 * Runs any server/client scenario combination and prints the full
 * measurement set (jitter statistics + distribution, CPU utilization,
 * L2 miss rates, bus crossings, delivery counters). This is the tool
 * a downstream user reaches for to explore parameter sensitivity
 * without writing code.
 *
 * Usage:
 *   hydra_sim [--server simple|sendfile|onloaded|offloaded|none]
 *             [--client receiver|user-space|offloaded|none]
 *             [--executor sim|threaded] [--batch-max N]
 *             [--seconds N] [--seed N] [--period-ms N]
 *             [--chunk-bytes N] [--drop P] [--quiet-host]
 *             [--no-bus-multicast] [--histogram]
 *             [--metrics] [--metrics-format table|json]
 *             [--metrics-out FILE] [--trace-out FILE]
 *             [--spans-out FILE] [--introspect-out FILE]
 *             [--flight-out FILE] [--flight-interval-ms N]
 *             [--profile-out FILE] [--profile-interval-ms N]
 *             [--slo FILE] [--slo-strict]
 *             [--chaos SEED[:spec]]
 *
 * --chaos arms the deterministic fault injector. The spec grammar is
 * `SEED[:key=value,...]` with keys drop/dup/corrupt/slow/stall/
 * poolfail/ringfull (probabilities), slow-ms/stall-ms (durations),
 * and reset@MS=device[/downtime-ms] (repeatable; devices are
 * server-nic, client-nic, client-disk, client-gpu). Same seed + same
 * spec under the sim executor replays byte-for-byte.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "chaos/chaos.hh"
#include "core/runtime.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"
#include "tivo/harness.hh"

using namespace hydra;
using namespace hydra::tivo;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--server simple|sendfile|onloaded|offloaded|none]\n"
        "          [--client receiver|user-space|offloaded|none]\n"
        "          [--executor sim|threaded] [--batch-max N]\n"
        "          [--seconds N] [--seed N] [--period-ms N]\n"
        "          [--chunk-bytes N] [--drop P] [--quiet-host]\n"
        "          [--no-bus-multicast] [--histogram]\n"
        "          [--metrics] [--metrics-format table|json]\n"
        "          [--metrics-out FILE] [--trace-out FILE]\n"
        "          [--spans-out FILE] [--introspect-out FILE]\n"
        "          [--flight-out FILE] [--flight-interval-ms N]\n"
        "          [--profile-out FILE] [--profile-interval-ms N]\n"
        "          [--slo FILE] [--slo-strict]\n"
        "          [--chaos SEED[:drop=P,dup=P,corrupt=P,slow=P,"
        "stall=P,poolfail=P,ringfull=P,reset@MS=dev[/ms]]]\n",
        argv0);
    return 2;
}

/**
 * Strict parser for interval flags: a positive base-10 millisecond
 * count, nothing else. "-5", "0", "1.5", "10x", and "" all fail —
 * std::strtoull would silently accept or wrap most of those.
 */
bool
parseIntervalMs(const char *value, std::uint64_t &out)
{
    if (!value || *value == '\0')
        return false;
    std::uint64_t parsed = 0;
    for (const char *p = value; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        parsed = parsed * 10 + static_cast<std::uint64_t>(*p - '0');
    }
    if (parsed == 0)
        return false;
    out = parsed;
    return true;
}

bool
parseServer(const std::string &name, ServerKind &out)
{
    if (name == "simple")
        out = ServerKind::Simple;
    else if (name == "sendfile")
        out = ServerKind::Sendfile;
    else if (name == "onloaded")
        out = ServerKind::Onloaded;
    else if (name == "offloaded")
        out = ServerKind::Offloaded;
    else if (name == "none" || name == "idle")
        out = ServerKind::None;
    else
        return false;
    return true;
}

bool
parseClient(const std::string &name, ClientKind &out)
{
    if (name == "receiver")
        out = ClientKind::Receiver;
    else if (name == "user-space" || name == "userspace")
        out = ClientKind::UserSpace;
    else if (name == "offloaded")
        out = ClientKind::Offloaded;
    else if (name == "none" || name == "idle")
        out = ClientKind::None;
    else
        return false;
    return true;
}

/**
 * Query one runtime's hydra.Monitor over the real OOB channel (the
 * introspection protocol exercised end to end), pumping the simulator
 * until the Return arrives. Falls back to a direct snapshot if the
 * round trip does not complete. Returns "null" for absent runtimes.
 */
std::string
queryIntrospection(Testbed &testbed, core::Runtime *runtime)
{
    if (!runtime)
        return "null";
    std::string reply;
    bool replied = false;
    Status sent = runtime->invokeAsync(
        "hydra.Monitor", "Stats", Bytes{}, [&](Result<Bytes> result) {
            if (result) {
                reply.assign(result.value().begin(),
                             result.value().end());
                replied = true;
            }
        });
    if (sent) {
        exec::Executor &engine = testbed.executor();
        engine.runUntil(engine.now() + sim::milliseconds(100));
    }
    return replied ? reply : runtime->introspectJson();
}

void
printSamples(const char *name, const SampleSet &samples,
             const char *unit)
{
    if (samples.empty()) {
        std::printf("  %-22s (no samples)\n", name);
        return;
    }
    const SummaryStats stats = samples.summary();
    std::printf("  %-22s med=%8.3f  avg=%8.3f  std=%8.4f  "
                "min=%8.3f  max=%8.3f %s\n",
                name, stats.p50, stats.mean, stats.stddev, stats.min,
                stats.max, unit);
}

/**
 * Per-entity latency report: every labelled histogram the run
 * populated (per-channel delivery latency, per-Offcode service time,
 * per-site ring occupancy, per-device DMA time), with the tail
 * percentiles the telemetry engine tracks.
 */
void
printLatencyReport()
{
    const obs::RegistrySnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    bool any = false;
    for (const auto &[key, summary] : snap.histograms) {
        const bool interesting =
            key.rfind("channel.delivery_latency_ns{", 0) == 0 ||
            key.rfind("offcode.service_ns{", 0) == 0 ||
            key.rfind("exec.ring_occupancy{", 0) == 0 ||
            key.rfind("dma.transfer_ns{", 0) == 0;
        if (!interesting || summary.count == 0)
            continue;
        if (!any) {
            std::printf("\nper-entity latency "
                        "(ns; ring occupancy in messages):\n");
            std::printf("  %-52s %9s %9s %9s %9s %9s\n", "series", "n",
                        "p50", "p99", "p999", "max");
            any = true;
        }
        std::printf("  %-52s %9llu %9.0f %9.0f %9.0f %9llu\n",
                    key.c_str(),
                    static_cast<unsigned long long>(summary.count),
                    summary.p50, summary.p99, summary.p999,
                    static_cast<unsigned long long>(summary.max));
    }
}

/**
 * CPU attribution report: who burned which CPU. Per-site busy/idle
 * virtual time (with the utilization they imply) and per-Offcode CPU
 * time, straight from the exec.site_*_ns / offcode.cpu_ns counters
 * the executors maintain.
 */
void
printCpuReport()
{
    const obs::RegistrySnapshot snap =
        obs::MetricsRegistry::instance().snapshot();

    bool any = false;
    for (const auto &[key, busy] : snap.counters) {
        // Site series carry site= and (on fleet/testbed machines) a
        // host= label; parse rather than prefix-match so both forms
        // report.
        std::string name;
        obs::Labels labels;
        if (!obs::parseDisplayKey(key, name, labels) ||
            name != "exec.site_busy_ns")
            continue;
        std::string site, host;
        for (const auto &[k, v] : labels) {
            if (k == "site")
                site = v;
            else if (k == "host")
                host = v;
        }
        if (site.empty())
            continue;
        const std::uint64_t idle =
            obs::MetricsRegistry::instance().counterValue(
                "exec.site_idle_ns", labels);
        const std::uint64_t elapsed = busy + idle;
        if (!any) {
            std::printf("\ncpu attribution (virtual ns):\n");
            std::printf("  %-12s %-24s %14s %14s %8s\n", "host", "site",
                        "busy", "idle", "util");
            any = true;
        }
        std::printf("  %-12s %-24s %14llu %14llu %7.1f%%\n",
                    host.empty() ? "-" : host.c_str(), site.c_str(),
                    static_cast<unsigned long long>(busy),
                    static_cast<unsigned long long>(idle),
                    elapsed ? 100.0 * static_cast<double>(busy) /
                                  static_cast<double>(elapsed)
                            : 0.0);
    }

    bool anyOffcode = false;
    for (const auto &[key, cpu] : snap.counters) {
        const std::string prefix = "offcode.cpu_ns{offcode=";
        if (key.rfind(prefix, 0) != 0 || key.back() != '}' || cpu == 0)
            continue;
        const std::string name = key.substr(
            prefix.size(), key.size() - prefix.size() - 1);
        if (!anyOffcode) {
            std::printf("  %-24s %14s\n", "offcode", "cpu");
            anyOffcode = true;
        }
        std::printf("  %-24s %14llu\n", name.c_str(),
                    static_cast<unsigned long long>(cpu));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    TestbedConfig config;
    config.server = ServerKind::Offloaded;
    config.client = ClientKind::Offloaded;
    config.duration = sim::seconds(60);
    config.warmup = sim::seconds(5);
    bool histogram = false;
    bool printMetrics = false;
    std::string metricsFormat = "table";
    std::string metricsOut;
    std::string traceOut;
    std::string spansOut;
    std::string introspectOut;
    std::string flightOut;
    std::uint64_t flightIntervalMs = 0;
    std::string profileOut;
    std::uint64_t profileIntervalMs = 0;
    std::string sloPath;
    bool sloStrict = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--server") {
            const char *value = next();
            if (!value || !parseServer(value, config.server))
                return usage(argv[0]);
        } else if (arg == "--client") {
            const char *value = next();
            if (!value || !parseClient(value, config.client))
                return usage(argv[0]);
        } else if (arg == "--executor" ||
                   arg.rfind("--executor=", 0) == 0) {
            std::string value;
            if (arg == "--executor") {
                const char *v = next();
                if (!v)
                    return usage(argv[0]);
                value = v;
            } else {
                value = arg.substr(std::strlen("--executor="));
            }
            if (!exec::parseExecutorKind(value, config.executor))
                return usage(argv[0]);
        } else if (arg == "--batch-max") {
            const char *value = next();
            std::uint64_t parsed = 0;
            // Reuses the strict positive-integer parser: a zero or
            // malformed quantum is a usage error, not "use default".
            if (!value || !parseIntervalMs(value, parsed))
                return usage(argv[0]);
            config.batchMax = static_cast<std::size_t>(parsed);
        } else if (arg == "--seconds") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            config.duration = sim::seconds(
                static_cast<std::uint64_t>(std::strtoull(value, nullptr,
                                                         10)));
        } else if (arg == "--seed") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            config.seed = std::strtoull(value, nullptr, 10);
        } else if (arg == "--period-ms") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            config.sendPeriod = sim::milliseconds(
                static_cast<std::uint64_t>(std::strtoull(value, nullptr,
                                                         10)));
        } else if (arg == "--chunk-bytes") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            config.chunkBytes = static_cast<std::size_t>(
                std::strtoull(value, nullptr, 10));
        } else if (arg == "--drop") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            config.dropProbability = std::strtod(value, nullptr);
        } else if (arg == "--quiet-host") {
            config.quietHost = true;
        } else if (arg == "--no-bus-multicast") {
            config.busMulticast = false;
        } else if (arg == "--histogram") {
            histogram = true;
        } else if (arg == "--metrics") {
            printMetrics = true;
        } else if (arg == "--metrics-format" ||
                   arg.rfind("--metrics-format=", 0) == 0) {
            std::string value;
            if (arg == "--metrics-format") {
                const char *v = next();
                if (!v)
                    return usage(argv[0]);
                value = v;
            } else {
                value = arg.substr(std::strlen("--metrics-format="));
            }
            if (value != "table" && value != "json")
                return usage(argv[0]);
            metricsFormat = value;
            printMetrics = true;
        } else if (arg == "--metrics-out") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            metricsOut = value;
        } else if (arg == "--trace-out") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            traceOut = value;
        } else if (arg == "--spans-out") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            spansOut = value;
        } else if (arg == "--introspect-out") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            introspectOut = value;
        } else if (arg == "--flight-out") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            flightOut = value;
        } else if (arg == "--flight-interval-ms") {
            const char *value = next();
            if (!value || !parseIntervalMs(value, flightIntervalMs)) {
                std::fprintf(stderr,
                             "%s: --flight-interval-ms wants a positive "
                             "integer, got '%s'\n",
                             argv[0], value ? value : "");
                return usage(argv[0]);
            }
        } else if (arg == "--profile-out") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            profileOut = value;
        } else if (arg == "--profile-interval-ms") {
            const char *value = next();
            if (!value || !parseIntervalMs(value, profileIntervalMs)) {
                std::fprintf(stderr,
                             "%s: --profile-interval-ms wants a positive "
                             "integer, got '%s'\n",
                             argv[0], value ? value : "");
                return usage(argv[0]);
            }
        } else if (arg == "--slo") {
            const char *value = next();
            if (!value)
                return usage(argv[0]);
            sloPath = value;
        } else if (arg == "--slo-strict") {
            sloStrict = true;
        } else if (arg == "--chaos" || arg.rfind("--chaos=", 0) == 0) {
            std::string value;
            if (arg == "--chaos") {
                const char *v = next();
                if (!v)
                    return usage(argv[0]);
                value = v;
            } else {
                value = arg.substr(std::strlen("--chaos="));
            }
            auto spec = chaos::parseChaosSpec(value);
            if (!spec) {
                std::fprintf(stderr, "%s: bad --chaos spec: %s\n",
                             argv[0],
                             spec.error().describe().c_str());
                return usage(argv[0]);
            }
            chaos::ChaosEngine::instance().configure(spec.value());
        } else {
            return usage(argv[0]);
        }
    }

    // Asking for flight output implies a sensible default cadence;
    // SLO rules are evaluated on the flight cadence, so --slo does too.
    if ((!flightOut.empty() || !sloPath.empty()) && flightIntervalMs == 0)
        flightIntervalMs = 1000;
    config.flightInterval = sim::milliseconds(flightIntervalMs);

    // Asking for profile output implies a default sampling cadence.
    if (!profileOut.empty() && profileIntervalMs == 0)
        profileIntervalMs = 100;
    config.profileInterval = sim::milliseconds(profileIntervalMs);
    if (!profileOut.empty())
        obs::Profiler::instance().enable(
            sim::milliseconds(profileIntervalMs));

    if (!sloPath.empty()) {
        std::ifstream spec(sloPath);
        if (!spec) {
            std::fprintf(stderr, "hydra_sim: cannot read SLO spec %s\n",
                         sloPath.c_str());
            return 2;
        }
        std::string text((std::istreambuf_iterator<char>(spec)),
                         std::istreambuf_iterator<char>());
        Status loaded = obs::SloEngine::instance().loadSpec(text);
        if (!loaded) {
            std::fprintf(stderr, "hydra_sim: bad SLO spec %s: %s\n",
                         sloPath.c_str(),
                         loaded.error().describe().c_str());
            return 2;
        }
    }

    if (!traceOut.empty() || !spansOut.empty()) {
        obs::Tracer::instance().enable();
#if !HYDRA_OBS_TRACING
        std::fprintf(stderr,
                     "hydra_sim: warning: built with HYDRA_TRACING=OFF; "
                     "trace output will contain no events\n");
#endif
    }

    std::printf("hydra_sim: server=%s client=%s executor=%s"
                " duration=%.0fs seed=%llu"
                " period=%.1fms chunk=%zuB drop=%.3f\n",
                std::string(serverKindName(config.server)).c_str(),
                std::string(clientKindName(config.client)).c_str(),
                exec::executorKindName(config.executor),
                sim::toSeconds(config.duration),
                static_cast<unsigned long long>(config.seed),
                sim::toMilliseconds(config.sendPeriod), config.chunkBytes,
                config.dropProbability);

    Testbed testbed(config);
    const ScenarioResult result = testbed.run();

    std::printf("\nscenario %s %s\n", result.scenarioName.c_str(),
                result.deploymentOk ? "(deployment ok)"
                                    : "(DEPLOYMENT FAILED)");
    std::printf("\ndelivery:\n");
    std::printf("  chunks sent:        %llu\n",
                static_cast<unsigned long long>(result.chunksSent));
    std::printf("  packets received:   %llu\n",
                static_cast<unsigned long long>(result.packetsReceived));
    std::printf("  frames displayed:   %llu\n",
                static_cast<unsigned long long>(result.framesDisplayed));
    std::printf("  network drops:      %llu\n",
                static_cast<unsigned long long>(result.networkDrops));
    std::printf("  bus crossings:      server=%llu client=%llu\n",
                static_cast<unsigned long long>(result.serverBusCrossings),
                static_cast<unsigned long long>(
                    result.clientBusCrossings));

    std::printf("\nmeasurements:\n");
    printSamples("inter-arrival", result.interarrivalMs, "ms");
    printSamples("server CPU", result.serverCpuPct, "%");
    printSamples("client CPU", result.clientCpuPct, "%");
    printSamples("server L2 miss rate", result.serverL2MissRate, "");
    printSamples("client L2 miss rate", result.clientL2MissRate, "");

    printLatencyReport();
    printCpuReport();

    if (chaos::ChaosEngine::instance().enabled()) {
        const auto &registry = obs::MetricsRegistry::instance();
        std::printf("\nchaos:\n");
        std::printf("  faults injected:    %llu\n",
                    static_cast<unsigned long long>(
                        chaos::ChaosEngine::instance().injected()));
        std::printf("  recoveries:         %llu\n",
                    static_cast<unsigned long long>(
                        registry.counterTotal("chaos.recoveries")));
        std::printf("  offcode restarts:   %llu\n",
                    static_cast<unsigned long long>(
                        registry.counterTotal("offcode.restarts")));
        std::printf("  device resets:      %llu\n",
                    static_cast<unsigned long long>(
                        registry.counterTotal("dev.resets")));
    }

    if (obs::SloEngine::instance().hasRules())
        std::printf("\nSLO report:\n%s",
                    obs::SloEngine::instance().report().c_str());

    if (histogram && !result.interarrivalMs.empty()) {
        const double lo = result.interarrivalMs.min();
        const double hi = result.interarrivalMs.max() + 1e-9;
        Histogram h(lo, hi, 20);
        for (double v : result.interarrivalMs.samples())
            h.add(v);
        std::printf("\ninter-arrival histogram (ms):\n%s",
                    h.render(50).c_str());
    }

    if (printMetrics) {
        if (metricsFormat == "json")
            std::printf("\n%s\n",
                        obs::MetricsRegistry::instance().toJson().c_str());
        else
            std::printf(
                "\nmetrics:\n%s",
                obs::MetricsRegistry::instance().prettyTable().c_str());
    }
    if (!metricsOut.empty()) {
        std::ofstream out(metricsOut);
        if (!out) {
            std::fprintf(stderr, "hydra_sim: cannot write %s\n",
                         metricsOut.c_str());
            return 1;
        }
        out << obs::MetricsRegistry::instance().toJson() << '\n';
        std::printf("\n(wrote metrics to %s)\n", metricsOut.c_str());
    }
    if (!traceOut.empty() || !spansOut.empty()) {
        const std::uint64_t overwritten =
            obs::Tracer::instance().eventsOverwritten();
        if (overwritten > 0)
            std::fprintf(
                stderr,
                "hydra_sim: warning: trace ring overflowed; the oldest "
                "%llu events were dropped (obs.trace.dropped_events)\n",
                static_cast<unsigned long long>(overwritten));
    }
    if (!traceOut.empty()) {
        if (!obs::Tracer::instance().writeFile(traceOut)) {
            std::fprintf(stderr, "hydra_sim: cannot write %s\n",
                         traceOut.c_str());
            return 1;
        }
        std::printf("(wrote trace to %s — load it at ui.perfetto.dev)\n",
                    traceOut.c_str());
    }
    if (!spansOut.empty()) {
        if (!obs::Tracer::instance().writeSpansFile(spansOut)) {
            std::fprintf(stderr, "hydra_sim: cannot write %s\n",
                         spansOut.c_str());
            return 1;
        }
        std::printf("(wrote span listing to %s)\n", spansOut.c_str());
    }
    if (!flightOut.empty()) {
        std::ofstream out(flightOut);
        if (!out) {
            std::fprintf(stderr, "hydra_sim: cannot write %s\n",
                         flightOut.c_str());
            return 1;
        }
        out << obs::FlightRecorder::instance().toJson() << '\n';
        std::printf("(wrote flight recording to %s — view with "
                    "hydra_top %s)\n",
                    flightOut.c_str(), flightOut.c_str());
    }
    if (!profileOut.empty()) {
        std::ofstream out(profileOut);
        if (!out) {
            std::fprintf(stderr, "hydra_sim: cannot write %s\n",
                         profileOut.c_str());
            return 1;
        }
        out << obs::Profiler::instance().foldedStacks();
        std::printf("(wrote %llu profile samples to %s — folded-stack "
                    "format, flamegraph-ready)\n",
                    static_cast<unsigned long long>(
                        obs::Profiler::instance().samplesTaken()),
                    profileOut.c_str());
    }
    if (!introspectOut.empty()) {
        std::ofstream out(introspectOut);
        if (!out) {
            std::fprintf(stderr, "hydra_sim: cannot write %s\n",
                         introspectOut.c_str());
            return 1;
        }
        out << "{\"server\":"
            << queryIntrospection(testbed, testbed.serverRuntime())
            << ",\"client\":"
            << queryIntrospection(testbed, testbed.clientRuntime())
            << "}\n";
        std::printf("(wrote introspection to %s — view with "
                    "hydra_top %s)\n",
                    introspectOut.c_str(), introspectOut.c_str());
    }
    if (!result.deploymentOk)
        return 1;
    if (sloStrict &&
        obs::SloEngine::instance().violationsTotal() > 0) {
        std::fprintf(stderr,
                     "hydra_sim: %llu SLO violation(s) with "
                     "--slo-strict\n",
                     static_cast<unsigned long long>(
                         obs::SloEngine::instance().violationsTotal()));
        return 3;
    }
    return 0;
}
