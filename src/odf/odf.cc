#include "odf/odf.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/strings.hh"
#include "odf/xml.hh"

namespace hydra::odf {

std::string_view
constraintName(ConstraintType type)
{
    switch (type) {
      case ConstraintType::Link: return "Link";
      case ConstraintType::Pull: return "Pull";
      case ConstraintType::Gang: return "Gang";
      case ConstraintType::AsymmetricGang: return "AsymmetricGang";
    }
    return "?";
}

Result<ConstraintType>
constraintFromName(std::string_view name)
{
    const std::string lower = toLower(name);
    if (lower == "link")
        return ConstraintType::Link;
    if (lower == "pull")
        return ConstraintType::Pull;
    if (lower == "gang")
        return ConstraintType::Gang;
    if (lower == "asymmetricgang" || lower == "asym-gang" ||
        lower == "gang-asym")
        return ConstraintType::AsymmetricGang;
    return Error(ErrorCode::ParseError,
                 "unknown constraint type: " + std::string(name));
}

namespace {

Result<Guid>
parseGuidText(std::string_view text, const std::string &context)
{
    Guid guid;
    if (!Guid::parse(trim(text), guid))
        return Error(ErrorCode::ParseError,
                     "bad GUID in " + context + ": " + std::string(text));
    return guid;
}

Result<InterfaceSpec>
parseInterface(const XmlNode &node)
{
    InterfaceSpec spec;
    spec.name = std::string(node.attr("name"));
    spec.includePath = node.childText("include");
    const std::string guid_text = node.childText("GUID");
    if (!guid_text.empty()) {
        auto guid = parseGuidText(guid_text, "interface");
        if (!guid)
            return guid.error();
        spec.guid = guid.value();
    } else if (!spec.name.empty()) {
        spec.guid = Guid::fromName(spec.name);
    }
    for (const XmlNode *method : node.childrenNamed("method")) {
        std::string method_name = std::string(method->attr("name"));
        if (method_name.empty())
            return Error(ErrorCode::ManifestInvalid,
                         "interface method missing name attribute");
        spec.methods.push_back(std::move(method_name));
    }
    return spec;
}

Result<ImportSpec>
parseImport(const XmlNode &node)
{
    ImportSpec spec;
    spec.file = node.childText("file");
    spec.bindname = node.childText("bindname");

    if (const XmlNode *ref = node.child("reference")) {
        const std::string_view type = ref->attr("type");
        if (!type.empty()) {
            auto parsed = constraintFromName(type);
            if (!parsed)
                return parsed.error();
            spec.constraint = parsed.value();
        }
        const std::string_view pri = ref->attr("pri");
        if (!pri.empty()) {
            long long value = 0;
            if (!parseInt(pri, value))
                return Error(ErrorCode::ParseError,
                             "bad import priority: " + std::string(pri));
            spec.priority = static_cast<int>(value);
        }
        const std::string guid_text = ref->childText("GUID");
        if (!guid_text.empty()) {
            auto guid = parseGuidText(guid_text, "import reference");
            if (!guid)
                return guid.error();
            spec.guid = guid.value();
        }
    }
    // Fall back to a name-derived GUID so imports always resolve.
    if (spec.guid.isNull() && !spec.bindname.empty())
        spec.guid = Guid::fromName(spec.bindname);
    return spec;
}

Result<dev::DeviceClassSpec>
parseDeviceClass(const XmlNode &node)
{
    dev::DeviceClassSpec spec;
    const std::string_view id = node.attr("id");
    if (!id.empty()) {
        Guid as_guid;
        if (!Guid::parse(id, as_guid))
            return Error(ErrorCode::ParseError,
                         "bad device-class id: " + std::string(id));
        spec.id = static_cast<std::uint32_t>(as_guid.value());
    }
    spec.name = node.childText("name");
    spec.bus = node.childText("bus");
    spec.mac = node.childText("mac");
    spec.vendor = node.childText("vendor");
    return spec;
}

} // namespace

Result<OdfDocument>
OdfDocument::parse(std::string_view xml_text)
{
    auto parsed = parseXml(xml_text);
    if (!parsed)
        return parsed.error();
    const XmlNode &root = *parsed.value();
    if (root.name != "offcode")
        return Error(ErrorCode::ManifestInvalid,
                     "root element must be <offcode>, got <" + root.name +
                         ">");

    OdfDocument doc;
    doc.hostFallback = false;

    // --- package ---
    const XmlNode *package = root.child("package");
    if (!package)
        return Error(ErrorCode::ManifestInvalid, "missing <package>");
    doc.bindname = package->childText("bindname");
    const std::string guid_text = package->childText("GUID");
    if (!guid_text.empty()) {
        auto guid = parseGuidText(guid_text, "package");
        if (!guid)
            return guid.error();
        doc.guid = guid.value();
    } else if (!doc.bindname.empty()) {
        doc.guid = Guid::fromName(doc.bindname);
    }
    for (const XmlNode *iface : package->childrenNamed("interface")) {
        auto spec = parseInterface(*iface);
        if (!spec)
            return spec.error();
        doc.interfaces.push_back(std::move(spec).value());
    }

    // --- sw-env ---
    if (const XmlNode *sw = root.child("sw-env")) {
        for (const XmlNode *import : sw->childrenNamed("import")) {
            auto spec = parseImport(*import);
            if (!spec)
                return spec.error();
            doc.imports.push_back(std::move(spec).value());
        }
        if (const XmlNode *req = sw->child("requires")) {
            const std::string_view memory = req->attr("memory");
            if (!memory.empty()) {
                long long bytes = 0;
                if (!parseInt(memory, bytes) || bytes < 0)
                    return Error(ErrorCode::ParseError,
                                 "bad memory requirement");
                doc.requiredMemoryBytes =
                    static_cast<std::size_t>(bytes);
            }
            for (const XmlNode *cap : req->childrenNamed("capability")) {
                std::string cap_name = std::string(cap->attr("name"));
                if (cap_name.empty())
                    cap_name = std::string(trim(cap->text));
                if (!cap_name.empty())
                    doc.requiredCapabilities.push_back(std::move(cap_name));
            }
        }
    }

    // --- targets ---
    if (const XmlNode *targets = root.child("targets")) {
        for (const XmlNode *klass : targets->childrenNamed("device-class")) {
            auto spec = parseDeviceClass(*klass);
            if (!spec)
                return spec.error();
            doc.targets.push_back(std::move(spec).value());
        }
        doc.hostFallback = targets->child("host-fallback") != nullptr;
    }

    // --- price (bus bandwidth demand, for the ILP objective) ---
    if (const XmlNode *price = root.child("price")) {
        const std::string_view bus = price->attr("bus");
        if (!bus.empty()) {
            double value = 0.0;
            if (!parseDouble(bus, value) || value < 0.0)
                return Error(ErrorCode::ParseError, "bad bus price");
            doc.busPrice = value;
        }
    }

    Status valid = doc.validate();
    if (!valid)
        return valid.error();
    return doc;
}

Result<OdfDocument>
OdfDocument::loadFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        return Error(ErrorCode::NotFound, "cannot open " + path);
    std::ostringstream content;
    content << file.rdbuf();
    return parse(content.str());
}

Status
OdfDocument::validate() const
{
    if (bindname.empty())
        return Status(ErrorCode::ManifestInvalid, "empty bindname");
    if (guid.isNull())
        return Status(ErrorCode::ManifestInvalid, "null GUID");
    if (targets.empty() && !hostFallback)
        return Status(ErrorCode::ManifestInvalid,
                      bindname + ": no targets and no host fallback");
    for (const ImportSpec &import : imports) {
        if (import.bindname.empty())
            return Status(ErrorCode::ManifestInvalid,
                          bindname + ": import missing bindname");
    }
    return Status::success();
}

std::string
OdfDocument::toXml() const
{
    std::ostringstream out;
    out << "<offcode>\n";
    out << "  <package>\n";
    out << "    <bindname>" << bindname << "</bindname>\n";
    out << "    <GUID>" << guid.toString() << "</GUID>\n";
    for (const InterfaceSpec &iface : interfaces) {
        out << "    <interface name=\"" << iface.name << "\">\n";
        out << "      <GUID>" << iface.guid.toString() << "</GUID>\n";
        if (!iface.includePath.empty())
            out << "      <include>" << iface.includePath << "</include>\n";
        for (const std::string &method : iface.methods)
            out << "      <method name=\"" << method << "\"/>\n";
        out << "    </interface>\n";
    }
    out << "  </package>\n";

    out << "  <sw-env>\n";
    for (const ImportSpec &import : imports) {
        out << "    <import>\n";
        if (!import.file.empty())
            out << "      <file>" << import.file << "</file>\n";
        out << "      <bindname>" << import.bindname << "</bindname>\n";
        out << "      <reference type=\"" << constraintName(import.constraint)
            << "\" pri=\"" << import.priority << "\">\n";
        out << "        <GUID>" << import.guid.toString() << "</GUID>\n";
        out << "      </reference>\n";
        out << "    </import>\n";
    }
    out << "    <requires memory=\"" << requiredMemoryBytes << "\">\n";
    for (const std::string &cap : requiredCapabilities)
        out << "      <capability name=\"" << cap << "\"/>\n";
    out << "    </requires>\n";
    out << "  </sw-env>\n";

    out << "  <targets>\n";
    for (const dev::DeviceClassSpec &target : targets) {
        out << "    <device-class id=\"0x" << std::hex << target.id
            << std::dec << "\">\n";
        if (!target.name.empty())
            out << "      <name>" << target.name << "</name>\n";
        if (!target.bus.empty())
            out << "      <bus>" << target.bus << "</bus>\n";
        if (!target.mac.empty())
            out << "      <mac>" << target.mac << "</mac>\n";
        if (!target.vendor.empty())
            out << "      <vendor>" << target.vendor << "</vendor>\n";
        out << "    </device-class>\n";
    }
    if (hostFallback)
        out << "    <host-fallback/>\n";
    out << "  </targets>\n";
    out << "  <price bus=\"" << std::setprecision(12) << busPrice
        << "\"/>\n";
    out << "</offcode>\n";
    return out.str();
}

} // namespace hydra::odf
