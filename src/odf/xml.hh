/**
 * @file
 * A small XML parser sufficient for Offcode Description Files.
 *
 * Supports elements, attributes (quoted or — as in the paper's
 * Fig. 4 sample ODF — unquoted), text content, comments, CDATA,
 * processing instructions, and the five predefined entities. Parse
 * errors carry a line number.
 */

#ifndef HYDRA_ODF_XML_HH
#define HYDRA_ODF_XML_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hh"

namespace hydra::odf {

/** One parsed XML element. */
class XmlNode
{
  public:
    std::string name;
    std::vector<std::pair<std::string, std::string>> attributes;
    std::vector<std::unique_ptr<XmlNode>> children;
    /** Concatenated character data directly inside this element. */
    std::string text;

    /** Attribute value, or empty string when absent. */
    std::string_view attr(std::string_view key) const;
    bool hasAttr(std::string_view key) const;

    /** First child with the given element name, or nullptr. */
    const XmlNode *child(std::string_view child_name) const;

    /** All children with the given element name. */
    std::vector<const XmlNode *>
    childrenNamed(std::string_view child_name) const;

    /** Trimmed text of a named child ("" when the child is absent). */
    std::string childText(std::string_view child_name) const;
};

/** Parse a complete document; returns the root element. */
Result<std::unique_ptr<XmlNode>> parseXml(std::string_view input);

} // namespace hydra::odf

#endif // HYDRA_ODF_XML_HH
