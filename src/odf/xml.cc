#include "odf/xml.hh"

#include <cctype>

#include "common/strings.hh"

namespace hydra::odf {

std::string_view
XmlNode::attr(std::string_view key) const
{
    for (const auto &[name_, value] : attributes)
        if (name_ == key)
            return value;
    return {};
}

bool
XmlNode::hasAttr(std::string_view key) const
{
    for (const auto &[name_, value] : attributes)
        if (name_ == key)
            return true;
    return false;
}

const XmlNode *
XmlNode::child(std::string_view child_name) const
{
    for (const auto &node : children)
        if (node->name == child_name)
            return node.get();
    return nullptr;
}

std::vector<const XmlNode *>
XmlNode::childrenNamed(std::string_view child_name) const
{
    std::vector<const XmlNode *> out;
    for (const auto &node : children)
        if (node->name == child_name)
            out.push_back(node.get());
    return out;
}

std::string
XmlNode::childText(std::string_view child_name) const
{
    const XmlNode *node = child(child_name);
    return node ? std::string(trim(node->text)) : std::string();
}

namespace {

/** Recursive-descent XML reader over a string view. */
class Parser
{
  public:
    explicit Parser(std::string_view input) : in_(input) {}

    Result<std::unique_ptr<XmlNode>>
    parseDocument()
    {
        skipProlog();
        auto root = parseElement();
        if (!root)
            return root;
        skipMisc();
        if (!atEnd())
            return fail("trailing content after root element");
        return root;
    }

  private:
    bool atEnd() const { return pos_ >= in_.size(); }
    char peek() const { return atEnd() ? '\0' : in_[pos_]; }

    char
    get()
    {
        const char c = peek();
        ++pos_;
        if (c == '\n')
            ++line_;
        return c;
    }

    bool
    consume(std::string_view token)
    {
        if (in_.substr(pos_, token.size()) != token)
            return false;
        for (std::size_t i = 0; i < token.size(); ++i)
            get();
        return true;
    }

    void
    skipSpace()
    {
        while (!atEnd() &&
               std::isspace(static_cast<unsigned char>(peek())))
            get();
    }

    Error
    makeError(const std::string &what) const
    {
        return Error(ErrorCode::ParseError,
                     "line " + std::to_string(line_) + ": " + what);
    }

    Result<std::unique_ptr<XmlNode>>
    fail(const std::string &what) const
    {
        return makeError(what);
    }

    /** Skip whitespace, comments, PIs, and a doctype before the root. */
    void
    skipProlog()
    {
        while (true) {
            skipSpace();
            if (consume("<?")) {
                while (!atEnd() && !consume("?>"))
                    get();
            } else if (in_.substr(pos_, 4) == "<!--") {
                skipComment();
            } else if (consume("<!DOCTYPE")) {
                while (!atEnd() && peek() != '>')
                    get();
                if (!atEnd())
                    get();
            } else {
                return;
            }
        }
    }

    void
    skipMisc()
    {
        while (true) {
            skipSpace();
            if (in_.substr(pos_, 4) == "<!--")
                skipComment();
            else
                return;
        }
    }

    void
    skipComment()
    {
        consume("<!--");
        while (!atEnd() && !consume("-->"))
            get();
    }

    static bool
    isNameChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
               c == '_' || c == '.' || c == ':';
    }

    std::string
    parseName()
    {
        std::string name;
        while (!atEnd() && isNameChar(peek()))
            name.push_back(get());
        return name;
    }

    /** Decode the predefined entities in character data. */
    static std::string
    decodeEntities(std::string_view raw)
    {
        std::string out;
        out.reserve(raw.size());
        std::size_t i = 0;
        while (i < raw.size()) {
            if (raw[i] != '&') {
                out.push_back(raw[i++]);
                continue;
            }
            const std::size_t semi = raw.find(';', i);
            if (semi == std::string_view::npos) {
                out.push_back(raw[i++]);
                continue;
            }
            const std::string_view entity = raw.substr(i + 1, semi - i - 1);
            if (entity == "lt")
                out.push_back('<');
            else if (entity == "gt")
                out.push_back('>');
            else if (entity == "amp")
                out.push_back('&');
            else if (entity == "quot")
                out.push_back('"');
            else if (entity == "apos")
                out.push_back('\'');
            else {
                out.append(raw.substr(i, semi - i + 1));
            }
            i = semi + 1;
        }
        return out;
    }

    Result<std::string>
    parseAttrValue()
    {
        if (peek() == '"' || peek() == '\'') {
            const char quote = get();
            std::string value;
            while (!atEnd() && peek() != quote)
                value.push_back(get());
            if (atEnd())
                return makeError("unterminated attribute value");
            get(); // closing quote
            return decodeEntities(value);
        }
        // Unquoted value (paper-style ODF): read until space or '>'.
        std::string value;
        while (!atEnd() && !std::isspace(static_cast<unsigned char>(peek())) &&
               peek() != '>' && peek() != '/')
            value.push_back(get());
        if (value.empty())
            return makeError("empty attribute value");
        return decodeEntities(value);
    }

    Result<std::unique_ptr<XmlNode>>
    parseElement()
    {
        if (!consume("<"))
            return fail("expected '<'");
        auto node = std::make_unique<XmlNode>();
        node->name = parseName();
        if (node->name.empty())
            return fail("expected element name");

        // Attributes.
        while (true) {
            skipSpace();
            if (consume("/>"))
                return node;
            if (consume(">"))
                break;
            const std::string key = parseName();
            if (key.empty())
                return fail("expected attribute name in <" + node->name +
                            ">");
            skipSpace();
            if (!consume("="))
                return fail("expected '=' after attribute '" + key + "'");
            skipSpace();
            auto value = parseAttrValue();
            if (!value)
                return value.error();
            node->attributes.emplace_back(key, std::move(value).value());
        }

        // Content.
        while (true) {
            if (atEnd())
                return fail("unterminated element <" + node->name + ">");
            if (in_.substr(pos_, 4) == "<!--") {
                skipComment();
                continue;
            }
            if (consume("<![CDATA[")) {
                while (!atEnd() && !consume("]]>"))
                    node->text.push_back(get());
                continue;
            }
            if (in_.substr(pos_, 2) == "</") {
                consume("</");
                const std::string closing = parseName();
                skipSpace();
                if (!consume(">"))
                    return fail("malformed closing tag");
                if (closing != node->name)
                    return fail("mismatched closing tag: expected </" +
                                node->name + ">, got </" + closing + ">");
                return node;
            }
            if (peek() == '<') {
                auto childNode = parseElement();
                if (!childNode)
                    return childNode;
                node->children.push_back(std::move(childNode).value());
                continue;
            }
            // Character data.
            std::string raw;
            while (!atEnd() && peek() != '<')
                raw.push_back(get());
            node->text += decodeEntities(raw);
        }
    }

    std::string_view in_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

} // namespace

Result<std::unique_ptr<XmlNode>>
parseXml(std::string_view input)
{
    Parser parser(input);
    return parser.parseDocument();
}

} // namespace hydra::odf
