/**
 * @file
 * The Offcode manifesto: Offcode Description File model.
 *
 * An ODF (paper Section 3.3, Fig. 4) has three parts:
 *  1. package — bindname, GUID, and supported interfaces;
 *  2. sw-env — dependencies on peer Offcodes with layout constraints
 *     (Link / Pull / Gang / Asymmetric Gang) plus software
 *     requirements (memory, capabilities);
 *  3. targets — the device classes the Offcode can execute on, and
 *     whether a host-CPU fallback implementation exists.
 */

#ifndef HYDRA_ODF_ODF_HH
#define HYDRA_ODF_ODF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/guid.hh"
#include "common/result.hh"
#include "dev/device.hh"

namespace hydra::odf {

/** Layout constraint kinds between two Offcodes (paper §3.3). */
enum class ConstraintType : std::uint8_t {
    /** No placement constraint; just a usage dependency. */
    Link,
    /** Both Offcodes must land on the same device. */
    Pull,
    /** If one is offloaded, so is the other (possibly elsewhere). */
    Gang,
    /** Offloading *this* Offcode requires offloading the peer. */
    AsymmetricGang,
};

std::string_view constraintName(ConstraintType type);
Result<ConstraintType> constraintFromName(std::string_view name);

/** One interface the Offcode implements (WSDL-lite). */
struct InterfaceSpec
{
    std::string name;
    Guid guid;
    /** Declared method names (may be empty for include-by-path). */
    std::vector<std::string> methods;
    /** Path of an external WSDL include, when used. */
    std::string includePath;
};

/** A dependency on a peer Offcode. */
struct ImportSpec
{
    std::string file;     ///< peer ODF path
    std::string bindname; ///< peer binding name
    Guid guid;            ///< peer Offcode GUID
    ConstraintType constraint = ConstraintType::Link;
    int priority = 0;
};

/** Parsed Offcode Description File. */
struct OdfDocument
{
    std::string bindname;
    Guid guid;
    std::vector<InterfaceSpec> interfaces;
    std::vector<ImportSpec> imports;
    std::vector<dev::DeviceClassSpec> targets;

    /** Device memory the Offcode image + heap needs. */
    std::size_t requiredMemoryBytes = 64 * 1024;
    /** Capabilities the target device must expose. */
    std::vector<std::string> requiredCapabilities;
    /** True when a host-CPU implementation exists as fallback. */
    bool hostFallback = true;
    /**
     * Estimated average bus bandwidth demand ("Price" in the
     * paper's Maximize-Bus-Usage objective), in Gbps.
     */
    double busPrice = 0.0;

    /** Parse an ODF from XML text. */
    static Result<OdfDocument> parse(std::string_view xml_text);

    /** Parse an ODF from a file on disk. */
    static Result<OdfDocument> loadFile(const std::string &path);

    /** Serialize back to canonical XML (round-trip tested). */
    std::string toXml() const;

    /** Structural validity check (non-empty bindname, GUID, ...). */
    Status validate() const;
};

} // namespace hydra::odf

#endif // HYDRA_ODF_ODF_HH
