#include "dev/disk.hh"

#include <algorithm>
#include <cassert>

namespace hydra::dev {

namespace {

/** NFS file name holding the NAS-backed block store. */
const char *const kBackingFile = "smartdisk.img";

} // namespace

DeviceConfig
SmartDisk::diskDefaultConfig()
{
    DeviceConfig config;
    config.name = "disk";
    config.firmwareGhz = 0.5;
    config.localMemoryBytes = 32 * 1024 * 1024;
    return config;
}

DeviceClassSpec
SmartDisk::diskClassSpec()
{
    DeviceClassSpec spec;
    spec.id = 0x0002;
    spec.name = "Storage Controller";
    spec.bus = "pci";
    return spec;
}

SmartDisk::SmartDisk(exec::Executor &executor, hw::Bus &host_bus,
                     DeviceConfig config, DiskConfig disk)
    : Device(executor, host_bus, std::move(config), diskClassSpec()),
      disk_(disk), backend_(DiskBackend::Local)
{
    addCapability("block-store");
    addCapability("programmable");
}

SmartDisk::SmartDisk(exec::Executor &executor, hw::Bus &host_bus,
                     net::Network &network, net::NodeId node,
                     net::NodeId nas, DeviceConfig config, DiskConfig disk)
    : Device(executor, host_bus, std::move(config), diskClassSpec()),
      disk_(disk), backend_(DiskBackend::NfsBacked)
{
    addCapability("block-store");
    addCapability("programmable");
    addCapability("nfs-client");
    nfs_ = std::make_unique<net::NfsClient>(network, node, nas,
                                            /*reply_port=*/33050);
}

Status
SmartDisk::validate(std::uint64_t lba, std::uint64_t blocks) const
{
    if (blocks == 0)
        return Status(ErrorCode::InvalidArgument, "zero-length request");
    if (lba + blocks > disk_.capacityBlocks)
        return Status(ErrorCode::OutOfRange, "beyond media capacity");
    return Status::success();
}

void
SmartDisk::readBlocks(std::uint64_t lba, std::uint32_t count,
                      ReadCallback done)
{
    Status valid = validate(lba, count);
    if (!valid) {
        done(valid.error());
        return;
    }

    runFirmware(disk_.perBlockFirmwareCycles * count);
    blocksRead_ += count;

    if (backend_ == DiskBackend::NfsBacked) {
        nfs_->read(kBackingFile, lba * disk_.blockBytes,
                   static_cast<std::uint32_t>(count * disk_.blockBytes),
                   [this, count, done = std::move(done)](Result<Bytes> r) {
                       if (!r) {
                           done(r.error());
                           return;
                       }
                       // Short reads (sparse tail) zero-fill to size.
                       Bytes data = std::move(r).value();
                       data.resize(count * disk_.blockBytes, 0);
                       done(std::move(data));
                   });
        return;
    }

    // Local media: latency then completion.
    Bytes data;
    data.reserve(count * disk_.blockBytes);
    for (std::uint64_t b = lba; b < lba + count; ++b) {
        auto it = media_.find(b);
        if (it == media_.end())
            data.insert(data.end(), disk_.blockBytes, 0);
        else
            data.insert(data.end(), it->second.begin(), it->second.end());
    }
    exec_.schedule(disk_.localAccessLatency,
                  [data = std::move(data), done = std::move(done)]() mutable {
                      done(std::move(data));
                  });
}

void
SmartDisk::writeBlocks(std::uint64_t lba, const Bytes &data,
                       WriteCallback done)
{
    if (data.empty() || data.size() % disk_.blockBytes != 0) {
        done(Status(ErrorCode::InvalidArgument,
                    "write must be a whole number of blocks"));
        return;
    }
    const std::uint64_t count = data.size() / disk_.blockBytes;
    Status valid = validate(lba, count);
    if (!valid) {
        done(valid);
        return;
    }

    runFirmware(disk_.perBlockFirmwareCycles * count);
    blocksWritten_ += count;

    if (backend_ == DiskBackend::NfsBacked) {
        nfs_->write(kBackingFile, lba * disk_.blockBytes, data,
                    [done = std::move(done)](Status s) { done(s); });
        return;
    }

    for (std::uint64_t i = 0; i < count; ++i) {
        Bytes &block = media_[lba + i];
        block.assign(data.begin() +
                         static_cast<std::ptrdiff_t>(i * disk_.blockBytes),
                     data.begin() + static_cast<std::ptrdiff_t>(
                                        (i + 1) * disk_.blockBytes));
    }
    exec_.schedule(disk_.localAccessLatency,
                  [done = std::move(done)]() { done(Status::success()); });
}

} // namespace hydra::dev
