/**
 * @file
 * Base model for programmable peripheral devices.
 *
 * Every device owns a firmware processor (low-clocked, XScale-class),
 * a bounded local memory, a bus-mastering DMA engine on the host I/O
 * bus, and a precise hardware timer. The timer is the mechanism
 * behind the paper's "timeliness guarantees" argument: peripheral
 * firmware schedules in microseconds while the host OS quantizes to
 * scheduler ticks.
 */

#ifndef HYDRA_DEV_DEVICE_HH
#define HYDRA_DEV_DEVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "hw/bus.hh"
#include "hw/cpu.hh"
#include "exec/executor.hh"

namespace hydra::dev {

/**
 * Attributes describing what kind of device this is, matched against
 * the <device-class> section of an ODF (paper Fig. 4). Empty optional
 * fields match anything.
 */
struct DeviceClassSpec
{
    std::uint32_t id = 0;
    std::string name;
    std::string bus;    // optional, e.g. "pci"
    std::string mac;    // optional, e.g. "ethernet"
    std::string vendor; // optional, e.g. "3COM"

    /** True when @p other (an ODF requirement) is satisfied by this. */
    bool satisfies(const DeviceClassSpec &required) const;
};

/** Construction parameters common to all devices. */
struct DeviceConfig
{
    std::string name = "dev";
    double firmwareGhz = 0.6; // XScale-class
    std::size_t localMemoryBytes = 8 * 1024 * 1024;
    sim::SimTime dmaDescriptorCost = sim::nanoseconds(500);
    /** Firmware scheduling noise sigma (bus/DMA contention). */
    sim::SimTime timerNoiseSigma = sim::microseconds(60);
    std::uint64_t noiseSeed = 99;
};

/** A programmable peripheral attached to a host bus. */
class Device
{
  public:
    Device(exec::Executor &executor, hw::Bus &host_bus,
           DeviceConfig config, DeviceClassSpec klass);
    virtual ~Device();

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    const std::string &name() const { return config_.name; }
    const DeviceClassSpec &deviceClass() const { return class_; }
    const DeviceConfig &config() const { return config_; }

    /**
     * Name of the host machine this device is plugged into, derived
     * from the host bus ("server.bus" -> "server"). Labels the
     * device's telemetry series with host= in fleet runs.
     */
    std::string hostName() const
    {
        const std::string &bus = hostBus_.name();
        const auto dot = bus.rfind(".bus");
        return dot == std::string::npos ? bus : bus.substr(0, dot);
    }

    hw::Cpu &firmwareCpu() { return *firmwareCpu_; }
    hw::DmaEngine &dma() { return *dma_; }
    exec::Executor &executor() { return exec_; }

    /**
     * This device's execution site. The threaded engine backs it with
     * a dedicated worker thread (the paper's fountain of CPUs made
     * literal); the sim engine only records the name. Firmware-side
     * work can be handed here with executor().post(execSite(), fn).
     */
    exec::SiteId execSite() const { return site_; }

    /** Device capability tags, e.g. "mpeg-decode", "block-store". */
    const std::set<std::string> &capabilities() const { return caps_; }
    bool hasCapability(const std::string &cap) const;
    void addCapability(std::string cap);

    /** Bounded device-local memory (firmware heap + Offcode images). */
    Result<std::uint64_t> allocateLocal(std::size_t bytes);
    void freeLocal(std::size_t bytes);
    std::size_t localMemoryFree() const;
    std::size_t localMemoryUsed() const { return localUsed_; }

    /**
     * Hardware timer: fires @p done after @p delay plus a small
     * half-normal contention delay (microsecond-class, vs. the host's
     * millisecond tick quantization).
     */
    void timerAfter(sim::SimTime delay, std::function<void()> done);

    /** Charge firmware cycles; returns completion time. */
    sim::SimTime runFirmware(std::uint64_t cycles);

    /**
     * Hard device reset: firmware state is lost for @p downtime of
     * virtual time, then the device comes back. Listeners (the
     * Runtime) observe Begin synchronously — snapshot Offcode state,
     * quiesce channels — and Complete after the downtime — redeploy,
     * re-bind, replay. Subclasses keep their *hardware* identity
     * (bus address, DMA engine, exec site) across a reset, exactly
     * like a real NIC whose PCI function survives a function-level
     * reset; only firmware-visible state (port bindings, Offcodes)
     * is torn down, via onResetBegin()/onResetComplete().
     */
    void reset(sim::SimTime downtime);
    /** True while the firmware is down (between Begin and Complete). */
    bool resetting() const { return resetting_; }
    /** Resets completed so far. */
    std::uint64_t resets() const { return resets_; }

    enum class ResetPhase { Begin, Complete };
    using ResetListener = std::function<void(Device &, ResetPhase)>;
    /** Register for reset notifications (fires in registration order). */
    void addResetListener(ResetListener listener);

  protected:
    /** Subclass hook: firmware went down (drop volatile state). */
    virtual void onResetBegin() {}
    /** Subclass hook: firmware is back (replay deferred work). */
    virtual void onResetComplete() {}

  protected:
    exec::Executor &exec_;
    hw::Bus &hostBus_;

  private:
    DeviceConfig config_;
    DeviceClassSpec class_;
    std::unique_ptr<hw::Cpu> firmwareCpu_;
    std::unique_ptr<hw::DmaEngine> dma_;
    std::set<std::string> caps_;
    std::size_t localUsed_ = 0;
    exec::SiteId site_ = exec::kMainSite;
    hydra::Rng rng_;
    bool resetting_ = false;
    std::uint64_t resets_ = 0;
    std::vector<ResetListener> resetListeners_;
};

} // namespace hydra::dev

#endif // HYDRA_DEV_DEVICE_HH
