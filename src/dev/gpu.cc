#include "dev/gpu.hh"

namespace hydra::dev {

DeviceConfig
Gpu::gpuDefaultConfig()
{
    DeviceConfig config;
    config.name = "gpu";
    config.firmwareGhz = 0.5;
    config.localMemoryBytes = 64 * 1024 * 1024;
    return config;
}

DeviceClassSpec
Gpu::gpuClassSpec()
{
    DeviceClassSpec spec;
    spec.id = 0x0003;
    spec.name = "Graphics Adapter";
    spec.bus = "pci";
    return spec;
}

Gpu::Gpu(exec::Executor &executor, hw::Bus &host_bus, DeviceConfig config,
         GpuConfig gpu)
    : Device(executor, host_bus, std::move(config), gpuClassSpec()),
      gpu_(gpu)
{
    addCapability("framebuffer");
    addCapability("mpeg-decode");
    addCapability("programmable");
}

sim::SimTime
Gpu::acceleratedDecode(std::size_t output_bytes)
{
    const double cycles = gpu_.softwareDecodeCyclesPerByte *
                          static_cast<double>(output_bytes) /
                          gpu_.decodeAccelFactor;
    return runFirmware(static_cast<std::uint64_t>(cycles) + 1);
}

void
Gpu::presentFrame(const Bytes &frame)
{
    ++framesPresented_;
    lastFrame_ = frame;
    presentTimes_.push_back(exec_.now());
}

} // namespace hydra::dev
