#include "dev/nic.hh"

#include "chaos/chaos.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace hydra::dev {

DeviceConfig
ProgrammableNic::nicDefaultConfig()
{
    DeviceConfig config;
    config.name = "nic";
    config.firmwareGhz = 0.6;
    config.localMemoryBytes = 16 * 1024 * 1024;
    return config;
}

DeviceClassSpec
ProgrammableNic::nicClassSpec()
{
    DeviceClassSpec spec;
    spec.id = 0x0001;
    spec.name = "Network Device";
    spec.bus = "pci";
    spec.mac = "ethernet";
    spec.vendor = "3COM";
    return spec;
}

ProgrammableNic::ProgrammableNic(exec::Executor &executor,
                                 hw::Bus &host_bus, net::Network &network,
                                 net::NodeId node, DeviceConfig config,
                                 NicCosts costs)
    : Device(executor, host_bus, std::move(config), nicClassSpec()),
      net_(network), node_(node), costs_(costs)
{
    addCapability("mac-ethernet");
    addCapability("dma");
    addCapability("programmable");
}

ProgrammableNic::~ProgrammableNic()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (net::Port port : netBound_)
        net_.unbind(node_, port);
}

Status
ProgrammableNic::bindPort(net::Port port, PortBinding binding)
{
    bool needWireBind = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (bindings_.count(port))
            return Status(ErrorCode::AlreadyExists, "port already bound");
        needWireBind = netBound_.count(port) == 0;
    }
    if (needWireBind) {
        Status bound =
            net_.bind(node_, port, [this](const net::Packet &p) {
                onReceive(p);
            });
        if (!bound)
            return bound;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    netBound_.insert(port);
    // A fresh bind supersedes any unbind deferred across a reset: the
    // restarted owner took the port back.
    deferredUnbind_.erase(port);
    bindings_[port] = std::move(binding);
    return Status::success();
}

Status
ProgrammableNic::bindHostPort(net::Port port, hw::OsKernel &os,
                              hw::Addr host_buffer,
                              net::PacketHandler handler)
{
    PortBinding binding;
    binding.hostPath = true;
    binding.os = &os;
    binding.hostBuffer = host_buffer;
    binding.handler = std::move(handler);
    return bindPort(port, std::move(binding));
}

Status
ProgrammableNic::bindDevicePort(net::Port port, net::PacketHandler handler)
{
    PortBinding binding;
    binding.hostPath = false;
    binding.handler = std::move(handler);
    return bindPort(port, std::move(binding));
}

void
ProgrammableNic::unbindPort(net::Port port)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bindings_.erase(port);
        if (resetting()) {
            // The caller is an Offcode dying with the firmware. Keep
            // the wire-level bind alive so in-flight packets queue in
            // pendingRx_ instead of vanishing as "no listener" drops;
            // the unbind is released on Complete unless a restarted
            // Offcode reclaims the port first.
            deferredUnbind_.insert(port);
            return;
        }
        netBound_.erase(port);
    }
    net_.unbind(node_, port);
}

std::size_t
ProgrammableNic::pendingRx() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pendingRx_.size();
}

void
ProgrammableNic::onResetBegin()
{
    // Wire-level binds survive (the link stays up); firmware-side
    // port state is torn down by the dying Offcodes' stop() paths,
    // whose unbinds are deferred above.
}

void
ProgrammableNic::onResetComplete()
{
    // Release unbinds for ports nobody reclaimed, then replay the rx
    // backlog in arrival order through the normal receive path.
    std::vector<net::Port> release;
    std::deque<net::Packet> replay;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (net::Port port : deferredUnbind_) {
            if (bindings_.count(port))
                continue;
            netBound_.erase(port);
            release.push_back(port);
        }
        deferredUnbind_.clear();
        replay.swap(pendingRx_);
    }
    for (net::Port port : release)
        net_.unbind(node_, port);
    if (!replay.empty()) {
        LOG_INFO << name() << ": replaying " << replay.size()
                 << " packets queued during reset";
        obs::counter("nic.reset_rx_replayed", {{"device", name()}})
            .add(replay.size());
        chaos::ChaosEngine::recordRecovery("rx_replay");
    }
    for (net::Packet &packet : replay)
        onReceive(packet);
}

void
ProgrammableNic::onReceive(const net::Packet &packet)
{
    // Copy the binding out so the handler runs without the port lock
    // (handlers may bind/unbind ports or send).
    PortBinding binding;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (resetting()) {
            // Firmware is down: hold the packet. The queue is bounded
            // the way a real rx ring is; past that, packets drop and
            // the loss is visible in a counter.
            if (pendingRx_.size() < kPendingRxMax) {
                pendingRx_.push_back(packet);
            } else {
                obs::counter("nic.reset_rx_dropped",
                             {{"device", name()}})
                    .increment();
            }
            return;
        }
        auto it = bindings_.find(packet.dstPort);
        if (it == bindings_.end())
            return;
        binding = it->second;
    }

    // Firmware classification runs on the NIC core either way.
    runFirmware(costs_.rxFirmwareCycles);

    if (!binding.hostPath) {
        ++toDevice_;
        binding.handler(packet);
        return;
    }

    // Host path: DMA payload to host memory, then interrupt.
    ++toHost_;
    const std::size_t bytes = packet.payload.size();
    hw::OsKernel *os = binding.os;
    const hw::Addr buffer = binding.hostBuffer;
    auto handler = binding.handler;
    dma().start(bytes, [this, os, buffer, bytes, handler,
                        pkt = packet]() mutable {
        // DMA completion runs from the scheduler; restore the
        // packet's causal context for the host-side handler.
        obs::ContextScope scope(pkt.traceCtx);
        os->dmaDelivered(buffer, bytes);
        os->handleInterrupt();
        handler(pkt);
    });
}

Status
ProgrammableNic::sendFromDevice(net::Packet packet)
{
    runFirmware(costs_.txFirmwareCycles);
    packet.src = node_;
    ++sent_;
    return net_.send(std::move(packet));
}

Status
ProgrammableNic::sendFromHost(net::Packet packet, hw::Addr host_buffer)
{
    (void)host_buffer; // the cache/copy interaction is the caller's
    packet.src = node_;
    const std::uint64_t bytes = packet.payload.size();
    ++sent_;

    // One bus crossing host -> device, then firmware tx processing,
    // then the wire. Carry the sender's causal context across the
    // asynchronous DMA hop.
    const obs::SpanContext ctx = obs::activeContext();
    dma().start(bytes, [this, ctx, pkt = std::move(packet)]() mutable {
        obs::ContextScope scope(ctx);
        runFirmware(costs_.txFirmwareCycles);
        Status sent = net_.send(std::move(pkt));
        if (!sent) {
            LOG_DEBUG << "nic tx failed: " << sent.error().describe();
        }
    });
    return Status::success();
}

Status
ProgrammableNic::sendFromHostBatch(std::vector<net::Packet> packets,
                                   hw::Addr host_buffer)
{
    (void)host_buffer; // the cache/copy interaction is the caller's
    if (packets.empty())
        return Status::success();
    for (net::Packet &packet : packets)
        packet.src = node_;
    sent_ += packets.size();

    // One bus crossing covers the whole descriptor chain; per-packet
    // firmware tx cost is unchanged — batching amortizes the
    // doorbell and completion, not the packet processing.
    const std::size_t bytes =
        net::payloadBytes({packets.data(), packets.size()});
    const obs::SpanContext ctx = obs::activeContext();
    dma().start(bytes, [this, ctx,
                        batch = std::move(packets)]() mutable {
        obs::ContextScope scope(ctx);
        runFirmware(costs_.txFirmwareCycles * batch.size());
        for (net::Packet &pkt : batch) {
            Status sent = net_.send(std::move(pkt));
            if (!sent) {
                LOG_DEBUG << "nic tx failed: "
                          << sent.error().describe();
            }
        }
    });
    return Status::success();
}

} // namespace hydra::dev
