/**
 * @file
 * Programmable network interface card (the paper's 3Com 3C985B).
 *
 * Two receive paths exist per port:
 *  - the host path: firmware classifies the packet, DMAs the payload
 *    into a host buffer (one bus crossing, cache lines invalidated),
 *    raises an interrupt, and the host handler runs; and
 *  - the device path: a device-resident handler (an Offcode deployed
 *    onto the NIC) consumes the packet entirely in firmware — no bus
 *    crossing and no host involvement, the crux of the paper.
 */

#ifndef HYDRA_DEV_NIC_HH
#define HYDRA_DEV_NIC_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "dev/device.hh"
#include "hw/os.hh"
#include "net/network.hh"

namespace hydra::dev {

/** NIC-specific cost constants. */
struct NicCosts
{
    /** Firmware cycles to classify/process one packet. */
    std::uint64_t rxFirmwareCycles = 1200;
    std::uint64_t txFirmwareCycles = 1000;
};

/** Programmable NIC attached to a host bus and a network node. */
class ProgrammableNic : public Device
{
  public:
    ProgrammableNic(exec::Executor &executor, hw::Bus &host_bus,
                    net::Network &network, net::NodeId node,
                    DeviceConfig config = nicDefaultConfig(),
                    NicCosts costs = {});
    ~ProgrammableNic() override;

    static DeviceConfig nicDefaultConfig();
    static DeviceClassSpec nicClassSpec();

    net::NodeId nodeId() const { return node_; }
    net::Network &network() { return net_; }

    /**
     * Host receive path: packets to @p port are DMA'd into
     * @p host_buffer (allocated from the host OS address space) and
     * @p handler runs after the host interrupt. Requires a host OS.
     */
    Status bindHostPort(net::Port port, hw::OsKernel &os,
                        hw::Addr host_buffer, net::PacketHandler handler);

    /** Device receive path: @p handler runs on NIC firmware. */
    Status bindDevicePort(net::Port port, net::PacketHandler handler);

    void unbindPort(net::Port port);

    /** Transmit a packet assembled in device memory (no crossing). */
    Status sendFromDevice(net::Packet packet);

    /**
     * Transmit a packet whose payload lives in host memory: one DMA
     * crossing device-ward, then the wire. @p host_buffer is the
     * payload's host address (cache interaction handled by caller).
     */
    Status sendFromHost(net::Packet packet, hw::Addr host_buffer);

    /**
     * Transmit a batch of host-resident packets over ONE DMA
     * descriptor chain: the bus is programmed once for the summed
     * payload bytes (one doorbell, one completion) and firmware then
     * processes and transmits each packet individually, in order.
     * Equivalent to sendFromHost() per packet except for the
     * amortized crossing. @p host_buffer as in sendFromHost().
     */
    Status sendFromHostBatch(std::vector<net::Packet> packets,
                             hw::Addr host_buffer);

    std::uint64_t packetsToHost() const { return toHost_; }
    std::uint64_t packetsToDevice() const { return toDevice_; }
    std::uint64_t packetsSent() const { return sent_; }
    /** Packets held in the rx queue while the firmware is down. */
    std::size_t pendingRx() const;

  protected:
    /**
     * Reset semantics: the PHY/MAC stays up (the wire-level bind with
     * the fabric survives, as a real NIC's link does across a
     * function-level reset), but firmware-owned port state is in
     * flux. Packets arriving while down are held in a bounded rx
     * queue; unbinds requested by dying Offcodes are deferred so a
     * restarted Offcode re-binding the same port hands the stream
     * over without the fabric ever seeing an unbound port.
     */
    void onResetBegin() override;
    void onResetComplete() override;

  private:
    struct PortBinding
    {
        bool hostPath = false;
        hw::OsKernel *os = nullptr;
        hw::Addr hostBuffer = 0;
        net::PacketHandler handler;
    };

    void onReceive(const net::Packet &packet);

    net::Network &net_;
    net::NodeId node_;
    NicCosts costs_;
    /**
     * Port table lock: a fleet binds one port per remote channel
     * endpoint while the threaded executor is delivering to others, so
     * bind/unbind/receive-lookup must serialize. onReceive copies the
     * binding out and runs the handler unlocked.
     */
    Status bindPort(net::Port port, PortBinding binding);

    static constexpr std::size_t kPendingRxMax = 16384;

    mutable std::mutex mutex_;
    std::map<net::Port, PortBinding> bindings_;
    /** Ports with a live wire-level bind on the fabric node. */
    std::set<net::Port> netBound_;
    /** Unbinds deferred while resetting (released on Complete). */
    std::set<net::Port> deferredUnbind_;
    /** Packets that arrived while the firmware was down. */
    std::deque<net::Packet> pendingRx_;
    std::atomic<std::uint64_t> toHost_{0};
    std::atomic<std::uint64_t> toDevice_{0};
    std::atomic<std::uint64_t> sent_{0};
};

} // namespace hydra::dev

#endif // HYDRA_DEV_NIC_HH
