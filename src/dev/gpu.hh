/**
 * @file
 * Graphics adapter model: framebuffer plus an accelerated decode
 * path ("the GPU may have specialized MPEG support on board").
 */

#ifndef HYDRA_DEV_GPU_HH
#define HYDRA_DEV_GPU_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"
#include "dev/device.hh"

namespace hydra::dev {

/** GPU-specific parameters. */
struct GpuConfig
{
    std::size_t framebufferBytes = 8 * 1024 * 1024;
    /**
     * Decode speedup relative to the host software path: the
     * hardware decode unit retires this many times more work per
     * cycle than a general-purpose core.
     */
    double decodeAccelFactor = 12.0;
    /** Cycles per decoded output byte on the host software path. */
    double softwareDecodeCyclesPerByte = 6.0;
};

/** Programmable graphics adapter. */
class Gpu : public Device
{
  public:
    Gpu(exec::Executor &executor, hw::Bus &host_bus,
        DeviceConfig config = gpuDefaultConfig(), GpuConfig gpu = {});

    static DeviceConfig gpuDefaultConfig();
    static DeviceClassSpec gpuClassSpec();

    const GpuConfig &gpuConfig() const { return gpu_; }

    /**
     * Decode on the on-board unit: charges accelerated firmware
     * cycles for @p output_bytes of decoded data.
     */
    sim::SimTime acceleratedDecode(std::size_t output_bytes);

    /** Write a decoded frame into the framebuffer (display). */
    void presentFrame(const Bytes &frame);

    std::uint64_t framesPresented() const { return framesPresented_; }
    const Bytes &lastFrame() const { return lastFrame_; }
    const std::vector<sim::SimTime> &presentTimes() const
    {
        return presentTimes_;
    }

  private:
    GpuConfig gpu_;
    std::uint64_t framesPresented_ = 0;
    Bytes lastFrame_;
    std::vector<sim::SimTime> presentTimes_;
};

} // namespace hydra::dev

#endif // HYDRA_DEV_GPU_HH
