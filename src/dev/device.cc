#include "dev/device.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"

namespace hydra::dev {

bool
DeviceClassSpec::satisfies(const DeviceClassSpec &required) const
{
    if (required.id != 0 && required.id != id)
        return false;
    if (!required.name.empty() && required.name != name)
        return false;
    if (!required.bus.empty() && required.bus != bus)
        return false;
    if (!required.mac.empty() && required.mac != mac)
        return false;
    if (!required.vendor.empty() && required.vendor != vendor)
        return false;
    return true;
}

Device::Device(exec::Executor &executor, hw::Bus &host_bus,
               DeviceConfig config, DeviceClassSpec klass)
    : exec_(executor), hostBus_(host_bus), config_(std::move(config)),
      class_(std::move(klass)), rng_(config_.noiseSeed)
{
    firmwareCpu_ = std::make_unique<hw::Cpu>(exec_, config_.name + ".fw",
                                             config_.firmwareGhz);
    dma_ = std::make_unique<hw::DmaEngine>(
        exec_, hostBus_, config_.dmaDescriptorCost, config_.name);
    site_ = exec_.addSite(config_.name, hostName());
    // The device site is its firmware core: CPU attribution reads the
    // same busy clock runFirmware charges.
    obs::CpuAttribution::instance().registerSite(
        config_.name,
        [cpu = firmwareCpu_.get()](std::uint64_t now) {
            return cpu->busyBefore(now);
        },
        /*isDevice=*/true, exec_.now(), /*host=*/hostName());
}

Device::~Device()
{
    obs::CpuAttribution::instance().unregisterSite(config_.name);
}

bool
Device::hasCapability(const std::string &cap) const
{
    return caps_.count(cap) != 0;
}

void
Device::addCapability(std::string cap)
{
    caps_.insert(std::move(cap));
}

Result<std::uint64_t>
Device::allocateLocal(std::size_t bytes)
{
    if (localUsed_ + bytes > config_.localMemoryBytes)
        return Error(ErrorCode::OutOfMemory,
                     name() + ": device memory exhausted");
    const std::uint64_t base = 0x8000'0000ull + localUsed_;
    localUsed_ += bytes;
    return base;
}

void
Device::freeLocal(std::size_t bytes)
{
    localUsed_ = bytes > localUsed_ ? 0 : localUsed_ - bytes;
}

std::size_t
Device::localMemoryFree() const
{
    return config_.localMemoryBytes - localUsed_;
}

void
Device::timerAfter(sim::SimTime delay, std::function<void()> done)
{
    const double noise = std::abs(
        rng_.normal(0.0, static_cast<double>(config_.timerNoiseSigma)));
    exec_.schedule(delay + static_cast<sim::SimTime>(noise),
                  std::move(done));
}

sim::SimTime
Device::runFirmware(std::uint64_t cycles)
{
    return firmwareCpu_->runCycles(cycles);
}

void
Device::addResetListener(ResetListener listener)
{
    resetListeners_.push_back(std::move(listener));
}

void
Device::reset(sim::SimTime downtime)
{
    if (resetting_)
        return; // already down; a second reset folds into the first
    resetting_ = true;
    obs::counter("dev.resets", {{"device", name()}}).increment();
    LOG_INFO << name() << ": device reset, firmware down for "
             << downtime << " ns";

    // Begin runs synchronously: listeners snapshot Offcode state and
    // quiesce channels *before* any more virtual time passes, then the
    // subclass drops its firmware-visible state.
    for (ResetListener &listener : resetListeners_)
        listener(*this, ResetPhase::Begin);
    onResetBegin();

    exec_.schedule(downtime, [this]() {
        resetting_ = false;
        ++resets_;
        // Complete order matters: listeners first (the Runtime
        // redeploys Offcodes, whose start() re-binds ports), then the
        // subclass (the NIC replays packets it queued while down into
        // those fresh bindings).
        for (ResetListener &listener : resetListeners_)
            listener(*this, ResetPhase::Complete);
        onResetComplete();
        LOG_INFO << name() << ": device back up (reset #" << resets_
                 << ")";
    });
}

} // namespace hydra::dev
