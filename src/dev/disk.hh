/**
 * @file
 * "Smart Disk": a programmable storage controller.
 *
 * The paper prototypes its smart disk by running an NFS Offcode on a
 * programmable NIC that exports a block device backed by a remote
 * NAS. SmartDisk models both that arrangement (NfsBacked mode, where
 * every block lands on a remote NfsServer) and a plain local
 * controller (Local mode, in-memory media with seek/transfer
 * latency).
 */

#ifndef HYDRA_DEV_DISK_HH
#define HYDRA_DEV_DISK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dev/device.hh"
#include "net/nfs.hh"

namespace hydra::dev {

/** Storage backend selection. */
enum class DiskBackend { Local, NfsBacked };

/** Disk-specific parameters. */
struct DiskConfig
{
    std::size_t blockBytes = 4096;
    std::size_t capacityBlocks = 64 * 1024; // 256 MB
    /** Local-media access latency (seek + rotational, averaged). */
    sim::SimTime localAccessLatency = sim::microseconds(400);
    /** Firmware cycles per block command. */
    std::uint64_t perBlockFirmwareCycles = 2000;
};

/** Programmable disk controller. */
class SmartDisk : public Device
{
  public:
    using ReadCallback = std::function<void(Result<Bytes>)>;
    using WriteCallback = std::function<void(Status)>;

    /** Local-media controller. */
    SmartDisk(exec::Executor &executor, hw::Bus &host_bus,
              DeviceConfig config = diskDefaultConfig(),
              DiskConfig disk = {});

    /** NAS-backed controller (the paper's prototype arrangement). */
    SmartDisk(exec::Executor &executor, hw::Bus &host_bus,
              net::Network &network, net::NodeId node, net::NodeId nas,
              DeviceConfig config = diskDefaultConfig(),
              DiskConfig disk = {});

    static DeviceConfig diskDefaultConfig();
    static DeviceClassSpec diskClassSpec();

    const DiskConfig &diskConfig() const { return disk_; }
    DiskBackend backend() const { return backend_; }

    /** Read @p count blocks starting at @p lba. */
    void readBlocks(std::uint64_t lba, std::uint32_t count,
                    ReadCallback done);

    /** Write @p data (block-aligned length) starting at @p lba. */
    void writeBlocks(std::uint64_t lba, const Bytes &data,
                     WriteCallback done);

    std::uint64_t blocksRead() const { return blocksRead_; }
    std::uint64_t blocksWritten() const { return blocksWritten_; }

  private:
    Status validate(std::uint64_t lba, std::uint64_t blocks) const;

    DiskConfig disk_;
    DiskBackend backend_;
    /** Local-mode media, allocated lazily per block. */
    std::unordered_map<std::uint64_t, Bytes> media_;
    std::unique_ptr<net::NfsClient> nfs_;
    std::uint64_t blocksRead_ = 0;
    std::uint64_t blocksWritten_ = 0;
};

} // namespace hydra::dev

#endif // HYDRA_DEV_DISK_HH
