/**
 * @file
 * Memory Management module (paper Section 4): "exports memory
 * services such as user memory pinning that is used by zero-copy
 * channels."
 *
 * Pinned regions are accounted against a configurable limit; the
 * PinnedRegion RAII handle unpins on destruction.
 */

#ifndef HYDRA_CORE_MEMORY_HH
#define HYDRA_CORE_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/result.hh"
#include "hw/os.hh"

namespace hydra::core {

class MemoryManager;

/** RAII handle to a pinned user-memory region. */
class PinnedRegion
{
  public:
    PinnedRegion() = default;
    PinnedRegion(MemoryManager *manager, std::uint64_t token,
                 hw::Addr base, std::size_t bytes);
    ~PinnedRegion();

    PinnedRegion(PinnedRegion &&other) noexcept;
    PinnedRegion &operator=(PinnedRegion &&other) noexcept;
    PinnedRegion(const PinnedRegion &) = delete;
    PinnedRegion &operator=(const PinnedRegion &) = delete;

    bool valid() const { return manager_ != nullptr; }
    hw::Addr base() const { return base_; }
    std::size_t bytes() const { return bytes_; }

    /** Explicit early unpin. */
    void reset();

  private:
    MemoryManager *manager_ = nullptr;
    std::uint64_t token_ = 0;
    hw::Addr base_ = 0;
    std::size_t bytes_ = 0;
};

/** Pinning service with accounting. */
class MemoryManager
{
  public:
    MemoryManager(hw::OsKernel &os, std::size_t pin_limit_bytes);

    /** Allocate a modeled user buffer (delegates to the OS). */
    hw::Addr allocBuffer(std::size_t bytes);

    /** Pin [base, base+bytes) for device DMA access. */
    Result<PinnedRegion> pin(hw::Addr base, std::size_t bytes);

    std::size_t pinnedBytes() const { return pinnedBytes_; }
    std::size_t pinLimit() const { return pinLimit_; }
    std::size_t activePins() const { return pins_.size(); }

  private:
    friend class PinnedRegion;
    void unpin(std::uint64_t token);

    hw::OsKernel &os_;
    std::size_t pinLimit_;
    std::size_t pinnedBytes_ = 0;
    std::uint64_t nextToken_ = 1;
    std::unordered_map<std::uint64_t, std::size_t> pins_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_MEMORY_HH
