/**
 * @file
 * The Channel Executive (paper Section 4): owns channel providers,
 * selects the best provider for a requested channel using their
 * advertised cost metrics, and owns the resulting channels.
 */

#ifndef HYDRA_CORE_EXECUTIVE_HH
#define HYDRA_CORE_EXECUTIVE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/providers.hh"

namespace hydra::core {

/** Creates channels through the cheapest capable provider. */
class ChannelExecutive
{
  public:
    /** @param site_lookup Resolves a targetDevice name to a site. */
    explicit ChannelExecutive(
        std::function<ExecutionSite *(const std::string &)> site_lookup);

    void registerProvider(std::unique_ptr<ChannelProvider> provider);

    /**
     * Create a channel with its creator endpoint at @p creator.
     * Provider selection uses config.targetDevice (may be empty for
     * channels attached later) and a typical message size hint.
     */
    Result<Channel *> createChannel(const ChannelConfig &config,
                                    ExecutionSite &creator,
                                    std::size_t typical_bytes = 1024);

    /** Destroy a channel created by this executive. */
    Status destroyChannel(Channel *channel);

    std::vector<std::string> providerNames() const;
    std::size_t activeChannels() const { return channels_.size(); }

  private:
    std::function<ExecutionSite *(const std::string &)> siteLookup_;
    std::vector<std::unique_ptr<ChannelProvider>> providers_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_EXECUTIVE_HH
