/**
 * @file
 * The Channel Executive (paper Section 4): owns channel providers,
 * selects the best provider for a requested channel using their
 * advertised cost metrics, and owns the resulting channels.
 *
 * Fleet model (DESIGN.md §14): one executive instance is one *shard*
 * — every host runs its own, owning exactly the channels created on
 * that host. Shards are independently locked, so channel churn on one
 * host never contends with another host's, and the registry is
 * indexed by ChannelId, so destroyChannel is O(1) instead of a raw-
 * pointer scan of every live channel. Cross-host targets resolve
 * through an optional secondary site lookup (installed by
 * fleet::Fleet) and are served by a provider that frames messages
 * over NIC/network packets.
 */

#ifndef HYDRA_CORE_EXECUTIVE_HH
#define HYDRA_CORE_EXECUTIVE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/providers.hh"

namespace hydra::core {

/** Creates channels through the cheapest capable provider. */
class ChannelExecutive
{
  public:
    /**
     * @param site_lookup Resolves a targetDevice name to a site.
     * @param shard Host this shard serves (metric label; "host" for
     * standalone runtimes).
     */
    explicit ChannelExecutive(
        std::function<ExecutionSite *(const std::string &)> site_lookup,
        std::string shard = "host");

    void registerProvider(std::unique_ptr<ChannelProvider> provider);

    /**
     * Secondary site lookup consulted when the local one misses —
     * the fleet installs cross-host resolution here ("hostN" or any
     * other host's device name). Set during fleet bring-up, before
     * channels are created.
     */
    void setRemoteSiteLookup(
        std::function<ExecutionSite *(const std::string &)> lookup);

    /**
     * Create a channel with its creator endpoint at @p creator.
     * Provider selection uses config.targetDevice (may be empty for
     * channels attached later) and a typical message size hint.
     * Thread-safe: shards accept concurrent creates (the fleet's
     * per-host drivers churn streams in parallel).
     */
    Result<Channel *> createChannel(const ChannelConfig &config,
                                    ExecutionSite &creator,
                                    std::size_t typical_bytes = 1024);

    /** Destroy a channel created by this shard. O(1): the registry
     * is keyed by the channel's id, not scanned by pointer. */
    Status destroyChannel(Channel *channel);

    /** Destroy by id (what a routing table stores). */
    Status destroyChannelById(ChannelId id);

    /** Look up an owned channel by id; nullptr when not this shard's. */
    Channel *findChannel(ChannelId id) const;

    /**
     * Restart support (firmware OS hardening). detachOffcode
     * quiesces every channel endpoint attached to @p offcode (inbound
     * messages queue); rebindOffcode hands them to a successor
     * instance and replays the queued backlog; queuedFor reports the
     * backlog held for a (possibly wedged) Offcode across all owned
     * channels. All three snapshot the channel set under the shard
     * lock and then operate unlocked — handler drains may re-enter
     * the executive (an Offcode's onChannelConnected may create
     * channels), and the shard mutex is not recursive.
     */
    std::size_t detachOffcode(const Offcode &offcode);
    std::size_t rebindOffcode(const Offcode &from, Offcode &to);
    std::size_t queuedFor(const Offcode &offcode) const;

    std::vector<std::string> providerNames() const;

    /**
     * Channels currently alive in this shard. Exact: failed creates
     * (no capable provider, or a provider whose creator endpoint
     * never connected) are not counted, and destroys decrement.
     */
    std::size_t activeChannels() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    const std::string &shardName() const { return shard_; }

  private:
    std::function<ExecutionSite *(const std::string &)> siteLookup_;
    std::function<ExecutionSite *(const std::string &)> remoteLookup_;
    std::vector<std::unique_ptr<ChannelProvider>> providers_;

    /** Guards channels_; providers are registered at bring-up only. */
    mutable std::mutex mutex_;
    std::unordered_map<ChannelId, std::unique_ptr<Channel>> channels_;
    std::atomic<std::size_t> active_{0};
    std::string shard_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_EXECUTIVE_HH
