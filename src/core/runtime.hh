/**
 * @file
 * The HYDRA runtime — the Offloading Access Layer (paper Section 4).
 *
 * One Runtime instance exists per host machine. It owns the Offcode
 * Depot, Channel Executive, Resource/Memory/Layout Management units,
 * per-device loaders, and the deployed Offcode instances. The
 * deployment pipeline implements the paper's Fig. 5 control flow:
 * process ODFs -> build offloading layout graph -> resolve device
 * mapping -> adapt/link -> offload -> two-phase initialization.
 *
 * Pseudo Offcodes "hydra.Runtime", "hydra.Heap" and
 * "hydra.ChannelExecutive" are pre-registered and deployed at the
 * host, exactly as in the paper.
 */

#ifndef HYDRA_CORE_RUNTIME_HH
#define HYDRA_CORE_RUNTIME_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/depot.hh"
#include "core/executive.hh"
#include "core/layout.hh"
#include "core/loader.hh"
#include "core/memory.hh"
#include "core/offcode.hh"
#include "core/proxy.hh"
#include "core/resource.hh"

namespace hydra::core {

/** Reference to a deployed Offcode. */
struct OffcodeHandle
{
    Offcode *offcode = nullptr;
    ExecutionSite *site = nullptr;

    bool valid() const { return offcode != nullptr; }
    std::string deviceAddr() const { return site ? site->name() : ""; }
};

/** Runtime configuration. */
struct RuntimeConfig
{
    ResolverConfig resolver;
    /** Bus supports single-transaction multicast (PCIe-style). */
    bool busMulticast = false;
    std::size_t pinLimitBytes = 64 * 1024 * 1024;
    LoaderCosts loaderCosts;

    /**
     * Per-bindname resource quotas, applied when the Offcode is
     * deployed. A memory quota smaller than the depot image fails the
     * deployment outright (`offcode.quota_rejections{resource=memory}`);
     * the CPU budget drives the budget-slice scheduler at dispatch.
     */
    std::map<std::string, OffcodeQuota> quotas;

    /**
     * Watchdog: an Offcode that is Started, has channel backlog
     * waiting, and has not handled a message for this long (simulated)
     * is killed and restarted with state handoff. 0 disables the
     * watchdog (the default — existing runs see no extra events).
     */
    sim::SimTime watchdogLimitNs = 0;
    /** Sweep period for the watchdog task. */
    sim::SimTime watchdogPeriodNs = sim::seconds(1);
};

/** Aggregate deployment statistics. */
struct RuntimeStats
{
    std::size_t offcodesDeployed = 0;
    std::size_t offloadedCount = 0;
    std::size_t hostPlacedCount = 0;
    std::size_t deploymentsCompleted = 0;
    std::size_t deploymentsFailed = 0;
};

/** One deployed Offcode's introspection record (paper: the OOB
 * channel is the runtime's window into a remote Offcode). */
struct OffcodeIntrospection
{
    std::string bindname;
    std::string site;
    bool isHost = true;
    std::string state;
    OffcodeTelemetry telemetry;
    /** Simulated ns since the Offcode last handled a message; the
     * watchdog signal. Age since boot when it never handled one. */
    sim::SimTime watchdogAgeNs = 0;
    /** Messages waiting unread on the OOB channel. */
    std::size_t oobQueued = 0;
    std::uint64_t oobDelivered = 0;
};

/** Point-in-time snapshot over every deployed Offcode. */
struct IntrospectionSnapshot
{
    std::string machine;
    sim::SimTime now = 0;
    std::vector<OffcodeIntrospection> offcodes;
};

/** The Offloading Access Layer. */
class Runtime
{
  public:
    using DeployCallback = std::function<void(Result<OffcodeHandle>)>;

    explicit Runtime(hw::Machine &machine, RuntimeConfig config = {});
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    // --- topology ---
    /** Register a programmable device as an offload target. */
    Status attachDevice(dev::Device &device,
                        double link_capacity_gbps = 8.0);

    hw::Machine &machine() { return machine_; }
    HostSite &hostSite() { return *hostSite_; }
    ExecutionSite *siteByName(const std::string &name);
    std::vector<SiteInfo> placementSites();

    // --- subsystems ---
    OffcodeDepot &depot() { return depot_; }
    ChannelExecutive &executive() { return *executive_; }
    ResourceManager &resources() { return resources_; }
    MemoryManager &memory() { return *memory_; }
    const RuntimeConfig &config() const { return config_; }
    const RuntimeStats &stats() const { return stats_; }

    // --- deployment (paper: CreateOffcode) ---
    /**
     * Deploy the Offcode named by @p odf_reference (a depot bindname
     * or an ODF file path) together with its transitive imports,
     * placing each per the resolved offloading layout. Asynchronous:
     * @p done fires with the root Offcode's handle after every
     * member Offcode is loaded, initialized and started.
     *
     * Offcodes already deployed are reused, as the paper's model
     * encourages ("a single Decoder could be used instead of
     * duplicating the component").
     */
    void createOffcode(const std::string &odf_reference,
                       DeployCallback done);

    using GroupDeployCallback =
        std::function<void(Result<std::vector<OffcodeHandle>>)>;

    /**
     * Deploy several applications' root Offcodes jointly: one union
     * layout graph, one ILP solve, shared Offcodes instantiated once
     * (paper Section 5's multi-application scenario). @p done
     * receives one handle per requested root, in order.
     */
    void createOffcodeGroup(const std::vector<std::string> &odf_references,
                            GroupDeployCallback done);

    /** Look up a deployed (or pseudo) Offcode by bindname. */
    Result<OffcodeHandle> getOffcode(const std::string &bindname);

    /** Tear down a deployed Offcode and its runtime resources. */
    Status destroyOffcode(const std::string &bindname);

    // --- firmware OS hardening (restart-with-state-handoff) ---
    /**
     * Kill and redeploy a deployed Offcode in place, carrying its
     * state across: snapshotState() on the old instance, channel
     * endpoints quiesced (inbound messages queue), old instance
     * stopped, a fresh instance built from the same depot entry,
     * initialized with the same context, restoreState()d, started,
     * and finally rebound to every channel — which replays the
     * backlog that queued during the outage, in order. Counted in
     * `offcode.restarts{offcode=}`. The watchdog and device reset
     * recovery both funnel through this path.
     */
    Status restartOffcode(const std::string &bindname);

    // --- invocation convenience ---
    /**
     * Invoke a method on a deployed Offcode through its OOB channel
     * (management path; create a dedicated channel for data paths).
     */
    Status invokeAsync(const std::string &bindname,
                       const std::string &method, const Bytes &arguments,
                       Proxy::ReturnCallback on_return);

    /** The OOB channel of a deployed Offcode (creator side). */
    Result<Channel *> oobChannelOf(const std::string &bindname);

    // --- introspection (hydra.Monitor answers from these) ---
    /** Snapshot per-Offcode stats, health and queue depths. */
    IntrospectionSnapshot introspect() const;

    /** introspect() rendered as a machine-readable JSON object. */
    std::string introspectJson() const;

  private:
    struct Deployed
    {
        std::unique_ptr<Offcode> instance;
        ExecutionSite *site = nullptr;
        const DepotEntry *entry = nullptr;
        Channel *oob = nullptr;
        std::unique_ptr<Proxy> controlProxy;
        ResourceId resource = kNoResource;
        /** State captured at outage begin, consumed at restart. */
        Bytes restartSnapshot;
        /** Between beginOffcodeOutage and completeOffcodeRestart. */
        bool outage = false;
        std::uint64_t restarts = 0;
    };

    void registerPseudoOffcodes();
    Result<Channel *> makeOobChannel(ExecutionSite &site);
    OffcodeLoader *loaderFor(ExecutionSite &site);

    /**
     * Phase one of a restart: snapshot the instance's state, quiesce
     * its channel endpoints (messages queue from here on), and stop
     * it. The device may be mid-reset — port unbinds issued by stop()
     * are deferred by the NIC until the reset completes.
     */
    void beginOffcodeOutage(const std::string &bindname, Deployed &dep);

    /**
     * Phase two: build the successor from the depot entry, hand it
     * the snapshot, and cut the channels over (draining the queued
     * backlog into it). On failure the Offcode stays down (outage
     * remains set) and the error is returned.
     */
    Status completeOffcodeRestart(const std::string &bindname,
                                  Deployed &dep);

    /** Restart every Started Offcode that is wedged (see config). */
    void watchdogSweep();
    void scheduleWatchdog();

    /** Shared deployment driver behind both createOffcode flavours. */
    void deployGraph(LayoutGraph graph,
                     std::vector<std::string> root_bindnames,
                     GroupDeployCallback done);

    /** Deploy one node; calls done when initialized (not started). */
    void deployNode(const DepotEntry &entry, ExecutionSite &site,
                    std::function<void(Status)> done);

    hw::Machine &machine_;
    RuntimeConfig config_;
    std::unique_ptr<HostSite> hostSite_;
    std::unique_ptr<HostLoader> hostLoader_;

    struct AttachedDevice
    {
        dev::Device *device = nullptr;
        std::unique_ptr<DeviceSite> site;
        std::unique_ptr<DeviceDmaLoader> loader;
        double linkCapacityGbps = 0.0;
    };
    std::vector<AttachedDevice> devices_;

    OffcodeDepot depot_;
    ResourceManager resources_;
    std::unique_ptr<MemoryManager> memory_;
    std::unique_ptr<ChannelExecutive> executive_;
    LayoutResolver resolver_;

    std::map<std::string, Deployed> deployed_;
    RuntimeStats stats_;
    /** Cleared by the destructor so in-flight watchdog events and
     * device reset listeners become no-ops instead of use-after-free
     * when the executor outlives the runtime. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

} // namespace hydra::core

#endif // HYDRA_CORE_RUNTIME_HH
