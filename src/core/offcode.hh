/**
 * @file
 * Offcodes (paper Section 3.1): components with state, well-defined
 * interfaces, and a thread of control, deployable to host CPUs or
 * programmable peripherals.
 *
 * Lifecycle follows the paper's two-phase initialization: after
 * construction at the target device the runtime calls Initialize
 * (local resources only — peers may not be offloaded yet); once all
 * related Offcodes are deployed it calls StartOffcode, at which
 * point inter-Offcode communication is available.
 */

#ifndef HYDRA_CORE_OFFCODE_HH
#define HYDRA_CORE_OFFCODE_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/guid.hh"
#include "common/result.hh"
#include "core/call.hh"
#include "core/channel.hh"
#include "core/resource.hh"
#include "core/site.hh"

namespace hydra::obs {
class Counter;
struct ActivityLabel;
} // namespace hydra::obs

namespace hydra::core {

class Runtime;

/** What the runtime provides to a deployed Offcode. */
struct OffcodeContext
{
    Runtime *runtime = nullptr;
    ExecutionSite *site = nullptr;
    /** The default out-of-band channel (management traffic). */
    Channel *oobChannel = nullptr;
    /** This Offcode's node in the resource hierarchy. */
    ResourceId resource = kNoResource;
};

/** Lifecycle states. */
enum class OffcodeState {
    Created,
    Initialized,
    Started,
    Stopped,
    Faulted,
};

/** Human-readable lifecycle state name. */
const char *offcodeStateName(OffcodeState state);

/**
 * Per-Offcode resource quotas, enforced by the firmware OS. Zero
 * means unlimited. The CPU quota is a budget slice: an Offcode may
 * consume at most cpuBudgetNs of its site's CPU per slicePeriodNs of
 * virtual time; dispatches past the budget are preempted — deferred
 * to the next slice boundary, never dropped — so several Offcodes
 * sharing one firmware core each get a bounded share. The memory
 * quota bounds both the deployed image (checked at deploy) and any
 * single inbound message (checked at dispatch).
 */
struct OffcodeQuota
{
    std::size_t memoryBytes = 0;
    sim::SimTime cpuBudgetNs = 0;
    sim::SimTime slicePeriodNs = sim::milliseconds(1);
};

/**
 * Per-Offcode dispatch accounting, maintained by the channel layer
 * and served over the OOB channel by the hydra.Monitor service.
 */
struct OffcodeTelemetry
{
    std::uint64_t callsHandled = 0;
    std::uint64_t dataHandled = 0;
    std::uint64_t mgmtHandled = 0;
    std::uint64_t invokeErrors = 0;
    /** Simulated time the Offcode's site spent on its dispatches. */
    sim::SimTime busyNs = 0;
    /** Start time of the most recent dispatch (watchdog basis). */
    sim::SimTime lastActivityAt = 0;

    std::uint64_t
    messagesProcessed() const
    {
        return callsHandled + dataHandled + mgmtHandled;
    }
};

/**
 * Base class for all Offcodes (the IOffcode interface of the paper:
 * instantiation, initialization, and interface dispatch).
 */
class Offcode
{
  public:
    explicit Offcode(std::string bindname);
    virtual ~Offcode() = default;

    Offcode(const Offcode &) = delete;
    Offcode &operator=(const Offcode &) = delete;

    const std::string &bindname() const { return bindname_; }
    Guid guid() const { return guid_; }
    OffcodeState state() const { return state_; }

    /**
     * Interfaces this Offcode implements (paper: "an Offcode can
     * implement multiple interfaces, each ... uniquely identified by
     * a GUID"). When at least one interface is declared, incoming
     * Calls must name one of them (or the Offcode's own GUID, the
     * IOffcode identity); with none declared, any interface GUID is
     * accepted.
     */
    void declareInterface(Guid interface_guid);
    bool supportsInterface(Guid interface_guid) const;
    const std::vector<Guid> &interfaces() const { return interfaces_; }

    /** Site name for ChannelConfig::targetDevice (GetDeviceAddr). */
    std::string deviceAddr() const;

    // --- lifecycle driven by the runtime ---
    Status doInitialize(OffcodeContext context);
    Status doStart();
    void doStop();

    // --- invocation ---
    /**
     * Dispatch a marshaled method invocation. The default
     * implementation consults the method registry populated with
     * registerMethod(); override for custom dispatch.
     */
    virtual Result<Bytes> invoke(const std::string &method,
                                 const Bytes &arguments);

    // --- channel events (runtime/channel layer calls these) ---
    /** A channel was connected to this Offcode (paper §3.2). */
    virtual void onChannelConnected(ChannelHandle channel);
    /** Raw data arrived (a zero-copy view into the message). */
    virtual void onData(const Payload &payload, ChannelHandle from);
    /** Management traffic arrived (OOB or any connected channel). */
    virtual void onManagement(const Payload &payload, ChannelHandle from);

    // --- restart-with-state-handoff (paper: live offloading idiom) ---
    /**
     * Serialize the state a successor instance needs to carry on
     * mid-stream (sequence counters, open cursors). The default is
     * stateless; stateful Offcodes override both sides. Called by the
     * runtime right before the instance is torn down for a restart.
     */
    virtual Bytes snapshotState() const { return {}; }
    /** Adopt a predecessor's snapshot (called before doStart). */
    virtual void restoreState(const Bytes &snapshot) { (void)snapshot; }

    // --- quotas (firmware OS discipline) ---
    void setQuota(OffcodeQuota quota) { quota_ = quota; }
    const OffcodeQuota &quota() const { return quota_; }
    /**
     * Budget-slice admission: true when this dispatch may run now.
     * False means the CPU budget for the current slice is spent;
     * @p deferUntil is set to the next slice boundary, where the
     * dispatcher must re-offer the message (preemption, not loss).
     */
    bool admitDispatch(sim::SimTime now, sim::SimTime *deferUntil);

    /** Context access (valid after doInitialize). */
    OffcodeContext &context() { return ctx_; }
    ExecutionSite &site() { return *ctx_.site; }
    Runtime &runtime() { return *ctx_.runtime; }

    // --- telemetry (hydra.Monitor introspection) ---
    const OffcodeTelemetry &telemetry() const { return telemetry_; }
    /** Channel layer: account one dispatched message. */
    void noteDispatch(MessageKind kind, bool ok, sim::SimTime started,
                      sim::SimTime finished);
    /**
     * Interned profiler label for one handler phase (call/data/mgmt);
     * nullptr for Return. Cached at doInitialize so the dispatch path
     * never touches the profiler's intern table.
     */
    const obs::ActivityLabel *activityLabel(MessageKind kind) const;

  protected:
    using MethodFn = std::function<Result<Bytes>(const Bytes &)>;

    /** Hook: acquire local resources (phase one). */
    virtual Status initialize() { return Status::success(); }
    /** Hook: peers are deployed; channels may be created (phase 2). */
    virtual Status start() { return Status::success(); }
    /** Hook: release resources. */
    virtual void stop() {}

    /** Register a method for default invoke() dispatch. */
    void registerMethod(const std::string &name, MethodFn fn);

    OffcodeContext ctx_;

  private:
    std::string bindname_;
    Guid guid_;
    OffcodeState state_ = OffcodeState::Created;
    std::map<std::string, MethodFn> methods_;
    std::vector<Guid> interfaces_;
    OffcodeTelemetry telemetry_;
    OffcodeQuota quota_;
    /** Budget-slice scheduler state (virtual time). */
    sim::SimTime sliceStart_ = 0;
    sim::SimTime sliceUsedNs_ = 0;
    /** `offcode.service_ns{offcode=bindname}`; set at doInitialize. */
    obs::Histogram *serviceTime_ = nullptr;
    /** `offcode.cpu_ns{offcode=bindname}`; set at doInitialize. */
    obs::Counter *cpuNs_ = nullptr;
    /** Interned (bindname, phase) profiler labels. */
    const obs::ActivityLabel *callLabel_ = nullptr;
    const obs::ActivityLabel *dataLabel_ = nullptr;
    const obs::ActivityLabel *mgmtLabel_ = nullptr;
};

} // namespace hydra::core

#endif // HYDRA_CORE_OFFCODE_HH
