#include "core/site.hh"

#include "obs/profiler.hh"

namespace hydra::core {

HostSite::HostSite(hw::Machine &machine)
    : machine_(machine), name_(machine.name() + ".host")
{
    profilerSlot_ = obs::Profiler::instance().slotFor(name_);
}

sim::SimTime
HostSite::run(std::uint64_t cycles)
{
    return machine_.cpu().runCycles(cycles);
}

void
HostSite::timerAfter(sim::SimTime delay, std::function<void()> done)
{
    // Host timers are quantized to the scheduler tick and disturbed
    // by run-queue noise; the wakeup also costs a context switch.
    const sim::SimTime wake = machine_.os().wakeAfter(delay);
    machine_.executor().scheduleAt(wake, [this, done = std::move(done)]() {
        machine_.os().contextSwitch();
        done();
    });
}

DeviceSite::DeviceSite(hw::Machine &host, dev::Device &device)
    : host_(host), device_(device)
{
    profilerSlot_ = obs::Profiler::instance().slotFor(device_.name());
}

sim::SimTime
DeviceSite::run(std::uint64_t cycles)
{
    return device_.runFirmware(cycles);
}

void
DeviceSite::timerAfter(sim::SimTime delay, std::function<void()> done)
{
    device_.timerAfter(delay, std::move(done));
}

} // namespace hydra::core
