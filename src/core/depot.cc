#include "core/depot.hh"

#include "common/strings.hh"
#include "obs/metrics.hh"

namespace hydra::core {

namespace {

void
noteLookup(bool hit)
{
    obs::counter("depot.lookups",
                 {{"result", hit ? "hit" : "miss"}})
        .increment();
}

} // namespace

Status
OffcodeDepot::registerOffcode(DepotEntry entry)
{
    Status valid = entry.manifest.validate();
    if (!valid)
        return valid;
    if (!entry.factory)
        return Status(ErrorCode::InvalidArgument,
                      entry.manifest.bindname + ": missing factory");

    auto shared = std::make_shared<DepotEntry>(std::move(entry));
    byName_[shared->manifest.bindname] = shared;
    byGuid_[shared->manifest.guid] = shared;
    obs::counter("depot.registered").increment();
    return Status::success();
}

Status
OffcodeDepot::registerOffcode(
    std::string_view odf_xml,
    std::function<std::unique_ptr<Offcode>()> factory,
    std::size_t image_bytes)
{
    auto manifest = odf::OdfDocument::parse(odf_xml);
    if (!manifest)
        return manifest.error();
    DepotEntry entry;
    entry.manifest = std::move(manifest).value();
    entry.factory = std::move(factory);
    entry.imageBytes = image_bytes;
    return registerOffcode(std::move(entry));
}

Result<const DepotEntry *>
OffcodeDepot::findByBindname(const std::string &name) const
{
    auto it = byName_.find(name);
    noteLookup(it != byName_.end());
    if (it == byName_.end())
        return Error(ErrorCode::NotFound,
                     "no depot entry for bindname " + name);
    return it->second.get();
}

Result<const DepotEntry *>
OffcodeDepot::findByGuid(Guid guid) const
{
    auto it = byGuid_.find(guid);
    noteLookup(it != byGuid_.end());
    if (it == byGuid_.end())
        return Error(ErrorCode::NotFound,
                     "no depot entry for GUID " + guid.toString());
    return it->second.get();
}

Result<const DepotEntry *>
OffcodeDepot::resolve(const std::string &reference) const
{
    auto byName = findByBindname(reference);
    if (byName)
        return byName;

    // Treat the reference as an ODF file path; the parsed manifest's
    // bindname must match a registered factory.
    if (endsWith(reference, ".odf") || reference.find('/') !=
                                           std::string::npos) {
        auto manifest = odf::OdfDocument::loadFile(reference);
        if (!manifest)
            return manifest.error();
        return findByBindname(manifest.value().bindname);
    }
    return byName;
}

} // namespace hydra::core
