/**
 * @file
 * Call objects (paper Section 3.1): the serialized representation of
 * one method invocation on an Offcode interface. Proxies produce
 * Calls transparently; the manual invocation scheme builds them
 * directly with an encoder.
 */

#ifndef HYDRA_CORE_CALL_HH
#define HYDRA_CORE_CALL_HH

#include <cstdint>
#include <string>

#include "common/bytes.hh"
#include "common/guid.hh"
#include "common/payload.hh"
#include "common/result.hh"

namespace hydra::core {

/** Kinds of messages that travel over channels. */
enum class MessageKind : std::uint8_t {
    /** A serialized Call to be dispatched at the target Offcode. */
    Call = 1,
    /** The return value of a previously sent Call. */
    Return = 2,
    /** Raw application data (e.g. media payload on a data channel). */
    Data = 3,
    /** Runtime management traffic on the OOB channel. */
    Management = 4,
};

/** One interface-method invocation with marshaled arguments. */
struct Call
{
    Guid targetOffcode;
    Guid interfaceGuid;
    std::string method;
    Bytes arguments;
    std::uint64_t callId = 0;
    /** When false the invoker expects no Return message. */
    bool expectsReturn = true;

    /** Wire-encode (kind byte included) into a pooled buffer. */
    Payload serialize() const;

    /** Decode from the wire; fails on malformed input. */
    static Result<Call> deserialize(const Payload &wire);
    static Result<Call> deserialize(const Bytes &wire);
};

/** A Call's response, matched by callId. */
struct CallReturn
{
    std::uint64_t callId = 0;
    bool ok = true;
    Bytes value;       ///< marshaled return value when ok
    std::string error; ///< failure description when !ok

    Payload serialize() const;
    static Result<CallReturn> deserialize(const Payload &wire);
    static Result<CallReturn> deserialize(const Bytes &wire);
};

/** Trace-span name of a Call's dispatch ("call.<method>"). */
std::string spanName(const Call &call);

/** Peek at the kind byte of a wire message (Ok only if non-empty). */
Result<MessageKind> peekKind(const Payload &wire);
Result<MessageKind> peekKind(const Bytes &wire);

/** Wrap raw payload as a Data message (pooled buffer). */
Payload encodeData(const Bytes &payload);
Payload encodeData(const Payload &payload);

/** Unwrap a Data message: a zero-copy slice of the same buffer. */
Result<Payload> decodeData(const Payload &wire);

/** Wrap raw payload as a Management message (pooled buffer). */
Payload encodeManagement(const Bytes &payload);
Payload encodeManagement(const Payload &payload);

/** Unwrap a Management message (zero-copy slice). */
Result<Payload> decodeManagement(const Payload &wire);

} // namespace hydra::core

#endif // HYDRA_CORE_CALL_HH
