#include "core/layout.hh"

#include <deque>
#include <unordered_map>

#include "common/logging.hh"

namespace hydra::core {

Result<LayoutGraph>
LayoutGraph::build(const OffcodeDepot &depot, const DepotEntry &root)
{
    return buildMany(depot, {&root});
}

Result<LayoutGraph>
LayoutGraph::buildMany(const OffcodeDepot &depot,
                       const std::vector<const DepotEntry *> &roots)
{
    if (roots.empty())
        return Error(ErrorCode::InvalidArgument, "no roots");

    LayoutGraph graph;
    std::unordered_map<std::string, std::size_t> index;
    std::deque<std::size_t> frontier;

    for (const DepotEntry *root : roots) {
        if (!root)
            return Error(ErrorCode::InvalidArgument, "null root");
        if (index.count(root->manifest.bindname))
            continue; // duplicate root / shared component
        index[root->manifest.bindname] = graph.nodes_.size();
        frontier.push_back(graph.nodes_.size());
        graph.nodes_.push_back(root);
    }
    while (!frontier.empty()) {
        const std::size_t from = frontier.front();
        frontier.pop_front();
        const DepotEntry &entry = *graph.nodes_[from];

        for (const odf::ImportSpec &import : entry.manifest.imports) {
            std::size_t to;
            auto found = index.find(import.bindname);
            if (found == index.end()) {
                auto resolved = depot.findByBindname(import.bindname);
                if (!resolved && !import.file.empty())
                    resolved = depot.resolve(import.file);
                if (!resolved)
                    return Error(ErrorCode::NotFound,
                                 entry.manifest.bindname +
                                     " imports unresolved Offcode " +
                                     import.bindname);
                to = graph.nodes_.size();
                graph.nodes_.push_back(resolved.value());
                index[import.bindname] = to;
                frontier.push_back(to);
            } else {
                to = found->second;
            }
            graph.edges_.push_back(
                GraphEdge{from, to, import.constraint, import.priority});
        }
    }
    return graph;
}

std::size_t
LayoutGraph::indexOf(const std::string &bindname) const
{
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i]->manifest.bindname == bindname)
            return i;
    return SIZE_MAX;
}

LayoutResolver::LayoutResolver(ResolverConfig config)
    : config_(std::move(config))
{
}

Result<ilp::LayoutSpec>
LayoutResolver::buildSpec(const LayoutGraph &graph,
                          const std::vector<SiteInfo> &sites) const
{
    if (sites.empty() || sites[0].device != nullptr)
        return Error(ErrorCode::InvalidArgument,
                     "sites[0] must be the host CPU");

    ilp::LayoutSpec spec;
    spec.numOffcodes = graph.nodes().size();
    spec.numDevices = sites.size();
    spec.objective = config_.objective;

    spec.compatible.assign(spec.numOffcodes,
                           std::vector<bool>(spec.numDevices, false));
    spec.busPrice.assign(spec.numOffcodes, 0.0);
    spec.memoryDemand.assign(spec.numOffcodes, 0.0);
    spec.linkCapacity.assign(spec.numDevices, 1e18);
    spec.memoryLimit.assign(spec.numDevices, 1e18);

    for (std::size_t k = 1; k < sites.size(); ++k) {
        spec.linkCapacity[k] = sites[k].linkCapacityGbps;
        spec.memoryLimit[k] = static_cast<double>(
            sites[k].device->localMemoryFree());
        spec.deviceNames.push_back(sites[k].site->name());
    }
    spec.deviceNames.insert(spec.deviceNames.begin(),
                            sites[0].site->name());

    for (std::size_t n = 0; n < spec.numOffcodes; ++n) {
        const odf::OdfDocument &manifest = graph.nodes()[n]->manifest;
        spec.offcodeNames.push_back(manifest.bindname);
        spec.busPrice[n] = manifest.busPrice;
        spec.memoryDemand[n] = static_cast<double>(
            manifest.requiredMemoryBytes + graph.nodes()[n]->imageBytes);

        spec.compatible[n][0] = manifest.hostFallback;
        for (std::size_t k = 1; k < sites.size(); ++k) {
            dev::Device &device = *sites[k].device;

            // No declared device classes means host-only: offloading
            // requires an explicit <device-class> in the ODF (a
            // wildcard class with id 0 and no fields matches any
            // device).
            bool classOk = false;
            for (const dev::DeviceClassSpec &target : manifest.targets) {
                if (device.deviceClass().satisfies(target)) {
                    classOk = true;
                    break;
                }
            }
            if (!classOk)
                continue;

            bool capsOk = true;
            for (const std::string &cap : manifest.requiredCapabilities) {
                if (!device.hasCapability(cap)) {
                    capsOk = false;
                    break;
                }
            }
            if (!capsOk)
                continue;

            spec.compatible[n][k] = true;
        }
    }

    for (const GraphEdge &edge : graph.edges()) {
        ilp::LayoutEdge out;
        out.a = edge.from;
        out.b = edge.to;
        switch (edge.kind) {
          case odf::ConstraintType::Link:
            continue; // no placement constraint
          case odf::ConstraintType::Pull:
            out.kind = ilp::LayoutConstraint::Pull;
            break;
          case odf::ConstraintType::Gang:
            out.kind = ilp::LayoutConstraint::Gang;
            break;
          case odf::ConstraintType::AsymmetricGang:
            out.kind = ilp::LayoutConstraint::AsymGang;
            break;
        }
        spec.edges.push_back(out);
    }
    return spec;
}

Result<Placement>
LayoutResolver::resolve(const LayoutGraph &graph,
                        const std::vector<SiteInfo> &sites) const
{
    auto spec = buildSpec(graph, sites);
    if (!spec)
        return spec.error();

    Result<ilp::LayoutAssignment> assignment =
        config_.useGreedy ? ilp::greedyLayout(spec.value())
                          : ilp::solveLayout(spec.value(), config_.limits);
    if (!assignment)
        return assignment.error();

    Placement placement;
    placement.objective = assignment.value().objective;
    placement.offloadedCount = assignment.value().offloadedCount();
    placement.site.reserve(graph.nodes().size());
    for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
        const std::size_t device_index = assignment.value().device[n];
        placement.site.push_back(sites[device_index].site);
        LOG_DEBUG << "layout: " << graph.nodes()[n]->manifest.bindname
                  << " -> " << sites[device_index].site->name();
    }
    return placement;
}

} // namespace hydra::core
