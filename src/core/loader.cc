#include "core/loader.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::core {

namespace {

/** Record one finished deploy: count, latency, and a trace span. */
void
noteDeploy(const char *site_kind, const std::string &bindname,
           const std::string &lane_thread, sim::SimTime started,
           sim::SimTime finished)
{
    obs::counter("loader.deploys", {{"site", site_kind}}).increment();
    obs::histogram("loader.deploy_latency_ns", {{"site", site_kind}})
        .record(finished - started);
    if (HYDRA_TRACE_ACTIVE()) {
        auto &tracer = obs::Tracer::instance();
        tracer.complete(tracer.lane("deploy", lane_thread),
                        "deploy:" + bindname, "loader", started,
                        finished - started);
    }
}

} // namespace

HostLoader::HostLoader(hw::Machine &machine, LoaderCosts costs)
    : machine_(machine), costs_(costs)
{
}

void
HostLoader::load(const DepotEntry &entry, std::function<void(Status)> done)
{
    // In-process dynamic linking: resolve symbols against the
    // runtime's pseudo Offcodes, relocate, done.
    const sim::SimTime started = machine_.executor().now();
    const auto cycles =
        costs_.linkBaseCycles +
        static_cast<std::uint64_t>(costs_.linkCyclesPerByte *
                                   static_cast<double>(entry.imageBytes));
    const sim::SimTime ready = machine_.cpu().runCycles(cycles);
    machine_.executor().scheduleAt(
        ready, [this, started, bindname = entry.manifest.bindname,
                done = std::move(done)]() {
            noteDeploy("host", bindname, machine_.name() + ".host",
                       started, machine_.executor().now());
            done(Status::success());
        });
}

void
HostLoader::unload(const DepotEntry &entry)
{
    (void)entry;
}

DeviceDmaLoader::DeviceDmaLoader(hw::Machine &host, dev::Device &device,
                                 LoaderCosts costs)
    : host_(host), device_(device), costs_(costs)
{
}

void
DeviceDmaLoader::load(const DepotEntry &entry,
                      std::function<void(Status)> done)
{
    // Phase 1: AllocateOffcodeMemory at the device (OOB round trip).
    const sim::SimTime started = device_.executor().now();
    const std::string bindname = entry.manifest.bindname;
    const std::size_t image_bytes = entry.imageBytes;
    const std::size_t total_bytes =
        image_bytes + entry.manifest.requiredMemoryBytes;

    device_.timerAfter(costs_.allocateRtt, [this, started, bindname,
                                            total_bytes, image_bytes, &entry,
                                            done = std::move(done)]() {
        auto base = device_.allocateLocal(total_bytes);
        if (!base) {
            done(Status(base.error()));
            return;
        }
        LOG_DEBUG << "loader: " << entry.manifest.bindname << " -> "
                  << device_.name() << " @ " << base.value();

        // Phase 2: host-side link against the returned address.
        const auto link_cycles =
            costs_.linkBaseCycles +
            static_cast<std::uint64_t>(
                costs_.linkCyclesPerByte *
                static_cast<double>(image_bytes));
        host_.cpu().runCycles(link_cycles);

        // Phase 3: DMA the linked image across the bus.
        device_.dma().start(image_bytes, [this, started, bindname,
                                          image_bytes,
                                          done = std::move(done)]() {
            // Phase 4: device-side placement and start.
            const auto install_cycles =
                costs_.installBaseCycles +
                static_cast<std::uint64_t>(
                    costs_.installCyclesPerByte *
                    static_cast<double>(image_bytes));
            const sim::SimTime ready =
                device_.runFirmware(install_cycles);
            device_.executor().scheduleAt(
                ready, [this, started, bindname,
                        done = std::move(done)]() {
                    ++imagesLoaded_;
                    noteDeploy("device", bindname, device_.name(), started,
                               device_.executor().now());
                    done(Status::success());
                });
        });
    });
}

void
DeviceDmaLoader::unload(const DepotEntry &entry)
{
    device_.freeLocal(entry.imageBytes + entry.manifest.requiredMemoryBytes);
}

} // namespace hydra::core
