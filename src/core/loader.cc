#include "core/loader.hh"

#include "common/logging.hh"

namespace hydra::core {

HostLoader::HostLoader(hw::Machine &machine, LoaderCosts costs)
    : machine_(machine), costs_(costs)
{
}

void
HostLoader::load(const DepotEntry &entry, std::function<void(Status)> done)
{
    // In-process dynamic linking: resolve symbols against the
    // runtime's pseudo Offcodes, relocate, done.
    const auto cycles =
        costs_.linkBaseCycles +
        static_cast<std::uint64_t>(costs_.linkCyclesPerByte *
                                   static_cast<double>(entry.imageBytes));
    const sim::SimTime ready = machine_.cpu().runCycles(cycles);
    machine_.simulator().scheduleAt(
        ready, [done = std::move(done)]() { done(Status::success()); });
}

void
HostLoader::unload(const DepotEntry &entry)
{
    (void)entry;
}

DeviceDmaLoader::DeviceDmaLoader(hw::Machine &host, dev::Device &device,
                                 LoaderCosts costs)
    : host_(host), device_(device), costs_(costs)
{
}

void
DeviceDmaLoader::load(const DepotEntry &entry,
                      std::function<void(Status)> done)
{
    // Phase 1: AllocateOffcodeMemory at the device (OOB round trip).
    const std::size_t image_bytes = entry.imageBytes;
    const std::size_t total_bytes =
        image_bytes + entry.manifest.requiredMemoryBytes;

    device_.timerAfter(costs_.allocateRtt, [this, total_bytes, image_bytes,
                                            &entry,
                                            done = std::move(done)]() {
        auto base = device_.allocateLocal(total_bytes);
        if (!base) {
            done(Status(base.error()));
            return;
        }
        LOG_DEBUG << "loader: " << entry.manifest.bindname << " -> "
                  << device_.name() << " @ " << base.value();

        // Phase 2: host-side link against the returned address.
        const auto link_cycles =
            costs_.linkBaseCycles +
            static_cast<std::uint64_t>(
                costs_.linkCyclesPerByte *
                static_cast<double>(image_bytes));
        host_.cpu().runCycles(link_cycles);

        // Phase 3: DMA the linked image across the bus.
        device_.dma().start(image_bytes, [this, image_bytes,
                                          done = std::move(done)]() {
            // Phase 4: device-side placement and start.
            const auto install_cycles =
                costs_.installBaseCycles +
                static_cast<std::uint64_t>(
                    costs_.installCyclesPerByte *
                    static_cast<double>(image_bytes));
            const sim::SimTime ready =
                device_.runFirmware(install_cycles);
            device_.simulator().scheduleAt(
                ready, [this, done = std::move(done)]() {
                    ++imagesLoaded_;
                    done(Status::success());
                });
        });
    });
}

void
DeviceDmaLoader::unload(const DepotEntry &entry)
{
    device_.freeLocal(entry.imageBytes + entry.manifest.requiredMemoryBytes);
}

} // namespace hydra::core
