/**
 * @file
 * The Offcode Depot (paper Section 4): the local library storing
 * Offcode manifests, their object images, and the factories that
 * instantiate them ("the runtime uses a local library that is used
 * for storing the actual instances (object files) of the
 * Offcodes").
 */

#ifndef HYDRA_CORE_DEPOT_HH
#define HYDRA_CORE_DEPOT_HH

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/offcode.hh"
#include "odf/odf.hh"

namespace hydra::core {

/** A registered Offcode: manifest + instantiation + image metadata. */
struct DepotEntry
{
    odf::OdfDocument manifest;
    /** Factory producing a fresh instance for deployment. */
    std::function<std::unique_ptr<Offcode>()> factory;
    /** Synthetic object-image size (drives load/link cost). */
    std::size_t imageBytes = 32 * 1024;
};

/** Registry of deployable Offcodes, keyed by bindname and GUID. */
class OffcodeDepot
{
  public:
    /** Register an Offcode; replaces any previous registration. */
    Status registerOffcode(DepotEntry entry);

    /** Convenience: register with an ODF parsed from XML text. */
    Status registerOffcode(std::string_view odf_xml,
                           std::function<std::unique_ptr<Offcode>()> factory,
                           std::size_t image_bytes = 32 * 1024);

    Result<const DepotEntry *> findByBindname(const std::string &name) const;
    Result<const DepotEntry *> findByGuid(Guid guid) const;

    /**
     * Resolve an ODF reference: a registered bindname, or a path to
     * an ODF file on disk (in which case a factory must already be
     * registered under the file's bindname).
     */
    Result<const DepotEntry *> resolve(const std::string &reference) const;

    std::size_t size() const { return byName_.size(); }

  private:
    std::unordered_map<std::string, std::shared_ptr<DepotEntry>> byName_;
    std::unordered_map<Guid, std::shared_ptr<DepotEntry>> byGuid_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_DEPOT_HH
