#include "core/runtime.hh"

#include <memory>
#include <sstream>

#include "chaos/chaos.hh"
#include "common/logging.hh"
#include "dev/device.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"

namespace hydra::core {

namespace {

/** "hydra.Runtime" pseudo Offcode: runtime services by interface. */
class RuntimePseudoOffcode : public Offcode
{
  public:
    explicit RuntimePseudoOffcode(Runtime &runtime)
        : Offcode("hydra.Runtime"), rt_(runtime)
    {
        registerMethod("GetOffcode", [this](const Bytes &args) {
            return getOffcode(args);
        });
        registerMethod("Ping", [](const Bytes &) -> Result<Bytes> {
            return Bytes{'p', 'o', 'n', 'g'};
        });
    }

  private:
    Result<Bytes>
    getOffcode(const Bytes &args)
    {
        ByteReader reader(args);
        auto name = reader.readString();
        if (!name)
            return Error(ErrorCode::InvalidArgument, "expected bindname");
        auto handle = rt_.getOffcode(name.value());
        if (!handle)
            return handle.error();
        Bytes out;
        ByteWriter writer(out);
        writer.writeU64(handle.value().offcode->guid().value());
        writer.writeString(handle.value().deviceAddr());
        return out;
    }

    Runtime &rt_;
};

/** "hydra.Heap" pseudo Offcode: OS memory routines. */
class HeapPseudoOffcode : public Offcode
{
  public:
    explicit HeapPseudoOffcode(Runtime &runtime)
        : Offcode("hydra.Heap"), rt_(runtime)
    {
        registerMethod("Allocate", [this](const Bytes &args) {
            return allocate(args);
        });
    }

  private:
    Result<Bytes>
    allocate(const Bytes &args)
    {
        ByteReader reader(args);
        auto bytes = reader.readU64();
        if (!bytes || bytes.value() == 0)
            return Error(ErrorCode::InvalidArgument, "expected size");
        const hw::Addr addr = rt_.memory().allocBuffer(bytes.value());
        Bytes out;
        ByteWriter writer(out);
        writer.writeU64(addr);
        return out;
    }

    Runtime &rt_;
};

/** "hydra.ChannelExecutive" pseudo Offcode. */
class ExecutivePseudoOffcode : public Offcode
{
  public:
    explicit ExecutivePseudoOffcode(Runtime &runtime)
        : Offcode("hydra.ChannelExecutive"), rt_(runtime)
    {
        registerMethod("ProviderNames",
                       [this](const Bytes &) -> Result<Bytes> {
                           Bytes out;
                           ByteWriter writer(out);
                           const auto names =
                               rt_.executive().providerNames();
                           writer.writeU32(static_cast<std::uint32_t>(
                               names.size()));
                           for (const auto &name : names)
                               writer.writeString(name);
                           return out;
                       });
    }

  private:
    Runtime &rt_;
};

/**
 * "hydra.Monitor" pseudo Offcode: the introspection protocol on the
 * OOB channel. Stats answers with the full per-Offcode snapshot,
 * Health with a compact watchdog view, Spans with the tracer state.
 */
class MonitorPseudoOffcode : public Offcode
{
  public:
    explicit MonitorPseudoOffcode(Runtime &runtime)
        : Offcode("hydra.Monitor"), rt_(runtime)
    {
        registerMethod("Stats", [this](const Bytes &) -> Result<Bytes> {
            const std::string json = rt_.introspectJson();
            return Bytes(json.begin(), json.end());
        });
        registerMethod("Health", [this](const Bytes &) -> Result<Bytes> {
            return health();
        });
        registerMethod("Spans", [](const Bytes &) -> Result<Bytes> {
            return spans();
        });
        // Flight streams the recorder's snapshot ring. The argument,
        // when present, is a decimal snapshot count; the default tail
        // keeps the reply inside the OOB channel's 8 KiB message cap.
        registerMethod("Flight", [](const Bytes &args) -> Result<Bytes> {
            std::size_t tail = 6;
            if (!args.empty()) {
                std::size_t parsed = 0;
                bool numeric = true;
                for (unsigned char c : args) {
                    if (c < '0' || c > '9') {
                        numeric = false;
                        break;
                    }
                    parsed = parsed * 10 + (c - '0');
                }
                if (numeric && parsed > 0)
                    tail = parsed;
            }
            const std::string json =
                obs::FlightRecorder::instance().toJson(tail);
            return Bytes(json.begin(), json.end());
        });
        // Slo reports the watchdog's rule table and violation counts.
        registerMethod("Slo", [](const Bytes &) -> Result<Bytes> {
            const std::string json = obs::SloEngine::instance().toJson();
            return Bytes(json.begin(), json.end());
        });
    }

  private:
    /** An Offcode silent this long (simulated) is flagged unhealthy. */
    static constexpr sim::SimTime kWatchdogLimitNs =
        sim::seconds(5);

    Result<Bytes>
    health()
    {
        const IntrospectionSnapshot snap = rt_.introspect();
        std::ostringstream out;
        out << "{\"machine\":";
        obs::writeJsonString(out, snap.machine);
        out << ",\"now_ns\":" << snap.now << ",\"offcodes\":[";
        bool first = true;
        for (const OffcodeIntrospection &oc : snap.offcodes) {
            if (!first)
                out << ",";
            first = false;
            const bool healthy = oc.state == "Started" &&
                                 oc.watchdogAgeNs < kWatchdogLimitNs;
            out << "{\"bindname\":";
            obs::writeJsonString(out, oc.bindname);
            out << ",\"state\":";
            obs::writeJsonString(out, oc.state);
            out << ",\"watchdog_age_ns\":" << oc.watchdogAgeNs
                << ",\"healthy\":" << (healthy ? "true" : "false")
                << "}";
        }
        out << "]}";
        const std::string json = out.str();
        return Bytes(json.begin(), json.end());
    }

    static Result<Bytes>
    spans()
    {
        auto &tracer = obs::Tracer::instance();
        std::ostringstream out;
        out << "{\"enabled\":" << (tracer.enabled() ? "true" : "false")
            << ",\"events\":" << tracer.eventsRecorded()
            << ",\"overwritten\":" << tracer.eventsOverwritten()
            << ",\"capacity\":" << tracer.capacity() << "}";
        const std::string json = out.str();
        return Bytes(json.begin(), json.end());
    }

    Runtime &rt_;
};

/** Minimal ODF for a host-resident pseudo Offcode. */
std::string
pseudoOdf(const std::string &bindname)
{
    return "<offcode><package><bindname>" + bindname +
           "</bindname></package>"
           "<targets><host-fallback/></targets></offcode>";
}

} // namespace

Runtime::Runtime(hw::Machine &machine, RuntimeConfig config)
    : machine_(machine), config_(config), resolver_(config.resolver)
{
    hostSite_ = std::make_unique<HostSite>(machine_);
    hostLoader_ =
        std::make_unique<HostLoader>(machine_, config_.loaderCosts);
    memory_ = std::make_unique<MemoryManager>(machine_.os(),
                                              config_.pinLimitBytes);
    executive_ = std::make_unique<ChannelExecutive>(
        [this](const std::string &name) { return siteByName(name); },
        machine_.name());
    executive_->registerProvider(
        std::make_unique<LocalChannelProvider>(machine_.executor()));
    executive_->registerProvider(std::make_unique<DmaRingChannelProvider>(
        machine_.executor(), config_.busMulticast));

    registerPseudoOffcodes();
    scheduleWatchdog();
}

Runtime::~Runtime()
{
    // Neutralize in-flight watchdog events and device reset
    // listeners; the executor (and attached devices) may outlive us.
    *alive_ = false;
    // Stop everything deliberately (children before parents is
    // handled by the resource tree; map order is fine here because
    // each entry owns an independent subtree).
    for (auto &[name, dep] : deployed_)
        if (dep.instance)
            dep.instance->doStop();
}

void
Runtime::registerPseudoOffcodes()
{
    struct PseudoSpec
    {
        std::string bindname;
        std::function<std::unique_ptr<Offcode>(Runtime &)> make;
    };
    const PseudoSpec specs[] = {
        {"hydra.Runtime",
         [](Runtime &rt) {
             return std::make_unique<RuntimePseudoOffcode>(rt);
         }},
        {"hydra.Heap",
         [](Runtime &rt) {
             return std::make_unique<HeapPseudoOffcode>(rt);
         }},
        {"hydra.ChannelExecutive",
         [](Runtime &rt) {
             return std::make_unique<ExecutivePseudoOffcode>(rt);
         }},
        {"hydra.Monitor",
         [](Runtime &rt) {
             return std::make_unique<MonitorPseudoOffcode>(rt);
         }},
    };

    for (const PseudoSpec &spec : specs) {
        Status registered = depot_.registerOffcode(
            pseudoOdf(spec.bindname),
            [this, make = spec.make]() { return make(*this); },
            /*image_bytes=*/4096);
        if (!registered) {
            LOG_ERROR << "pseudo offcode registration failed: "
                      << registered.error().describe();
            continue;
        }
        // Pseudo Offcodes deploy eagerly and synchronously on the
        // host; they are part of the runtime itself.
        auto entry = depot_.findByBindname(spec.bindname);
        Deployed dep;
        dep.entry = entry.value();
        dep.site = hostSite_.get();
        dep.instance = entry.value()->factory();

        auto oob = makeOobChannel(*hostSite_);
        if (oob)
            dep.oob = oob.value();

        OffcodeContext ctx;
        ctx.runtime = this;
        ctx.site = hostSite_.get();
        ctx.oobChannel = dep.oob;
        auto resource = resources_.create(resources_.root(), "offcode",
                                          spec.bindname);
        ctx.resource = resource ? resource.value() : kNoResource;
        dep.resource = ctx.resource;

        dep.instance->doInitialize(ctx);
        if (dep.oob)
            dep.oob->connectOffcode(*dep.instance);
        dep.instance->doStart();
        deployed_[spec.bindname] = std::move(dep);
    }
}

Status
Runtime::attachDevice(dev::Device &device, double link_capacity_gbps)
{
    for (const AttachedDevice &attached : devices_)
        if (attached.device == &device ||
            attached.device->name() == device.name())
            return Status(ErrorCode::AlreadyExists,
                          "device already attached: " + device.name());

    AttachedDevice attached;
    attached.device = &device;
    attached.site = std::make_unique<DeviceSite>(machine_, device);
    attached.loader = std::make_unique<DeviceDmaLoader>(
        machine_, device, config_.loaderCosts);
    attached.linkCapacityGbps = link_capacity_gbps;

    // Recovery protocol: when the device firmware resets, every
    // Offcode deployed on it goes through restart-with-state-handoff.
    // At Begin the instances snapshot and quiesce (their channel
    // backlog queues); at Complete — before the device replays its
    // own rx backlog — fresh instances are rebound so nothing that
    // arrived during the outage is lost.
    ExecutionSite *site = attached.site.get();
    device.addResetListener([this, alive = alive_, site](
                                dev::Device &dev,
                                dev::Device::ResetPhase phase) {
        if (!*alive)
            return;
        if (phase == dev::Device::ResetPhase::Begin) {
            for (auto &[bindname, dep] : deployed_)
                if (dep.site == site && dep.instance && !dep.outage)
                    beginOffcodeOutage(bindname, dep);
            return;
        }
        for (auto &[bindname, dep] : deployed_) {
            if (dep.site != site || !dep.outage)
                continue;
            Status restarted = completeOffcodeRestart(bindname, dep);
            if (!restarted)
                LOG_ERROR << dev.name() << ": " << bindname
                          << " restart after reset failed: "
                          << restarted.error().describe();
        }
    });

    devices_.push_back(std::move(attached));
    return Status::success();
}

ExecutionSite *
Runtime::siteByName(const std::string &name)
{
    if (name == hostSite_->name() || name == "host")
        return hostSite_.get();
    for (const AttachedDevice &attached : devices_)
        if (attached.site->name() == name)
            return attached.site.get();
    return nullptr;
}

std::vector<SiteInfo>
Runtime::placementSites()
{
    std::vector<SiteInfo> sites;
    sites.push_back(SiteInfo{hostSite_.get(), nullptr, 1e9});
    for (const AttachedDevice &attached : devices_)
        sites.push_back(SiteInfo{attached.site.get(), attached.device,
                                 attached.linkCapacityGbps});
    return sites;
}

Result<Channel *>
Runtime::makeOobChannel(ExecutionSite &site)
{
    // The OOB channel is the default, non-performance-critical
    // management pathway: copying buffers, shallow rings.
    ChannelConfig config;
    config.type = ChannelConfig::Type::Unicast;
    config.reliable = true;
    config.buffering = ChannelConfig::Buffering::Copying;
    config.ringDepth = 16;
    config.maxMessageBytes = 8 * 1024;
    config.targetDevice = site.name();
    // One latency series per (machine, target site) pair of OOB lanes.
    config.name = "oob." + machine_.name() + "." + site.name();
    return executive_->createChannel(config, *hostSite_, 512);
}

OffcodeLoader *
Runtime::loaderFor(ExecutionSite &site)
{
    if (site.isHost())
        return hostLoader_.get();
    for (const AttachedDevice &attached : devices_)
        if (attached.site.get() == &site)
            return attached.loader.get();
    return nullptr;
}

void
Runtime::deployNode(const DepotEntry &entry, ExecutionSite &site,
                    std::function<void(Status)> done)
{
    OffcodeLoader *loader = loaderFor(site);
    if (!loader) {
        done(Status(ErrorCode::NotFound,
                    "no loader for site " + site.name()));
        return;
    }

    loader->load(entry, [this, &entry, &site, loader,
                         done = std::move(done)](Status loaded) {
        if (!loaded) {
            done(loaded);
            return;
        }

        Deployed dep;
        dep.entry = &entry;
        dep.site = &site;
        dep.instance = entry.factory();
        if (!dep.instance) {
            done(Status(ErrorCode::Internal, "factory returned null"));
            return;
        }

        const std::string bindname = entry.manifest.bindname;

        // Quotas (firmware OS discipline): an image that does not fit
        // the memory quota never deploys; the CPU budget arms the
        // budget-slice scheduler for every dispatch from here on.
        auto quotaIt = config_.quotas.find(bindname);
        if (quotaIt != config_.quotas.end()) {
            const OffcodeQuota &quota = quotaIt->second;
            if (quota.memoryBytes > 0 &&
                entry.imageBytes > quota.memoryBytes) {
                obs::counter("offcode.quota_rejections",
                             {{"offcode", bindname},
                              {"resource", "memory"}})
                    .increment();
                done(Status(ErrorCode::ResourceExhausted,
                            bindname + ": image exceeds memory quota"));
                return;
            }
            dep.instance->setQuota(quota);
        }

        auto oob = makeOobChannel(site);
        if (!oob) {
            done(Status(oob.error()));
            return;
        }
        dep.oob = oob.value();

        Channel *oobChannel = dep.oob;

        // The release callback resolves the instance through
        // deployed_ at release time: a restart-with-state-handoff
        // swaps dep.instance, so a captured raw pointer would dangle.
        auto resource = resources_.create(
            resources_.root(), "offcode", bindname,
            [this, bindname, oobChannel, loader, &entry]() {
                auto dit = deployed_.find(bindname);
                if (dit != deployed_.end() && dit->second.instance)
                    dit->second.instance->doStop();
                executive_->destroyChannel(oobChannel);
                loader->unload(entry);
            });
        if (!resource) {
            done(Status(resource.error()));
            return;
        }
        dep.resource = resource.value();

        OffcodeContext ctx;
        ctx.runtime = this;
        ctx.site = &site;
        ctx.oobChannel = dep.oob;
        ctx.resource = dep.resource;

        // Publish the manifest's interface GUIDs so Call dispatch can
        // reject mismatched invocations.
        for (const odf::InterfaceSpec &iface : entry.manifest.interfaces)
            if (!iface.guid.isNull())
                dep.instance->declareInterface(iface.guid);

        Status initialized = dep.instance->doInitialize(ctx);
        if (!initialized) {
            resources_.release(dep.resource);
            done(initialized);
            return;
        }
        dep.oob->connectOffcode(*dep.instance);

        ++stats_.offcodesDeployed;
        if (site.isHost())
            ++stats_.hostPlacedCount;
        else
            ++stats_.offloadedCount;

        deployed_[bindname] = std::move(dep);
        done(Status::success());
    });
}

void
Runtime::deployGraph(LayoutGraph graph,
                     std::vector<std::string> root_bindnames,
                     GroupDeployCallback done)
{
    auto placement = resolver_.resolve(graph, placementSites());
    if (!placement) {
        ++stats_.deploymentsFailed;
        done(placement.error());
        return;
    }

    // Deploy the not-yet-deployed nodes one after another (the host
    // drives the loaders serially, as real firmware updates do).
    struct Pending
    {
        LayoutGraph graph;
        Placement placement;
        std::vector<std::size_t> toDeploy;
        std::size_t next = 0;
        GroupDeployCallback done;
        std::vector<std::string> roots;
        /**
         * Continuation for the next load step. Pending owns it and
         * the closure captures Pending, an intentional cycle that is
         * broken explicitly (finish() clears it) on every terminal
         * path, so nothing leaks.
         */
        std::function<void()> step;

        void
        finish(Result<std::vector<OffcodeHandle>> outcome)
        {
            auto callback = std::move(done);
            step = nullptr; // break the ownership cycle
            callback(std::move(outcome));
        }
    };
    auto pending = std::make_shared<Pending>();
    pending->graph = std::move(graph);
    pending->placement = std::move(placement).value();
    pending->done = std::move(done);
    pending->roots = std::move(root_bindnames);

    for (std::size_t n = 0; n < pending->graph.nodes().size(); ++n) {
        const std::string &name =
            pending->graph.nodes()[n]->manifest.bindname;
        if (!deployed_.count(name))
            pending->toDeploy.push_back(n);
    }

    pending->step = [this, pending]() {
        if (pending->next >= pending->toDeploy.size()) {
            // All loaded and initialized: run phase two in reverse
            // graph order so imports start before their importers.
            for (auto it = pending->toDeploy.rbegin();
                 it != pending->toDeploy.rend(); ++it) {
                const std::string &name =
                    pending->graph.nodes()[*it]->manifest.bindname;
                auto dit = deployed_.find(name);
                if (dit == deployed_.end())
                    continue;
                Status started = dit->second.instance->doStart();
                if (!started) {
                    ++stats_.deploymentsFailed;
                    pending->finish(started.error());
                    return;
                }
            }
            ++stats_.deploymentsCompleted;
            std::vector<OffcodeHandle> handles;
            for (const std::string &root : pending->roots) {
                auto handle = getOffcode(root);
                if (!handle) {
                    pending->finish(handle.error());
                    return;
                }
                handles.push_back(handle.value());
            }
            pending->finish(std::move(handles));
            return;
        }

        const std::size_t n = pending->toDeploy[pending->next++];
        const DepotEntry &entry = *pending->graph.nodes()[n];
        ExecutionSite &site = *pending->placement.site[n];
        deployNode(entry, site, [this, pending](Status status) {
            if (!status) {
                ++stats_.deploymentsFailed;
                pending->finish(status.error());
                return;
            }
            pending->step();
        });
    };
    pending->step();
}

void
Runtime::createOffcode(const std::string &odf_reference,
                       DeployCallback done)
{
    auto rootEntry = depot_.resolve(odf_reference);
    if (!rootEntry) {
        ++stats_.deploymentsFailed;
        done(rootEntry.error());
        return;
    }

    auto graph = LayoutGraph::build(depot_, *rootEntry.value());
    if (!graph) {
        ++stats_.deploymentsFailed;
        done(graph.error());
        return;
    }

    deployGraph(std::move(graph).value(),
                {rootEntry.value()->manifest.bindname},
                [done = std::move(done)](
                    Result<std::vector<OffcodeHandle>> handles) {
                    if (!handles) {
                        done(handles.error());
                        return;
                    }
                    done(handles.value().front());
                });
}

void
Runtime::createOffcodeGroup(const std::vector<std::string> &odf_references,
                            GroupDeployCallback done)
{
    std::vector<const DepotEntry *> roots;
    std::vector<std::string> bindnames;
    for (const std::string &reference : odf_references) {
        auto entry = depot_.resolve(reference);
        if (!entry) {
            ++stats_.deploymentsFailed;
            done(entry.error());
            return;
        }
        roots.push_back(entry.value());
        bindnames.push_back(entry.value()->manifest.bindname);
    }

    auto graph = LayoutGraph::buildMany(depot_, roots);
    if (!graph) {
        ++stats_.deploymentsFailed;
        done(graph.error());
        return;
    }
    deployGraph(std::move(graph).value(), std::move(bindnames),
                std::move(done));
}

Result<OffcodeHandle>
Runtime::getOffcode(const std::string &bindname)
{
    auto it = deployed_.find(bindname);
    if (it == deployed_.end())
        return Error(ErrorCode::NotFound,
                     "offcode not deployed: " + bindname);
    return OffcodeHandle{it->second.instance.get(), it->second.site};
}

Status
Runtime::destroyOffcode(const std::string &bindname)
{
    auto it = deployed_.find(bindname);
    if (it == deployed_.end())
        return Status(ErrorCode::NotFound,
                      "offcode not deployed: " + bindname);
    // Release the resource subtree first: its callbacks stop the
    // Offcode and tear down channels while the instance is alive.
    const ResourceId resource = it->second.resource;
    Status released = Status::success();
    if (resource != kNoResource)
        released = resources_.release(resource);
    deployed_.erase(it);
    return released;
}

void
Runtime::beginOffcodeOutage(const std::string &bindname, Deployed &dep)
{
    if (!dep.instance || dep.outage)
        return;
    LOG_INFO << bindname << ": outage begins (snapshot + quiesce)";
    dep.restartSnapshot = dep.instance->snapshotState();
    // Quiesce first: from here on, inbound messages queue at the
    // endpoints instead of reaching the dying instance.
    executive_->detachOffcode(*dep.instance);
    dep.instance->doStop();
    dep.outage = true;
}

Status
Runtime::completeOffcodeRestart(const std::string &bindname, Deployed &dep)
{
    if (!dep.outage)
        return Status(ErrorCode::InvalidArgument,
                      bindname + ": no outage in progress");
    if (!dep.entry || !dep.entry->factory)
        return Status(ErrorCode::Unsupported,
                      bindname + ": no depot factory to restart from");

    std::unique_ptr<Offcode> fresh = dep.entry->factory();
    if (!fresh)
        return Status(ErrorCode::Internal,
                      bindname + ": restart factory returned null");
    for (const odf::InterfaceSpec &iface : dep.entry->manifest.interfaces)
        if (!iface.guid.isNull())
            fresh->declareInterface(iface.guid);
    if (dep.instance)
        fresh->setQuota(dep.instance->quota());

    OffcodeContext ctx;
    ctx.runtime = this;
    ctx.site = dep.site;
    ctx.oobChannel = dep.oob;
    ctx.resource = dep.resource;
    Status initialized = fresh->doInitialize(ctx);
    if (!initialized)
        return initialized;
    fresh->restoreState(dep.restartSnapshot);
    Status started = fresh->doStart();
    if (!started)
        return started;

    // Cutover: swap instances, then hand every quiesced endpoint to
    // the successor — reinstalling the handlers drains the backlog
    // that queued during the outage into it, in arrival order. The
    // retired instance stays alive until after the rebind (the
    // endpoints match on its pointer).
    std::unique_ptr<Offcode> retired = std::move(dep.instance);
    dep.instance = std::move(fresh);
    if (retired)
        executive_->rebindOffcode(*retired, *dep.instance);
    dep.outage = false;
    dep.restartSnapshot.clear();
    ++dep.restarts;
    obs::counter("offcode.restarts", {{"offcode", bindname}}).increment();
    chaos::ChaosEngine::recordRecovery("offcode_restart");
    LOG_INFO << bindname << ": restarted with state handoff (#"
             << dep.restarts << ")";
    return Status::success();
}

Status
Runtime::restartOffcode(const std::string &bindname)
{
    auto it = deployed_.find(bindname);
    if (it == deployed_.end())
        return Status(ErrorCode::NotFound,
                      "offcode not deployed: " + bindname);
    Deployed &dep = it->second;
    if (!dep.outage)
        beginOffcodeOutage(bindname, dep);
    return completeOffcodeRestart(bindname, dep);
}

void
Runtime::scheduleWatchdog()
{
    if (config_.watchdogLimitNs == 0)
        return;
    const sim::SimTime period = config_.watchdogPeriodNs > 0
                                    ? config_.watchdogPeriodNs
                                    : sim::seconds(1);
    machine_.executor().schedule(period, [this, alive = alive_]() {
        if (!*alive)
            return;
        watchdogSweep();
        scheduleWatchdog();
    });
}

void
Runtime::watchdogSweep()
{
    const sim::SimTime now = machine_.executor().now();
    std::vector<std::string> wedged;
    for (auto &[bindname, dep] : deployed_) {
        if (!dep.instance || dep.outage)
            continue;
        if (dep.instance->state() != OffcodeState::Started)
            continue;
        const OffcodeTelemetry &telemetry = dep.instance->telemetry();
        const sim::SimTime age = telemetry.messagesProcessed() > 0
                                     ? now - telemetry.lastActivityAt
                                     : now;
        if (age < config_.watchdogLimitNs)
            continue;
        // Silent with nothing waiting is idle, not wedged.
        if (executive_->queuedFor(*dep.instance) == 0)
            continue;
        wedged.push_back(bindname);
    }
    for (const std::string &bindname : wedged) {
        LOG_WARN << "watchdog: " << bindname
                 << " silent with backlog; killing and restarting";
        obs::counter("offcode.watchdog_kills", {{"offcode", bindname}})
            .increment();
        Status restarted = restartOffcode(bindname);
        if (restarted)
            chaos::ChaosEngine::recordRecovery("watchdog_kill");
        else
            LOG_ERROR << "watchdog: restart of " << bindname
                      << " failed: " << restarted.error().describe();
    }
}

Status
Runtime::invokeAsync(const std::string &bindname, const std::string &method,
                     const Bytes &arguments,
                     Proxy::ReturnCallback on_return)
{
    auto it = deployed_.find(bindname);
    if (it == deployed_.end())
        return Status(ErrorCode::NotFound,
                      "offcode not deployed: " + bindname);
    Deployed &dep = it->second;
    if (!dep.oob)
        return Status(ErrorCode::ChannelNotConnected,
                      bindname + " has no OOB channel");
    if (!dep.controlProxy)
        dep.controlProxy = std::make_unique<Proxy>(
            *dep.oob, dep.instance->guid(), dep.instance->guid());
    return dep.controlProxy->invoke(method, arguments,
                                    std::move(on_return));
}

IntrospectionSnapshot
Runtime::introspect() const
{
    IntrospectionSnapshot snap;
    snap.machine = machine_.name();
    snap.now = machine_.executor().now();
    for (const auto &[bindname, dep] : deployed_) {
        if (!dep.instance)
            continue;
        OffcodeIntrospection oc;
        oc.bindname = bindname;
        oc.site = dep.site ? dep.site->name() : "";
        oc.isHost = !dep.site || dep.site->isHost();
        oc.state = offcodeStateName(dep.instance->state());
        oc.telemetry = dep.instance->telemetry();
        oc.watchdogAgeNs =
            oc.telemetry.messagesProcessed() > 0
                ? snap.now - oc.telemetry.lastActivityAt
                : snap.now;
        if (dep.oob) {
            oc.oobQueued = dep.oob->queuedFor(*dep.instance);
            oc.oobDelivered = dep.oob->stats().messagesDelivered;
        }
        snap.offcodes.push_back(std::move(oc));
    }
    return snap;
}

std::string
Runtime::introspectJson() const
{
    const IntrospectionSnapshot snap = introspect();
    std::ostringstream out;
    out << "{\"machine\":";
    obs::writeJsonString(out, snap.machine);
    out << ",\"now_ns\":" << snap.now << ",\"offcodes\":[";
    bool first = true;
    for (const OffcodeIntrospection &oc : snap.offcodes) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"bindname\":";
        obs::writeJsonString(out, oc.bindname);
        out << ",\"site\":";
        obs::writeJsonString(out, oc.site);
        out << ",\"is_host\":" << (oc.isHost ? "true" : "false")
            << ",\"state\":";
        obs::writeJsonString(out, oc.state);
        out << ",\"calls_handled\":" << oc.telemetry.callsHandled
            << ",\"data_handled\":" << oc.telemetry.dataHandled
            << ",\"mgmt_handled\":" << oc.telemetry.mgmtHandled
            << ",\"invoke_errors\":" << oc.telemetry.invokeErrors
            << ",\"busy_ns\":" << oc.telemetry.busyNs
            << ",\"watchdog_age_ns\":" << oc.watchdogAgeNs
            << ",\"oob_queued\":" << oc.oobQueued
            << ",\"oob_delivered\":" << oc.oobDelivered << "}";
    }
    out << "]}";
    return out.str();
}

Result<Channel *>
Runtime::oobChannelOf(const std::string &bindname)
{
    auto it = deployed_.find(bindname);
    if (it == deployed_.end())
        return Error(ErrorCode::NotFound,
                     "offcode not deployed: " + bindname);
    if (!it->second.oob)
        return Error(ErrorCode::ChannelNotConnected, "no OOB channel");
    return it->second.oob;
}

} // namespace hydra::core
