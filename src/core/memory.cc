#include "core/memory.hh"

namespace hydra::core {

PinnedRegion::PinnedRegion(MemoryManager *manager, std::uint64_t token,
                           hw::Addr base, std::size_t bytes)
    : manager_(manager), token_(token), base_(base), bytes_(bytes)
{
}

PinnedRegion::~PinnedRegion()
{
    reset();
}

PinnedRegion::PinnedRegion(PinnedRegion &&other) noexcept
    : manager_(other.manager_), token_(other.token_), base_(other.base_),
      bytes_(other.bytes_)
{
    other.manager_ = nullptr;
}

PinnedRegion &
PinnedRegion::operator=(PinnedRegion &&other) noexcept
{
    if (this != &other) {
        reset();
        manager_ = other.manager_;
        token_ = other.token_;
        base_ = other.base_;
        bytes_ = other.bytes_;
        other.manager_ = nullptr;
    }
    return *this;
}

void
PinnedRegion::reset()
{
    if (manager_) {
        manager_->unpin(token_);
        manager_ = nullptr;
    }
}

MemoryManager::MemoryManager(hw::OsKernel &os, std::size_t pin_limit_bytes)
    : os_(os), pinLimit_(pin_limit_bytes)
{
}

hw::Addr
MemoryManager::allocBuffer(std::size_t bytes)
{
    return os_.allocRegion(bytes);
}

Result<PinnedRegion>
MemoryManager::pin(hw::Addr base, std::size_t bytes)
{
    if (bytes == 0)
        return Error(ErrorCode::InvalidArgument, "cannot pin zero bytes");
    if (pinnedBytes_ + bytes > pinLimit_)
        return Error(ErrorCode::ResourceExhausted,
                     "pinned-memory limit exceeded");

    // Pinning walks page tables: charge a small syscall-class cost.
    os_.syscall(200 + bytes / 4096 * 50);

    const std::uint64_t token = nextToken_++;
    pins_[token] = bytes;
    pinnedBytes_ += bytes;
    return PinnedRegion(this, token, base, bytes);
}

void
MemoryManager::unpin(std::uint64_t token)
{
    auto it = pins_.find(token);
    if (it == pins_.end())
        return;
    pinnedBytes_ -= it->second;
    pins_.erase(it);
}

} // namespace hydra::core
