/**
 * @file
 * Hierarchical resource management (paper Section 4): "Resources are
 * managed hierarchically to allow for robust clean-up of child
 * resources in the case of a failing parent object."
 *
 * Every runtime object (Offcode, channel, pinned region, loader
 * allocation) registers as a node under a parent; releasing a node
 * releases its whole subtree, children first, running each node's
 * release action exactly once.
 */

#ifndef HYDRA_CORE_RESOURCE_HH
#define HYDRA_CORE_RESOURCE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hh"

namespace hydra::core {

/** Handle to a managed resource node. */
using ResourceId = std::uint64_t;

constexpr ResourceId kNoResource = 0;

/** Tree of resources with cascading release. */
class ResourceManager
{
  public:
    ResourceManager();

    /** The implicit root every top-level resource hangs off. */
    ResourceId root() const { return rootId_; }

    /**
     * Register a resource under @p parent. @p on_release runs when
     * the node (or any ancestor) is released.
     */
    Result<ResourceId> create(ResourceId parent, std::string kind,
                              std::string name,
                              std::function<void()> on_release = {});

    /** Release a node and its subtree (children first). */
    Status release(ResourceId id);

    /** Number of live resources (excluding the root). */
    std::size_t activeCount() const { return nodes_.size() - 1; }

    bool exists(ResourceId id) const { return nodes_.count(id) != 0; }

    /** Kind/name of a live node (for diagnostics and tests). */
    Result<std::string> describe(ResourceId id) const;

    /** Direct children of a node. */
    std::vector<ResourceId> childrenOf(ResourceId id) const;

  private:
    struct Node
    {
        ResourceId parent = kNoResource;
        std::string kind;
        std::string name;
        std::function<void()> onRelease;
        std::vector<ResourceId> children;
    };

    void releaseSubtree(ResourceId id);

    std::unordered_map<ResourceId, Node> nodes_;
    ResourceId rootId_ = 1;
    ResourceId nextId_ = 2;
};

} // namespace hydra::core

#endif // HYDRA_CORE_RESOURCE_HH
