#include "core/providers.hh"

#include <algorithm>

#include "chaos/chaos.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::core {

namespace {

/** Per-transport send instruments (issue: latency per channel type). */
struct TransportMetrics
{
    obs::Counter &sent;
    obs::Counter &bytes;
    obs::Counter &dropped;
    obs::LatencyHistogram &latencyNs;

    explicit TransportMetrics(const char *transport)
        : sent(obs::counter("channel.messages_sent",
                            {{"transport", transport}})),
          bytes(obs::counter("channel.bytes_sent",
                             {{"transport", transport}})),
          dropped(obs::counter("channel.messages_dropped",
                               {{"transport", transport}})),
          latencyNs(obs::histogram("channel.send_latency_ns",
                                   {{"transport", transport}}))
    {
    }
};

/**
 * Message-buffer copies performed by the channel layer, by buffering
 * mode. The zero-copy counter exists so its absence of increments is
 * observable: every hop shares one refcounted Payload, so the
 * zero-copy path performs no copies per delivery (asserted by the
 * TiVo integration test). Copying mode stages a copy into the ring
 * slot on send and out of it on receive, exactly as modeled by
 * OsKernel::copyBytes.
 */
struct CopyMetrics
{
    obs::Counter &zeroCopy = obs::counter(
        "channel.payload_copies", {{"buffering", "zero-copy"}});
    obs::Counter &copying = obs::counter(
        "channel.payload_copies", {{"buffering", "copying"}});
};

CopyMetrics &
copyMetrics()
{
    static CopyMetrics metrics;
    return metrics;
}

TransportMetrics &
localMetrics()
{
    static TransportMetrics metrics("local");
    return metrics;
}

TransportMetrics &
ringMetrics()
{
    static TransportMetrics metrics("dma-ring");
    return metrics;
}

} // namespace

namespace {

/** Transport cost constants shared by the ring channel. */
struct RingCosts
{
    std::uint64_t hostDescriptorCycles = 400;
    std::uint64_t deviceDescriptorCycles = 300;
    std::uint64_t deviceRxCycles = 500;
    std::uint64_t hostRxCopySetupCycles = 250;
    sim::SimTime localLatency = sim::nanoseconds(600);
};

/** Both endpoints live on the same execution locus. */
class LocalChannel : public Channel
{
  public:
    LocalChannel(ChannelConfig config, exec::Executor &executor)
        : Channel(std::move(config)), exec_(executor)
    {
    }

    Status
    writeFrom(std::size_t from, Payload message) override
    {
        if (closed_)
            return Status(ErrorCode::ChannelClosed, "channel closed");
        if (from >= endpoints_.size())
            return Status(ErrorCode::OutOfRange, "bad endpoint");
        if (endpoints_.size() < 2)
            return Status(ErrorCode::ChannelNotConnected,
                          "no peer endpoint");
        if (message.size() > config_.maxMessageBytes)
            return Status(ErrorCode::MessageTooLarge, "message too large");
        if (chaos::ChaosEngine::instance().exhaustPool(exec_.now()))
            return Status(ErrorCode::OutOfMemory,
                          "chaos: payload pool exhausted");

        ++stats_.messagesSent;
        stats_.bytesSent += message.size();
        localMetrics().sent.increment();
        localMetrics().bytes.add(message.size());

        // Enqueue costs a little compute at the sender's site.
        if (endpoints_[from].site)
            endpoints_[from].site->run(250);

        const sim::SimTime sentAt = exec_.now();
        // Capture the sender's causal context; delivery runs later
        // from the scheduler with an empty one.
        const obs::SpanContext ctx = obs::activeContext();
        for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
            if (ep == from)
                continue;
            // The lambda shares the sender's buffer (refcount bump);
            // every destination of a fan-out sees the same bytes.
            exec_.schedule(
                costs_.localLatency,
                [this, ep, from, sentAt, ctx,
                 msg = message]() {
                    const sim::SimTime deliveredAt = exec_.now();
                    localMetrics().latencyNs.record(deliveredAt - sentAt);
                    obs::ContextScope scope(ctx);
                    obs::Span span;
                    ExecutionSite *dst = endpoints_[ep].site;
                    if (HYDRA_TRACE_ACTIVE() && dst)
                        span.open(dst->machine().name(), dst->name(),
                                  "channel.send", "channel", sentAt);
                    span.end(deliveredAt);
                    deliverTo(ep, msg, from, sentAt, deliveredAt);
                });
        }
        return Status::success();
    }

    Status
    writeBatchFrom(std::size_t from, std::span<Payload> messages) override
    {
        if (messages.empty())
            return Status::success();
        if (closed_)
            return Status(ErrorCode::ChannelClosed, "channel closed");
        if (from >= endpoints_.size())
            return Status(ErrorCode::OutOfRange, "bad endpoint");
        if (endpoints_.size() < 2)
            return Status(ErrorCode::ChannelNotConnected,
                          "no peer endpoint");
        // Writes are all-or-stop-at-first-failure: send the valid
        // prefix, then report the offender (matches the base loop).
        std::size_t valid = 0;
        std::size_t bytes = 0;
        while (valid < messages.size() &&
               messages[valid].size() <= config_.maxMessageBytes)
            bytes += messages[valid++].size();

        if (valid > 0) {
            stats_.messagesSent += valid;
            stats_.bytesSent += bytes;
            localMetrics().sent.add(valid);
            localMetrics().bytes.add(bytes);

            // Enqueue compute per message (identical charge to the
            // unbatched path: run() accrues site busy time without
            // advancing the clock, so a batch write costs the same
            // cycles and stamps the same sentAt as N single writes).
            if (endpoints_[from].site)
                endpoints_[from].site->run(250 * valid);

            const sim::SimTime sentAt = exec_.now();
            const obs::SpanContext ctx = obs::activeContext();
            auto batch = std::make_shared<std::vector<Payload>>();
            batch->reserve(valid);
            for (std::size_t i = 0; i < valid; ++i)
                batch->push_back(std::move(messages[i]));
            for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
                if (ep == from)
                    continue;
                // ONE scheduled event (and one clock resolve on
                // arrival) delivers the whole batch to this
                // destination; every destination shares the same
                // refcounted buffers.
                exec_.schedule(
                    costs_.localLatency,
                    [this, ep, from, sentAt, ctx, batch]() {
                        const sim::SimTime deliveredAt = exec_.now();
                        for (std::size_t i = 0; i < batch->size(); ++i)
                            localMetrics().latencyNs.record(deliveredAt -
                                                            sentAt);
                        obs::ContextScope scope(ctx);
                        obs::Span span;
                        ExecutionSite *dst = endpoints_[ep].site;
                        if (HYDRA_TRACE_ACTIVE() && dst)
                            span.open(dst->machine().name(), dst->name(),
                                      "channel.send", "channel", sentAt);
                        span.end(deliveredAt);
                        deliverBatchTo(ep, *batch, from, sentAt,
                                       deliveredAt);
                    });
            }
        }
        if (valid < messages.size())
            return Status(ErrorCode::MessageTooLarge, "message too large");
        return Status::success();
    }

  private:
    exec::Executor &exec_;
    RingCosts costs_;
};

/**
 * The paper's zero-copy channel: per-destination descriptor rings,
 * pre-posted buffers, device DMA, host interrupts.
 */
class RingChannel : public Channel
{
  public:
    RingChannel(ChannelConfig config, exec::Executor &executor,
                bool bus_multicast)
        : Channel(std::move(config)), exec_(executor),
          busMulticast_(bus_multicast)
    {
        // Register both buffering-mode copy counters up front so a
        // zero-copy run exports an observable 0, not an absent metric.
        copyMetrics();
    }

    Result<std::size_t>
    addEndpoint(ExecutionSite &site) override
    {
        auto index = Channel::addEndpoint(site);
        if (!index)
            return index;
        EpState state;
        if (site.isHost()) {
            // Host endpoints own ring buffers in host memory (the
            // InRing/OutRing of Fig. 6) plus a user-visible buffer
            // for Copying mode.
            hw::OsKernel &os = site.machine().os();
            state.ringBuffer = os.allocRegion(config_.ringDepth *
                                              config_.maxMessageBytes);
            state.userBuffer = os.allocRegion(config_.maxMessageBytes);
        }
        state_.push_back(state);
        return index;
    }

    Status
    writeFrom(std::size_t from, Payload message) override
    {
        if (closed_)
            return Status(ErrorCode::ChannelClosed, "channel closed");
        if (from >= endpoints_.size())
            return Status(ErrorCode::OutOfRange, "bad endpoint");
        if (endpoints_.size() < 2)
            return Status(ErrorCode::ChannelNotConnected,
                          "no peer endpoint");
        if (message.size() > config_.maxMessageBytes)
            return Status(ErrorCode::MessageTooLarge, "message too large");
        if (chaos::ChaosEngine::instance().exhaustPool(exec_.now()))
            return Status(ErrorCode::OutOfMemory,
                          "chaos: payload pool exhausted");

        ++stats_.messagesSent;
        stats_.bytesSent += message.size();
        ringMetrics().sent.increment();
        ringMetrics().bytes.add(message.size());
        const sim::SimTime sentAt = exec_.now();

        // Sender-side descriptor preparation.
        ExecutionSite *src = endpoints_[from].site;
        if (src->isHost()) {
            hw::Machine &machine = src->machine();
            machine.cpu().runCycles(costs_.hostDescriptorCycles);
            if (config_.buffering == ChannelConfig::Buffering::Copying) {
                // Staged copy into the ring slot (pollutes L2).
                copyMetrics().copying.increment();
                EpState &st = state_[from];
                const hw::Addr slot =
                    st.ringBuffer +
                    st.slot * config_.maxMessageBytes;
                st.slot = (st.slot + 1) % config_.ringDepth;
                machine.os().copyBytes(st.userBuffer, slot,
                                       message.size());
            }
        } else {
            src->run(costs_.deviceDescriptorCycles);
        }

        // One multicast bus transaction can cover all device
        // destinations when the fabric supports it.
        const obs::SpanContext ctx = obs::activeContext();
        bool sharedCrossingCharged = false;
        for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
            if (ep == from)
                continue;
            const bool charge =
                !busMulticast_ || !sharedCrossingCharged ||
                endpoints_[ep].site->isHost();
            transport(from, ep, {&message, 1}, charge, sentAt, ctx);
            if (!endpoints_[ep].site->isHost())
                sharedCrossingCharged = true;
        }
        return Status::success();
    }

    Status
    writeBatchFrom(std::size_t from, std::span<Payload> messages) override
    {
        if (messages.empty())
            return Status::success();
        if (closed_)
            return Status(ErrorCode::ChannelClosed, "channel closed");
        if (from >= endpoints_.size())
            return Status(ErrorCode::OutOfRange, "bad endpoint");
        if (endpoints_.size() < 2)
            return Status(ErrorCode::ChannelNotConnected,
                          "no peer endpoint");
        std::size_t valid = 0;
        std::size_t bytes = 0;
        while (valid < messages.size() &&
               messages[valid].size() <= config_.maxMessageBytes)
            bytes += messages[valid++].size();

        if (valid > 0) {
            stats_.messagesSent += valid;
            stats_.bytesSent += bytes;
            ringMetrics().sent.add(valid);
            ringMetrics().bytes.add(bytes);
            const sim::SimTime sentAt = exec_.now();

            // Sender-side descriptor preparation: the CPU still
            // builds one descriptor per message (the batch saves
            // doorbells and bus turnarounds, not descriptor writes).
            ExecutionSite *src = endpoints_[from].site;
            if (src->isHost()) {
                hw::Machine &machine = src->machine();
                machine.cpu().runCycles(costs_.hostDescriptorCycles *
                                        valid);
                if (config_.buffering ==
                    ChannelConfig::Buffering::Copying) {
                    copyMetrics().copying.add(valid);
                    EpState &st = state_[from];
                    for (std::size_t i = 0; i < valid; ++i) {
                        const hw::Addr slot =
                            st.ringBuffer +
                            st.slot * config_.maxMessageBytes;
                        st.slot = (st.slot + 1) % config_.ringDepth;
                        machine.os().copyBytes(st.userBuffer, slot,
                                               messages[i].size());
                    }
                }
            } else {
                src->run(costs_.deviceDescriptorCycles * valid);
            }

            const obs::SpanContext ctx = obs::activeContext();
            bool sharedCrossingCharged = false;
            for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
                if (ep == from)
                    continue;
                const bool charge =
                    !busMulticast_ || !sharedCrossingCharged ||
                    endpoints_[ep].site->isHost();
                transport(from, ep, messages.first(valid), charge,
                          sentAt, ctx);
                if (!endpoints_[ep].site->isHost())
                    sharedCrossingCharged = true;
            }
        }
        if (valid < messages.size())
            return Status(ErrorCode::MessageTooLarge, "message too large");
        return Status::success();
    }

  private:
    /** A sender's (possibly partial) batch awaiting descriptors. */
    struct BacklogEntry
    {
        std::size_t from = 0;
        std::vector<Payload> messages; ///< share the sender's buffers
        sim::SimTime sentAt = 0;
        obs::SpanContext ctx;
    };

    struct EpState
    {
        std::size_t inFlight = 0;
        std::deque<BacklogEntry> backlog;
        hw::Addr ringBuffer = 0;
        hw::Addr userBuffer = 0;
        std::size_t slot = 0;
    };

    /**
     * Move one sender's batch from endpoint @p from to @p to. The
     * prefix that fits the destination's free descriptors travels as
     * ONE descriptor chain (one DMA program, one bus transaction, one
     * completion interrupt); the remainder backpressures as a single
     * backlog entry (reliable) or drops (unreliable).
     */
    void
    transport(std::size_t from, std::size_t to,
              std::span<const Payload> messages, bool charge_bus,
              sim::SimTime sent_at, const obs::SpanContext &ctx)
    {
        EpState &dst_state = state_[to];
        std::size_t avail =
            config_.ringDepth > dst_state.inFlight
                ? config_.ringDepth - dst_state.inFlight
                : 0;
        // Chaos: pretend the consumer has not freed any descriptors
        // this cycle. Only legal while completions are in flight —
        // the backlog drains exclusively from completeDelivery(), so
        // an empty ring forced shut would never reopen.
        if (avail > 0 && dst_state.inFlight > 0 &&
            chaos::ChaosEngine::instance().overflowRing(exec_.now()))
            avail = 0;
        const std::size_t fit = std::min(avail, messages.size());
        if (fit < messages.size()) {
            const std::size_t excess = messages.size() - fit;
            if (config_.reliable) {
                BacklogEntry entry;
                entry.from = from;
                entry.messages.assign(messages.begin() + fit,
                                      messages.end());
                entry.sentAt = sent_at;
                entry.ctx = ctx;
                dst_state.backlog.push_back(std::move(entry));
            } else {
                stats_.messagesDropped += excess;
                ringMetrics().dropped.add(excess);
            }
        }
        if (fit == 0)
            return;
        dst_state.inFlight += fit;
        startDma(from, to,
                 std::vector<Payload>(messages.begin(),
                                      messages.begin() + fit),
                 charge_bus, sent_at, ctx);
    }

    void
    startDma(std::size_t from, std::size_t to,
             std::vector<Payload> messages, bool charge_bus,
             sim::SimTime sent_at, const obs::SpanContext &ctx)
    {
        ExecutionSite *src = endpoints_[from].site;
        ExecutionSite *dst = endpoints_[to].site;
        std::size_t bytes = 0;
        for (const Payload &message : messages)
            bytes += message.size();

        // The completion closure holds references, not copies.
        auto finish = [this, from, to, sent_at, ctx,
                       msgs = std::move(messages)]() {
            completeDelivery(from, to, msgs, sent_at, ctx);
        };

        // Pick the bus-mastering engine: the device side of the pair.
        dev::Device *engineOwner =
            src->device() ? src->device() : dst->device();

        if (!engineOwner) {
            // Host-to-host ring: no bus, a kernel handoff.
            src->machine().cpu().runCycles(costs_.hostRxCopySetupCycles);
            exec_.schedule(costs_.localLatency, std::move(finish));
            return;
        }
        if (!charge_bus) {
            // Covered by a multicast transaction charged already.
            exec_.schedule(sim::microseconds(1), std::move(finish));
            return;
        }
        // One bus transaction moves the whole descriptor chain.
        ++stats_.busCrossings;
        engineOwner->dma().start(bytes, std::move(finish));
    }

    void
    completeDelivery(std::size_t from, std::size_t to,
                     const std::vector<Payload> &messages,
                     sim::SimTime sent_at, const obs::SpanContext &ctx)
    {
        ExecutionSite *dst = endpoints_[to].site;
        EpState &dst_state = state_[to];

        for (std::size_t i = 0; i < messages.size(); ++i)
            ringMetrics().latencyNs.record(exec_.now() - sent_at);
        obs::ContextScope scope(ctx);
        obs::Span span;
        if (HYDRA_TRACE_ACTIVE() && dst)
            span.open(dst->machine().name(), dst->name(),
                      "channel.send", "channel", sent_at);

        if (dst->isHost()) {
            hw::Machine &machine = dst->machine();
            for (const Payload &message : messages) {
                const hw::Addr slot =
                    dst_state.ringBuffer +
                    dst_state.slot * config_.maxMessageBytes;
                dst_state.slot = (dst_state.slot + 1) % config_.ringDepth;
                machine.os().dmaDelivered(slot, message.size());
                if (config_.buffering ==
                    ChannelConfig::Buffering::Copying) {
                    // Copy out of the ring into the user buffer.
                    copyMetrics().copying.increment();
                    machine.os().copyBytes(slot, dst_state.userBuffer,
                                           message.size());
                }
            }
            // Interrupt coalescing falls out of the descriptor chain:
            // one completion interrupt covers the whole batch.
            machine.os().handleInterrupt();
        } else {
            dst->run(costs_.deviceRxCycles * messages.size());
        }

        // The clock may have advanced past the entry read (device RX
        // cycles, interrupt handling); stamp delivery at this instant
        // and hand it down so the channel needn't re-read the clock.
        const sim::SimTime deliveredAt = exec_.now();
        span.end(deliveredAt);
        deliverBatchTo(to, messages, from, sent_at, deliveredAt);

        // Descriptors recycled; refill them from the backlog,
        // batch-aware: each drained entry keeps its own batch shape
        // (and DMA chain) up to the descriptors actually free.
        dst_state.inFlight -= std::min(dst_state.inFlight,
                                       messages.size());
        while (!dst_state.backlog.empty() &&
               dst_state.inFlight < config_.ringDepth) {
            BacklogEntry &entry = dst_state.backlog.front();
            const std::size_t avail =
                config_.ringDepth - dst_state.inFlight;
            if (entry.messages.size() <= avail) {
                BacklogEntry whole = std::move(entry);
                dst_state.backlog.pop_front();
                dst_state.inFlight += whole.messages.size();
                startDma(whole.from, to, std::move(whole.messages), true,
                         whole.sentAt, whole.ctx);
            } else {
                // Split: launch the prefix that fits, keep the rest
                // queued at the front (order preserved).
                std::vector<Payload> prefix(
                    entry.messages.begin(),
                    entry.messages.begin() + avail);
                entry.messages.erase(entry.messages.begin(),
                                     entry.messages.begin() + avail);
                dst_state.inFlight += prefix.size();
                startDma(entry.from, to, std::move(prefix), true,
                         entry.sentAt, entry.ctx);
            }
        }
    }

    exec::Executor &exec_;
    bool busMulticast_;
    RingCosts costs_;
    std::vector<EpState> state_;
};

} // namespace

LocalChannelProvider::LocalChannelProvider(exec::Executor &executor)
    : exec_(executor)
{
}

bool
LocalChannelProvider::canServe(const ChannelConfig &config,
                               ExecutionSite &creator,
                               ExecutionSite *target) const
{
    (void)config;
    if (!target)
        return true; // connectionless until attached
    return target == &creator ||
           (creator.isHost() && target->isHost() &&
            &creator.machine() == &target->machine());
}

ChannelCost
LocalChannelProvider::estimateCost(const ChannelConfig &config,
                                   ExecutionSite &creator,
                                   ExecutionSite *target,
                                   std::size_t bytes) const
{
    (void)config;
    (void)creator;
    (void)target;
    (void)bytes;
    return ChannelCost{sim::nanoseconds(800), 40.0};
}

std::unique_ptr<Channel>
LocalChannelProvider::create(const ChannelConfig &config,
                             ExecutionSite &creator)
{
    auto channel = std::make_unique<LocalChannel>(config, exec_);
    channel->connectCreator(creator);
    return channel;
}

DmaRingChannelProvider::DmaRingChannelProvider(exec::Executor &executor,
                                               bool bus_multicast)
    : exec_(executor), busMulticast_(bus_multicast)
{
}

bool
DmaRingChannelProvider::canServe(const ChannelConfig &config,
                                 ExecutionSite &creator,
                                 ExecutionSite *target) const
{
    (void)config;
    if (!target)
        return true; // connectionless until attached
    // The ring transport spans any site pair on ONE machine: the
    // descriptor rings and DMA engine live on the creator's bus.
    // Cross-machine pairs belong to the fleet's remote provider.
    return &creator.machine() == &target->machine();
}

ChannelCost
DmaRingChannelProvider::estimateCost(const ChannelConfig &config,
                                     ExecutionSite &creator,
                                     ExecutionSite *target,
                                     std::size_t bytes) const
{
    ChannelCost cost;
    const bool crossing =
        !target || target->device() != creator.device() ||
        creator.device() == nullptr;
    cost.perMessageLatency =
        crossing ? sim::microseconds(6) : sim::microseconds(1);
    cost.throughputGbps = creator.machine().bus().bandwidthGbps();
    if (config.buffering == ChannelConfig::Buffering::Copying)
        cost.perMessageLatency += sim::nanoseconds(bytes);
    return cost;
}

std::unique_ptr<Channel>
DmaRingChannelProvider::create(const ChannelConfig &config,
                               ExecutionSite &creator)
{
    auto channel =
        std::make_unique<RingChannel>(config, exec_, busMulticast_);
    channel->connectCreator(creator);
    return channel;
}

} // namespace hydra::core
