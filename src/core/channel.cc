#include "core/channel.hh"

#include "common/logging.hh"
#include "core/call.hh"
#include "core/offcode.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace hydra::core {

Status
ChannelHandle::write(Payload message)
{
    if (!channel)
        return Status(ErrorCode::ChannelNotConnected, "null handle");
    return channel->writeFrom(endpoint, std::move(message));
}

void
ChannelHandle::install(std::function<void(const Payload &)> handler)
{
    if (!channel)
        return;
    channel->installHandler(endpoint,
                            [handler = std::move(handler)](
                                const Payload &message, std::size_t) {
                                handler(message);
                            });
}

Channel::Channel(ChannelConfig config) : config_(std::move(config)) {}

Channel::~Channel() = default;

void
Channel::recordDelivery(const Endpoint &ep, sim::SimTime sentAt,
                        sim::SimTime deliveredAt)
{
    if (!deliveryLatency_ || !ep.site)
        return;
    if (deliveredAt == 0)
        deliveredAt = ep.site->machine().executor().now();
    deliveryLatency_->record(deliveredAt >= sentAt ? deliveredAt - sentAt
                                                   : 0);
}

void
Channel::installHandler(std::size_t endpoint, Handler handler)
{
    if (endpoint >= endpoints_.size())
        return;
    Endpoint &ep = endpoints_[endpoint];
    ep.handler = std::move(handler);
    // Drain anything queued before the handler arrived, each message
    // under the causal context it was delivered with.
    while (ep.handler && !ep.queue.empty()) {
        Queued queued = std::move(ep.queue.front());
        ep.queue.pop_front();
        recordDelivery(ep, queued.sentAt);
        obs::ContextScope scope(queued.ctx);
        ep.handler(queued.message, SIZE_MAX);
    }
}

Result<Payload>
Channel::poll(std::size_t endpoint)
{
    if (endpoint >= endpoints_.size())
        return Error(ErrorCode::OutOfRange, "bad endpoint");
    Endpoint &ep = endpoints_[endpoint];
    if (ep.queue.empty())
        return Error(ErrorCode::NotFound, "no message pending");
    // Polling is a pull model: the caller owns its own causal scope,
    // so the stored context is dropped here.
    recordDelivery(ep, ep.queue.front().sentAt);
    Payload message = std::move(ep.queue.front().message);
    ep.queue.pop_front();
    return message;
}

std::size_t
Channel::pollBatch(std::size_t endpoint, std::vector<Payload> &out,
                   std::size_t max)
{
    if (endpoint >= endpoints_.size() || max == 0)
        return 0;
    Endpoint &ep = endpoints_[endpoint];
    if (ep.queue.empty())
        return 0;
    // One clock read covers the whole drained backlog; per-item
    // latency still varies because each entry carries its own sentAt.
    sim::SimTime deliveredAt = 0;
    if (deliveryLatency_ && ep.site)
        deliveredAt = ep.site->machine().executor().now();
    std::size_t drained = 0;
    while (drained < max && !ep.queue.empty()) {
        recordDelivery(ep, ep.queue.front().sentAt, deliveredAt);
        out.push_back(std::move(ep.queue.front().message));
        ep.queue.pop_front();
        ++drained;
    }
    return drained;
}

ExecutionSite *
Channel::siteOf(std::size_t endpoint) const
{
    return endpoint < endpoints_.size() ? endpoints_[endpoint].site
                                        : nullptr;
}

std::size_t
Channel::queuedFor(const Offcode &offcode) const
{
    std::size_t total = 0;
    for (const Endpoint &ep : endpoints_)
        if (ep.offcode == &offcode)
            total += ep.queue.size();
    return total;
}

Result<std::size_t>
Channel::addEndpoint(ExecutionSite &site)
{
    if (closed_)
        return Error(ErrorCode::ChannelClosed, "channel closed");
    if (config_.type == ChannelConfig::Type::Unicast &&
        endpoints_.size() >= 2)
        return Error(ErrorCode::Unsupported,
                     "unicast channel already has two endpoints");
    // The first endpoint is the creator's: bind the latency series
    // here (not in the constructor) so it carries the creator's host.
    if (endpoints_.empty() && !config_.name.empty())
        deliveryLatency_ =
            &obs::histogram("channel.delivery_latency_ns",
                            {{"channel", config_.name},
                             {"host", site.machine().name()}});
    Endpoint ep;
    ep.site = &site;
    endpoints_.push_back(std::move(ep));
    return endpoints_.size() - 1;
}

Status
Channel::connectCreator(ExecutionSite &site)
{
    if (!endpoints_.empty())
        return Status(ErrorCode::AlreadyExists,
                      "creator endpoint already exists");
    auto index = addEndpoint(site);
    if (!index)
        return index.error();
    return Status::success();
}

std::size_t
Channel::detachOffcode(const Offcode &offcode)
{
    std::size_t detached = 0;
    for (Endpoint &ep : endpoints_) {
        if (ep.offcode != &offcode)
            continue;
        ep.handler = nullptr;
        ++detached;
    }
    return detached;
}

std::size_t
Channel::rebindOffcode(const Offcode &from, Offcode &to)
{
    std::size_t rebound = 0;
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
        if (endpoints_[i].offcode != &from)
            continue;
        endpoints_[i].offcode = &to;
        to.onChannelConnected(ChannelHandle{this, i});
        // Reinstalling the default dispatch drains the outage backlog
        // into the successor, oldest first — the in-flight replay leg
        // of restart-with-state-handoff.
        installHandler(i, [this, i](const Payload &message,
                                    std::size_t sender) {
            dispatchToOffcode(i, message, sender);
        });
        ++rebound;
    }
    return rebound;
}

Status
Channel::connectOffcode(Offcode &offcode)
{
    if (!offcode.context().site)
        return Status(ErrorCode::OffcodeNotInitialized,
                      offcode.bindname() + " has no site yet");
    auto index = addEndpoint(*offcode.context().site);
    if (!index)
        return index.error();

    const std::size_t ep = index.value();
    endpoints_[ep].offcode = &offcode;
    endpoints_[ep].handler = [this, ep](const Payload &message,
                                        std::size_t from) {
        dispatchToOffcode(ep, message, from);
    };

    // Paper: attaching implicitly notifies the Offcode about the
    // newly available channel.
    offcode.onChannelConnected(ChannelHandle{this, ep});
    return Status::success();
}

void
Channel::deliverTo(std::size_t endpoint, const Payload &message,
                   std::size_t from, sim::SimTime sentAt,
                   sim::SimTime deliveredAt)
{
    if (endpoint >= endpoints_.size())
        return;
    ++stats_.messagesDelivered;
    {
        static obs::Counter &delivered =
            obs::counter("channel.messages_delivered");
        delivered.increment();
    }
    Endpoint &ep = endpoints_[endpoint];
    if (ep.handler) {
        recordDelivery(ep, sentAt, deliveredAt);
        ep.handler(message, from);
        return;
    }
    // No handler yet: latency resolves when the message is polled or
    // drained by a late-installed handler.
    ep.queue.push_back(Queued{message, obs::activeContext(), sentAt});
}

void
Channel::deliverBatchTo(std::size_t endpoint,
                        std::span<const Payload> messages,
                        std::size_t from, sim::SimTime sentAt,
                        sim::SimTime deliveredAt)
{
    if (endpoint >= endpoints_.size() || messages.empty())
        return;
    Endpoint &ep = endpoints_[endpoint];
    stats_.messagesDelivered += messages.size();
    {
        static obs::Counter &delivered =
            obs::counter("channel.messages_delivered");
        delivered.add(messages.size());
    }
    if (ep.handler) {
        // Resolve the clock once for the batch (only a named channel
        // needs it at all); each message still records individually.
        if (deliveredAt == 0 && deliveryLatency_ && ep.site)
            deliveredAt = ep.site->machine().executor().now();
        for (const Payload &message : messages) {
            recordDelivery(ep, sentAt, deliveredAt);
            ep.handler(message, from);
        }
        return;
    }
    // No handler yet: queue the batch under one captured context;
    // latency resolves at poll()/pollBatch() or handler install.
    const obs::SpanContext ctx = obs::activeContext();
    for (const Payload &message : messages)
        ep.queue.push_back(Queued{message, ctx, sentAt});
}

void
Channel::dispatchToOffcode(std::size_t endpoint, const Payload &message,
                           std::size_t from)
{
    Endpoint &ep = endpoints_[endpoint];
    Offcode *offcode = ep.offcode;
    if (!offcode)
        return;

    auto kind = peekKind(message);
    if (!kind) {
        LOG_WARN << "channel: undecodable message to "
                 << offcode->bindname();
        return;
    }

    const sim::SimTime started =
        ep.site ? ep.site->machine().executor().now() : 0;

    if (kind.value() != MessageKind::Return) {
        // Firmware OS quotas. Memory: a message that cannot fit the
        // Offcode's budget is rejected outright (and counted) — the
        // paper's "device memory is precious" made enforceable.
        const OffcodeQuota &quota = offcode->quota();
        if (quota.memoryBytes > 0 && message.size() > quota.memoryBytes) {
            obs::counter("offcode.quota_rejections",
                         {{"offcode", offcode->bindname()},
                          {"resource", "memory"}})
                .increment();
            LOG_DEBUG << offcode->bindname()
                      << ": message rejected by memory quota ("
                      << message.size() << " > " << quota.memoryBytes
                      << " bytes)";
            return;
        }
        // CPU: past the budget slice the dispatch is preempted —
        // re-offered at the next slice boundary, FIFO order preserved
        // (equal-timestamp events dispatch in insertion order).
        sim::SimTime deferUntil = 0;
        if (ep.site && !offcode->admitDispatch(started, &deferUntil)) {
            obs::counter("offcode.preemptions",
                         {{"offcode", offcode->bindname()}})
                .increment();
            ep.site->machine().executor().scheduleAt(
                deferUntil,
                [this, endpoint, msg = message, from]() {
                    dispatchToOffcode(endpoint, msg, from);
                });
            return;
        }
    }
    bool ok = true;

    // Publish this dispatch to the sampling profiler (a no-op unless
    // profiling is on); the same `finished` timestamp that feeds
    // noteDispatch closes the scope, so profiling adds no clock reads.
    obs::ActivityScope activity(ep.site ? ep.site->profilerSlot()
                                        : nullptr,
                                offcode->activityLabel(kind.value()));

    switch (kind.value()) {
      case MessageKind::Call: {
        auto call = Call::deserialize(message);
        if (!call) {
            LOG_WARN << "channel: bad Call to " << offcode->bindname();
            return;
        }
        obs::Span span;
        if (HYDRA_TRACE_ACTIVE() && ep.site)
            span.open(ep.site->machine().name(), ep.site->name(),
                      spanName(call.value()), "call", started);
        // Dispatch costs a little compute at the target site.
        if (ep.site)
            ep.site->run(400);
        Result<Bytes> result =
            offcode->supportsInterface(call.value().interfaceGuid)
                ? offcode->invoke(call.value().method,
                                  call.value().arguments)
                : Result<Bytes>(Error(
                      ErrorCode::InterfaceMismatch,
                      offcode->bindname() +
                          " does not implement interface " +
                          call.value().interfaceGuid.toString()));
        ok = static_cast<bool>(result);
        if (!call.value().expectsReturn) {
            if (ep.site)
                span.end(ep.site->run(0));
            break;
        }
        CallReturn ret;
        ret.callId = call.value().callId;
        if (result) {
            ret.ok = true;
            ret.value = std::move(result).value();
        } else {
            ret.ok = false;
            ret.error = result.error().describe();
        }
        // The Return travels inside the dispatch span, so the reply
        // is causally linked to this Call's span.
        Status written = writeFrom(endpoint, ret.serialize());
        if (!written) {
            LOG_DEBUG << "channel: return write failed: "
                      << written.error().describe();
        }
        if (ep.site)
            span.end(ep.site->run(0));
        break;
      }
      case MessageKind::Data: {
        // The body is a zero-copy slice of the delivered buffer.
        auto payload = decodeData(message);
        if (payload)
            offcode->onData(payload.value(),
                            ChannelHandle{this, endpoint});
        else
            ok = false;
        break;
      }
      case MessageKind::Management: {
        auto payload = decodeManagement(message);
        offcode->onManagement(payload ? payload.value() : Payload{},
                              ChannelHandle{this, endpoint});
        break;
      }
      case MessageKind::Return:
        // Returns flowing toward an Offcode endpoint are queued so
        // proxy-style callers on device can poll them.
        ep.queue.push_back(Queued{message, obs::activeContext(), started});
        break;
    }
    if (kind.value() != MessageKind::Return) {
        const sim::SimTime finished =
            ep.site ? ep.site->run(0) : started;
        activity.finish(finished);
        offcode->noteDispatch(kind.value(), ok, started, finished);
    }
    (void)from;
}

void
Channel::close()
{
    closed_ = true;
}

} // namespace hydra::core
