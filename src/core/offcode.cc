#include "core/offcode.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"

namespace hydra::core {

const char *
offcodeStateName(OffcodeState state)
{
    switch (state) {
      case OffcodeState::Created: return "Created";
      case OffcodeState::Initialized: return "Initialized";
      case OffcodeState::Started: return "Started";
      case OffcodeState::Stopped: return "Stopped";
      case OffcodeState::Faulted: return "Faulted";
    }
    return "Unknown";
}

Offcode::Offcode(std::string bindname)
    : bindname_(std::move(bindname)), guid_(Guid::fromName(bindname_))
{
}

std::string
Offcode::deviceAddr() const
{
    return ctx_.site ? ctx_.site->name() : std::string();
}

Status
Offcode::doInitialize(OffcodeContext context)
{
    if (state_ != OffcodeState::Created)
        return Status(ErrorCode::OffcodeAlreadyStarted,
                      bindname_ + ": initialize out of order");
    ctx_ = context;
    serviceTime_ =
        &obs::histogram("offcode.service_ns", {{"offcode", bindname_}});
    cpuNs_ = &obs::counter("offcode.cpu_ns", {{"offcode", bindname_}});
    obs::CpuAttribution::instance().registerOffcode(
        bindname_, ctx_.site ? ctx_.site->machine().executor().now() : 0);
    obs::Profiler &profiler = obs::Profiler::instance();
    callLabel_ = profiler.intern(bindname_, "call");
    dataLabel_ = profiler.intern(bindname_, "data");
    mgmtLabel_ = profiler.intern(bindname_, "mgmt");
    Status status = initialize();
    if (!status) {
        state_ = OffcodeState::Faulted;
        return status;
    }
    state_ = OffcodeState::Initialized;
    return Status::success();
}

Status
Offcode::doStart()
{
    if (state_ != OffcodeState::Initialized)
        return Status(state_ == OffcodeState::Created
                          ? ErrorCode::OffcodeNotInitialized
                          : ErrorCode::OffcodeAlreadyStarted,
                      bindname_ + ": start out of order");
    Status status = start();
    if (!status) {
        state_ = OffcodeState::Faulted;
        return status;
    }
    state_ = OffcodeState::Started;
    return Status::success();
}

void
Offcode::doStop()
{
    if (state_ == OffcodeState::Started ||
        state_ == OffcodeState::Initialized) {
        stop();
        state_ = OffcodeState::Stopped;
    }
}

Result<Bytes>
Offcode::invoke(const std::string &method, const Bytes &arguments)
{
    auto it = methods_.find(method);
    if (it == methods_.end())
        return Error(ErrorCode::NotFound,
                     bindname_ + ": no such method: " + method);
    return it->second(arguments);
}

void
Offcode::onChannelConnected(ChannelHandle channel)
{
    (void)channel;
}

void
Offcode::onData(const Payload &payload, ChannelHandle from)
{
    (void)payload;
    (void)from;
    LOG_DEBUG << bindname_ << ": unhandled data message";
}

void
Offcode::onManagement(const Payload &payload, ChannelHandle from)
{
    (void)payload;
    (void)from;
}

void
Offcode::noteDispatch(MessageKind kind, bool ok, sim::SimTime started,
                      sim::SimTime finished)
{
    switch (kind) {
      case MessageKind::Call: ++telemetry_.callsHandled; break;
      case MessageKind::Data: ++telemetry_.dataHandled; break;
      case MessageKind::Management: ++telemetry_.mgmtHandled; break;
      case MessageKind::Return: break;
    }
    if (!ok)
        ++telemetry_.invokeErrors;
    if (finished > started) {
        telemetry_.busyNs += finished - started;
        if (cpuNs_)
            cpuNs_->add(finished - started);
        // Charge the budget slice this dispatch started in.
        if (quota_.cpuBudgetNs > 0) {
            const sim::SimTime period = quota_.slicePeriodNs > 0
                                            ? quota_.slicePeriodNs
                                            : sim::milliseconds(1);
            if (started >= sliceStart_ + period) {
                sliceStart_ = started - (started - sliceStart_) % period;
                sliceUsedNs_ = 0;
            }
            sliceUsedNs_ += finished - started;
        }
    }
    if (serviceTime_)
        serviceTime_->record(finished > started ? finished - started : 0);
    telemetry_.lastActivityAt = started;
}

bool
Offcode::admitDispatch(sim::SimTime now, sim::SimTime *deferUntil)
{
    if (quota_.cpuBudgetNs == 0)
        return true;
    const sim::SimTime period =
        quota_.slicePeriodNs > 0 ? quota_.slicePeriodNs
                                 : sim::milliseconds(1);
    if (now >= sliceStart_ + period) {
        // Roll the slice window forward to the one containing `now`;
        // a fresh slice always has budget, so preemption can never
        // starve an Offcode forever.
        sliceStart_ = now - (now - sliceStart_) % period;
        sliceUsedNs_ = 0;
    }
    if (sliceUsedNs_ < quota_.cpuBudgetNs)
        return true;
    if (deferUntil)
        *deferUntil = sliceStart_ + period;
    return false;
}

const obs::ActivityLabel *
Offcode::activityLabel(MessageKind kind) const
{
    switch (kind) {
      case MessageKind::Call: return callLabel_;
      case MessageKind::Data: return dataLabel_;
      case MessageKind::Management: return mgmtLabel_;
      case MessageKind::Return: break;
    }
    return nullptr;
}

void
Offcode::registerMethod(const std::string &name, MethodFn fn)
{
    methods_[name] = std::move(fn);
}

void
Offcode::declareInterface(Guid interface_guid)
{
    if (std::find(interfaces_.begin(), interfaces_.end(),
                  interface_guid) == interfaces_.end())
        interfaces_.push_back(interface_guid);
}

bool
Offcode::supportsInterface(Guid interface_guid) const
{
    if (interfaces_.empty())
        return true; // no declaration: accept anything
    if (interface_guid == guid_ || interface_guid.isNull())
        return true; // the IOffcode identity is always available
    for (const Guid &declared : interfaces_)
        if (declared == interface_guid)
            return true;
    return false;
}

} // namespace hydra::core
