/**
 * @file
 * Transparent Offcode invocation (paper Section 3.1): a proxy with
 * the target's interface whose methods produce Call objects, send
 * them over a connected channel, and correlate the Return messages
 * back to completion callbacks. The manual scheme — building the
 * Call yourself — is available through makeCall().
 */

#ifndef HYDRA_CORE_PROXY_HH
#define HYDRA_CORE_PROXY_HH

#include <functional>
#include <map>

#include "core/call.hh"
#include "core/channel.hh"

namespace hydra::core {

/** Caller-side proxy bound to a channel's creator endpoint. */
class Proxy
{
  public:
    using ReturnCallback = std::function<void(Result<Bytes>)>;

    /**
     * @param channel Connected channel; the proxy owns endpoint
     * @p endpoint's handler (installs its own Return dispatcher).
     */
    Proxy(Channel &channel, Guid target_offcode, Guid interface_guid,
          std::size_t endpoint = 0);

    /** Transparent scheme: marshal, send, await the Return. */
    Status invoke(const std::string &method, const Bytes &arguments,
                  ReturnCallback on_return);

    /** Fire-and-forget invocation (no Return expected). */
    Status invokeOneWay(const std::string &method, const Bytes &arguments);

    /** Manual scheme: build the Call without sending it. */
    Call makeCall(const std::string &method, const Bytes &arguments,
                  bool expects_return = true);

    std::size_t pendingCalls() const { return pending_.size(); }

  private:
    /** A pending Return plus the span the Call was issued under. */
    struct Pending
    {
        ReturnCallback callback;
        obs::SpanContext ctx;
    };

    void onMessage(const Payload &message);

    Channel &channel_;
    std::size_t endpoint_;
    Guid target_;
    Guid interface_;
    std::uint64_t nextCallId_ = 1;
    std::map<std::uint64_t, Pending> pending_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_PROXY_HH
