/**
 * @file
 * Channels (paper Sections 3.2 and 4.1): bidirectional pathways
 * interconnecting Offcodes and OA-applications.
 *
 * A channel is created in two steps, mirroring the paper's API:
 * the creator configures and creates its own endpoint (index 0),
 * then attaches Offcodes with connectOffcode(), which implicitly
 * constructs an endpoint at the target's site and notifies the
 * Offcode. Delivery invokes the endpoint's installed handler, or
 * queues for poll() when none is installed.
 */

#ifndef HYDRA_CORE_CHANNEL_HH
#define HYDRA_CORE_CHANNEL_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/payload.hh"
#include "common/result.hh"
#include "core/site.hh"
#include "obs/span.hh"

namespace hydra::obs {
class Histogram;
} // namespace hydra::obs

namespace hydra::core {

class Offcode;
class Channel;

/**
 * Process-wide channel identity, assigned by the executive shard that
 * owns the channel. Ids are unique across shards (one shared
 * allocator), so fleet routing tables key on the id alone without a
 * (host, id) pair. 0 is never assigned.
 */
using ChannelId = std::uint64_t;
inline constexpr ChannelId kInvalidChannel = 0;

/** Channel configuration (paper Fig. 3). */
struct ChannelConfig
{
    enum class Type : std::uint8_t { Unicast, Multicast };
    enum class Sync : std::uint8_t { Sequential, Concurrent };
    enum class Buffering : std::uint8_t { ZeroCopy, Copying };

    Type type = Type::Unicast;
    bool reliable = true;
    /**
     * Delivery synchronization. The event-driven model executes one
     * handler at a time, so Sequential ordering is what both modes
     * provide today; Concurrent is accepted for API compatibility
     * with the paper's configuration surface.
     */
    Sync sync = Sync::Sequential;
    Buffering buffering = Buffering::ZeroCopy;

    /** Pre-posted descriptors per direction (paper Fig. 6 rings). */
    std::size_t ringDepth = 64;
    std::size_t maxMessageBytes = 64 * 1024;

    /** Target site name, as returned by Offcode GetDeviceAddr. */
    std::string targetDevice;

    /**
     * Display name for telemetry. A named channel records per-channel
     * delivery latency into `channel.delivery_latency_ns{channel=name}`
     * (write timestamp -> handler/poll); anonymous channels only feed
     * the per-transport aggregate, which bounds registry growth.
     */
    std::string name;
};

/** Per-channel delivery statistics. */
struct ChannelStats
{
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t messagesDropped = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t busCrossings = 0;
};

/** A (channel, endpoint index) pair — what an Offcode holds. */
struct ChannelHandle
{
    Channel *channel = nullptr;
    std::size_t endpoint = 0;

    bool valid() const { return channel != nullptr; }
    Status write(Payload message);
    void install(std::function<void(const Payload &)> handler);
};

/** Abstract channel; concrete transports live in providers.cc. */
class Channel
{
  public:
    /** Handler receives (message, sender endpoint index). */
    using Handler = std::function<void(const Payload &, std::size_t)>;

    explicit Channel(ChannelConfig config);
    virtual ~Channel();

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    const ChannelConfig &config() const { return config_; }
    const ChannelStats &stats() const { return stats_; }
    std::size_t numEndpoints() const { return endpoints_.size(); }

    /** Executive-assigned id; kInvalidChannel until owned by a shard. */
    ChannelId id() const { return id_; }

    /** Called once by the owning executive shard at registration. */
    void bindId(ChannelId id) { id_ = id; }

    /** Creator-side write (endpoint 0), as in the paper's examples. */
    Status write(Payload message)
    {
        return writeFrom(0, std::move(message));
    }

    /**
     * Write from any endpoint; delivered to every other endpoint.
     * The message is a shared immutable buffer: every destination,
     * scheduled lambda, and backlog entry holds a reference to the
     * same bytes — nothing on the path may mutate them.
     */
    virtual Status writeFrom(std::size_t endpoint, Payload message) = 0;

    /** Creator-side batch write (endpoint 0). */
    Status writeBatch(std::vector<Payload> messages)
    {
        return writeBatchFrom(0, messages);
    }

    /**
     * Write a batch of messages from one endpoint in a single
     * transport visit. Semantically equivalent to writing each
     * message in order; transports override it to amortize per-item
     * cost (one clock resolve, one scheduled delivery event, one DMA
     * descriptor chain per batch) while still feeding
     * channel.delivery_latency_ns per item. Stops at the first
     * failing message and reports its status; earlier messages stay
     * sent. Elements are moved from.
     */
    virtual Status
    writeBatchFrom(std::size_t endpoint, std::span<Payload> messages)
    {
        for (Payload &message : messages) {
            Status status = writeFrom(endpoint, std::move(message));
            if (!status)
                return status;
        }
        return Status::success();
    }

    /** Install a dispatch handler at the creator endpoint. */
    void installCallHandler(Handler handler)
    {
        installHandler(0, std::move(handler));
    }

    void installHandler(std::size_t endpoint, Handler handler);

    /** Non-blocking read of a queued message (no handler installed). */
    Result<Payload> poll(std::size_t endpoint);

    /**
     * Batch poll: drain up to @p max queued messages into @p out
     * (appended), resolving the clock once for the whole backlog
     * visit while still recording per-item delivery latency. Returns
     * the number drained (0 when the queue is empty).
     */
    std::size_t pollBatch(std::size_t endpoint, std::vector<Payload> &out,
                          std::size_t max);

    /**
     * Attach an Offcode: constructs its endpoint at the Offcode's
     * site, installs the default Call-dispatch handler, and notifies
     * the Offcode (paper: ConnectOffcode).
     */
    Status connectOffcode(Offcode &offcode);

    /** Create the creator endpoint (index 0); called by providers. */
    Status connectCreator(ExecutionSite &site);

    /**
     * Attach a bare endpoint at @p site — no Offcode, no default
     * dispatch; the caller installs a handler or polls. Fleet load
     * generators and tests use this to stand up high-fan-out stream
     * endpoints without deploying Offcodes. Returns the endpoint
     * index.
     */
    Result<std::size_t> connectSite(ExecutionSite &site)
    {
        return addEndpoint(site);
    }

    /**
     * Quiesce every endpoint attached to @p offcode: the dispatch
     * handler comes off, so inbound messages queue instead of
     * reaching the (dying) instance. The endpoint keeps its Offcode
     * association so a later rebindOffcode() can find it. Returns the
     * number of endpoints detached.
     */
    std::size_t detachOffcode(const Offcode &offcode);

    /**
     * Hand every endpoint attached to @p from over to @p to: the
     * endpoint's Offcode pointer swaps, @p to is notified
     * (onChannelConnected), and the default dispatch handler is
     * reinstalled — which drains the backlog that queued during the
     * outage into the new instance, in order. This is the channel
     * re-bind step of restart-with-state-handoff. Returns the number
     * of endpoints rebound.
     */
    std::size_t rebindOffcode(const Offcode &from, Offcode &to);

    /** Close the channel; subsequent writes fail ChannelClosed. */
    void close();
    bool closed() const { return closed_; }

    /** The site an endpoint executes at (nullptr if out of range). */
    ExecutionSite *siteOf(std::size_t endpoint) const;

    /** Messages queued (no handler yet) for @p offcode's endpoints. */
    std::size_t queuedFor(const Offcode &offcode) const;

  protected:
    /** A queued message plus the causal context it arrived under. */
    struct Queued
    {
        Payload message;
        obs::SpanContext ctx;
        /** Virtual time the sender wrote the message. */
        sim::SimTime sentAt = 0;
    };

    struct Endpoint
    {
        ExecutionSite *site = nullptr;
        Offcode *offcode = nullptr; ///< set for connectOffcode endpoints
        Handler handler;
        std::deque<Queued> queue;
    };

    /** Register an endpoint; providers may veto cross-site layouts. */
    virtual Result<std::size_t> addEndpoint(ExecutionSite &site);

    /**
     * Final delivery into handler or queue (updates stats).
     * @p sentAt is the write timestamp; a named channel resolves it
     * here (handler) or at poll() time into its latency histogram.
     * @p deliveredAt is the transport's already-computed clock value
     * (0 = unknown): passing it keeps the hot path free of a second
     * executor clock read, which matters on the sub-microsecond
     * zero-copy path (check.sh's <5% channel overhead gate).
     */
    void deliverTo(std::size_t endpoint, const Payload &message,
                   std::size_t from, sim::SimTime sentAt,
                   sim::SimTime deliveredAt = 0);

    /**
     * Vectored delivery of one sender's batch to one endpoint: stats
     * and the shared delivered-counter update once for the batch, the
     * clock resolves at most once, and each message still lands in
     * the handler (or queue) — and the latency histogram —
     * individually, in span order.
     */
    void deliverBatchTo(std::size_t endpoint,
                        std::span<const Payload> messages,
                        std::size_t from, sim::SimTime sentAt,
                        sim::SimTime deliveredAt = 0);

    /** Default dispatch for Offcode endpoints (Calls, Data, Mgmt). */
    void dispatchToOffcode(std::size_t endpoint, const Payload &message,
                           std::size_t from);

    /** Record send->deliver latency for a named channel; resolves the
     * clock itself when @p deliveredAt is 0 (queued/polled paths). */
    void recordDelivery(const Endpoint &ep, sim::SimTime sentAt,
                        sim::SimTime deliveredAt = 0);

    ChannelConfig config_;
    ChannelStats stats_;
    std::vector<Endpoint> endpoints_;
    /** Atomic: a fleet driver thread may close (via the executive's
     * destroy path) while the coordinator is mid-delivery. */
    std::atomic<bool> closed_{false};
    ChannelId id_ = kInvalidChannel;
    /**
     * Cached registry handle; nullptr for anonymous channels. Bound
     * lazily at the first endpoint so the series carries the creator's
     * host= label (the machine the creator endpoint executes on).
     */
    obs::Histogram *deliveryLatency_ = nullptr;
};

} // namespace hydra::core

#endif // HYDRA_CORE_CHANNEL_HH
