/**
 * @file
 * Channel providers (paper Section 4): target-specific factories
 * that build channels to a device and advertise a cost metric (the
 * "price" of communicating through them) which the Channel
 * Executive uses to pick the best provider for an Offcode.
 *
 * Two providers are built in:
 *  - LocalChannelProvider: both endpoints share a site; delivery is
 *    an in-memory enqueue.
 *  - DmaRingChannelProvider: the paper's Fig. 6 transport — per-
 *    endpoint descriptor rings, device DMA bus-mastering, host
 *    interrupts, zero-copy or staged-copy buffering.
 */

#ifndef HYDRA_CORE_PROVIDERS_HH
#define HYDRA_CORE_PROVIDERS_HH

#include <memory>
#include <string>

#include "core/channel.hh"
#include "exec/executor.hh"

namespace hydra::core {

/** Advertised cost of moving one message through a provider. */
struct ChannelCost
{
    sim::SimTime perMessageLatency = 0;
    double throughputGbps = 0.0;
};

/** Abstract provider: capability test, cost metric, factory. */
class ChannelProvider
{
  public:
    virtual ~ChannelProvider() = default;

    virtual const std::string &name() const = 0;

    /** Can this provider serve a channel from @p creator to target? */
    virtual bool canServe(const ChannelConfig &config,
                          ExecutionSite &creator,
                          ExecutionSite *target) const = 0;

    /** Cost estimate for a typical message of @p bytes. */
    virtual ChannelCost estimateCost(const ChannelConfig &config,
                                     ExecutionSite &creator,
                                     ExecutionSite *target,
                                     std::size_t bytes) const = 0;

    virtual std::unique_ptr<Channel>
    create(const ChannelConfig &config, ExecutionSite &creator) = 0;
};

/** Same-site transport. */
class LocalChannelProvider : public ChannelProvider
{
  public:
    explicit LocalChannelProvider(exec::Executor &executor);

    const std::string &name() const override { return name_; }
    bool canServe(const ChannelConfig &config, ExecutionSite &creator,
                  ExecutionSite *target) const override;
    ChannelCost estimateCost(const ChannelConfig &config,
                             ExecutionSite &creator, ExecutionSite *target,
                             std::size_t bytes) const override;
    std::unique_ptr<Channel> create(const ChannelConfig &config,
                                    ExecutionSite &creator) override;

  private:
    exec::Executor &exec_;
    std::string name_ = "local";
};

/** Cross-site DMA descriptor-ring transport (paper Fig. 6). */
class DmaRingChannelProvider : public ChannelProvider
{
  public:
    /**
     * @param bus_multicast When true, one bus transaction reaches
     * every device endpoint of a multicast write (the paper's PCIe
     * aside); otherwise each device leg is a separate crossing.
     */
    DmaRingChannelProvider(exec::Executor &executor, bool bus_multicast);

    const std::string &name() const override { return name_; }
    bool canServe(const ChannelConfig &config, ExecutionSite &creator,
                  ExecutionSite *target) const override;
    ChannelCost estimateCost(const ChannelConfig &config,
                             ExecutionSite &creator, ExecutionSite *target,
                             std::size_t bytes) const override;
    std::unique_ptr<Channel> create(const ChannelConfig &config,
                                    ExecutionSite &creator) override;

  private:
    exec::Executor &exec_;
    bool busMulticast_;
    std::string name_ = "dma-ring";
};

} // namespace hydra::core

#endif // HYDRA_CORE_PROVIDERS_HH
