/**
 * @file
 * Dynamic Offcode loading (paper Section 4.2).
 *
 * Loaders implement "a generic interface for Offcode loading ...
 * intended to be implemented by the device driver of each target
 * peripheral". The device loader follows the paper's phases: the
 * host-based loader sizes the image and calls the device's
 * AllocateOffcodeMemory, dynamically generates a linker script
 * adjusted to the returned address and links the object, then
 * transfers the linked image to the device, where it is placed and
 * executed. The host loader models in-process dynamic linking.
 */

#ifndef HYDRA_CORE_LOADER_HH
#define HYDRA_CORE_LOADER_HH

#include <functional>
#include <memory>

#include "core/depot.hh"
#include "core/site.hh"

namespace hydra::core {

/** Cost constants for the loading pipeline. */
struct LoaderCosts
{
    /** Host cycles per image byte for the dynamic link step. */
    double linkCyclesPerByte = 2.0;
    std::uint64_t linkBaseCycles = 20000;
    /** Device firmware cycles per image byte to place and fix up. */
    double installCyclesPerByte = 0.5;
    std::uint64_t installBaseCycles = 10000;
    /** Out-of-band allocate request round trip. */
    sim::SimTime allocateRtt = sim::microseconds(40);
};

/** Generic loading interface. */
class OffcodeLoader
{
  public:
    virtual ~OffcodeLoader() = default;

    /**
     * Run the complete offloading sequence for @p entry; @p done
     * fires with the outcome once the image is installed.
     */
    virtual void load(const DepotEntry &entry,
                      std::function<void(Status)> done) = 0;

    /** Undo a prior load's resource usage (device memory, ...). */
    virtual void unload(const DepotEntry &entry) = 0;
};

/** In-process loading for host-placed Offcodes. */
class HostLoader : public OffcodeLoader
{
  public:
    explicit HostLoader(hw::Machine &machine, LoaderCosts costs = {});

    void load(const DepotEntry &entry,
              std::function<void(Status)> done) override;
    void unload(const DepotEntry &entry) override;

  private:
    hw::Machine &machine_;
    LoaderCosts costs_;
};

/** Host-assisted DMA loading onto a programmable device. */
class DeviceDmaLoader : public OffcodeLoader
{
  public:
    DeviceDmaLoader(hw::Machine &host, dev::Device &device,
                    LoaderCosts costs = {});

    void load(const DepotEntry &entry,
              std::function<void(Status)> done) override;
    void unload(const DepotEntry &entry) override;

    std::uint64_t imagesLoaded() const { return imagesLoaded_; }

  private:
    hw::Machine &host_;
    dev::Device &device_;
    LoaderCosts costs_;
    std::uint64_t imagesLoaded_ = 0;
};

} // namespace hydra::core

#endif // HYDRA_CORE_LOADER_HH
