/**
 * @file
 * Execution sites: where an Offcode's thread of control runs.
 *
 * A site abstracts the differences the paper cares about — compute
 * speed, timer precision, and whether work burdens the host CPU and
 * cache. HostSite charges the host CPU through the OS model (tick-
 * quantized timers); DeviceSite charges a peripheral's firmware core
 * (microsecond-precise hardware timers).
 */

#ifndef HYDRA_CORE_SITE_HH
#define HYDRA_CORE_SITE_HH

#include <functional>
#include <string>

#include "dev/device.hh"
#include "hw/machine.hh"
#include "sim/time.hh"

namespace hydra::obs {
struct SiteActivitySlot;
} // namespace hydra::obs

namespace hydra::core {

/** Abstract execution locus for Offcodes. */
class ExecutionSite
{
  public:
    virtual ~ExecutionSite() = default;

    virtual const std::string &name() const = 0;
    virtual bool isHost() const = 0;

    /** Charge @p cycles of compute; returns completion time. */
    virtual sim::SimTime run(std::uint64_t cycles) = 0;

    /** Arm a timer with this site's precision semantics. */
    virtual void timerAfter(sim::SimTime delay,
                            std::function<void()> done) = 0;

    /** The peripheral behind this site, or nullptr for the host. */
    virtual dev::Device *device() = 0;

    /** The host machine this site belongs to. */
    virtual hw::Machine &machine() = 0;

    /**
     * This site's interned profiler slot (never null once a concrete
     * site is constructed); the dispatch path publishes handler
     * activity here.
     */
    obs::SiteActivitySlot *profilerSlot() const { return profilerSlot_; }

  protected:
    obs::SiteActivitySlot *profilerSlot_ = nullptr;
};

/** Offcode execution on the host CPU under the OS. */
class HostSite : public ExecutionSite
{
  public:
    explicit HostSite(hw::Machine &machine);

    const std::string &name() const override { return name_; }
    bool isHost() const override { return true; }
    sim::SimTime run(std::uint64_t cycles) override;
    void timerAfter(sim::SimTime delay,
                    std::function<void()> done) override;
    dev::Device *device() override { return nullptr; }
    hw::Machine &machine() override { return machine_; }

  private:
    hw::Machine &machine_;
    std::string name_;
};

/** Offcode execution on a peripheral's firmware processor. */
class DeviceSite : public ExecutionSite
{
  public:
    DeviceSite(hw::Machine &host, dev::Device &device);

    const std::string &name() const override { return device_.name(); }
    bool isHost() const override { return false; }
    sim::SimTime run(std::uint64_t cycles) override;
    void timerAfter(sim::SimTime delay,
                    std::function<void()> done) override;
    dev::Device *device() override { return &device_; }
    hw::Machine &machine() override { return host_; }

  private:
    hw::Machine &host_;
    dev::Device &device_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_SITE_HH
