#include "core/resource.hh"

#include <algorithm>

namespace hydra::core {

ResourceManager::ResourceManager()
{
    Node root;
    root.kind = "root";
    root.name = "runtime";
    nodes_[rootId_] = std::move(root);
}

Result<ResourceId>
ResourceManager::create(ResourceId parent, std::string kind,
                        std::string name,
                        std::function<void()> on_release)
{
    auto it = nodes_.find(parent);
    if (it == nodes_.end())
        return Error(ErrorCode::NotFound, "parent resource not found");

    const ResourceId id = nextId_++;
    Node node;
    node.parent = parent;
    node.kind = std::move(kind);
    node.name = std::move(name);
    node.onRelease = std::move(on_release);
    nodes_[id] = std::move(node);
    nodes_[parent].children.push_back(id);
    return id;
}

Status
ResourceManager::release(ResourceId id)
{
    if (id == rootId_)
        return Status(ErrorCode::InvalidArgument,
                      "cannot release the root resource");
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return Status(ErrorCode::NotFound, "resource not found");

    // Detach from parent first, then tear down the subtree.
    const ResourceId parent = it->second.parent;
    auto pit = nodes_.find(parent);
    if (pit != nodes_.end()) {
        auto &siblings = pit->second.children;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                       siblings.end());
    }
    releaseSubtree(id);
    return Status::success();
}

void
ResourceManager::releaseSubtree(ResourceId id)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return;

    // Children first, so a failing parent's dependents clean up
    // before the parent's own release action runs.
    const std::vector<ResourceId> children = it->second.children;
    for (ResourceId child : children)
        releaseSubtree(child);

    it = nodes_.find(id); // children callbacks may not touch us, but be safe
    if (it == nodes_.end())
        return;
    auto on_release = std::move(it->second.onRelease);
    nodes_.erase(it);
    if (on_release)
        on_release();
}

Result<std::string>
ResourceManager::describe(ResourceId id) const
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return Error(ErrorCode::NotFound, "resource not found");
    return it->second.kind + ":" + it->second.name;
}

std::vector<ResourceId>
ResourceManager::childrenOf(ResourceId id) const
{
    auto it = nodes_.find(id);
    return it == nodes_.end() ? std::vector<ResourceId>{}
                              : it->second.children;
}

} // namespace hydra::core
