/**
 * @file
 * Layout Management (paper Sections 3.4 and 4): builds the
 * offloading layout graph from an Offcode's ODF (following imports
 * transitively through the depot) and resolves it to a concrete
 * placement on the machine's devices via the Offload Layout
 * Resolver, which delegates to the Section 5 ILP (or the greedy
 * baseline).
 */

#ifndef HYDRA_CORE_LAYOUT_HH
#define HYDRA_CORE_LAYOUT_HH

#include <string>
#include <vector>

#include "core/depot.hh"
#include "core/site.hh"
#include "ilp/layout.hh"

namespace hydra::core {

/** An edge of the offloading layout graph. */
struct GraphEdge
{
    std::size_t from = 0; ///< importing node
    std::size_t to = 0;   ///< imported node
    odf::ConstraintType kind = odf::ConstraintType::Link;
    int priority = 0;
};

/** The offloading layout graph of one deployment request. */
class LayoutGraph
{
  public:
    /**
     * Build by following the root entry's imports transitively.
     * Every import must resolve in the depot; cycles are permitted
     * (each Offcode appears once).
     */
    static Result<LayoutGraph> build(const OffcodeDepot &depot,
                                     const DepotEntry &root);

    /**
     * Joint graph over several applications' roots (paper Section 5:
     * "in multi-user environments, reusing the same Offcode in
     * several applications may substantially complicate the
     * offloading layout design"). Shared Offcodes appear once, with
     * the union of all constraint edges.
     */
    static Result<LayoutGraph>
    buildMany(const OffcodeDepot &depot,
              const std::vector<const DepotEntry *> &roots);

    const std::vector<const DepotEntry *> &nodes() const { return nodes_; }
    const std::vector<GraphEdge> &edges() const { return edges_; }

    /** Index of a node by bindname (SIZE_MAX when absent). */
    std::size_t indexOf(const std::string &bindname) const;

    /** Root node is always index 0. */
    const DepotEntry &root() const { return *nodes_[0]; }

  private:
    std::vector<const DepotEntry *> nodes_;
    std::vector<GraphEdge> edges_;
};

/** One placement candidate visible to the resolver. */
struct SiteInfo
{
    ExecutionSite *site = nullptr;
    /** Device behind the site; nullptr for the host CPU. */
    dev::Device *device = nullptr;
    /** Bus-link capacity toward this site (Gbps). */
    double linkCapacityGbps = 1e9;
};

/** Resolver configuration. */
struct ResolverConfig
{
    ilp::LayoutObjective objective =
        ilp::LayoutObjective::MaximizeOffloading;
    /** Use the greedy baseline instead of the exact ILP. */
    bool useGreedy = false;
    ilp::SolverLimits limits;
};

/** Result of layout resolution. */
struct Placement
{
    /** Chosen site per graph node (parallel to graph.nodes()). */
    std::vector<ExecutionSite *> site;
    double objective = 0.0;
    std::size_t offloadedCount = 0;
};

/** The Offload Layout Resolver. */
class LayoutResolver
{
  public:
    explicit LayoutResolver(ResolverConfig config = {});

    /**
     * Map graph nodes onto sites. sites[0] must be the host. Builds
     * the compatibility matrix from ODF targets, device classes,
     * capabilities, and memory headroom, then optimizes.
     */
    Result<Placement> resolve(const LayoutGraph &graph,
                              const std::vector<SiteInfo> &sites) const;

    /** Expose the ILP spec (for tests and the layout bench). */
    Result<ilp::LayoutSpec>
    buildSpec(const LayoutGraph &graph,
              const std::vector<SiteInfo> &sites) const;

    const ResolverConfig &config() const { return config_; }

  private:
    ResolverConfig config_;
};

} // namespace hydra::core

#endif // HYDRA_CORE_LAYOUT_HH
