#include "core/executive.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace hydra::core {

ChannelExecutive::ChannelExecutive(
    std::function<ExecutionSite *(const std::string &)> site_lookup)
    : siteLookup_(std::move(site_lookup))
{
}

void
ChannelExecutive::registerProvider(std::unique_ptr<ChannelProvider> provider)
{
    providers_.push_back(std::move(provider));
}

Result<Channel *>
ChannelExecutive::createChannel(const ChannelConfig &config,
                                ExecutionSite &creator,
                                std::size_t typical_bytes)
{
    if (providers_.empty())
        return Error(ErrorCode::NotFound, "no channel providers");

    ExecutionSite *target = nullptr;
    if (!config.targetDevice.empty()) {
        target = siteLookup_(config.targetDevice);
        if (!target)
            return Error(ErrorCode::NotFound,
                         "unknown target device: " + config.targetDevice);
    }

    // Pick the capable provider with the lowest per-message latency
    // (the "price" in the paper's terms).
    ChannelProvider *best = nullptr;
    ChannelCost bestCost;
    for (const auto &provider : providers_) {
        if (!provider->canServe(config, creator, target))
            continue;
        const ChannelCost cost =
            provider->estimateCost(config, creator, target, typical_bytes);
        if (!best || cost.perMessageLatency < bestCost.perMessageLatency) {
            best = provider.get();
            bestCost = cost;
        }
    }
    if (!best) {
        obs::counter("channel.create_failed").increment();
        return Error(ErrorCode::Unsupported,
                     "no provider can serve this channel configuration");
    }

    obs::counter("channel.created", {{"provider", best->name()}})
        .increment();

    LOG_DEBUG << "executive: provider '" << best->name()
              << "' selected for channel to '" << config.targetDevice
              << "'";

    auto channel = best->create(config, creator);
    Channel *raw = channel.get();
    channels_.push_back(std::move(channel));
    return raw;
}

Status
ChannelExecutive::destroyChannel(Channel *channel)
{
    auto it = std::find_if(
        channels_.begin(), channels_.end(),
        [channel](const auto &owned) { return owned.get() == channel; });
    if (it == channels_.end())
        return Status(ErrorCode::NotFound, "channel not owned by executive");
    (*it)->close();
    channels_.erase(it);
    obs::counter("channel.destroyed").increment();
    return Status::success();
}

std::vector<std::string>
ChannelExecutive::providerNames() const
{
    std::vector<std::string> names;
    names.reserve(providers_.size());
    for (const auto &provider : providers_)
        names.push_back(provider->name());
    return names;
}

} // namespace hydra::core
