#include "core/executive.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace hydra::core {

namespace {

/** Process-wide id allocator: ids stay unique across shards, so a
 * fleet-level routing table can key on ChannelId alone. Id 0 is
 * reserved as kInvalidChannel. */
std::atomic<ChannelId> nextChannelId{1};

} // namespace

ChannelExecutive::ChannelExecutive(
    std::function<ExecutionSite *(const std::string &)> site_lookup,
    std::string shard)
    : siteLookup_(std::move(site_lookup)), shard_(std::move(shard))
{
}

void
ChannelExecutive::registerProvider(std::unique_ptr<ChannelProvider> provider)
{
    providers_.push_back(std::move(provider));
}

void
ChannelExecutive::setRemoteSiteLookup(
    std::function<ExecutionSite *(const std::string &)> lookup)
{
    remoteLookup_ = std::move(lookup);
}

Result<Channel *>
ChannelExecutive::createChannel(const ChannelConfig &config,
                                ExecutionSite &creator,
                                std::size_t typical_bytes)
{
    if (providers_.empty())
        return Error(ErrorCode::NotFound, "no channel providers");

    ExecutionSite *target = nullptr;
    if (!config.targetDevice.empty()) {
        target = siteLookup_(config.targetDevice);
        if (!target && remoteLookup_)
            target = remoteLookup_(config.targetDevice);
        if (!target)
            return Error(ErrorCode::NotFound,
                         "unknown target device: " + config.targetDevice);
    }

    // Pick the capable provider with the lowest per-message latency
    // (the "price" in the paper's terms).
    ChannelProvider *best = nullptr;
    ChannelCost bestCost;
    for (const auto &provider : providers_) {
        if (!provider->canServe(config, creator, target))
            continue;
        const ChannelCost cost =
            provider->estimateCost(config, creator, target, typical_bytes);
        if (!best || cost.perMessageLatency < bestCost.perMessageLatency) {
            best = provider.get();
            bestCost = cost;
        }
    }
    if (!best) {
        obs::counter("channel.create_failed").increment();
        return Error(ErrorCode::Unsupported,
                     "no provider can serve this channel configuration");
    }

    auto channel = best->create(config, creator);
    // A provider may hand back a channel whose creator endpoint never
    // connected (a vetoed addEndpoint, for example). Owning it would
    // leave an unusable channel inflating activeChannels() forever.
    if (!channel || channel->numEndpoints() == 0) {
        obs::counter("channel.create_failed").increment();
        return Error(ErrorCode::Internal,
                     "provider '" + best->name() +
                         "' produced no creator endpoint");
    }

    obs::counter("channel.created", {{"provider", best->name()}})
        .increment();

    LOG_DEBUG << "executive[" << shard_ << "]: provider '" << best->name()
              << "' selected for channel to '" << config.targetDevice
              << "'";

    const ChannelId id =
        nextChannelId.fetch_add(1, std::memory_order_relaxed);
    channel->bindId(id);
    Channel *raw = channel.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        channels_.emplace(id, std::move(channel));
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    return raw;
}

Status
ChannelExecutive::destroyChannel(Channel *channel)
{
    if (!channel)
        return Status(ErrorCode::InvalidArgument, "null channel");
    return destroyChannelById(channel->id());
}

Status
ChannelExecutive::destroyChannelById(ChannelId id)
{
    std::unique_ptr<Channel> owned;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = channels_.find(id);
        if (it == channels_.end())
            return Status(ErrorCode::NotFound,
                          "channel not owned by executive");
        owned = std::move(it->second);
        channels_.erase(it);
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    // Close (and free) outside the lock: close() may touch sites and
    // metrics, none of which need the registry serialized.
    owned->close();
    obs::counter("channel.destroyed").increment();
    return Status::success();
}

Channel *
ChannelExecutive::findChannel(ChannelId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(id);
    return it == channels_.end() ? nullptr : it->second.get();
}

std::size_t
ChannelExecutive::detachOffcode(const Offcode &offcode)
{
    std::vector<Channel *> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.reserve(channels_.size());
        for (auto &[id, channel] : channels_)
            snapshot.push_back(channel.get());
    }
    std::size_t detached = 0;
    for (Channel *channel : snapshot)
        detached += channel->detachOffcode(offcode);
    return detached;
}

std::size_t
ChannelExecutive::rebindOffcode(const Offcode &from, Offcode &to)
{
    std::vector<Channel *> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.reserve(channels_.size());
        for (auto &[id, channel] : channels_)
            snapshot.push_back(channel.get());
    }
    std::size_t rebound = 0;
    for (Channel *channel : snapshot)
        rebound += channel->rebindOffcode(from, to);
    return rebound;
}

std::size_t
ChannelExecutive::queuedFor(const Offcode &offcode) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t queued = 0;
    for (const auto &[id, channel] : channels_)
        queued += channel->queuedFor(offcode);
    return queued;
}

std::vector<std::string>
ChannelExecutive::providerNames() const
{
    std::vector<std::string> names;
    names.reserve(providers_.size());
    for (const auto &provider : providers_)
        names.push_back(provider->name());
    return names;
}

} // namespace hydra::core
