#include "core/call.hh"

namespace hydra::core {

namespace {

Result<Call>
deserializeCall(ByteReader reader)
{
    auto kind = reader.readU8();
    if (!kind)
        return kind.error();
    if (static_cast<MessageKind>(kind.value()) != MessageKind::Call)
        return Error(ErrorCode::ParseError, "not a Call message");

    Call call;
    auto target = reader.readU64();
    auto iface = reader.readU64();
    auto method = reader.readString();
    auto args = reader.readBytes();
    auto id = reader.readU64();
    auto expects = reader.readU8();
    if (!target || !iface || !method || !args || !id || !expects)
        return Error(ErrorCode::ParseError, "truncated Call message");

    call.targetOffcode = Guid(target.value());
    call.interfaceGuid = Guid(iface.value());
    call.method = std::move(method).value();
    call.arguments = std::move(args).value();
    call.callId = id.value();
    call.expectsReturn = expects.value() != 0;
    return call;
}

Result<CallReturn>
deserializeReturn(ByteReader reader)
{
    auto kind = reader.readU8();
    if (!kind)
        return kind.error();
    if (static_cast<MessageKind>(kind.value()) != MessageKind::Return)
        return Error(ErrorCode::ParseError, "not a Return message");

    CallReturn ret;
    auto id = reader.readU64();
    auto ok = reader.readU8();
    auto value = reader.readBytes();
    auto error = reader.readString();
    if (!id || !ok || !value || !error)
        return Error(ErrorCode::ParseError, "truncated Return message");

    ret.callId = id.value();
    ret.ok = ok.value() != 0;
    ret.value = std::move(value).value();
    ret.error = std::move(error).value();
    return ret;
}

/** [kind u8][len u32][body]: frame @p size bytes of @p data. */
Payload
encodeFramed(MessageKind kind, const std::uint8_t *data, std::size_t size)
{
    PayloadBuilder builder;
    ByteWriter writer(builder.buffer());
    writer.writeU8(static_cast<std::uint8_t>(kind));
    writer.writeU32(static_cast<std::uint32_t>(size));
    Bytes &out = builder.buffer();
    out.insert(out.end(), data, data + size);
    return builder.seal();
}

/** Validate the frame, return the body as a slice of @p wire. */
Result<Payload>
decodeFramed(const Payload &wire, MessageKind expected, const char *what)
{
    ByteReader reader(wire.data(), wire.size());
    auto kind = reader.readU8();
    if (!kind)
        return kind.error();
    if (static_cast<MessageKind>(kind.value()) != expected)
        return Error(ErrorCode::ParseError,
                     std::string("not a ") + what + " message");
    auto len = reader.readU32();
    if (!len)
        return len.error();
    if (len.value() > reader.remaining())
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    // Body starts after the kind byte and the u32 length prefix.
    return wire.slice(5, len.value());
}

} // namespace

Payload
Call::serialize() const
{
    PayloadBuilder builder;
    ByteWriter writer(builder.buffer());
    writer.writeU8(static_cast<std::uint8_t>(MessageKind::Call));
    writer.writeU64(targetOffcode.value());
    writer.writeU64(interfaceGuid.value());
    writer.writeString(method);
    writer.writeBytes(arguments);
    writer.writeU64(callId);
    writer.writeU8(expectsReturn ? 1 : 0);
    return builder.seal();
}

Result<Call>
Call::deserialize(const Payload &wire)
{
    return deserializeCall(ByteReader(wire.data(), wire.size()));
}

Result<Call>
Call::deserialize(const Bytes &wire)
{
    return deserializeCall(ByteReader(wire));
}

Payload
CallReturn::serialize() const
{
    PayloadBuilder builder;
    ByteWriter writer(builder.buffer());
    writer.writeU8(static_cast<std::uint8_t>(MessageKind::Return));
    writer.writeU64(callId);
    writer.writeU8(ok ? 1 : 0);
    writer.writeBytes(value);
    writer.writeString(error);
    return builder.seal();
}

Result<CallReturn>
CallReturn::deserialize(const Payload &wire)
{
    return deserializeReturn(ByteReader(wire.data(), wire.size()));
}

Result<CallReturn>
CallReturn::deserialize(const Bytes &wire)
{
    return deserializeReturn(ByteReader(wire));
}

std::string
spanName(const Call &call)
{
    return "call." + call.method;
}

Result<MessageKind>
peekKind(const Payload &wire)
{
    if (wire.empty())
        return Error(ErrorCode::ParseError, "empty message");
    const auto kind = static_cast<MessageKind>(wire[0]);
    switch (kind) {
      case MessageKind::Call:
      case MessageKind::Return:
      case MessageKind::Data:
      case MessageKind::Management:
        return kind;
    }
    return Error(ErrorCode::ParseError, "unknown message kind");
}

Result<MessageKind>
peekKind(const Bytes &wire)
{
    if (wire.empty())
        return Error(ErrorCode::ParseError, "empty message");
    const auto kind = static_cast<MessageKind>(wire[0]);
    switch (kind) {
      case MessageKind::Call:
      case MessageKind::Return:
      case MessageKind::Data:
      case MessageKind::Management:
        return kind;
    }
    return Error(ErrorCode::ParseError, "unknown message kind");
}

Payload
encodeData(const Bytes &payload)
{
    return encodeFramed(MessageKind::Data, payload.data(), payload.size());
}

Payload
encodeData(const Payload &payload)
{
    return encodeFramed(MessageKind::Data, payload.data(), payload.size());
}

Result<Payload>
decodeData(const Payload &wire)
{
    return decodeFramed(wire, MessageKind::Data, "Data");
}

Payload
encodeManagement(const Bytes &payload)
{
    return encodeFramed(MessageKind::Management, payload.data(),
                        payload.size());
}

Payload
encodeManagement(const Payload &payload)
{
    return encodeFramed(MessageKind::Management, payload.data(),
                        payload.size());
}

Result<Payload>
decodeManagement(const Payload &wire)
{
    return decodeFramed(wire, MessageKind::Management, "Management");
}

} // namespace hydra::core
