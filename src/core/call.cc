#include "core/call.hh"

namespace hydra::core {

Bytes
Call::serialize() const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(MessageKind::Call));
    writer.writeU64(targetOffcode.value());
    writer.writeU64(interfaceGuid.value());
    writer.writeString(method);
    writer.writeBytes(arguments);
    writer.writeU64(callId);
    writer.writeU8(expectsReturn ? 1 : 0);
    return out;
}

Result<Call>
Call::deserialize(const Bytes &wire)
{
    ByteReader reader(wire);
    auto kind = reader.readU8();
    if (!kind)
        return kind.error();
    if (static_cast<MessageKind>(kind.value()) != MessageKind::Call)
        return Error(ErrorCode::ParseError, "not a Call message");

    Call call;
    auto target = reader.readU64();
    auto iface = reader.readU64();
    auto method = reader.readString();
    auto args = reader.readBytes();
    auto id = reader.readU64();
    auto expects = reader.readU8();
    if (!target || !iface || !method || !args || !id || !expects)
        return Error(ErrorCode::ParseError, "truncated Call message");

    call.targetOffcode = Guid(target.value());
    call.interfaceGuid = Guid(iface.value());
    call.method = std::move(method).value();
    call.arguments = std::move(args).value();
    call.callId = id.value();
    call.expectsReturn = expects.value() != 0;
    return call;
}

Bytes
CallReturn::serialize() const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(MessageKind::Return));
    writer.writeU64(callId);
    writer.writeU8(ok ? 1 : 0);
    writer.writeBytes(value);
    writer.writeString(error);
    return out;
}

Result<CallReturn>
CallReturn::deserialize(const Bytes &wire)
{
    ByteReader reader(wire);
    auto kind = reader.readU8();
    if (!kind)
        return kind.error();
    if (static_cast<MessageKind>(kind.value()) != MessageKind::Return)
        return Error(ErrorCode::ParseError, "not a Return message");

    CallReturn ret;
    auto id = reader.readU64();
    auto ok = reader.readU8();
    auto value = reader.readBytes();
    auto error = reader.readString();
    if (!id || !ok || !value || !error)
        return Error(ErrorCode::ParseError, "truncated Return message");

    ret.callId = id.value();
    ret.ok = ok.value() != 0;
    ret.value = std::move(value).value();
    ret.error = std::move(error).value();
    return ret;
}

std::string
spanName(const Call &call)
{
    return "call." + call.method;
}

Result<MessageKind>
peekKind(const Bytes &wire)
{
    if (wire.empty())
        return Error(ErrorCode::ParseError, "empty message");
    const auto kind = static_cast<MessageKind>(wire[0]);
    switch (kind) {
      case MessageKind::Call:
      case MessageKind::Return:
      case MessageKind::Data:
      case MessageKind::Management:
        return kind;
    }
    return Error(ErrorCode::ParseError, "unknown message kind");
}

Bytes
encodeData(const Bytes &payload)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(MessageKind::Data));
    writer.writeBytes(payload);
    return out;
}

Bytes
encodeManagement(const Bytes &payload)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(MessageKind::Management));
    writer.writeBytes(payload);
    return out;
}

Result<Bytes>
decodeData(const Bytes &wire)
{
    ByteReader reader(wire);
    auto kind = reader.readU8();
    if (!kind)
        return kind.error();
    if (static_cast<MessageKind>(kind.value()) != MessageKind::Data)
        return Error(ErrorCode::ParseError, "not a Data message");
    auto payload = reader.readBytes();
    if (!payload)
        return payload.error();
    return payload;
}

} // namespace hydra::core
