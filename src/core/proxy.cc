#include "core/proxy.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hydra::core {

Proxy::Proxy(Channel &channel, Guid target_offcode, Guid interface_guid,
             std::size_t endpoint)
    : channel_(channel), endpoint_(endpoint), target_(target_offcode),
      interface_(interface_guid)
{
    channel_.installHandler(endpoint_,
                            [this](const Payload &message, std::size_t) {
                                onMessage(message);
                            });
}

Call
Proxy::makeCall(const std::string &method, const Bytes &arguments,
                bool expects_return)
{
    Call call;
    call.targetOffcode = target_;
    call.interfaceGuid = interface_;
    call.method = method;
    call.arguments = arguments;
    call.callId = nextCallId_++;
    call.expectsReturn = expects_return;
    return call;
}

Status
Proxy::invoke(const std::string &method, const Bytes &arguments,
              ReturnCallback on_return)
{
    Call call = makeCall(method, arguments, true);
    const std::uint64_t id = call.callId;
    ExecutionSite *site = channel_.siteOf(endpoint_);
    obs::Span span;
    if (HYDRA_TRACE_ACTIVE() && site)
        span.open(site->machine().name(), site->name(), spanName(call),
                  "call", site->machine().executor().now());
    Status sent = channel_.writeFrom(endpoint_, call.serialize());
    if (site)
        span.end(site->run(0));
    if (!sent)
        return sent;
    pending_[id] = Pending{std::move(on_return), span.context()};
    return Status::success();
}

Status
Proxy::invokeOneWay(const std::string &method, const Bytes &arguments)
{
    Call call = makeCall(method, arguments, false);
    ExecutionSite *site = channel_.siteOf(endpoint_);
    obs::Span span;
    if (HYDRA_TRACE_ACTIVE() && site)
        span.open(site->machine().name(), site->name(), spanName(call),
                  "call", site->machine().executor().now());
    Status sent = channel_.writeFrom(endpoint_, call.serialize());
    if (site)
        span.end(site->run(0));
    return sent;
}

void
Proxy::onMessage(const Payload &message)
{
    auto kind = peekKind(message);
    if (!kind || kind.value() != MessageKind::Return) {
        LOG_DEBUG << "proxy: ignoring non-Return message";
        return;
    }
    auto ret = CallReturn::deserialize(message);
    if (!ret) {
        LOG_WARN << "proxy: bad Return message";
        return;
    }
    auto it = pending_.find(ret.value().callId);
    if (it == pending_.end())
        return;
    Pending entry = std::move(it->second);
    pending_.erase(it);
    // Run the completion under the originating Call's span so work
    // triggered by the Return stays on the same trace.
    obs::ContextScope scope(entry.ctx);
    if (ret.value().ok)
        entry.callback(std::move(ret).value().value);
    else
        entry.callback(
            Error(ErrorCode::OffcodeFaulted, ret.value().error));
}

} // namespace hydra::core
