/**
 * @file
 * Shared JSON string escaping for the observability exporters.
 *
 * metrics.cc and trace.cc used to carry near-identical ad-hoc
 * escapers; this is the single canonical one. It escapes exactly what
 * RFC 8259 requires: quote, backslash, and control characters below
 * 0x20 (with short forms for the common ones).
 */

#ifndef HYDRA_OBS_JSON_HH
#define HYDRA_OBS_JSON_HH

#include <ostream>
#include <string_view>

namespace hydra::obs {

/** Escape @p text as JSON string contents (no surrounding quotes). */
void jsonEscape(std::ostream &out, std::string_view text);

/** Write @p text as a complete, quoted JSON string. */
void writeJsonString(std::ostream &out, std::string_view text);

} // namespace hydra::obs

#endif // HYDRA_OBS_JSON_HH
