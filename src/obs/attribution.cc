#include "obs/attribution.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace hydra::obs {

CpuAttribution &
CpuAttribution::instance()
{
    static CpuAttribution attribution;
    return attribution;
}

void
CpuAttribution::registerSite(const std::string &site, BusyFn busyUpTo,
                             bool isDevice, std::uint64_t nowNs,
                             const std::string &host)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : sites_) {
        if (entry->name != site)
            continue;
        // Same name, new CPU model (a fresh Testbed in the same
        // process): re-baseline so the stale callback is dropped and
        // deltas restart from now.
        entry->busyUpTo = std::move(busyUpTo);
        entry->isDevice = isDevice;
        entry->lastSyncNs = nowNs;
        entry->busyReported = entry->busyUpTo(nowNs);
        return;
    }
    auto entry = std::make_unique<SiteEntry>();
    entry->name = site;
    entry->busyUpTo = std::move(busyUpTo);
    entry->isDevice = isDevice;
    entry->lastSyncNs = nowNs;
    entry->busyReported = entry->busyUpTo(nowNs);
    Labels siteLabels{{"site", site}};
    Labels deviceLabels{{"device", site}};
    if (!host.empty()) {
        siteLabels.push_back({"host", host});
        deviceLabels.push_back({"host", host});
    }
    entry->busy = &counter("exec.site_busy_ns", siteLabels);
    entry->idle = &counter("exec.site_idle_ns", siteLabels);
    if (isDevice)
        entry->utilization = &gauge("device.cpu_utilization", deviceLabels);
    sites_.push_back(std::move(entry));
}

void
CpuAttribution::unregisterSite(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_.erase(std::remove_if(sites_.begin(), sites_.end(),
                                [&](const auto &entry) {
                                    return entry->name == site;
                                }),
                 sites_.end());
}

void
CpuAttribution::registerOffcode(const std::string &bindname,
                                std::uint64_t nowNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : offcodes_) {
        if (entry->bindname != bindname)
            continue;
        entry->lastCpuNs = entry->cpuNs->value();
        entry->lastSyncNs = nowNs;
        return;
    }
    auto entry = std::make_unique<OffcodeEntry>();
    entry->bindname = bindname;
    entry->cpuNs = &counter("offcode.cpu_ns", {{"offcode", bindname}});
    entry->utilization =
        &gauge("offcode.utilization", {{"offcode", bindname}});
    entry->lastCpuNs = entry->cpuNs->value();
    entry->lastSyncNs = nowNs;
    offcodes_.push_back(std::move(entry));
}

void
CpuAttribution::sync(std::uint64_t nowNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : sites_) {
        if (nowNs <= entry->lastSyncNs)
            continue;
        const std::uint64_t elapsed = nowNs - entry->lastSyncNs;
        const std::uint64_t rawBusy = entry->busyUpTo(nowNs);
        std::uint64_t busyDelta = rawBusy > entry->busyReported
                                      ? rawBusy - entry->busyReported
                                      : 0;
        busyDelta = std::min(busyDelta, elapsed);
        entry->busyReported += busyDelta;
        entry->busy->add(busyDelta);
        entry->idle->add(elapsed - busyDelta);
        if (entry->utilization)
            entry->utilization->set(static_cast<double>(busyDelta) /
                                    static_cast<double>(elapsed));
        entry->lastSyncNs = nowNs;
    }
    for (auto &entry : offcodes_) {
        if (nowNs <= entry->lastSyncNs)
            continue;
        const std::uint64_t elapsed = nowNs - entry->lastSyncNs;
        const std::uint64_t cpu = entry->cpuNs->value();
        const std::uint64_t delta =
            cpu > entry->lastCpuNs ? cpu - entry->lastCpuNs : 0;
        entry->utilization->set(
            std::min(1.0, static_cast<double>(delta) /
                              static_cast<double>(elapsed)));
        entry->lastCpuNs = cpu;
        entry->lastSyncNs = nowNs;
    }
}

std::size_t
CpuAttribution::siteCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sites_.size();
}

} // namespace hydra::obs
