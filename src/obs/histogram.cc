#include "obs/histogram.hh"

#include <algorithm>
#include <bit>

#include "obs/metrics.hh"

namespace hydra::obs {

std::uint64_t
Histogram::bucketLowerBound(std::size_t bucket)
{
    if (bucket < kLinearBuckets)
        return bucket;
    if (bucket >= kOverflowBucket)
        return std::uint64_t{1} << kMaxOrder;
    const std::size_t octave = (bucket - kLinearBuckets) / kSubBuckets;
    const std::size_t sub = (bucket - kLinearBuckets) % kSubBuckets;
    return static_cast<std::uint64_t>(kSubBuckets + sub) << octave;
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t bucket)
{
    if (bucket < kLinearBuckets)
        return bucket + 1;
    if (bucket >= kOverflowBucket)
        return UINT64_MAX;
    const std::size_t octave = (bucket - kLinearBuckets) / kSubBuckets;
    const std::size_t sub = (bucket - kLinearBuckets) % kSubBuckets;
    return static_cast<std::uint64_t>(kSubBuckets + sub + 1) << octave;
}

void
Histogram::recordOverflow()
{
    static Counter &dropped = counter("obs.sample.dropped");
    dropped.increment();
}

void
Histogram::merge(const Histogram &other)
{
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n =
            other.buckets_[b].load(std::memory_order_relaxed);
        if (n)
            buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }

    const std::uint64_t otherMin = other.min_.load(std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (otherMin < seen &&
           !min_.compare_exchange_weak(seen, otherMin,
                                       std::memory_order_relaxed)) {
    }
    const std::uint64_t otherMax = other.max_.load(std::memory_order_relaxed);
    seen = max_.load(std::memory_order_relaxed);
    while (otherMax > seen &&
           !max_.compare_exchange_weak(seen, otherMax,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::sum() const
{
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        std::uint64_t mid;
        if (b >= kOverflowBucket) {
            // Out-of-range samples: the best available stand-in is
            // the largest value ever seen.
            mid = max();
        } else {
            const std::uint64_t lo = bucketLowerBound(b);
            mid = lo + (bucketUpperBound(b) - lo - 1) / 2;
        }
        total += n * mid;
    }
    return total;
}

std::uint64_t
Histogram::min() const
{
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

std::uint64_t
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t
Histogram::overflowCount() const
{
    return buckets_[kOverflowBucket].load(std::memory_order_relaxed);
}

double
Histogram::percentile(double pct) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    const double rank = pct / 100.0 * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t here =
            buckets_[b].load(std::memory_order_relaxed);
        if (here == 0)
            continue;
        if (static_cast<double>(seen + here) >= rank) {
            // Interpolate linearly inside the bucket: its width is at
            // most lo / kSubBuckets, which bounds the error.
            const auto lo = static_cast<double>(bucketLowerBound(b));
            const auto hi =
                b >= kOverflowBucket
                    ? static_cast<double>(max())
                    : static_cast<double>(bucketUpperBound(b));
            const double frac =
                (rank - static_cast<double>(seen)) /
                static_cast<double>(here);
            const double value = lo + std::max(0.0, frac) * (hi - lo);
            return std::clamp(value, static_cast<double>(min()),
                              static_cast<double>(max()));
        }
        seen += here;
    }
    return static_cast<double>(max());
}

std::uint64_t
Histogram::bucketCount(std::size_t bucket) const
{
    return bucket < kBuckets ? buckets_[bucket].load(std::memory_order_relaxed)
                             : 0;
}

HistogramSummary
Histogram::summary() const
{
    HistogramSummary out;
    out.count = count();
    out.sum = sum();
    out.min = min();
    out.max = max();
    out.overflow = overflowCount();
    out.mean = out.count == 0 ? 0.0
                              : static_cast<double>(out.sum) /
                                    static_cast<double>(out.count);
    out.p50 = percentile(50.0);
    out.p90 = percentile(90.0);
    out.p99 = percentile(99.0);
    out.p999 = percentile(99.9);
    return out;
}

void
Histogram::reset()
{
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

} // namespace hydra::obs
