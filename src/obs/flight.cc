#include "obs/flight.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hh"

namespace hydra::obs {

namespace {

void
writeNumber(std::ostringstream &out, double value)
{
    if (std::isfinite(value)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        out << buf;
    } else {
        out << "0";
    }
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::configure(FlightConfig config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    if (config_.capacity == 0)
        config_.capacity = 1;
    ring_.clear();
    captured_ = 0;
    droppedSnapshots_ = 0;
    lastCounter_.clear();
    lastHistogramCount_.clear();
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    captured_ = 0;
    droppedSnapshots_ = 0;
    lastCounter_.clear();
    lastHistogramCount_.clear();
}

void
FlightRecorder::capture(std::uint64_t nowNs)
{
    // Snapshot the registry before taking our own lock: registry and
    // recorder locks never nest, so OOB readers can't deadlock us.
    const RegistrySnapshot current = MetricsRegistry::instance().snapshot();

    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.at = nowNs;

    for (const auto &[key, value] : current.counters) {
        auto it = lastCounter_.find(key);
        const std::uint64_t last = it == lastCounter_.end() ? 0 : it->second;
        // Counters are monotone except across a registry reset, where
        // the baseline restarts from the new (lower) value.
        const std::uint64_t delta = value >= last ? value - last : value;
        lastCounter_[key] = value;
        if (delta != 0)
            snap.counterDeltas.emplace_back(key, delta);
    }
    for (const auto &[key, value] : current.gauges) {
        if (value != 0.0)
            snap.gauges.emplace_back(key, value);
    }
    for (const auto &[key, summary] : current.histograms) {
        auto it = lastHistogramCount_.find(key);
        const std::uint64_t last =
            it == lastHistogramCount_.end() ? 0 : it->second;
        lastHistogramCount_[key] = summary.count;
        if (summary.count != 0 && summary.count != last)
            snap.histograms.emplace_back(key, summary);
    }

    ++captured_;
    if (ring_.size() >= config_.capacity) {
        ring_.pop_front();
        ++droppedSnapshots_;
        MetricsRegistry::instance()
            .counter("obs.flight.dropped_snapshots")
            .increment();
    }
    ring_.push_back(std::move(snap));
}

std::size_t
FlightRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::uint64_t
FlightRecorder::captured() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return captured_;
}

std::uint64_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return droppedSnapshots_;
}

std::string
FlightRecorder::toJson(std::size_t maxSnapshots) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t first = 0;
    if (maxSnapshots != 0 && ring_.size() > maxSnapshots)
        first = ring_.size() - maxSnapshots;

    std::ostringstream out;
    out << "{\"capacity\":" << config_.capacity
        << ",\"captured\":" << captured_
        << ",\"dropped\":" << droppedSnapshots_ << ",\"snapshots\":[";
    for (std::size_t i = first; i < ring_.size(); ++i) {
        const Snapshot &snap = ring_[i];
        if (i != first)
            out << ',';
        out << "{\"t\":" << snap.at << ",\"counters\":{";
        bool firstEntry = true;
        for (const auto &[key, delta] : snap.counterDeltas) {
            if (!firstEntry)
                out << ',';
            firstEntry = false;
            out << '"';
            jsonEscape(out, key);
            out << "\":" << delta;
        }
        out << "},\"gauges\":{";
        firstEntry = true;
        for (const auto &[key, value] : snap.gauges) {
            if (!firstEntry)
                out << ',';
            firstEntry = false;
            out << '"';
            jsonEscape(out, key);
            out << "\":";
            writeNumber(out, value);
        }
        out << "},\"histograms\":{";
        firstEntry = true;
        for (const auto &[key, summary] : snap.histograms) {
            if (!firstEntry)
                out << ',';
            firstEntry = false;
            out << '"';
            jsonEscape(out, key);
            out << "\":{\"n\":" << summary.count
                << ",\"min\":" << summary.min
                << ",\"max\":" << summary.max << ",\"p50\":";
            writeNumber(out, summary.p50);
            out << ",\"p90\":";
            writeNumber(out, summary.p90);
            out << ",\"p99\":";
            writeNumber(out, summary.p99);
            out << ",\"p999\":";
            writeNumber(out, summary.p999);
            if (summary.overflow)
                out << ",\"overflow\":" << summary.overflow;
            out << '}';
        }
        out << "}}";
    }
    out << "]}";
    return out.str();
}

} // namespace hydra::obs
