/**
 * @file
 * HDR-style latency histogram (DESIGN.md §11 "Telemetry engine").
 *
 * Fixed-memory log-linear bucketing: values below kLinearBuckets are
 * counted exactly (one bucket per nanosecond), and every power-of-two
 * octave above that is split into kSubBuckets linear sub-buckets, so
 * the relative bucket width — and therefore the worst-case percentile
 * error — is bounded by 1/kSubBuckets (~3%) across the whole range.
 * Values at or above 2^kMaxOrder land in a dedicated overflow bucket
 * and bump the process-wide `obs.sample.dropped` counter (mirroring
 * `obs.trace.dropped_events`), so out-of-range samples are visible
 * instead of silently clamped.
 *
 * record() is lock-free: one relaxed fetch_add on the bucket and two
 * relaxed loads (plus a rare CAS) for min/max — a single RMW on the
 * hot path. Count and sum are derived by walking the bucket array at
 * read time: count is exact, sum uses each bucket's midpoint (exact
 * below 64 ns, within the bucket error bound above). Concurrent
 * readers see a possibly-torn but monotone view — the same contract
 * the rest of the metrics registry offers. Histograms are mergeable
 * bucket-wise, which the flight recorder and future sharded-fleet
 * work rely on.
 */

#ifndef HYDRA_OBS_HISTOGRAM_HH
#define HYDRA_OBS_HISTOGRAM_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace hydra::obs {

/** Read-time digest of a histogram (one flight-recorder cell). */
struct HistogramSummary
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /** Samples that fell past the trackable range. */
    std::uint64_t overflow = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

class Histogram
{
  public:
    /** Linear region: values 0..31 each get their own bucket. */
    static constexpr std::size_t kLinearBuckets = 32;
    /** Sub-buckets per octave above the linear region (2^5). */
    static constexpr std::size_t kSubBuckets = 32;
    /** Largest trackable bit-width: values < 2^46 ns (~20 h). */
    static constexpr std::size_t kMaxOrder = 46;
    /** Octaves above the linear region. */
    static constexpr std::size_t kOctaves = kMaxOrder - 5;
    /** Index of the overflow bucket. */
    static constexpr std::size_t kOverflowBucket =
        kLinearBuckets + kOctaves * kSubBuckets;
    static constexpr std::size_t kBuckets = kOverflowBucket + 1;

    /** Bucket index for a value (kOverflowBucket when out of range). */
    static constexpr std::size_t
    bucketOf(std::uint64_t value)
    {
        if (value < kLinearBuckets)
            return static_cast<std::size_t>(value);
        const auto order =
            static_cast<std::size_t>(std::bit_width(value));
        if (order > kMaxOrder)
            return kOverflowBucket;
        // order >= 6 here: shift the value down so it lands in
        // [kSubBuckets, 2*kSubBuckets) and index linearly within the
        // octave.
        const std::size_t octave = order - 6;
        const auto sub =
            static_cast<std::size_t>(value >> octave) - kSubBuckets;
        return kLinearBuckets + octave * kSubBuckets + sub;
    }

    /** Inclusive lower bound of a bucket's value range. */
    static std::uint64_t bucketLowerBound(std::size_t bucket);
    /** Exclusive upper bound of a bucket's value range. */
    static std::uint64_t bucketUpperBound(std::size_t bucket);

    /**
     * Record one sample; lock-free, one relaxed RMW on the hot path.
     * Defined inline — this is the call every instrumented delivery
     * and dispatch site makes, gated at ~15 ns by check.sh.
     */
    void
    record(std::uint64_t nanos)
    {
        const std::size_t bucket = bucketOf(nanos);
        buckets_[bucket].fetch_add(1, std::memory_order_relaxed);

        std::uint64_t seen = min_.load(std::memory_order_relaxed);
        while (nanos < seen &&
               !min_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
        }
        seen = max_.load(std::memory_order_relaxed);
        while (nanos > seen &&
               !max_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
        }

        if (bucket == kOverflowBucket) [[unlikely]]
            recordOverflow();
    }

    /** Fold another histogram into this one, bucket-wise. */
    void merge(const Histogram &other);

    /** Total samples (derived: sums the bucket array; exact). */
    std::uint64_t count() const;
    /**
     * Sum of samples, derived from bucket midpoints: exact for values
     * below 64, within the bucket error bound (~1.6%) above it.
     */
    std::uint64_t sum() const;
    std::uint64_t min() const;
    std::uint64_t max() const;
    double mean() const;
    /** Samples routed to the overflow bucket. */
    std::uint64_t overflowCount() const;
    /**
     * Percentile in [0, 100] via linear interpolation inside the
     * containing bucket; relative error <= 1/kSubBuckets. 0 if empty.
     */
    double percentile(double pct) const;
    std::uint64_t bucketCount(std::size_t bucket) const;

    /** One consistent-enough digest (count/min/max/percentiles). */
    HistogramSummary summary() const;

    void reset();

  private:
    /** Cold path: bump `obs.sample.dropped` (kept out of line so the
     * header needn't see the registry). */
    void recordOverflow();

    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

} // namespace hydra::obs

#endif // HYDRA_OBS_HISTOGRAM_HH
