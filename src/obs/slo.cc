#include "obs/slo.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::obs {

namespace {

const char *
kindName(SloRule::Kind kind)
{
    switch (kind) {
      case SloRule::Kind::HistogramPercentile: return "histogram";
      case SloRule::Kind::CounterRate: return "counter";
      case SloRule::Kind::GaugeBound: return "gauge";
    }
    return "?";
}

double
numberOr(const json::Value &object, const std::string &key,
         double fallback, bool *present = nullptr)
{
    const json::Value *value = object.find(key);
    if (present)
        *present = value != nullptr;
    return value ? value->number : fallback;
}

Result<SloRule>
parseRule(const json::Value &spec, std::size_t index)
{
    if (!spec.isObject())
        return Error(ErrorCode::ParseError,
                     "slo: rule " + std::to_string(index) +
                         " is not an object");
    SloRule rule;
    const json::Value *name = spec.find("name");
    rule.name = name ? name->string
                     : "rule-" + std::to_string(index);

    const json::Value *histogram = spec.find("histogram");
    const json::Value *counter = spec.find("counter");
    const json::Value *gauge = spec.find("gauge");
    const int targets = (histogram ? 1 : 0) + (counter ? 1 : 0) +
                        (gauge ? 1 : 0);
    if (targets != 1)
        return Error(ErrorCode::ParseError,
                     "slo: rule '" + rule.name +
                         "' needs exactly one of histogram/counter/"
                         "gauge");

    if (histogram) {
        rule.kind = SloRule::Kind::HistogramPercentile;
        rule.metric = histogram->string;
        rule.percentile = numberOr(spec, "percentile", 99.0);
        rule.maxValue = numberOr(spec, "max", 0.0, &rule.hasMax);
        if (!rule.hasMax)
            return Error(ErrorCode::ParseError,
                         "slo: rule '" + rule.name +
                             "' (histogram) needs \"max\"");
        if (rule.percentile <= 0.0 || rule.percentile > 100.0)
            return Error(ErrorCode::ParseError,
                         "slo: rule '" + rule.name +
                             "' percentile out of (0, 100]");
    } else if (counter) {
        rule.kind = SloRule::Kind::CounterRate;
        rule.metric = counter->string;
        rule.maxValue =
            numberOr(spec, "max_rate_per_s", 0.0, &rule.hasMax);
        if (!rule.hasMax)
            return Error(ErrorCode::ParseError,
                         "slo: rule '" + rule.name +
                             "' (counter) needs \"max_rate_per_s\"");
    } else {
        rule.kind = SloRule::Kind::GaugeBound;
        rule.metric = gauge->string;
        rule.maxValue = numberOr(spec, "max", 0.0, &rule.hasMax);
        rule.minValue = numberOr(spec, "min", 0.0, &rule.hasMin);
        if (!rule.hasMax && !rule.hasMin)
            return Error(ErrorCode::ParseError,
                         "slo: rule '" + rule.name +
                             "' (gauge) needs \"min\" and/or \"max\"");
    }
    if (rule.metric.empty())
        return Error(ErrorCode::ParseError,
                     "slo: rule '" + rule.name + "' names no metric");
    std::string metricName;
    Labels labels;
    if (!parseDisplayKey(rule.metric, metricName, labels))
        return Error(ErrorCode::ParseError,
                     "slo: rule '" + rule.name + "' bad metric key '" +
                         rule.metric + "'");
    rule.violationCounter =
        &obs::counter("obs.slo.violations", {{"rule", rule.name}});
    return rule;
}

} // namespace

SloEngine &
SloEngine::instance()
{
    static SloEngine engine;
    return engine;
}

Status
SloEngine::loadSpec(const std::string &jsonText)
{
    auto doc = json::parse(jsonText);
    if (!doc)
        return Status(doc.error());
    const json::Value *rules = doc.value().find("rules");
    if (!rules || !rules->isArray())
        return Status(ErrorCode::ParseError,
                      "slo: spec needs a \"rules\" array");
    std::vector<SloRule> parsed;
    for (std::size_t i = 0; i < rules->array.size(); ++i) {
        auto rule = parseRule(rules->array[i], i);
        if (!rule)
            return Status(rule.error());
        parsed.push_back(std::move(rule).value());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    rules_ = std::move(parsed);
    lastEvalNs_ = 0;
    everEvaluated_ = false;
    return Status::success();
}

void
SloEngine::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.clear();
    lastEvalNs_ = 0;
    everEvaluated_ = false;
}

bool
SloEngine::hasRules() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !rules_.empty();
}

std::size_t
SloEngine::ruleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rules_.size();
}

void
SloEngine::checkViolation(SloRule &rule, bool violated, double observed,
                          std::uint64_t nowNs)
{
    rule.lastObserved = observed;
    rule.everObserved = true;
    if (!violated)
        return;
    ++rule.violations;
    rule.violationCounter->increment();
#if HYDRA_OBS_TRACING
    if (HYDRA_TRACE_ACTIVE()) {
        const TraceLane lane = Tracer::instance().lane("slo", "watchdog");
        HYDRA_TRACE_INSTANT(lane, "slo.violation:" + rule.name, "slo",
                            nowNs);
    }
#else
    (void)nowNs;
#endif
}

void
SloEngine::evaluate(std::uint64_t nowNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (rules_.empty())
        return;
    // Flight and sampler periodics can coincide at one timestamp;
    // evaluate once per instant so rates stay well-defined.
    if (everEvaluated_ && nowNs <= lastEvalNs_)
        return;
    const std::uint64_t prevNs = lastEvalNs_;
    const bool first = !everEvaluated_;
    lastEvalNs_ = nowNs;
    everEvaluated_ = true;

    MetricsRegistry &registry = MetricsRegistry::instance();
    for (SloRule &rule : rules_) {
        std::string metricName;
        Labels labels;
        parseDisplayKey(rule.metric, metricName, labels);
        switch (rule.kind) {
          case SloRule::Kind::HistogramPercentile: {
            const LatencyHistogram *histogram =
                registry.findHistogram(metricName, labels);
            if (!histogram || histogram->count() == 0)
                break; // nothing recorded yet: not a violation
            const double observed =
                histogram->percentile(rule.percentile);
            checkViolation(rule, observed > rule.maxValue, observed,
                           nowNs);
            break;
          }
          case SloRule::Kind::CounterRate: {
            const std::uint64_t value =
                registry.counterValue(metricName, labels);
            if (!rule.counterPrimed || first) {
                rule.lastCounterValue = value;
                rule.counterPrimed = true;
                break;
            }
            const std::uint64_t elapsed =
                nowNs > prevNs ? nowNs - prevNs : 0;
            if (elapsed == 0)
                break;
            const double rate =
                static_cast<double>(value - rule.lastCounterValue) /
                (static_cast<double>(elapsed) / 1e9);
            rule.lastCounterValue = value;
            checkViolation(rule, rate > rule.maxValue, rate, nowNs);
            break;
          }
          case SloRule::Kind::GaugeBound: {
            // The registry has no gauge lookup that avoids creating
            // the instrument; a snapshot scan keeps evaluation
            // read-only (absent gauge: not a violation).
            const RegistrySnapshot snap = registry.snapshot();
            const auto it = std::lower_bound(
                snap.gauges.begin(), snap.gauges.end(), rule.metric,
                [](const auto &entry, const std::string &key) {
                    return entry.first < key;
                });
            if (it == snap.gauges.end() || it->first != rule.metric)
                break;
            const double observed = it->second;
            const bool violated =
                (rule.hasMax && observed > rule.maxValue) ||
                (rule.hasMin && observed < rule.minValue);
            checkViolation(rule, violated, observed, nowNs);
            break;
          }
        }
    }
}

std::uint64_t
SloEngine::violationsTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const SloRule &rule : rules_)
        total += rule.violations;
    return total;
}

std::string
SloEngine::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    std::size_t nameWidth = 4;
    for (const SloRule &rule : rules_)
        nameWidth = std::max(nameWidth, rule.name.size());
    for (const SloRule &rule : rules_) {
        char line[512];
        std::string bound;
        if (rule.kind == SloRule::Kind::GaugeBound) {
            if (rule.hasMin)
                bound += "min=" + std::to_string(rule.minValue) + " ";
            if (rule.hasMax)
                bound += "max=" + std::to_string(rule.maxValue);
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%s<=%.6g",
                          rule.kind ==
                                  SloRule::Kind::HistogramPercentile
                              ? ("p" + std::to_string(
                                           static_cast<int>(
                                               rule.percentile)))
                                    .c_str()
                              : "rate/s",
                          rule.maxValue);
            bound = buf;
        }
        std::snprintf(
            line, sizeof(line),
            "  %-*s %-9s %-14s last=%.6g  %s  -> %s\n",
            static_cast<int>(nameWidth), rule.name.c_str(),
            kindName(rule.kind), bound.c_str(),
            rule.everObserved ? rule.lastObserved : 0.0,
            rule.metric.c_str(),
            rule.violations == 0
                ? "OK"
                : ("VIOLATED x" + std::to_string(rule.violations))
                      .c_str());
        out << line;
    }
    return out.str();
}

std::string
SloEngine::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\"rules\":[";
    bool firstRule = true;
    for (const SloRule &rule : rules_) {
        if (!firstRule)
            out << ',';
        firstRule = false;
        out << "{\"name\":";
        writeJsonString(out, rule.name);
        out << ",\"kind\":";
        writeJsonString(out, kindName(rule.kind));
        out << ",\"metric\":";
        writeJsonString(out, rule.metric);
        out << ",\"violations\":" << rule.violations
            << ",\"last_observed\":" << rule.lastObserved << '}';
    }
    std::uint64_t total = 0;
    for (const SloRule &rule : rules_)
        total += rule.violations;
    out << "],\"total_violations\":" << total << '}';
    return out.str();
}

} // namespace hydra::obs
