/**
 * @file
 * Process-wide metrics registry (DESIGN.md "Observability").
 *
 * Three instrument kinds cover the reproduction's needs:
 *  - Counter: monotonically increasing event count (messages sent,
 *    bus crossings, offcodes deployed).
 *  - Gauge: last-written level (event queue depth).
 *  - Histogram: HDR-style log-linear distribution of simulated-time
 *    durations in nanoseconds (channel send->deliver, Offcode service
 *    time, DMA transfers) with p50/p90/p99/p999 — see histogram.hh.
 *
 * Handles are identified by (name, labels) and live for the process
 * lifetime: registration takes a mutex, but updates are relaxed
 * atomics, so instruments can be cached in function-local statics at
 * hot call sites and bumped from anywhere. reset() zeroes values
 * without invalidating handles, which lets benches and tests scope
 * measurements to one scenario.
 */

#ifndef HYDRA_OBS_METRICS_HH
#define HYDRA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hh"

namespace hydra::obs {

/** Metric labels: (key, value) pairs; order-insensitive identity. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/**
 * Monotonic event counter. add() is a relaxed fetch_add: uncontended
 * (the common case — most counters have one writer) it costs the same
 * as a plain store on x86, and under the threaded executor concurrent
 * writers never lose increments, which the payload-conservation
 * invariants (allocations == recycles + live) depend on.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void increment() { add(1); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written level. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Historical name for the registry's distribution instrument; the
 * implementation is the HDR-style log-linear Histogram (histogram.hh).
 */
using LatencyHistogram = Histogram;

/** Flat display key: "name{k=v,...}" (labels already sorted). */
std::string displayKey(const std::string &name, const Labels &labels);

/**
 * Inverse of displayKey: split "name{k=v,...}" back into name and
 * labels (the SLO engine addresses instruments by display key).
 * Returns false on malformed keys; a bare "name" parses with empty
 * labels. Label values may contain any character except ',' and '}'.
 */
bool parseDisplayKey(const std::string &key, std::string &name,
                     Labels &labels);

/**
 * A point-in-time copy of every instrument, keyed by display name and
 * sorted, so the flight recorder and report printers can enumerate the
 * registry without holding its lock.
 */
struct RegistrySnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSummary>> histograms;
};

/** Registry of all instruments, keyed by (name, labels). */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    LatencyHistogram &histogram(const std::string &name,
                                const Labels &labels = {});

    /** Value of a counter, or 0 when it was never registered. */
    std::uint64_t counterValue(const std::string &name,
                               const Labels &labels = {}) const;
    /** Sum of every counter sharing @p name, across label sets. */
    std::uint64_t counterTotal(const std::string &name) const;
    /** Histogram lookup for tests; nullptr when absent. */
    const LatencyHistogram *findHistogram(const std::string &name,
                                          const Labels &labels = {}) const;

    /** Copy of every instrument's value, sorted by display key. */
    RegistrySnapshot snapshot() const;

    /** Zero every value; handles stay valid. */
    void reset();

    /** Machine-readable dump (one JSON object). */
    std::string toJson() const;
    /** Human-readable aligned table. */
    std::string prettyTable() const;

  private:
    MetricsRegistry() = default;

    template <typename T>
    struct Entry
    {
        std::string name;
        Labels labels;
        std::unique_ptr<T> instrument;
    };

    template <typename T>
    T &findOrCreate(std::vector<Entry<T>> &entries, const std::string &name,
                    const Labels &labels);

    mutable std::mutex mutex_;
    std::vector<Entry<Counter>> counters_;
    std::vector<Entry<Gauge>> gauges_;
    std::vector<Entry<LatencyHistogram>> histograms_;
};

/** Shorthands for instrumentation sites. */
inline Counter &
counter(const std::string &name, const Labels &labels = {})
{
    return MetricsRegistry::instance().counter(name, labels);
}

inline Gauge &
gauge(const std::string &name, const Labels &labels = {})
{
    return MetricsRegistry::instance().gauge(name, labels);
}

inline LatencyHistogram &
histogram(const std::string &name, const Labels &labels = {})
{
    return MetricsRegistry::instance().histogram(name, labels);
}

} // namespace hydra::obs

#endif // HYDRA_OBS_METRICS_HH
