/**
 * @file
 * Process-wide metrics registry (DESIGN.md "Observability").
 *
 * Three instrument kinds cover the reproduction's needs:
 *  - Counter: monotonically increasing event count (messages sent,
 *    bus crossings, offcodes deployed).
 *  - Gauge: last-written level (event queue depth).
 *  - LatencyHistogram: log2-bucketed distribution of simulated-time
 *    durations in nanoseconds (channel send->deliver, deploy time).
 *
 * Handles are identified by (name, labels) and live for the process
 * lifetime: registration takes a mutex, but updates are relaxed
 * atomics, so instruments can be cached in function-local statics at
 * hot call sites and bumped from anywhere. reset() zeroes values
 * without invalidating handles, which lets benches and tests scope
 * measurements to one scenario.
 */

#ifndef HYDRA_OBS_METRICS_HH
#define HYDRA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hydra::obs {

/** Metric labels: (key, value) pairs; order-insensitive identity. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/**
 * Monotonic event counter. add() is a relaxed fetch_add: uncontended
 * (the common case — most counters have one writer) it costs the same
 * as a plain store on x86, and under the threaded executor concurrent
 * writers never lose increments, which the payload-conservation
 * invariants (allocations == recycles + live) depend on.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void increment() { add(1); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written level. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log2-bucketed latency distribution. Bucket i counts samples whose
 * value has bit-width i, i.e. the half-open range [2^(i-1), 2^i);
 * bucket 0 counts zero-valued samples. Percentiles interpolate at
 * the geometric midpoint of the containing bucket, which is accurate
 * to within a factor of sqrt(2) — plenty for order-of-magnitude
 * latency attribution.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    void record(std::uint64_t nanos);

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t min() const;
    std::uint64_t max() const;
    double mean() const;
    /** Approximate percentile in [0, 100]; 0 when empty. */
    double percentile(double pct) const;
    std::uint64_t bucketCount(std::size_t bucket) const;

    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/** Registry of all instruments, keyed by (name, labels). */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    LatencyHistogram &histogram(const std::string &name,
                                const Labels &labels = {});

    /** Value of a counter, or 0 when it was never registered. */
    std::uint64_t counterValue(const std::string &name,
                               const Labels &labels = {}) const;
    /** Sum of every counter sharing @p name, across label sets. */
    std::uint64_t counterTotal(const std::string &name) const;
    /** Histogram lookup for tests; nullptr when absent. */
    const LatencyHistogram *findHistogram(const std::string &name,
                                          const Labels &labels = {}) const;

    /** Zero every value; handles stay valid. */
    void reset();

    /** Machine-readable dump (one JSON object). */
    std::string toJson() const;
    /** Human-readable aligned table. */
    std::string prettyTable() const;

  private:
    MetricsRegistry() = default;

    template <typename T>
    struct Entry
    {
        std::string name;
        Labels labels;
        std::unique_ptr<T> instrument;
    };

    template <typename T>
    T &findOrCreate(std::vector<Entry<T>> &entries, const std::string &name,
                    const Labels &labels);

    mutable std::mutex mutex_;
    std::vector<Entry<Counter>> counters_;
    std::vector<Entry<Gauge>> gauges_;
    std::vector<Entry<LatencyHistogram>> histograms_;
};

/** Shorthands for instrumentation sites. */
inline Counter &
counter(const std::string &name, const Labels &labels = {})
{
    return MetricsRegistry::instance().counter(name, labels);
}

inline Gauge &
gauge(const std::string &name, const Labels &labels = {})
{
    return MetricsRegistry::instance().gauge(name, labels);
}

inline LatencyHistogram &
histogram(const std::string &name, const Labels &labels = {})
{
    return MetricsRegistry::instance().histogram(name, labels);
}

} // namespace hydra::obs

#endif // HYDRA_OBS_METRICS_HH
