/**
 * @file
 * SLO watchdog: declarative health rules over the metrics registry
 * (DESIGN.md §12).
 *
 * Rules load from a small JSON spec ({"rules":[...]}) and are
 * evaluated against a registry snapshot at each flight interval. The
 * rule kind is inferred from which instrument field names the target
 * (by display key, e.g. "channel.delivery_latency_ns{channel=X}"):
 *
 *   {"name":"r", "histogram":KEY, "percentile":99, "max":50000}
 *       percentile of the named histogram must stay <= max.
 *   {"name":"r", "counter":KEY, "max_rate_per_s":10}
 *       the counter's growth rate (per simulated second, measured
 *       between evaluations) must stay <= the bound. The first
 *       evaluation primes the baseline and never fires.
 *   {"name":"r", "gauge":KEY, "min":0.1, "max":0.9}
 *       the gauge's level must stay inside [min, max]; either bound
 *       may be omitted.
 *
 * A rule whose instrument has recorded nothing yet is skipped, so
 * specs can be loaded before the workload starts. Violations bump
 * `obs.slo.violations{rule=name}`, emit a trace instant event, and
 * accumulate into the end-of-run report; `hydra_sim --slo-strict`
 * turns a nonzero total into a nonzero exit code, and the
 * hydra.Monitor "Slo" OOB method serves toJson() live.
 */

#ifndef HYDRA_OBS_SLO_HH
#define HYDRA_OBS_SLO_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hh"

namespace hydra::obs {

class Counter;

/** One declarative health rule. */
struct SloRule
{
    enum class Kind { HistogramPercentile, CounterRate, GaugeBound };

    std::string name;
    Kind kind = Kind::HistogramPercentile;
    /** Target instrument, addressed by display key. */
    std::string metric;
    double percentile = 99.0;   // HistogramPercentile
    double maxValue = 0.0;      // Histogram: ns; CounterRate: per s
    double minValue = 0.0;      // GaugeBound floor
    bool hasMax = false;
    bool hasMin = false;

    // --- evaluation state ---
    std::uint64_t violations = 0;
    double lastObserved = 0.0;
    bool everObserved = false;
    std::uint64_t lastCounterValue = 0; // CounterRate baseline
    bool counterPrimed = false;
    Counter *violationCounter = nullptr;
};

/** Process-wide rule set and evaluator. */
class SloEngine
{
  public:
    static SloEngine &instance();

    /** Replace the rule set from JSON spec text. */
    Status loadSpec(const std::string &jsonText);

    /** Drop every rule and reset evaluation state. */
    void clear();

    bool hasRules() const;
    std::size_t ruleCount() const;

    /**
     * Evaluate every rule against a fresh registry snapshot at
     * virtual time @p nowNs. Monotonic: a non-advancing clock is a
     * no-op (flight and sampler periodics may coincide).
     */
    void evaluate(std::uint64_t nowNs);

    /** Sum of every rule's violation count. */
    std::uint64_t violationsTotal() const;

    /** Human-readable end-of-run table. */
    std::string report() const;

    /** JSON state for the hydra.Monitor "Slo" OOB method. */
    std::string toJson() const;

  private:
    SloEngine() = default;

    void checkViolation(SloRule &rule, bool violated, double observed,
                        std::uint64_t nowNs);

    mutable std::mutex mutex_;
    std::vector<SloRule> rules_;
    std::uint64_t lastEvalNs_ = 0;
    bool everEvaluated_ = false;
};

} // namespace hydra::obs

#endif // HYDRA_OBS_SLO_HH
