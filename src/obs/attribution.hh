/**
 * @file
 * CPU attribution: who is burning which device CPU (DESIGN.md §12).
 *
 * The paper's layout decisions (Section 5) need live answers to "how
 * busy is each execution site, and which Offcode is consuming it".
 * This registry turns the hardware models' cumulative busy clocks
 * into windowed busy/idle counters per site and utilization gauges
 * per device and per Offcode:
 *
 *   exec.site_busy_ns{site=}     simulated ns the site's CPU ran work
 *   exec.site_idle_ns{site=}     simulated ns the site sat idle
 *   device.cpu_utilization{device=}  busy fraction of the last window
 *   offcode.cpu_ns{offcode=}     CPU time charged to one Offcode
 *   offcode.utilization{offcode=}    that Offcode's busy fraction
 *
 * Sites register a busy-up-to callback (a clamped read of hw::Cpu's
 * cumulative busy clock) rather than a Cpu pointer, so obs stays free
 * of hardware-layer types. sync(now) advances every entry:
 *
 *   busyDelta = min(busyUpTo(now) - busyReported, elapsed)
 *   idleDelta = elapsed - busyDelta
 *
 * The clamp keeps the invariant busy + idle == elapsed exact per site
 * even when work was queued past `now` (the CPU model charges whole
 * durations up front); the unclamped remainder carries into the next
 * window because busyReported only advances by the clamped amount.
 *
 * Thread model: registration and sync run on the coordinator thread;
 * the busy callbacks read relaxed atomics that device worker threads
 * write, so sync is safe while the threaded engine is running.
 */

#ifndef HYDRA_OBS_ATTRIBUTION_HH
#define HYDRA_OBS_ATTRIBUTION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hydra::obs {

class Counter;
class Gauge;

/** Process-wide site and Offcode CPU accounting. */
class CpuAttribution
{
  public:
    static CpuAttribution &instance();

    /** Cumulative busy ns of a site's CPU, clamped to @p nowNs. */
    using BusyFn = std::function<std::uint64_t(std::uint64_t nowNs)>;

    /**
     * Register (or re-baseline) a site. @p isDevice adds the
     * `device.cpu_utilization{device=site}` gauge. Idempotent per
     * name: a second registration resets the accounting baseline to
     * @p nowNs, which lets tests and benches reuse site names.
     * @p host tags the site's series with `host=` so a fleet run can
     * group them per machine; empty omits the label (bare test sites).
     */
    void registerSite(const std::string &site, BusyFn busyUpTo,
                      bool isDevice, std::uint64_t nowNs,
                      const std::string &host = "");

    /** Drop a site (its CPU model is being destroyed). */
    void unregisterSite(const std::string &site);

    /**
     * Register (or re-baseline) an Offcode. Reads the existing
     * `offcode.cpu_ns{offcode=}` counter — bumped by the dispatch
     * path — and publishes `offcode.utilization{offcode=}` per sync
     * window. Entries hold only registry handles (process-lifetime),
     * so no unregister is needed.
     */
    void registerOffcode(const std::string &bindname, std::uint64_t nowNs);

    /**
     * Advance every entry's accounting to @p nowNs. Monotonic: calls
     * with a non-advancing clock are no-ops. Call from the thread
     * that owns virtual time.
     */
    void sync(std::uint64_t nowNs);

    /** Registered site count (tests). */
    std::size_t siteCount() const;

  private:
    CpuAttribution() = default;

    struct SiteEntry
    {
        std::string name;
        BusyFn busyUpTo;
        bool isDevice = false;
        std::uint64_t lastSyncNs = 0;
        std::uint64_t busyReported = 0;
        Counter *busy = nullptr;
        Counter *idle = nullptr;
        Gauge *utilization = nullptr; // devices only
    };

    struct OffcodeEntry
    {
        std::string bindname;
        Counter *cpuNs = nullptr;
        Gauge *utilization = nullptr;
        std::uint64_t lastCpuNs = 0;
        std::uint64_t lastSyncNs = 0;
    };

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<SiteEntry>> sites_;
    std::vector<std::unique_ptr<OffcodeEntry>> offcodes_;
};

} // namespace hydra::obs

#endif // HYDRA_OBS_ATTRIBUTION_HH
