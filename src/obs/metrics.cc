#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hh"

namespace hydra::obs {

namespace {

/** Bucket index of a sample: 0 for 0, else bit-width of the value. */
std::size_t
bucketOf(std::uint64_t nanos)
{
    return static_cast<std::size_t>(std::bit_width(nanos));
}

/** Geometric midpoint of bucket i (its representative latency). */
double
bucketMid(std::size_t bucket)
{
    if (bucket == 0)
        return 0.0;
    const double lo = std::ldexp(1.0, static_cast<int>(bucket) - 1);
    return lo * std::sqrt(2.0);
}

Labels
sortedLabels(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

void
writeLabels(std::ostringstream &out, const Labels &labels)
{
    out << '{';
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out << ',';
        first = false;
        out << '"';
        jsonEscape(out, key);
        out << "\":\"";
        jsonEscape(out, value);
        out << '"';
    }
    out << '}';
}

void
writeNumber(std::ostringstream &out, double value)
{
    if (std::isfinite(value)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        out << buf;
    } else {
        out << "0";
    }
}

std::string
labelSuffix(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += labels[i].first + "=" + labels[i].second;
    }
    out += '}';
    return out;
}

} // namespace

void
LatencyHistogram::record(std::uint64_t nanos)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
    buckets_[bucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);

    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (nanos < seen &&
           !min_.compare_exchange_weak(seen, nanos,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (nanos > seen &&
           !max_.compare_exchange_weak(seen, nanos,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
LatencyHistogram::min() const
{
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

std::uint64_t
LatencyHistogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double
LatencyHistogram::percentile(double pct) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    const double rank = pct / 100.0 * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += buckets_[b].load(std::memory_order_relaxed);
        if (static_cast<double>(seen) >= rank)
            return std::clamp(bucketMid(b), static_cast<double>(min()),
                              static_cast<double>(max()));
    }
    return static_cast<double>(max());
}

std::uint64_t
LatencyHistogram::bucketCount(std::size_t bucket) const
{
    return bucket < kBuckets ? buckets_[bucket].load(std::memory_order_relaxed)
                             : 0;
}

void
LatencyHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

template <typename T>
T &
MetricsRegistry::findOrCreate(std::vector<Entry<T>> &entries,
                              const std::string &name, const Labels &labels)
{
    const Labels sorted = sortedLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<T> &entry : entries)
        if (entry.name == name && entry.labels == sorted)
            return *entry.instrument;
    entries.push_back(Entry<T>{name, sorted, std::make_unique<T>()});
    return *entries.back().instrument;
}

Counter &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    return findOrCreate(counters_, name, labels);
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    return findOrCreate(gauges_, name, labels);
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name, const Labels &labels)
{
    return findOrCreate(histograms_, name, labels);
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name,
                              const Labels &labels) const
{
    const Labels sorted = sortedLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<Counter> &entry : counters_)
        if (entry.name == name && entry.labels == sorted)
            return entry.instrument->value();
    return 0;
}

std::uint64_t
MetricsRegistry::counterTotal(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Entry<Counter> &entry : counters_)
        if (entry.name == name)
            total += entry.instrument->value();
    return total;
}

const LatencyHistogram *
MetricsRegistry::findHistogram(const std::string &name,
                               const Labels &labels) const
{
    const Labels sorted = sortedLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<LatencyHistogram> &entry : histograms_)
        if (entry.name == name && entry.labels == sorted)
            return entry.instrument.get();
    return nullptr;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<Counter> &entry : counters_)
        entry.instrument->reset();
    for (const Entry<Gauge> &entry : gauges_)
        entry.instrument->reset();
    for (const Entry<LatencyHistogram> &entry : histograms_)
        entry.instrument->reset();
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\"counters\":[";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        const auto &entry = counters_[i];
        if (i)
            out << ',';
        out << "{\"name\":\"";
        jsonEscape(out, entry.name);
        out << "\",\"labels\":";
        writeLabels(out, entry.labels);
        out << ",\"value\":" << entry.instrument->value() << '}';
    }
    out << "],\"gauges\":[";
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        const auto &entry = gauges_[i];
        if (i)
            out << ',';
        out << "{\"name\":\"";
        jsonEscape(out, entry.name);
        out << "\",\"labels\":";
        writeLabels(out, entry.labels);
        out << ",\"value\":";
        writeNumber(out, entry.instrument->value());
        out << '}';
    }
    out << "],\"histograms\":[";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        const auto &entry = histograms_[i];
        const LatencyHistogram &h = *entry.instrument;
        if (i)
            out << ',';
        out << "{\"name\":\"";
        jsonEscape(out, entry.name);
        out << "\",\"labels\":";
        writeLabels(out, entry.labels);
        out << ",\"unit\":\"ns\",\"count\":" << h.count()
            << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
            << ",\"max\":" << h.max() << ",\"mean\":";
        writeNumber(out, h.mean());
        out << ",\"p50\":";
        writeNumber(out, h.percentile(50.0));
        out << ",\"p90\":";
        writeNumber(out, h.percentile(90.0));
        out << ",\"p99\":";
        writeNumber(out, h.percentile(99.0));
        out << ",\"buckets\":[";
        bool first = true;
        for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
            const std::uint64_t n = h.bucketCount(b);
            if (n == 0)
                continue;
            if (!first)
                out << ',';
            first = false;
            out << "{\"le\":" << (b == 0 ? 0ull : (1ull << (b - 1)) * 2 - 1)
                << ",\"count\":" << n << '}';
        }
        out << "]}";
    }
    out << "]}";
    return out.str();
}

std::string
MetricsRegistry::prettyTable() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Rows are sorted by display name and the name column is sized to
    // the longest row, so the table reads the same however metrics
    // happened to register.
    struct Row
    {
        std::string key;
        std::string value;
    };
    auto collect = [](const auto &entries, auto format) {
        std::vector<Row> rows;
        for (const auto &entry : entries)
            rows.push_back(Row{entry.name + labelSuffix(entry.labels),
                               format(*entry.instrument)});
        std::sort(rows.begin(), rows.end(),
                  [](const Row &a, const Row &b) { return a.key < b.key; });
        return rows;
    };

    char buf[192];
    const std::vector<Row> counterRows =
        collect(counters_, [&](const Counter &c) {
            std::snprintf(buf, sizeof(buf), "%12llu",
                          static_cast<unsigned long long>(c.value()));
            return std::string(buf);
        });
    const std::vector<Row> gaugeRows =
        collect(gauges_, [&](const Gauge &g) {
            std::snprintf(buf, sizeof(buf), "%12.3f", g.value());
            return std::string(buf);
        });
    const std::vector<Row> histogramRows =
        collect(histograms_, [&](const LatencyHistogram &h) {
            std::snprintf(buf, sizeof(buf),
                          "n=%-9llu mean=%-11.0f p50=%-11.0f "
                          "p99=%-11.0f max=%llu",
                          static_cast<unsigned long long>(h.count()),
                          h.mean(), h.percentile(50.0), h.percentile(99.0),
                          static_cast<unsigned long long>(h.max()));
            return std::string(buf);
        });

    std::size_t width = 24;
    for (const auto *rows : {&counterRows, &gaugeRows, &histogramRows})
        for (const Row &row : *rows)
            width = std::max(width, row.key.size());

    std::ostringstream out;
    auto section = [&](const char *title, const std::vector<Row> &rows) {
        out << title << ":\n";
        for (const Row &row : rows) {
            char line[256];
            std::snprintf(line, sizeof(line), "  %-*s %s\n",
                          static_cast<int>(width), row.key.c_str(),
                          row.value.c_str());
            out << line;
        }
    };
    section("counters", counterRows);
    section("gauges", gaugeRows);
    section("histograms (ns)", histogramRows);
    return out.str();
}

} // namespace hydra::obs
