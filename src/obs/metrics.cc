#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hh"

namespace hydra::obs {

namespace {

Labels
sortedLabels(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

void
writeLabels(std::ostringstream &out, const Labels &labels)
{
    out << '{';
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out << ',';
        first = false;
        out << '"';
        jsonEscape(out, key);
        out << "\":\"";
        jsonEscape(out, value);
        out << '"';
    }
    out << '}';
}

void
writeNumber(std::ostringstream &out, double value)
{
    if (std::isfinite(value)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        out << buf;
    } else {
        out << "0";
    }
}

} // namespace

std::string
displayKey(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    std::string out = name + "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += labels[i].first + "=" + labels[i].second;
    }
    out += '}';
    return out;
}

bool
parseDisplayKey(const std::string &key, std::string &name, Labels &labels)
{
    labels.clear();
    const std::size_t brace = key.find('{');
    if (brace == std::string::npos) {
        if (key.empty())
            return false;
        name = key;
        return true;
    }
    if (brace == 0 || key.back() != '}')
        return false;
    name = key.substr(0, brace);
    std::size_t pos = brace + 1;
    const std::size_t end = key.size() - 1;
    while (pos < end) {
        std::size_t comma = key.find(',', pos);
        if (comma == std::string::npos || comma > end)
            comma = end;
        const std::string pair = key.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
        pos = comma + 1;
    }
    return true;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

template <typename T>
T &
MetricsRegistry::findOrCreate(std::vector<Entry<T>> &entries,
                              const std::string &name, const Labels &labels)
{
    const Labels sorted = sortedLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<T> &entry : entries)
        if (entry.name == name && entry.labels == sorted)
            return *entry.instrument;
    entries.push_back(Entry<T>{name, sorted, std::make_unique<T>()});
    return *entries.back().instrument;
}

Counter &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    return findOrCreate(counters_, name, labels);
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    return findOrCreate(gauges_, name, labels);
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name, const Labels &labels)
{
    return findOrCreate(histograms_, name, labels);
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name,
                              const Labels &labels) const
{
    const Labels sorted = sortedLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<Counter> &entry : counters_)
        if (entry.name == name && entry.labels == sorted)
            return entry.instrument->value();
    return 0;
}

std::uint64_t
MetricsRegistry::counterTotal(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Entry<Counter> &entry : counters_)
        if (entry.name == name)
            total += entry.instrument->value();
    return total;
}

const LatencyHistogram *
MetricsRegistry::findHistogram(const std::string &name,
                               const Labels &labels) const
{
    const Labels sorted = sortedLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<LatencyHistogram> &entry : histograms_)
        if (entry.name == name && entry.labels == sorted)
            return entry.instrument.get();
    return nullptr;
}

RegistrySnapshot
MetricsRegistry::snapshot() const
{
    RegistrySnapshot out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.counters.reserve(counters_.size());
        for (const Entry<Counter> &entry : counters_)
            out.counters.emplace_back(displayKey(entry.name, entry.labels),
                                      entry.instrument->value());
        out.gauges.reserve(gauges_.size());
        for (const Entry<Gauge> &entry : gauges_)
            out.gauges.emplace_back(displayKey(entry.name, entry.labels),
                                    entry.instrument->value());
        out.histograms.reserve(histograms_.size());
        for (const Entry<Histogram> &entry : histograms_)
            out.histograms.emplace_back(displayKey(entry.name, entry.labels),
                                        entry.instrument->summary());
    }
    // Sorted output makes flight snapshots and reports independent of
    // registration order.
    auto byKey = [](const auto &a, const auto &b) { return a.first < b.first; };
    std::sort(out.counters.begin(), out.counters.end(), byKey);
    std::sort(out.gauges.begin(), out.gauges.end(), byKey);
    std::sort(out.histograms.begin(), out.histograms.end(), byKey);
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry<Counter> &entry : counters_)
        entry.instrument->reset();
    for (const Entry<Gauge> &entry : gauges_)
        entry.instrument->reset();
    for (const Entry<LatencyHistogram> &entry : histograms_)
        entry.instrument->reset();
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\"counters\":[";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        const auto &entry = counters_[i];
        if (i)
            out << ',';
        out << "{\"name\":\"";
        jsonEscape(out, entry.name);
        out << "\",\"labels\":";
        writeLabels(out, entry.labels);
        out << ",\"value\":" << entry.instrument->value() << '}';
    }
    out << "],\"gauges\":[";
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        const auto &entry = gauges_[i];
        if (i)
            out << ',';
        out << "{\"name\":\"";
        jsonEscape(out, entry.name);
        out << "\",\"labels\":";
        writeLabels(out, entry.labels);
        out << ",\"value\":";
        writeNumber(out, entry.instrument->value());
        out << '}';
    }
    out << "],\"histograms\":[";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        const auto &entry = histograms_[i];
        const LatencyHistogram &h = *entry.instrument;
        if (i)
            out << ',';
        out << "{\"name\":\"";
        jsonEscape(out, entry.name);
        out << "\",\"labels\":";
        writeLabels(out, entry.labels);
        out << ",\"unit\":\"ns\",\"count\":" << h.count()
            << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
            << ",\"max\":" << h.max() << ",\"mean\":";
        writeNumber(out, h.mean());
        out << ",\"p50\":";
        writeNumber(out, h.percentile(50.0));
        out << ",\"p90\":";
        writeNumber(out, h.percentile(90.0));
        out << ",\"p99\":";
        writeNumber(out, h.percentile(99.0));
        out << ",\"p999\":";
        writeNumber(out, h.percentile(99.9));
        out << ",\"overflow\":" << h.overflowCount();
        out << ",\"buckets\":[";
        bool first = true;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            const std::uint64_t n = h.bucketCount(b);
            if (n == 0)
                continue;
            if (!first)
                out << ',';
            first = false;
            out << "{\"le\":"
                << (b >= Histogram::kOverflowBucket
                        ? h.max()
                        : Histogram::bucketUpperBound(b) - 1)
                << ",\"count\":" << n << '}';
        }
        out << "]}";
    }
    out << "]}";
    return out.str();
}

std::string
MetricsRegistry::prettyTable() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Rows are sorted by display name and the name column is sized to
    // the longest row, so the table reads the same however metrics
    // happened to register.
    struct Row
    {
        std::string key;
        std::string value;
    };
    auto collect = [](const auto &entries, auto format) {
        std::vector<Row> rows;
        for (const auto &entry : entries)
            rows.push_back(Row{displayKey(entry.name, entry.labels),
                               format(*entry.instrument)});
        std::sort(rows.begin(), rows.end(),
                  [](const Row &a, const Row &b) { return a.key < b.key; });
        return rows;
    };

    char buf[192];
    const std::vector<Row> counterRows =
        collect(counters_, [&](const Counter &c) {
            std::snprintf(buf, sizeof(buf), "%12llu",
                          static_cast<unsigned long long>(c.value()));
            return std::string(buf);
        });
    const std::vector<Row> gaugeRows =
        collect(gauges_, [&](const Gauge &g) {
            std::snprintf(buf, sizeof(buf), "%12.3f", g.value());
            return std::string(buf);
        });
    const std::vector<Row> histogramRows =
        collect(histograms_, [&](const Histogram &h) {
            std::snprintf(buf, sizeof(buf),
                          "n=%-9llu mean=%-11.0f p50=%-11.0f "
                          "p99=%-11.0f p999=%-11.0f max=%llu",
                          static_cast<unsigned long long>(h.count()),
                          h.mean(), h.percentile(50.0), h.percentile(99.0),
                          h.percentile(99.9),
                          static_cast<unsigned long long>(h.max()));
            return std::string(buf);
        });

    std::size_t width = 24;
    for (const auto *rows : {&counterRows, &gaugeRows, &histogramRows})
        for (const Row &row : *rows)
            width = std::max(width, row.key.size());

    std::ostringstream out;
    auto section = [&](const char *title, const std::vector<Row> &rows) {
        out << title << ":\n";
        for (const Row &row : rows) {
            char line[256];
            std::snprintf(line, sizeof(line), "  %-*s %s\n",
                          static_cast<int>(width), row.key.c_str(),
                          row.value.c_str());
            out << line;
        }
    };
    section("counters", counterRows);
    section("gauges", gaugeRows);
    section("histograms (ns)", histogramRows);
    return out.str();
}

} // namespace hydra::obs
