/**
 * @file
 * Sampling profiler over virtual time (DESIGN.md §12).
 *
 * A periodic sampler — driven by the executor's timer machinery, so
 * it is deterministic under the SimExecutor — that records what each
 * execution site is doing: running which Offcode in which handler
 * phase, idle, or parked (threaded engine only). Samples aggregate
 * into per-site folded stacks ("site;offcode;phase count"), the text
 * format flamegraph.pl and speedscope consume directly, and each
 * sample also emits a per-site Perfetto counter track when tracing
 * is on.
 *
 * Publish protocol: the dispatch path wraps each handler invocation
 * in an ActivityScope against the site's SiteActivitySlot. When the
 * profiler is disabled the scope is one relaxed load; when enabled it
 * is a pair of relaxed pointer stores. Because a discrete-event
 * sampler almost always fires *between* events (work is instantaneous
 * in wall time, finite in virtual time), a sample attributes a site
 * to:
 *
 *   1. the currently open scope, if any ("running"), else
 *   2. the last finished scope, if its recorded virtual end time is
 *      within one sampling interval of now (the work occupied the
 *      site's recent past or queued future), else
 *   3. "parked" when the threaded engine's worker is blocked on its
 *      condition variable, else
 *   4. "idle".
 *
 * Slots and labels are interned once and live for the process, so
 * hot paths cache raw pointers and never take the registry mutex.
 */

#ifndef HYDRA_OBS_PROFILER_HH
#define HYDRA_OBS_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hydra::obs {

/** Interned (offcode, phase) pair; pointer identity is stable. */
struct ActivityLabel
{
    std::string offcode;
    std::string phase;
};

/** One execution site's published activity; all fields atomic. */
struct SiteActivitySlot
{
    std::string site;
    std::atomic<const ActivityLabel *> current{nullptr};
    std::atomic<const ActivityLabel *> last{nullptr};
    /** Virtual end time of the last finished scope (0 = never). */
    std::atomic<std::uint64_t> lastEndNs{0};
    /** Threaded engine: worker blocked on its cv. */
    std::atomic<bool> parked{false};
};

class Profiler;

/**
 * RAII publisher for one handler invocation. No-op (one relaxed
 * load) while the profiler is disabled. finish(endNs) records the
 * virtual completion time; the destructor closes the scope without
 * touching lastEndNs if finish was never called (error paths).
 */
class ActivityScope
{
  public:
    ActivityScope() = default;
    ActivityScope(SiteActivitySlot *slot, const ActivityLabel *label);
    ~ActivityScope();

    ActivityScope(const ActivityScope &) = delete;
    ActivityScope &operator=(const ActivityScope &) = delete;

    /** Close the scope; @p endNs == 0 leaves lastEndNs untouched. */
    void finish(std::uint64_t endNs);

  private:
    SiteActivitySlot *slot_ = nullptr;
    const ActivityLabel *label_ = nullptr;
};

/** Process-wide sampling profiler. */
class Profiler
{
  public:
    static Profiler &instance();

    /** Start sampling with the given attribution window. */
    void enable(std::uint64_t intervalNs);
    void disable();
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    intervalNs() const
    {
        return intervalNs_.load(std::memory_order_relaxed);
    }

    /** Drop accumulated samples; slots and labels stay interned. */
    void clear();

    /** Intern the slot for @p site (stable for the process). */
    SiteActivitySlot *slotFor(const std::string &site);

    /** Intern an (offcode, phase) label (stable for the process). */
    const ActivityLabel *intern(const std::string &offcode,
                                const std::string &phase);

    /**
     * Take one sample of every known site at virtual time @p nowNs.
     * Call from the thread that owns virtual time.
     */
    void sample(std::uint64_t nowNs);

    /** Samples accumulated since the last clear(). */
    std::uint64_t samplesTaken() const;

    /**
     * Folded-stack text: one "site;offcode;phase count" line per
     * observed state, sorted by key — flamegraph-compatible and
     * byte-stable across identical runs.
     */
    std::string foldedStacks() const;

  private:
    Profiler() = default;

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> intervalNs_{0};

    mutable std::mutex mutex_;
    std::deque<SiteActivitySlot> slots_;
    std::deque<ActivityLabel> labels_;
    std::map<std::string, std::uint64_t> folded_;
    std::uint64_t samples_ = 0;
};

} // namespace hydra::obs

#endif // HYDRA_OBS_PROFILER_HH
