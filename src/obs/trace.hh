/**
 * @file
 * Event tracer emitting Chrome trace_event JSON, loadable in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Timestamps are *simulated* time: an exported trace shows where
 * simulated nanoseconds go (deploys, channel sends, bus transactions,
 * pipeline stages), laid out in one lane per device or subsystem.
 *
 * Cost model, mirroring HYDRA_LOG:
 *  - compile time: build with HYDRA_OBS_TRACING=0 and every
 *    HYDRA_TRACE_* macro expands to nothing;
 *  - run time: disabled by default; each macro first checks one
 *    relaxed atomic flag, so a disabled tracer costs one load and a
 *    predictable branch per site.
 *
 * Recording is bounded by a ring buffer: once capacity is reached
 * the oldest events are overwritten (the tail of a run is usually
 * the interesting part) and the overwrite count is reported.
 */

#ifndef HYDRA_OBS_TRACE_HH
#define HYDRA_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace hydra::obs {

/** A (pid, tid) pair naming a Perfetto track. */
struct TraceLane
{
    int pid = 0;
    int tid = 0;
};

/** One recorded trace event (Chrome trace_event schema fields). */
struct TraceEvent
{
    std::string name;
    std::string category;
    char phase = 'i';      ///< 'X' complete, 'i' instant, 'C' counter
    sim::SimTime ts = 0;   ///< simulated start time, ns
    sim::SimTime dur = 0;  ///< duration, ns ('X' only)
    int pid = 0;
    int tid = 0;
    double value = 0.0;    ///< sample value ('C' only)
    /** Causal span identity; 0 = not a span ('X' span events only). */
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;
};

/** Process-wide ring-buffered tracer. */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    static Tracer &instance();

    /** Start recording into a fresh ring of @p capacity events. */
    void enable(std::size_t capacity = kDefaultCapacity);
    void disable();
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all recorded events; keeps the enabled state. */
    void clear();

    /** Intern a (process, thread) pair as a stable lane. */
    TraceLane lane(const std::string &process, const std::string &thread);

    /** Duration event: [start, start + duration) on @p lane. */
    void complete(TraceLane lane, const std::string &name,
                  const std::string &category, sim::SimTime start,
                  sim::SimTime duration);

    /** Point-in-time marker. */
    void instant(TraceLane lane, const std::string &name,
                 const std::string &category, sim::SimTime ts);

    /** Counter-track sample (renders as a stacked area in Perfetto). */
    void counterSample(TraceLane lane, const std::string &name,
                       sim::SimTime ts, double value);

    /**
     * Causal span: a duration event carrying trace/span/parent ids.
     * Exported both as an 'X' slice (with the ids in args) and as a
     * legacy flow event bound by trace id, so Perfetto draws one
     * connected arrow chain per trace across lanes.
     */
    void span(TraceLane lane, const std::string &name,
              const std::string &category, sim::SimTime start,
              sim::SimTime duration, std::uint64_t trace_id,
              std::uint64_t span_id, std::uint64_t parent_id);

    /** Events currently held in the ring. */
    std::size_t eventsRecorded() const;
    /** Events overwritten after the ring filled. */
    std::uint64_t eventsOverwritten() const;
    std::size_t capacity() const;

    /** Serialize as Chrome trace JSON (object form, with metadata). */
    void writeJson(std::ostream &out) const;
    /** writeJson to @p path; false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Flat span listing (span events only), for offline analysis. */
    void writeSpansJson(std::ostream &out) const;
    /** writeSpansJson to @p path; false on I/O failure. */
    bool writeSpansFile(const std::string &path) const;

  private:
    Tracer() = default;

    void record(TraceEvent event);

    struct LaneName
    {
        std::string process;
        std::string thread;
        TraceLane lane;
    };

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    std::size_t capacity_ = 0;
    std::uint64_t total_ = 0; ///< events ever recorded since enable()
    std::vector<LaneName> lanes_;
};

} // namespace hydra::obs

/** Compile-time switch; defaults to compiled in. */
#ifndef HYDRA_OBS_TRACING
#define HYDRA_OBS_TRACING 1
#endif

#if HYDRA_OBS_TRACING
#define HYDRA_TRACE_ACTIVE() (::hydra::obs::Tracer::instance().enabled())
#define HYDRA_TRACE_COMPLETE(lane, name, category, start, duration)        \
    do {                                                                   \
        if (HYDRA_TRACE_ACTIVE())                                          \
            ::hydra::obs::Tracer::instance().complete(                     \
                (lane), (name), (category), (start), (duration));          \
    } while (0)
#define HYDRA_TRACE_INSTANT(lane, name, category, ts)                      \
    do {                                                                   \
        if (HYDRA_TRACE_ACTIVE())                                          \
            ::hydra::obs::Tracer::instance().instant((lane), (name),       \
                                                     (category), (ts));    \
    } while (0)
#define HYDRA_TRACE_COUNTER(lane, name, ts, value)                         \
    do {                                                                   \
        if (HYDRA_TRACE_ACTIVE())                                          \
            ::hydra::obs::Tracer::instance().counterSample(                \
                (lane), (name), (ts), (value));                            \
    } while (0)
#else
#define HYDRA_TRACE_ACTIVE() (false)
#define HYDRA_TRACE_COMPLETE(lane, name, category, start, duration) ((void)0)
#define HYDRA_TRACE_INSTANT(lane, name, category, ts) ((void)0)
#define HYDRA_TRACE_COUNTER(lane, name, ts, value) ((void)0)
#endif

#endif // HYDRA_OBS_TRACE_HH
