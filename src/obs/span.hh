/**
 * @file
 * Causal spans: who caused what, across sites and devices.
 *
 * A SpanContext is a (trace-id, span-id, parent-id) triple. One
 * thread-local context is "active" while a handler runs — per-thread
 * so executor sites each carry their own causal chain without racing;
 * message sends stamp it onto the wire and deliveries restore it at
 * the receiving site (ContextScope), so a frame's journey host ->
 * NIC -> disk shows up as one connected trace even when the hops run
 * on different worker threads. Span ids come from one process-wide
 * atomic counter, so ids never collide across threads.
 *
 * Cost model matches the tracer:
 *  - compile time: with HYDRA_OBS_TRACING=0 everything here is an
 *    inline no-op and spans vanish from the binary;
 *  - run time: a Span only does work after open(), and call sites
 *    guard open() with HYDRA_TRACE_ACTIVE(), so a disabled tracer
 *    costs one relaxed atomic load per span site.
 *
 * Ids are drawn from a deterministic counter (no wall clock, no
 * randomness), so fixed-seed runs produce identical traces.
 */

#ifndef HYDRA_OBS_SPAN_HH
#define HYDRA_OBS_SPAN_HH

#include <cstdint>
#include <string>

#include "obs/trace.hh"
#include "sim/time.hh"

namespace hydra::obs {

/** Propagated causal identity. A root span has traceId == spanId. */
struct SpanContext
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;

    bool valid() const { return traceId != 0; }
};

#if HYDRA_OBS_TRACING

/** The context of the span currently executing (invalid when none). */
const SpanContext &activeContext();

/** Replace the active context (prefer ContextScope for balance). */
void setActiveContext(const SpanContext &context);

/** Reset id allocation and the active context (tests, fresh runs). */
void resetSpanIds();

/** RAII: install @p context as active, restore the old one on exit. */
class ContextScope
{
  public:
    explicit ContextScope(const SpanContext &context);
    ~ContextScope();

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    SpanContext saved_;
};

/**
 * A scoped causal span. Default-constructed inactive; open() begins
 * it as a child of the active context (or as a new root) and makes
 * its own context active until destruction, so sends issued inside
 * the scope are stamped with it. end() records the span's duration;
 * a span destroyed without end() is emitted with zero duration.
 */
class Span
{
  public:
    Span() = default;
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /**
     * Begin the span at @p start on lane (@p process, @p thread).
     * No-op unless the tracer is enabled. Guard calls with
     * HYDRA_TRACE_ACTIVE() to skip argument construction too.
     */
    void open(const std::string &process, const std::string &thread,
              std::string name, std::string category, sim::SimTime start);

    /** Record the end time; the context stays active until ~Span. */
    void end(sim::SimTime ts);

    bool active() const { return active_; }
    const SpanContext &context() const { return ctx_; }

  private:
    TraceLane lane_{};
    std::string name_;
    std::string category_;
    sim::SimTime start_ = 0;
    SpanContext ctx_{};
    SpanContext saved_{};
    bool active_ = false;
    bool ended_ = false;
};

#else // !HYDRA_OBS_TRACING — spans compile out entirely.

inline SpanContext
activeContext()
{
    return {};
}

inline void
setActiveContext(const SpanContext &)
{
}

inline void
resetSpanIds()
{
}

class ContextScope
{
  public:
    explicit ContextScope(const SpanContext &) {}

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;
};

class Span
{
  public:
    Span() = default;

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    void
    open(const std::string &, const std::string &, std::string,
         std::string, sim::SimTime)
    {
    }

    void end(sim::SimTime) {}
    bool active() const { return false; }
    SpanContext context() const { return {}; }
};

#endif // HYDRA_OBS_TRACING

} // namespace hydra::obs

#endif // HYDRA_OBS_SPAN_HH
