#include "obs/json.hh"

#include <cstdio>

namespace hydra::obs {

void
jsonEscape(std::ostream &out, std::string_view text)
{
    for (char c : text) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\b': out << "\\b"; break;
          case '\f': out << "\\f"; break;
          case '\n': out << "\\n"; break;
          case '\r': out << "\\r"; break;
          case '\t': out << "\\t"; break;
          default:
            // Cast through unsigned char: a plain (signed) char would
            // sign-extend bytes >= 0x80 into "￿ff..".
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

void
writeJsonString(std::ostream &out, std::string_view text)
{
    out << '"';
    jsonEscape(out, text);
    out << '"';
}

} // namespace hydra::obs
