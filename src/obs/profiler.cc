#include "obs/profiler.hh"

#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::obs {

ActivityScope::ActivityScope(SiteActivitySlot *slot,
                             const ActivityLabel *label)
{
    if (!slot || !label || !Profiler::instance().enabled())
        return;
    slot_ = slot;
    label_ = label;
    slot_->current.store(label_, std::memory_order_relaxed);
}

ActivityScope::~ActivityScope()
{
    finish(0);
}

void
ActivityScope::finish(std::uint64_t endNs)
{
    if (!slot_)
        return;
    slot_->current.store(nullptr, std::memory_order_relaxed);
    slot_->last.store(label_, std::memory_order_relaxed);
    if (endNs != 0)
        slot_->lastEndNs.store(endNs, std::memory_order_relaxed);
    slot_ = nullptr;
    label_ = nullptr;
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::enable(std::uint64_t intervalNs)
{
    intervalNs_.store(intervalNs > 0 ? intervalNs : 1,
                      std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
Profiler::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Profiler::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    folded_.clear();
    samples_ = 0;
    for (SiteActivitySlot &slot : slots_) {
        slot.current.store(nullptr, std::memory_order_relaxed);
        slot.last.store(nullptr, std::memory_order_relaxed);
        slot.lastEndNs.store(0, std::memory_order_relaxed);
    }
}

SiteActivitySlot *
Profiler::slotFor(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (SiteActivitySlot &slot : slots_)
        if (slot.site == site)
            return &slot;
    slots_.emplace_back();
    slots_.back().site = site;
    return &slots_.back();
}

const ActivityLabel *
Profiler::intern(const std::string &offcode, const std::string &phase)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ActivityLabel &label : labels_)
        if (label.offcode == offcode && label.phase == phase)
            return &label;
    labels_.push_back(ActivityLabel{offcode, phase});
    return &labels_.back();
}

void
Profiler::sample(std::uint64_t nowNs)
{
    if (!enabled())
        return;
    const std::uint64_t interval =
        intervalNs_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    ++samples_;
    static Counter &taken = counter("obs.profiler.samples");
    taken.increment();
    for (SiteActivitySlot &slot : slots_) {
        // Sampling rule (header comment): open scope beats recent
        // scope beats parked beats idle. "Recent" means the last
        // scope's virtual end time lies within one interval of now —
        // in a discrete-event engine the sampler almost always fires
        // between events, so the recency window is what attributes
        // virtual time to the work that actually occupied it.
        const ActivityLabel *label =
            slot.current.load(std::memory_order_relaxed);
        double level = 1.0;
        if (!label) {
            const std::uint64_t lastEnd =
                slot.lastEndNs.load(std::memory_order_relaxed);
            if (lastEnd != 0 && lastEnd + interval > nowNs)
                label = slot.last.load(std::memory_order_relaxed);
        }
        std::string key = slot.site;
        if (label) {
            key += ';';
            key += label->offcode;
            key += ';';
            key += label->phase;
        } else if (slot.parked.load(std::memory_order_relaxed)) {
            key += ";parked";
            level = -1.0;
        } else {
            key += ";idle";
            level = 0.0;
        }
        ++folded_[key];
#if HYDRA_OBS_TRACING
        if (HYDRA_TRACE_ACTIVE()) {
            const TraceLane lane =
                Tracer::instance().lane("profiler", slot.site);
            HYDRA_TRACE_COUNTER(lane, "site.active", nowNs, level);
        }
#else
        (void)level;
#endif
    }
}

std::uint64_t
Profiler::samplesTaken() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

std::string
Profiler::foldedStacks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    // std::map iterates in key order, so the output is byte-stable
    // across identical runs regardless of slot creation order.
    for (const auto &[key, count] : folded_)
        out << key << ' ' << count << '\n';
    return out.str();
}

} // namespace hydra::obs
