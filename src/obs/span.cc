#include "obs/span.hh"

#include <atomic>

#if HYDRA_OBS_TRACING

namespace hydra::obs {

namespace {

// The active context is per-thread: each executor site propagates its
// own causal chain, so spans opened on different workers nest under
// their own parents instead of racing on one global. Span ids come
// from a process-wide atomic so ids stay unique across threads and
// the cross-thread flow arrows in Perfetto stitch into one trace.
// Under the sim executor everything runs on one thread, so id
// allocation order — and therefore golden span output — is unchanged.
thread_local SpanContext g_active{};
std::atomic<std::uint64_t> g_nextSpanId{1};

std::uint64_t
nextSpanId()
{
    return g_nextSpanId.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

const SpanContext &
activeContext()
{
    return g_active;
}

void
setActiveContext(const SpanContext &context)
{
    g_active = context;
}

void
resetSpanIds()
{
    g_active = SpanContext{};
    g_nextSpanId.store(1, std::memory_order_relaxed);
}

ContextScope::ContextScope(const SpanContext &context) : saved_(g_active)
{
    g_active = context;
}

ContextScope::~ContextScope()
{
    g_active = saved_;
}

void
Span::open(const std::string &process, const std::string &thread,
           std::string name, std::string category, sim::SimTime start)
{
    if (active_ || !Tracer::instance().enabled())
        return;
    lane_ = Tracer::instance().lane(process, thread);
    name_ = std::move(name);
    category_ = std::move(category);
    start_ = start;

    ctx_.spanId = nextSpanId();
    if (g_active.valid()) {
        ctx_.traceId = g_active.traceId;
        ctx_.parentId = g_active.spanId;
    } else {
        ctx_.traceId = ctx_.spanId;
        ctx_.parentId = 0;
    }

    saved_ = g_active;
    g_active = ctx_;
    active_ = true;
    ended_ = false;
}

void
Span::end(sim::SimTime ts)
{
    if (!active_ || ended_)
        return;
    ended_ = true;
    const sim::SimTime duration = ts > start_ ? ts - start_ : 0;
    Tracer::instance().span(lane_, name_, category_, start_, duration,
                            ctx_.traceId, ctx_.spanId, ctx_.parentId);
}

Span::~Span()
{
    if (!active_)
        return;
    if (!ended_)
        end(start_);
    g_active = saved_;
    active_ = false;
}

} // namespace hydra::obs

#endif // HYDRA_OBS_TRACING
