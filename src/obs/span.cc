#include "obs/span.hh"

#if HYDRA_OBS_TRACING

namespace hydra::obs {

namespace {

// The simulation is single-threaded; one global active context and a
// plain counter keep id allocation deterministic under a fixed seed.
SpanContext g_active{};
std::uint64_t g_nextSpanId = 1;

std::uint64_t
nextSpanId()
{
    return g_nextSpanId++;
}

} // namespace

const SpanContext &
activeContext()
{
    return g_active;
}

void
setActiveContext(const SpanContext &context)
{
    g_active = context;
}

void
resetSpanIds()
{
    g_active = SpanContext{};
    g_nextSpanId = 1;
}

ContextScope::ContextScope(const SpanContext &context) : saved_(g_active)
{
    g_active = context;
}

ContextScope::~ContextScope()
{
    g_active = saved_;
}

void
Span::open(const std::string &process, const std::string &thread,
           std::string name, std::string category, sim::SimTime start)
{
    if (active_ || !Tracer::instance().enabled())
        return;
    lane_ = Tracer::instance().lane(process, thread);
    name_ = std::move(name);
    category_ = std::move(category);
    start_ = start;

    ctx_.spanId = nextSpanId();
    if (g_active.valid()) {
        ctx_.traceId = g_active.traceId;
        ctx_.parentId = g_active.spanId;
    } else {
        ctx_.traceId = ctx_.spanId;
        ctx_.parentId = 0;
    }

    saved_ = g_active;
    g_active = ctx_;
    active_ = true;
    ended_ = false;
}

void
Span::end(sim::SimTime ts)
{
    if (!active_ || ended_)
        return;
    ended_ = true;
    const sim::SimTime duration = ts > start_ ? ts - start_ : 0;
    Tracer::instance().span(lane_, name_, category_, start_, duration,
                            ctx_.traceId, ctx_.spanId, ctx_.parentId);
}

Span::~Span()
{
    if (!active_)
        return;
    if (!ended_)
        end(start_);
    g_active = saved_;
    active_ = false;
}

} // namespace hydra::obs

#endif // HYDRA_OBS_TRACING
