/**
 * @file
 * Flight recorder (DESIGN.md §11): a bounded ring of periodic metric
 * snapshots giving the registry a time dimension.
 *
 * Each capture() walks the metrics registry and stores, keyed by
 * display name: counter *deltas* since the previous capture (zero
 * deltas are omitted — quiet metrics cost nothing per snapshot),
 * gauge levels, and histogram summaries (count + p50/p90/p99/p999 +
 * min/max, included only when the histogram grew). The ring holds
 * the last `capacity` snapshots; older ones are overwritten and
 * counted in `obs.flight.dropped_snapshots`, mirroring the
 * `obs.trace.dropped_events` idiom.
 *
 * The caller owns the cadence: the TiVo testbed and hydra_sim drive
 * capture() off Executor::schedulePeriodic, so under the SimExecutor
 * snapshots land at exact virtual times and the exported JSON is
 * byte-identical across runs. toJson() renders the ring as a time
 * series; `hydra_sim --flight-out` writes it to a file, and the
 * hydra.Monitor "Flight" OOB method streams a bounded tail of it so
 * hydra_top can render live percentile columns and sparklines.
 */

#ifndef HYDRA_OBS_FLIGHT_HH
#define HYDRA_OBS_FLIGHT_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"

namespace hydra::obs {

struct FlightConfig
{
    /** Snapshots retained before the ring overwrites the oldest. */
    std::size_t capacity = 256;
};

class FlightRecorder
{
  public:
    /** Process-wide recorder, paired with the process-wide registry. */
    static FlightRecorder &instance();

    FlightRecorder() = default;
    explicit FlightRecorder(FlightConfig config) : config_(config) {}

    /** Replace the configuration and drop all recorded state. */
    void configure(FlightConfig config);
    /** Drop all snapshots and delta baselines. */
    void clear();

    /** Record one snapshot of the metrics registry at @p nowNs. */
    void capture(std::uint64_t nowNs);

    /** Snapshots currently held in the ring. */
    std::size_t size() const;
    /** Total capture() calls since the last clear(). */
    std::uint64_t captured() const;
    /** Snapshots overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /**
     * Render the ring as a JSON time series. @p maxSnapshots limits
     * the output to the most recent N (0 = all) so the OOB path can
     * stay within the channel's message-size budget.
     */
    std::string toJson(std::size_t maxSnapshots = 0) const;

  private:
    struct Snapshot
    {
        std::uint64_t at = 0;
        std::vector<std::pair<std::string, std::uint64_t>> counterDeltas;
        std::vector<std::pair<std::string, double>> gauges;
        std::vector<std::pair<std::string, HistogramSummary>> histograms;
    };

    mutable std::mutex mutex_;
    FlightConfig config_;
    std::deque<Snapshot> ring_;
    std::uint64_t captured_ = 0;
    std::uint64_t droppedSnapshots_ = 0;
    /** Last seen counter values / histogram counts, for deltas. */
    std::map<std::string, std::uint64_t> lastCounter_;
    std::map<std::string, std::uint64_t> lastHistogramCount_;
};

} // namespace hydra::obs

#endif // HYDRA_OBS_FLIGHT_HH
