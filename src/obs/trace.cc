#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace hydra::obs {

namespace {

/** trace_event timestamps are microseconds; keep ns as fractions. */
void
writeTimestamp(std::ostream &out, sim::SimTime ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out << buf;
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    ring_.clear();
    ring_.reserve(std::min<std::size_t>(capacity_, 1 << 20));
    total_ = 0;
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    total_ = 0;
}

TraceLane
Tracer::lane(const std::string &process, const std::string &thread)
{
    std::lock_guard<std::mutex> lock(mutex_);
    int pid = 0;
    int maxPid = 0;
    for (const LaneName &known : lanes_) {
        maxPid = std::max(maxPid, known.lane.pid);
        if (known.process == process) {
            pid = known.lane.pid;
            if (known.thread == thread)
                return known.lane;
        }
    }
    if (pid == 0)
        pid = maxPid + 1;
    int tid = 1;
    for (const LaneName &known : lanes_)
        if (known.lane.pid == pid)
            tid = std::max(tid, known.lane.tid + 1);
    const TraceLane lane{pid, tid};
    lanes_.push_back(LaneName{process, thread, lane});
    return lane;
}

void
Tracer::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_.load(std::memory_order_relaxed) || capacity_ == 0)
        return;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
    } else {
        ring_[total_ % capacity_] = std::move(event);
        static Counter &dropped = counter("obs.trace.dropped_events");
        dropped.increment();
    }
    ++total_;
}

void
Tracer::complete(TraceLane lane, const std::string &name,
                 const std::string &category, sim::SimTime start,
                 sim::SimTime duration)
{
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.ts = start;
    event.dur = duration;
    event.pid = lane.pid;
    event.tid = lane.tid;
    record(std::move(event));
}

void
Tracer::instant(TraceLane lane, const std::string &name,
                const std::string &category, sim::SimTime ts)
{
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'i';
    event.ts = ts;
    event.pid = lane.pid;
    event.tid = lane.tid;
    record(std::move(event));
}

void
Tracer::counterSample(TraceLane lane, const std::string &name,
                      sim::SimTime ts, double value)
{
    TraceEvent event;
    event.name = name;
    event.phase = 'C';
    event.ts = ts;
    event.pid = lane.pid;
    event.tid = lane.tid;
    event.value = value;
    record(std::move(event));
}

void
Tracer::span(TraceLane lane, const std::string &name,
             const std::string &category, sim::SimTime start,
             sim::SimTime duration, std::uint64_t trace_id,
             std::uint64_t span_id, std::uint64_t parent_id)
{
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.ts = start;
    event.dur = duration;
    event.pid = lane.pid;
    event.tid = lane.tid;
    event.traceId = trace_id;
    event.spanId = span_id;
    event.parentId = parent_id;
    record(std::move(event));
}

std::size_t
Tracer::eventsRecorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::uint64_t
Tracer::eventsOverwritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::size_t
Tracer::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
Tracer::writeJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;

    // Lane metadata first, so Perfetto names every track: one
    // process_name per distinct pid, one thread_name per lane.
    std::vector<int> namedPids;
    for (const LaneName &lane : lanes_) {
        if (!first)
            out << ',';
        first = false;
        if (std::find(namedPids.begin(), namedPids.end(),
                      lane.lane.pid) == namedPids.end()) {
            namedPids.push_back(lane.lane.pid);
            out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
                << lane.lane.pid << ",\"tid\":0,\"args\":{\"name\":\"";
            jsonEscape(out, lane.process);
            out << "\"}},";
        }
        out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
            << lane.lane.pid << ",\"tid\":" << lane.lane.tid
            << ",\"args\":{\"name\":\"";
        jsonEscape(out, lane.thread);
        out << "\"}}";
    }

    // The ring is a circular buffer; emit in recording order.
    const std::size_t n = ring_.size();
    const std::size_t start = n < capacity_ ? 0 : total_ % capacity_;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &event = ring_[(start + i) % n];
        if (!first)
            out << ',';
        first = false;
        out << "{\"name\":\"";
        jsonEscape(out, event.name);
        out << "\",\"ph\":\"" << event.phase << "\",\"ts\":";
        writeTimestamp(out, event.ts);
        out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
        if (!event.category.empty()) {
            out << ",\"cat\":\"";
            jsonEscape(out, event.category);
            out << '"';
        }
        if (event.phase == 'X') {
            out << ",\"dur\":";
            writeTimestamp(out, event.dur);
            if (event.spanId != 0) {
                out << ",\"args\":{\"trace_id\":" << event.traceId
                    << ",\"span_id\":" << event.spanId
                    << ",\"parent_id\":" << event.parentId << '}';
            }
        } else if (event.phase == 'i') {
            out << ",\"s\":\"t\"";
        } else if (event.phase == 'C') {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.6g", event.value);
            out << ",\"args\":{\"value\":" << buf << '}';
        }
        out << '}';

        // Legacy flow events bound by trace id stitch a trace's spans
        // into one arrow chain across lanes. The flow point sits at
        // the slice midpoint so Perfetto attaches it to the slice.
        if (event.phase == 'X' && event.spanId != 0) {
            out << ",{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\""
                << (event.parentId == 0 ? 's' : 't')
                << "\",\"id\":" << event.traceId << ",\"ts\":";
            writeTimestamp(out, event.ts + event.dur / 2);
            out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid
                << '}';
        }
    }
    out << "],\"otherData\":{\"clock\":\"simulated\",\"overwritten\":"
        << (total_ > n ? total_ - n : 0) << "}}";
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJson(out);
    out.flush();
    return out.good();
}

void
Tracer::writeSpansJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"spans\":[";
    const std::size_t n = ring_.size();
    const std::size_t start = n < capacity_ ? 0 : total_ % capacity_;
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &event = ring_[(start + i) % n];
        if (event.phase != 'X' || event.spanId == 0)
            continue;
        if (!first)
            out << ',';
        first = false;
        out << "{\"name\":";
        writeJsonString(out, event.name);
        out << ",\"cat\":";
        writeJsonString(out, event.category);
        std::string site;
        for (const LaneName &lane : lanes_) {
            if (lane.lane.pid == event.pid && lane.lane.tid == event.tid) {
                site = lane.process + "/" + lane.thread;
                break;
            }
        }
        out << ",\"site\":";
        writeJsonString(out, site);
        out << ",\"ts_ns\":" << event.ts << ",\"dur_ns\":" << event.dur
            << ",\"trace_id\":" << event.traceId
            << ",\"span_id\":" << event.spanId
            << ",\"parent_id\":" << event.parentId << '}';
    }
    out << "],\"otherData\":{\"clock\":\"simulated\",\"overwritten\":"
        << (total_ > n ? total_ - n : 0) << "}}";
}

bool
Tracer::writeSpansFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeSpansJson(out);
    out.flush();
    return out.good();
}

} // namespace hydra::obs
