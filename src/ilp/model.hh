/**
 * @file
 * A small 0/1 integer linear programming model (paper Section 5).
 *
 * The paper expresses the offloading layout graph as a set of linear
 * equations over binary placement variables and hands them to "any
 * ILP solver". This module is that solver's input language: binary
 * variables, linear constraints (=, <=, >=), and a linear objective.
 */

#ifndef HYDRA_ILP_MODEL_HH
#define HYDRA_ILP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hydra::ilp {

/** Index of a binary decision variable. */
using VarId = std::size_t;

/** One term of a linear expression: coeff * var. */
struct Term
{
    double coeff = 0.0;
    VarId var = 0;
};

/** A linear expression: sum of terms plus a constant. */
class LinearExpr
{
  public:
    LinearExpr() = default;

    LinearExpr &add(double coeff, VarId var);
    LinearExpr &addConstant(double value);

    const std::vector<Term> &terms() const { return terms_; }
    double constant() const { return constant_; }

    /** Evaluate under a (partial) assignment; unset vars = 0. */
    double evaluate(const std::vector<std::int8_t> &values) const;

  private:
    std::vector<Term> terms_;
    double constant_ = 0.0;
};

/** Constraint relation. */
enum class Relation { Eq, Le, Ge };

/** expr (rel) rhs. */
struct Constraint
{
    LinearExpr expr;
    Relation rel = Relation::Eq;
    double rhs = 0.0;
    std::string name;
};

/** Optimization direction. */
enum class Sense { Maximize, Minimize };

/** A complete 0/1 ILP instance. */
class Model
{
  public:
    VarId addBinaryVar(std::string name);

    void addConstraint(LinearExpr expr, Relation rel, double rhs,
                       std::string name = {});

    void setObjective(LinearExpr objective, Sense sense);

    std::size_t numVars() const { return varNames_.size(); }
    const std::string &varName(VarId var) const { return varNames_[var]; }
    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }
    const LinearExpr &objective() const { return objective_; }
    Sense sense() const { return sense_; }

  private:
    std::vector<std::string> varNames_;
    std::vector<Constraint> constraints_;
    LinearExpr objective_;
    Sense sense_ = Sense::Maximize;
};

} // namespace hydra::ilp

#endif // HYDRA_ILP_MODEL_HH
