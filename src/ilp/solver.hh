/**
 * @file
 * Exact 0/1 ILP solver: depth-first branch-and-bound with per-
 * constraint interval propagation and an optimistic objective bound.
 *
 * Layout problems are small (tens of Offcodes × a handful of
 * devices), so exact search is tractable; a node limit guards
 * against adversarial instances.
 */

#ifndef HYDRA_ILP_SOLVER_HH
#define HYDRA_ILP_SOLVER_HH

#include <cstdint>
#include <vector>

#include "common/result.hh"
#include "ilp/model.hh"

namespace hydra::ilp {

/** Search limits. */
struct SolverLimits
{
    std::uint64_t maxNodes = 20'000'000;
};

/** An optimal assignment (when status is Ok). */
struct Solution
{
    std::vector<std::int8_t> values; ///< 0/1 per variable
    double objective = 0.0;
    std::uint64_t nodesExplored = 0;
    /** True when the search space was exhausted (proven optimal). */
    bool proven = true;
};

/** Branch-and-bound solver over a Model. */
class Solver
{
  public:
    explicit Solver(SolverLimits limits = {}) : limits_(limits) {}

    /**
     * Solve to proven optimality. Returns Infeasible when no
     * assignment satisfies the constraints, SolverLimitReached when
     * the node budget ran out before the search space was exhausted.
     */
    Result<Solution> solve(const Model &model) const;

  private:
    SolverLimits limits_;
};

/** Check an assignment against every constraint (for tests). */
bool satisfies(const Model &model, const std::vector<std::int8_t> &values);

} // namespace hydra::ilp

#endif // HYDRA_ILP_SOLVER_HH
