#include "ilp/solver.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hydra::ilp {

namespace {

constexpr double kEps = 1e-9;

/** Per-constraint running bounds under the current partial fix. */
struct ConstraintState
{
    /** Sum achievable if all unfixed vars pick their min contribution. */
    double lo = 0.0;
    /** Sum achievable if all unfixed vars pick their max contribution. */
    double hi = 0.0;
};

/** Search engine: keeps the model in flattened arrays for speed. */
class Engine
{
  public:
    Engine(const Model &model, const SolverLimits &limits)
        : model_(model), limits_(limits)
    {
        const std::size_t n = model.numVars();
        values_.assign(n, -1); // -1 = unfixed

        // Flip minimization into maximization of the negated objective.
        negate_ = model.sense() == Sense::Minimize;

        objCoeff_.assign(n, 0.0);
        objConst_ = model.objective().constant() * (negate_ ? -1.0 : 1.0);
        for (const Term &term : model.objective().terms())
            objCoeff_[term.var] += negate_ ? -term.coeff : term.coeff;

        // Constraint states start with everything unfixed.
        const auto &constraints = model.constraints();
        states_.resize(constraints.size());
        varCons_.assign(n, {});
        consCoeff_.resize(constraints.size());
        for (std::size_t c = 0; c < constraints.size(); ++c) {
            ConstraintState &state = states_[c];
            state.lo = constraints[c].expr.constant();
            state.hi = constraints[c].expr.constant();
            auto &coeffs = consCoeff_[c];
            coeffs.assign(n, 0.0);
            for (const Term &term : constraints[c].expr.terms())
                coeffs[term.var] += term.coeff;
            for (VarId v = 0; v < n; ++v) {
                if (coeffs[v] == 0.0)
                    continue;
                varCons_[v].push_back(c);
                if (coeffs[v] > 0.0)
                    state.hi += coeffs[v];
                else
                    state.lo += coeffs[v];
            }
        }

        // Branch on variables with large |objective| first.
        order_.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            order_[i] = i;
        std::stable_sort(order_.begin(), order_.end(),
                         [this](VarId a, VarId b) {
                             return std::abs(objCoeff_[a]) >
                                    std::abs(objCoeff_[b]);
                         });
    }

    Result<Solution>
    run()
    {
        if (!feasibleSoFar())
            return Error(ErrorCode::Infeasible, "constraints conflict");
        search(0, objConst_);
        const bool exhausted = nodes_ < limits_.maxNodes;
        if (!hasIncumbent_) {
            if (!exhausted)
                return Error(ErrorCode::SolverLimitReached,
                             "node limit reached with no incumbent");
            return Error(ErrorCode::Infeasible,
                         "no feasible assignment exists");
        }
        Solution solution;
        solution.values = best_;
        solution.objective = negate_ ? -bestObj_ : bestObj_;
        solution.nodesExplored = nodes_;
        solution.proven = exhausted;
        return solution;
    }

  private:
    /** True while every constraint can still be satisfied. */
    bool
    feasibleSoFar() const
    {
        const auto &constraints = model_.constraints();
        for (std::size_t c = 0; c < constraints.size(); ++c) {
            const ConstraintState &state = states_[c];
            const double rhs = constraints[c].rhs;
            switch (constraints[c].rel) {
              case Relation::Eq:
                if (state.lo > rhs + kEps || state.hi < rhs - kEps)
                    return false;
                break;
              case Relation::Le:
                if (state.lo > rhs + kEps)
                    return false;
                break;
              case Relation::Ge:
                if (state.hi < rhs - kEps)
                    return false;
                break;
            }
        }
        return true;
    }

    /** Apply (or undo with sign=-1) fixing var to value. */
    void
    fix(VarId var, std::int8_t value, int sign)
    {
        for (std::size_t c : varCons_[var]) {
            const double coeff = consCoeff_[c][var];
            ConstraintState &state = states_[c];
            if (sign > 0) {
                // Previously unfixed: remove the slack contribution,
                // then add the chosen one.
                if (coeff > 0.0)
                    state.hi -= coeff;
                else
                    state.lo -= coeff;
                if (value == 1) {
                    state.lo += coeff;
                    state.hi += coeff;
                }
            } else {
                if (value == 1) {
                    state.lo -= coeff;
                    state.hi -= coeff;
                }
                if (coeff > 0.0)
                    state.hi += coeff;
                else
                    state.lo += coeff;
            }
        }
        values_[var] = sign > 0 ? value : std::int8_t(-1);
    }

    /** Optimistic bound: current objective + best possible rest. */
    double
    optimisticRest(std::size_t depth) const
    {
        double rest = 0.0;
        for (std::size_t i = depth; i < order_.size(); ++i) {
            const double coeff = objCoeff_[order_[i]];
            if (coeff > 0.0)
                rest += coeff;
        }
        return rest;
    }

    void
    search(std::size_t depth, double objSoFar)
    {
        if (nodes_ >= limits_.maxNodes)
            return;
        ++nodes_;

        if (!feasibleSoFar())
            return;
        if (hasIncumbent_ &&
            objSoFar + optimisticRest(depth) <= bestObj_ + kEps)
            return;

        if (depth == order_.size()) {
            hasIncumbent_ = true;
            bestObj_ = objSoFar;
            best_ = values_;
            return;
        }

        const VarId var = order_[depth];
        // Explore the objective-preferred value first.
        const std::int8_t preferred = objCoeff_[var] >= 0.0 ? 1 : 0;
        for (int attempt = 0; attempt < 2; ++attempt) {
            const std::int8_t value =
                attempt == 0 ? preferred : std::int8_t(1 - preferred);
            fix(var, value, +1);
            search(depth + 1,
                   objSoFar + (value == 1 ? objCoeff_[var] : 0.0));
            fix(var, value, -1);
        }
    }

    const Model &model_;
    SolverLimits limits_;
    bool negate_ = false;

    std::vector<std::int8_t> values_;
    std::vector<double> objCoeff_;
    double objConst_ = 0.0;
    std::vector<ConstraintState> states_;
    std::vector<std::vector<std::size_t>> varCons_;
    std::vector<std::vector<double>> consCoeff_;
    std::vector<VarId> order_;

    bool hasIncumbent_ = false;
    double bestObj_ = -std::numeric_limits<double>::infinity();
    std::vector<std::int8_t> best_;
    std::uint64_t nodes_ = 0;
};

} // namespace

Result<Solution>
Solver::solve(const Model &model) const
{
    Engine engine(model, limits_);
    return engine.run();
}

bool
satisfies(const Model &model, const std::vector<std::int8_t> &values)
{
    for (const Constraint &constraint : model.constraints()) {
        const double lhs = constraint.expr.evaluate(values);
        switch (constraint.rel) {
          case Relation::Eq:
            if (std::abs(lhs - constraint.rhs) > kEps)
                return false;
            break;
          case Relation::Le:
            if (lhs > constraint.rhs + kEps)
                return false;
            break;
          case Relation::Ge:
            if (lhs < constraint.rhs - kEps)
                return false;
            break;
        }
    }
    return true;
}

} // namespace hydra::ilp
