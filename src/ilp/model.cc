#include "ilp/model.hh"

#include <cassert>

namespace hydra::ilp {

LinearExpr &
LinearExpr::add(double coeff, VarId var)
{
    terms_.push_back(Term{coeff, var});
    return *this;
}

LinearExpr &
LinearExpr::addConstant(double value)
{
    constant_ += value;
    return *this;
}

double
LinearExpr::evaluate(const std::vector<std::int8_t> &values) const
{
    double out = constant_;
    for (const Term &term : terms_) {
        assert(term.var < values.size());
        if (values[term.var] == 1)
            out += term.coeff;
    }
    return out;
}

VarId
Model::addBinaryVar(std::string name)
{
    varNames_.push_back(std::move(name));
    return varNames_.size() - 1;
}

void
Model::addConstraint(LinearExpr expr, Relation rel, double rhs,
                     std::string name)
{
    constraints_.push_back(
        Constraint{std::move(expr), rel, rhs, std::move(name)});
}

void
Model::setObjective(LinearExpr objective, Sense sense)
{
    objective_ = std::move(objective);
    sense_ = sense;
}

} // namespace hydra::ilp
