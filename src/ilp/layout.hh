/**
 * @file
 * The paper's Section 5 formulation: an offloading layout graph
 * expressed as a 0/1 ILP, plus a greedy baseline placer.
 *
 * Notation follows the paper: device index 0 is the host CPU; an
 * Offcode n is "offloaded" when it is placed on any device k >= 1.
 *
 *  - placement:        forall n:  sum_k X[n][k] = 1          (Eq. 1)
 *  - Pull(a,b):        forall k:  X[a][k] = X[b][k]          (Eq. 2)
 *  - Gang(a,b):        sum_{k>=1} X[a][k] = sum_{k>=1} X[b][k]  (Eq. 3)
 *  - AsymGang(a->b):   sum_{k>=1} X[a][k] <= sum_{k>=1} X[b][k] (Eq. 4)
 *
 * Objectives: Maximized Offloading (count of offloaded Offcodes) and
 * Maximize Bus Usage (total offloaded bus "price", subject to
 * per-device-link bandwidth capacity — our linear stand-in for the
 * paper's pairwise bus capability matrix; a pairwise product term
 * would not be linear in X).
 */

#ifndef HYDRA_ILP_LAYOUT_HH
#define HYDRA_ILP_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"
#include "ilp/solver.hh"

namespace hydra::ilp {

/** Placement-relevant constraint kinds (Link imposes nothing). */
enum class LayoutConstraint : std::uint8_t { Pull, Gang, AsymGang };

/** A constraint edge between two Offcodes (a -> b for AsymGang). */
struct LayoutEdge
{
    std::size_t a = 0;
    std::size_t b = 0;
    LayoutConstraint kind = LayoutConstraint::Pull;
};

/** Objective selection. */
enum class LayoutObjective { MaximizeOffloading, MaximizeBusUsage };

/** A layout problem instance. Device 0 is always the host CPU. */
struct LayoutSpec
{
    std::size_t numOffcodes = 0;
    std::size_t numDevices = 1; // including the host at index 0

    /** compatible[n][k]: Offcode n can run on device k (C in §5). */
    std::vector<std::vector<bool>> compatible;

    std::vector<LayoutEdge> edges;

    LayoutObjective objective = LayoutObjective::MaximizeOffloading;

    /** Per-Offcode bus-bandwidth demand (busPrice; Gbps). */
    std::vector<double> busPrice;
    /** Per-device link capacity (Gbps); empty = unbounded. */
    std::vector<double> linkCapacity;

    /** Per-Offcode device memory demand (bytes); optional. */
    std::vector<double> memoryDemand;
    /** Per-device memory limit (bytes); empty = unbounded. */
    std::vector<double> memoryLimit;

    /** Human-readable names, for diagnostics (optional). */
    std::vector<std::string> offcodeNames;
    std::vector<std::string> deviceNames;
};

/** A placement: device index per Offcode. */
struct LayoutAssignment
{
    std::vector<std::size_t> device;
    double objective = 0.0;
    std::uint64_t nodesExplored = 0;

    std::size_t
    offloadedCount() const
    {
        std::size_t count = 0;
        for (std::size_t d : device)
            if (d != 0)
                ++count;
        return count;
    }
};

/** Build the ILP model for a spec (exposed for tests). */
Result<Model> buildLayoutModel(const LayoutSpec &spec);

/** Solve a layout to proven optimality via branch-and-bound. */
Result<LayoutAssignment> solveLayout(const LayoutSpec &spec,
                                     SolverLimits limits = {});

/**
 * Greedy baseline: place Offcodes in index order on the first
 * compatible non-host device with remaining capacity, falling back
 * to the host; repairs Pull/Gang violations by de-offloading. The
 * paper notes such greedy placement "is not always optimal" on
 * complex graphs — the ilp_layout bench quantifies that.
 */
Result<LayoutAssignment> greedyLayout(const LayoutSpec &spec);

/** Check a placement against the spec's constraints. */
Status validateAssignment(const LayoutSpec &spec,
                          const std::vector<std::size_t> &device);

/** Objective value of a placement under the spec's objective. */
double assignmentObjective(const LayoutSpec &spec,
                           const std::vector<std::size_t> &device);

} // namespace hydra::ilp

#endif // HYDRA_ILP_LAYOUT_HH
