#include "ilp/layout.hh"

#include <algorithm>
#include <cassert>

namespace hydra::ilp {

namespace {

Status
checkSpec(const LayoutSpec &spec)
{
    if (spec.numDevices == 0)
        return Status(ErrorCode::InvalidArgument, "no devices");
    if (spec.compatible.size() != spec.numOffcodes)
        return Status(ErrorCode::InvalidArgument,
                      "compatibility matrix row count mismatch");
    for (const auto &row : spec.compatible)
        if (row.size() != spec.numDevices)
            return Status(ErrorCode::InvalidArgument,
                          "compatibility matrix column count mismatch");
    for (const LayoutEdge &edge : spec.edges)
        if (edge.a >= spec.numOffcodes || edge.b >= spec.numOffcodes)
            return Status(ErrorCode::OutOfRange, "edge index out of range");
    if (spec.objective == LayoutObjective::MaximizeBusUsage &&
        spec.busPrice.size() != spec.numOffcodes)
        return Status(ErrorCode::InvalidArgument,
                      "bus objective requires a price per offcode");
    return Status::success();
}

double
price(const LayoutSpec &spec, std::size_t n)
{
    return n < spec.busPrice.size() ? spec.busPrice[n] : 0.0;
}

double
memDemand(const LayoutSpec &spec, std::size_t n)
{
    return n < spec.memoryDemand.size() ? spec.memoryDemand[n] : 0.0;
}

} // namespace

Result<Model>
buildLayoutModel(const LayoutSpec &spec)
{
    Status valid = checkSpec(spec);
    if (!valid)
        return valid.error();

    Model model;
    const std::size_t N = spec.numOffcodes;
    const std::size_t K = spec.numDevices;

    // X[n][k] exists only where compatible (C^k_n = 1); incompatible
    // placements are simply absent rather than pinned to zero.
    std::vector<std::vector<VarId>> x(N, std::vector<VarId>(K, SIZE_MAX));
    for (std::size_t n = 0; n < N; ++n) {
        bool any = false;
        for (std::size_t k = 0; k < K; ++k) {
            if (!spec.compatible[n][k])
                continue;
            const std::string nm =
                "x[" +
                (n < spec.offcodeNames.size() ? spec.offcodeNames[n]
                                              : std::to_string(n)) +
                "][" +
                (k < spec.deviceNames.size() ? spec.deviceNames[k]
                                             : std::to_string(k)) +
                "]";
            x[n][k] = model.addBinaryVar(nm);
            any = true;
        }
        if (!any)
            return Error(ErrorCode::DeviceIncompatible,
                         "offcode " + std::to_string(n) +
                             " is compatible with no device");
    }

    // Eq. 1 — unique placement per Offcode.
    for (std::size_t n = 0; n < N; ++n) {
        LinearExpr sum;
        for (std::size_t k = 0; k < K; ++k)
            if (x[n][k] != SIZE_MAX)
                sum.add(1.0, x[n][k]);
        model.addConstraint(std::move(sum), Relation::Eq, 1.0,
                            "place[" + std::to_string(n) + "]");
    }

    // Constraint edges (Eqs. 2-4).
    for (const LayoutEdge &edge : spec.edges) {
        switch (edge.kind) {
          case LayoutConstraint::Pull:
            for (std::size_t k = 0; k < K; ++k) {
                LinearExpr diff;
                if (x[edge.a][k] != SIZE_MAX)
                    diff.add(1.0, x[edge.a][k]);
                if (x[edge.b][k] != SIZE_MAX)
                    diff.add(-1.0, x[edge.b][k]);
                if (diff.terms().empty())
                    continue;
                model.addConstraint(std::move(diff), Relation::Eq, 0.0,
                                    "pull");
            }
            break;
          case LayoutConstraint::Gang: {
            LinearExpr diff;
            for (std::size_t k = 1; k < K; ++k) {
                if (x[edge.a][k] != SIZE_MAX)
                    diff.add(1.0, x[edge.a][k]);
                if (x[edge.b][k] != SIZE_MAX)
                    diff.add(-1.0, x[edge.b][k]);
            }
            model.addConstraint(std::move(diff), Relation::Eq, 0.0,
                                "gang");
            break;
          }
          case LayoutConstraint::AsymGang: {
            // offload(a) <= offload(b)
            LinearExpr diff;
            for (std::size_t k = 1; k < K; ++k) {
                if (x[edge.a][k] != SIZE_MAX)
                    diff.add(1.0, x[edge.a][k]);
                if (x[edge.b][k] != SIZE_MAX)
                    diff.add(-1.0, x[edge.b][k]);
            }
            model.addConstraint(std::move(diff), Relation::Le, 0.0,
                                "asym-gang");
            break;
          }
        }
    }

    // Capacity constraints (bus link bandwidth, device memory).
    for (std::size_t k = 1; k < K; ++k) {
        if (k < spec.linkCapacity.size()) {
            LinearExpr load;
            bool any = false;
            for (std::size_t n = 0; n < N; ++n)
                if (x[n][k] != SIZE_MAX && price(spec, n) > 0.0) {
                    load.add(price(spec, n), x[n][k]);
                    any = true;
                }
            if (any)
                model.addConstraint(std::move(load), Relation::Le,
                                    spec.linkCapacity[k],
                                    "buscap[" + std::to_string(k) + "]");
        }
        if (k < spec.memoryLimit.size()) {
            LinearExpr load;
            bool any = false;
            for (std::size_t n = 0; n < N; ++n)
                if (x[n][k] != SIZE_MAX && memDemand(spec, n) > 0.0) {
                    load.add(memDemand(spec, n), x[n][k]);
                    any = true;
                }
            if (any)
                model.addConstraint(std::move(load), Relation::Le,
                                    spec.memoryLimit[k],
                                    "memcap[" + std::to_string(k) + "]");
        }
    }

    // Objective.
    LinearExpr objective;
    for (std::size_t n = 0; n < N; ++n)
        for (std::size_t k = 1; k < K; ++k)
            if (x[n][k] != SIZE_MAX) {
                const double weight =
                    spec.objective == LayoutObjective::MaximizeOffloading
                        ? 1.0
                        : price(spec, n);
                if (weight != 0.0)
                    objective.add(weight, x[n][k]);
            }
    model.setObjective(std::move(objective), Sense::Maximize);
    return model;
}

Result<LayoutAssignment>
solveLayout(const LayoutSpec &spec, SolverLimits limits)
{
    auto model = buildLayoutModel(spec);
    if (!model)
        return model.error();

    Solver solver(limits);
    auto solution = solver.solve(model.value());
    if (!solution)
        return solution.error();

    // Decode X back into per-Offcode device indices.
    LayoutAssignment assignment;
    assignment.device.assign(spec.numOffcodes, 0);
    assignment.objective = solution.value().objective;
    assignment.nodesExplored = solution.value().nodesExplored;

    std::size_t var = 0;
    for (std::size_t n = 0; n < spec.numOffcodes; ++n)
        for (std::size_t k = 0; k < spec.numDevices; ++k) {
            if (!spec.compatible[n][k])
                continue;
            if (solution.value().values[var] == 1)
                assignment.device[n] = k;
            ++var;
        }
    return assignment;
}

Status
validateAssignment(const LayoutSpec &spec,
                   const std::vector<std::size_t> &device)
{
    if (device.size() != spec.numOffcodes)
        return Status(ErrorCode::InvalidArgument, "size mismatch");
    for (std::size_t n = 0; n < spec.numOffcodes; ++n) {
        if (device[n] >= spec.numDevices)
            return Status(ErrorCode::OutOfRange, "bad device index");
        if (!spec.compatible[n][device[n]])
            return Status(ErrorCode::DeviceIncompatible,
                          "offcode " + std::to_string(n) +
                              " placed on incompatible device");
    }
    for (const LayoutEdge &edge : spec.edges) {
        const bool aOff = device[edge.a] != 0;
        const bool bOff = device[edge.b] != 0;
        switch (edge.kind) {
          case LayoutConstraint::Pull:
            if (device[edge.a] != device[edge.b])
                return Status(ErrorCode::NoFeasibleLayout,
                              "Pull constraint violated");
            break;
          case LayoutConstraint::Gang:
            if (aOff != bOff)
                return Status(ErrorCode::NoFeasibleLayout,
                              "Gang constraint violated");
            break;
          case LayoutConstraint::AsymGang:
            if (aOff && !bOff)
                return Status(ErrorCode::NoFeasibleLayout,
                              "Asymmetric Gang constraint violated");
            break;
        }
    }
    // Capacities.
    for (std::size_t k = 1; k < spec.numDevices; ++k) {
        if (k < spec.linkCapacity.size()) {
            double load = 0.0;
            for (std::size_t n = 0; n < spec.numOffcodes; ++n)
                if (device[n] == k)
                    load += price(spec, n);
            if (load > spec.linkCapacity[k] + 1e-9)
                return Status(ErrorCode::ResourceExhausted,
                              "bus capacity exceeded on device " +
                                  std::to_string(k));
        }
        if (k < spec.memoryLimit.size()) {
            double load = 0.0;
            for (std::size_t n = 0; n < spec.numOffcodes; ++n)
                if (device[n] == k)
                    load += memDemand(spec, n);
            if (load > spec.memoryLimit[k] + 1e-9)
                return Status(ErrorCode::ResourceExhausted,
                              "memory capacity exceeded on device " +
                                  std::to_string(k));
        }
    }
    return Status::success();
}

double
assignmentObjective(const LayoutSpec &spec,
                    const std::vector<std::size_t> &device)
{
    double out = 0.0;
    for (std::size_t n = 0; n < spec.numOffcodes; ++n) {
        if (device[n] == 0)
            continue;
        out += spec.objective == LayoutObjective::MaximizeOffloading
                   ? 1.0
                   : price(spec, n);
    }
    return out;
}

Result<LayoutAssignment>
greedyLayout(const LayoutSpec &spec)
{
    Status valid = checkSpec(spec);
    if (!valid)
        return valid.error();

    std::vector<std::size_t> device(spec.numOffcodes, SIZE_MAX);
    std::vector<double> busLoad(spec.numDevices, 0.0);
    std::vector<double> memLoad(spec.numDevices, 0.0);

    auto fits = [&](std::size_t n, std::size_t k) {
        if (!spec.compatible[n][k])
            return false;
        if (k == 0)
            return true;
        if (k < spec.linkCapacity.size() &&
            busLoad[k] + price(spec, n) > spec.linkCapacity[k] + 1e-9)
            return false;
        if (k < spec.memoryLimit.size() &&
            memLoad[k] + memDemand(spec, n) > spec.memoryLimit[k] + 1e-9)
            return false;
        return true;
    };

    auto place = [&](std::size_t n, std::size_t k) {
        device[n] = k;
        if (k != 0) {
            busLoad[k] += price(spec, n);
            memLoad[k] += memDemand(spec, n);
        }
    };

    // Pass 1: place each Offcode on the first non-host device that
    // fits, honoring Pull edges toward already-placed peers.
    for (std::size_t n = 0; n < spec.numOffcodes; ++n) {
        std::size_t forced = SIZE_MAX;
        for (const LayoutEdge &edge : spec.edges) {
            if (edge.kind != LayoutConstraint::Pull)
                continue;
            const std::size_t peer =
                edge.a == n ? edge.b : (edge.b == n ? edge.a : SIZE_MAX);
            if (peer != SIZE_MAX && device[peer] != SIZE_MAX) {
                forced = device[peer];
                break;
            }
        }
        if (forced != SIZE_MAX) {
            if (!fits(n, forced)) {
                // Greedy repair: drag the whole Pull group to host.
                place(n, 0);
            } else {
                place(n, forced);
            }
            continue;
        }
        std::size_t chosen = 0;
        for (std::size_t k = 1; k < spec.numDevices; ++k)
            if (fits(n, k)) {
                chosen = k;
                break;
            }
        if (chosen == 0 && !spec.compatible[n][0]) {
            // Cannot fall back to host; take any compatible device.
            for (std::size_t k = 1; k < spec.numDevices; ++k)
                if (spec.compatible[n][k]) {
                    chosen = k;
                    break;
                }
            if (chosen == 0)
                return Error(ErrorCode::NoFeasibleLayout,
                             "greedy: offcode " + std::to_string(n) +
                                 " has no compatible device");
        }
        place(n, chosen);
    }

    // Pass 2: repair Pull/Gang violations by de-offloading to host
    // until a fixed point (host placement trivially satisfies both
    // sides of Gang and, when host-compatible, Pull).
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 64) {
        changed = false;
        for (const LayoutEdge &edge : spec.edges) {
            const bool aOff = device[edge.a] != 0;
            const bool bOff = device[edge.b] != 0;
            switch (edge.kind) {
              case LayoutConstraint::Pull:
                if (device[edge.a] != device[edge.b]) {
                    if (spec.compatible[edge.a][0] &&
                        spec.compatible[edge.b][0]) {
                        device[edge.a] = 0;
                        device[edge.b] = 0;
                    } else if (spec.compatible[edge.a][device[edge.b]]) {
                        device[edge.a] = device[edge.b];
                    } else if (spec.compatible[edge.b][device[edge.a]]) {
                        device[edge.b] = device[edge.a];
                    } else {
                        return Error(ErrorCode::NoFeasibleLayout,
                                     "greedy: cannot repair Pull edge");
                    }
                    changed = true;
                }
                break;
              case LayoutConstraint::Gang:
                if (aOff != bOff) {
                    const std::size_t victim = aOff ? edge.a : edge.b;
                    if (!spec.compatible[victim][0])
                        return Error(ErrorCode::NoFeasibleLayout,
                                     "greedy: cannot repair Gang edge");
                    device[victim] = 0;
                    changed = true;
                }
                break;
              case LayoutConstraint::AsymGang:
                if (aOff && !bOff) {
                    if (!spec.compatible[edge.a][0])
                        return Error(ErrorCode::NoFeasibleLayout,
                                     "greedy: cannot repair AsymGang edge");
                    device[edge.a] = 0;
                    changed = true;
                }
                break;
            }
        }
    }

    Status feasible = validateAssignment(spec, device);
    if (!feasible)
        return feasible.error();

    LayoutAssignment assignment;
    assignment.device = std::move(device);
    assignment.objective = assignmentObjective(spec, assignment.device);
    return assignment;
}

} // namespace hydra::ilp
