#include "common/bytes.hh"

#include <array>
#include <cstring>

namespace hydra {

void
ByteWriter::writeU8(std::uint8_t value)
{
    out_.push_back(value);
}

void
ByteWriter::writeU16(std::uint16_t value)
{
    out_.push_back(static_cast<std::uint8_t>(value));
    out_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void
ByteWriter::writeU32(std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out_.push_back(static_cast<std::uint8_t>(value >> shift));
}

void
ByteWriter::writeU64(std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out_.push_back(static_cast<std::uint8_t>(value >> shift));
}

void
ByteWriter::writeI64(std::int64_t value)
{
    writeU64(static_cast<std::uint64_t>(value));
}

void
ByteWriter::writeF64(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    writeU64(bits);
}

void
ByteWriter::writeBytes(const Bytes &value)
{
    writeU32(static_cast<std::uint32_t>(value.size()));
    out_.insert(out_.end(), value.begin(), value.end());
}

void
ByteWriter::writeString(std::string_view value)
{
    writeU32(static_cast<std::uint32_t>(value.size()));
    out_.insert(out_.end(), value.begin(), value.end());
}

Result<std::uint8_t>
ByteReader::readU8()
{
    if (!need(1))
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    return in_[pos_++];
}

Result<std::uint16_t>
ByteReader::readU16()
{
    if (!need(2))
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    std::uint16_t value = static_cast<std::uint16_t>(in_[pos_]) |
                          static_cast<std::uint16_t>(in_[pos_ + 1]) << 8;
    pos_ += 2;
    return value;
}

Result<std::uint32_t>
ByteReader::readU32()
{
    if (!need(4))
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(in_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return value;
}

Result<std::uint64_t>
ByteReader::readU64()
{
    if (!need(8))
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return value;
}

Result<std::int64_t>
ByteReader::readI64()
{
    auto raw = readU64();
    if (!raw)
        return raw.error();
    return static_cast<std::int64_t>(raw.value());
}

Result<double>
ByteReader::readF64()
{
    auto raw = readU64();
    if (!raw)
        return raw.error();
    double value;
    std::uint64_t bits = raw.value();
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

Result<Bytes>
ByteReader::readBytes()
{
    auto len = readU32();
    if (!len)
        return len.error();
    if (!need(len.value()))
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    Bytes out(in_ + pos_, in_ + pos_ + len.value());
    pos_ += len.value();
    return out;
}

Result<std::string>
ByteReader::readString()
{
    auto len = readU32();
    if (!len)
        return len.error();
    if (!need(len.value()))
        return Error(ErrorCode::OutOfRange, "buffer underrun");
    std::string out(reinterpret_cast<const char *>(in_) + pos_,
                    len.value());
    pos_ += len.value();
    return out;
}

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const auto table = makeCrcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint32_t
crc32(const Bytes &data)
{
    return crc32(data.data(), data.size());
}

} // namespace hydra
