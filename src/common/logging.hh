/**
 * @file
 * Minimal leveled logging used by the runtime and the simulator.
 *
 * Benchmarks set the level to Warn to keep output clean; tests may
 * install a capture sink to assert on emitted diagnostics.
 */

#ifndef HYDRA_COMMON_LOGGING_HH
#define HYDRA_COMMON_LOGGING_HH

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace hydra {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/**
 * Global logging configuration (process-wide). Thread-safe: the level
 * is an atomic so the fast-path enabled() check stays lock-free, and
 * sink installation/invocation are serialized by a mutex so a sink
 * swap cannot race an in-flight write.
 */
class Log
{
  public:
    using Sink = std::function<void(LogLevel, const std::string &)>;

    static LogLevel
    level()
    {
        return level_.load(std::memory_order_relaxed);
    }
    static void
    setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }

    /** Replace the output sink; pass nullptr to restore stderr. */
    static void setSink(Sink sink);

    static void write(LogLevel level, const std::string &message);

    static bool
    enabled(LogLevel level)
    {
        const LogLevel current = Log::level();
        return level >= current && current != LogLevel::Off;
    }

  private:
    static std::atomic<LogLevel> level_;
    static Sink sink_;
};

namespace detail {

/** Stream-style one-shot log statement helper. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}

    ~LogLine() { Log::write(level_, stream_.str()); }

    template <typename T>
    LogLine &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace detail

} // namespace hydra

#define HYDRA_LOG(level)                                                    \
    if (!::hydra::Log::enabled(level)) {                                    \
    } else                                                                  \
        ::hydra::detail::LogLine(level)

#define LOG_TRACE HYDRA_LOG(::hydra::LogLevel::Trace)
#define LOG_DEBUG HYDRA_LOG(::hydra::LogLevel::Debug)
#define LOG_INFO HYDRA_LOG(::hydra::LogLevel::Info)
#define LOG_WARN HYDRA_LOG(::hydra::LogLevel::Warn)
#define LOG_ERROR HYDRA_LOG(::hydra::LogLevel::Error)

#endif // HYDRA_COMMON_LOGGING_HH
