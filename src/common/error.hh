/**
 * @file
 * Error codes shared across all HYDRA modules.
 *
 * Expected failures (bad configuration, missing resources, protocol
 * violations by peers) are reported through ErrorCode / Result<T>
 * rather than exceptions; exceptions are reserved for programming
 * errors surfaced by the standard library.
 */

#ifndef HYDRA_COMMON_ERROR_HH
#define HYDRA_COMMON_ERROR_HH

#include <cstdint>
#include <string_view>

namespace hydra {

/** Enumerates every expected failure class in the framework. */
enum class ErrorCode : std::uint16_t {
    Ok = 0,

    // Generic
    InvalidArgument,
    NotFound,
    AlreadyExists,
    OutOfRange,
    Unsupported,
    Internal,

    // Resource management
    OutOfMemory,
    ResourceExhausted,
    ResourceBusy,

    // ODF / manifest processing
    ParseError,
    ManifestInvalid,
    InterfaceMismatch,

    // Layout / deployment
    NoFeasibleLayout,
    DeviceIncompatible,
    DeploymentFailed,
    LinkFailed,

    // Channels
    ChannelClosed,
    ChannelFull,
    ChannelNotConnected,
    MessageTooLarge,

    // Offcode lifecycle
    OffcodeNotInitialized,
    OffcodeAlreadyStarted,
    OffcodeFaulted,

    // Network / device substrate
    NetworkUnreachable,
    PacketDropped,
    DeviceFault,
    DmaError,

    // ILP solver
    Infeasible,
    SolverLimitReached,
};

/** Human-readable name for an error code (stable, test-visible). */
std::string_view errorName(ErrorCode code);

/** True when the code denotes success. */
inline bool
isOk(ErrorCode code)
{
    return code == ErrorCode::Ok;
}

} // namespace hydra

#endif // HYDRA_COMMON_ERROR_HH
