#include "common/rng.hh"

#include <cassert>
#include <cmath>

namespace hydra {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    assert(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    if (hasSpare_) {
        hasSpare_ = false;
        return mean + stddev * spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return mean + stddev * u * factor;
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u;
    do {
        u = uniform();
    } while (u == 0.0);
    return -mean * std::log(u);
}

} // namespace hydra
