#include "common/error.hh"

namespace hydra {

std::string_view
errorName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "Ok";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::NotFound: return "NotFound";
      case ErrorCode::AlreadyExists: return "AlreadyExists";
      case ErrorCode::OutOfRange: return "OutOfRange";
      case ErrorCode::Unsupported: return "Unsupported";
      case ErrorCode::Internal: return "Internal";
      case ErrorCode::OutOfMemory: return "OutOfMemory";
      case ErrorCode::ResourceExhausted: return "ResourceExhausted";
      case ErrorCode::ResourceBusy: return "ResourceBusy";
      case ErrorCode::ParseError: return "ParseError";
      case ErrorCode::ManifestInvalid: return "ManifestInvalid";
      case ErrorCode::InterfaceMismatch: return "InterfaceMismatch";
      case ErrorCode::NoFeasibleLayout: return "NoFeasibleLayout";
      case ErrorCode::DeviceIncompatible: return "DeviceIncompatible";
      case ErrorCode::DeploymentFailed: return "DeploymentFailed";
      case ErrorCode::LinkFailed: return "LinkFailed";
      case ErrorCode::ChannelClosed: return "ChannelClosed";
      case ErrorCode::ChannelFull: return "ChannelFull";
      case ErrorCode::ChannelNotConnected: return "ChannelNotConnected";
      case ErrorCode::MessageTooLarge: return "MessageTooLarge";
      case ErrorCode::OffcodeNotInitialized: return "OffcodeNotInitialized";
      case ErrorCode::OffcodeAlreadyStarted: return "OffcodeAlreadyStarted";
      case ErrorCode::OffcodeFaulted: return "OffcodeFaulted";
      case ErrorCode::NetworkUnreachable: return "NetworkUnreachable";
      case ErrorCode::PacketDropped: return "PacketDropped";
      case ErrorCode::DeviceFault: return "DeviceFault";
      case ErrorCode::DmaError: return "DmaError";
      case ErrorCode::Infeasible: return "Infeasible";
      case ErrorCode::SolverLimitReached: return "SolverLimitReached";
    }
    return "UnknownError";
}

} // namespace hydra
