#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hydra {

void
SampleSet::add(double sample)
{
    samples_.push_back(sample);
    sortedValid_ = false;
}

void
SampleSet::addAll(const std::vector<double> &samples)
{
    samples_.insert(samples_.end(), samples.begin(), samples.end());
    sortedValid_ = false;
}

void
SampleSet::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
}

void
SampleSet::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
SampleSet::min() const
{
    if (empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

double
SampleSet::max() const
{
    if (empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
SampleSet::mean() const
{
    if (empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double mu = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - mu) * (s - mu);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
SampleSet::median() const
{
    return percentile(50.0);
}

const std::vector<double> &
SampleSet::sorted() const
{
    ensureSorted();
    return sorted_;
}

SummaryStats
SampleSet::summary() const
{
    SummaryStats out;
    out.count = count();
    if (empty())
        return out;
    ensureSorted();
    out.min = sorted_.front();
    out.max = sorted_.back();
    out.mean = mean();
    out.stddev = stddev();
    out.p50 = percentile(50.0);
    out.p90 = percentile(90.0);
    out.p99 = percentile(99.0);
    out.p999 = percentile(99.9);
    return out;
}

double
SampleSet::percentile(double pct) const
{
    if (empty())
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    const double rank = pct / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
{
    // Degenerate arguments (empty sample sets often produce lo == hi)
    // must not divide by zero: zero bins become one bin, and an empty
    // range widens to unit width.
    if (bins == 0)
        bins = 1;
    if (!(hi > lo))
        hi = lo + 1.0;
    lo_ = lo;
    binWidth_ = (hi - lo) / static_cast<double>(bins);
    bins_.resize(bins);
    for (std::size_t i = 0; i < bins; ++i) {
        bins_[i].lo = lo + binWidth_ * static_cast<double>(i);
        bins_[i].hi = bins_[i].lo + binWidth_;
    }
}

void
Histogram::add(double sample)
{
    auto idx = static_cast<std::ptrdiff_t>((sample - lo_) / binWidth_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)].count;
    ++total_;
}

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> out(bins_.size(), 0.0);
    if (total_ == 0)
        return out;
    for (std::size_t i = 0; i < bins_.size(); ++i)
        out[i] = static_cast<double>(bins_[i].count) /
                 static_cast<double>(total_);
    return out;
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 0;
    for (const auto &bin : bins_)
        peak = std::max(peak, bin.count);

    std::string out;
    char line[160];
    for (const auto &bin : bins_) {
        const std::size_t bar =
            peak == 0 ? 0 : bin.count * width / peak;
        std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %8zu |",
                      bin.lo, bin.hi, bin.count);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

std::vector<CdfPoint>
empiricalCdf(const SampleSet &samples)
{
    std::vector<CdfPoint> out;
    if (samples.empty())
        return out;

    // Reuse the SampleSet's cached sort instead of copying and
    // re-sorting the raw vector.
    const std::vector<double> &sorted = samples.sorted();

    const auto n = static_cast<double>(sorted.size());
    std::size_t i = 0;
    while (i < sorted.size()) {
        std::size_t j = i;
        while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i])
            ++j;
        out.push_back({sorted[i], static_cast<double>(j + 1) / n});
        i = j + 1;
    }
    return out;
}

} // namespace hydra
