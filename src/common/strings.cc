#include "common/strings.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace hydra {

std::string_view
trim(std::string_view text)
{
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())))
        text.remove_prefix(1);
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back())))
        text.remove_suffix(1);
    return text;
}

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view text, long long &out)
{
    text = trim(text);
    if (text.empty())
        return false;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc() && ptr == text.data() + text.size();
}

bool
parseDouble(std::string_view text, double &out)
{
    text = trim(text);
    if (text.empty())
        return false;
    // std::from_chars for double is available in libstdc++ 11+.
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc() && ptr == text.data() + text.size();
}

std::string
sparkline(const std::vector<double> &values)
{
    static const char *kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇",
                                    "█"};
    auto clamp = [](double v) {
        return std::isfinite(v) && v > 0.0 ? v : 0.0;
    };
    double hi = 0.0;
    for (double v : values)
        hi = std::max(hi, clamp(v));
    std::string out;
    for (double v : values) {
        int level = 0;
        if (hi > 0.0) {
            level = static_cast<int>(clamp(v) / hi * 7.0 + 0.5);
            level = std::min(std::max(level, 0), 7);
        }
        out += kLevels[level];
    }
    return out;
}

} // namespace hydra
