/**
 * @file
 * Refcounted, immutable message payloads (the zero-copy fabric).
 *
 * Every hop of the data path — channel writes, scheduled delivery
 * lambdas, DMA completions, backlog entries, multicast fan-out,
 * network packets — used to deep-copy its `Bytes` buffer. A Payload
 * is a shared, immutable view of one heap buffer: copying a Payload
 * bumps a reference count, never the bytes. Sub-ranges (a Data
 * message's body inside its frame) are zero-copy slices of the same
 * buffer.
 *
 * Buffers come from a process-wide freelist pool so steady-state
 * message traffic recycles capacity instead of hitting the
 * allocator. The fabric is thread-safe: refcounts are atomic
 * (relaxed increments, acquire/release decrement — the standard
 * shared-ownership protocol) and the pool freelist is mutex-guarded,
 * so Payloads may be handed between execution sites through the
 * threaded executor's SPSC rings. Cold-path only: the hot path
 * (copying, slicing) touches one atomic, never the mutex.
 *
 * Ownership model: whoever holds a Payload may read it, nobody may
 * mutate it. Producers build content in a PayloadBuilder (or a
 * `Bytes` they std::move in) and freeze it by constructing the
 * Payload; after that the buffer is shared and read-only until the
 * last reference drops, at which point the pool may recycle it.
 */

#ifndef HYDRA_COMMON_PAYLOAD_HH
#define HYDRA_COMMON_PAYLOAD_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/bytes.hh"

namespace hydra {

namespace detail {

/** Heap node behind a Payload: one buffer plus its reference count. */
struct PayloadNode
{
    Bytes storage;
    std::atomic<std::uint32_t> refs{0};
    PayloadNode *nextFree = nullptr;
};

/** Pool: node with recycled capacity (pool hit) or a fresh one. */
PayloadNode *payloadAcquire();
/** Pool: node adopting @p bytes (no pool lookup, no copy). */
PayloadNode *payloadAdopt(Bytes &&bytes);
/** Refcount hit zero: recycle the node's capacity or free it. */
void payloadRelease(PayloadNode *node);
/** Count one content copy into or out of a Payload. */
void payloadCountDeepCopy();

} // namespace detail

/** Pool/copy counters, mirrored in the obs registry as payload.*. */
struct PayloadPoolStats
{
    std::uint64_t allocations = 0; ///< nodes taken from the heap
    std::uint64_t poolHits = 0;    ///< nodes reused from the freelist
    std::uint64_t recycles = 0;    ///< nodes returned to the freelist
    std::uint64_t deepCopies = 0;  ///< content copies (in or out)
    std::size_t freeNodes = 0;     ///< freelist length right now
};

PayloadPoolStats payloadPoolStats();

/** Drop all pooled capacity (tests; between benchmark configs). */
void payloadPoolTrim();

/** Immutable, refcounted view of a byte buffer (or a sub-range). */
class Payload
{
  public:
    Payload() = default;

    /** Adopt @p bytes: zero-copy, the vector's buffer is frozen. */
    Payload(Bytes &&bytes)
        : node_(detail::payloadAdopt(std::move(bytes)))
    {
        node_->refs.store(1, std::memory_order_relaxed);
        len_ = node_->storage.size();
    }

    /** Deep copy (counted in payload.deep_copies) — keep this rare. */
    explicit Payload(const Bytes &bytes)
        : Payload(copyOf(bytes.data(), bytes.size()))
    {
    }

    Payload(const Payload &other)
        : node_(other.node_), off_(other.off_), len_(other.len_)
    {
        if (node_)
            node_->refs.fetch_add(1, std::memory_order_relaxed);
    }

    Payload(Payload &&other) noexcept
        : node_(other.node_), off_(other.off_), len_(other.len_)
    {
        other.node_ = nullptr;
        other.off_ = 0;
        other.len_ = 0;
    }

    Payload &
    operator=(const Payload &other)
    {
        if (this == &other)
            return *this;
        Payload tmp(other);
        swap(tmp);
        return *this;
    }

    Payload &
    operator=(Payload &&other) noexcept
    {
        if (this == &other)
            return *this;
        release();
        node_ = other.node_;
        off_ = other.off_;
        len_ = other.len_;
        other.node_ = nullptr;
        other.off_ = 0;
        other.len_ = 0;
        return *this;
    }

    ~Payload() { release(); }

    /** Deep-copy @p size bytes into a fresh (pooled) buffer. */
    static Payload copyOf(const std::uint8_t *data, std::size_t size);

    const std::uint8_t *
    data() const
    {
        return node_ ? node_->storage.data() + off_ : nullptr;
    }

    std::size_t size() const { return len_; }
    bool empty() const { return len_ == 0; }

    const std::uint8_t *begin() const { return data(); }
    const std::uint8_t *end() const { return data() + len_; }

    std::uint8_t
    operator[](std::size_t index) const
    {
        return node_->storage[off_ + index];
    }

    /** Zero-copy sub-range sharing this buffer; clamped to bounds. */
    Payload
    slice(std::size_t offset, std::size_t length) const
    {
        Payload out;
        if (!node_ || offset >= len_)
            return out;
        out.node_ = node_;
        out.node_->refs.fetch_add(1, std::memory_order_relaxed);
        out.off_ = off_ + offset;
        out.len_ = length < len_ - offset ? length : len_ - offset;
        return out;
    }

    /** Materialize a mutable copy (counted in payload.deep_copies). */
    Bytes toBytes() const;

    /** References on the underlying buffer (0 for empty payloads). */
    std::uint32_t
    refCount() const
    {
        return node_ ? node_->refs.load(std::memory_order_relaxed) : 0;
    }

    void
    swap(Payload &other) noexcept
    {
        std::swap(node_, other.node_);
        std::swap(off_, other.off_);
        std::swap(len_, other.len_);
    }

  private:
    friend class PayloadBuilder;

    void
    release()
    {
        // acq_rel: the release half publishes this owner's reads; the
        // acquire half (in whoever drops the last ref) synchronizes
        // with them before the buffer is recycled.
        if (node_ &&
            node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            detail::payloadRelease(node_);
        node_ = nullptr;
    }

    detail::PayloadNode *node_ = nullptr;
    std::size_t off_ = 0;
    std::size_t len_ = 0;
};

bool operator==(const Payload &a, const Payload &b);
bool operator==(const Payload &a, const Bytes &b);
inline bool
operator==(const Bytes &a, const Payload &b)
{
    return b == a;
}

/**
 * Builds one message in a pooled buffer, then freezes it.
 *
 *   PayloadBuilder builder;
 *   ByteWriter writer(builder.buffer());
 *   writer.writeU8(...);
 *   Payload message = builder.seal();
 *
 * buffer() is writable only until seal(); the builder may be reused
 * afterwards (it acquires a fresh pooled buffer on next use).
 */
class PayloadBuilder
{
  public:
    PayloadBuilder() = default;
    ~PayloadBuilder()
    {
        if (node_)
            detail::payloadRelease(node_);
    }

    PayloadBuilder(const PayloadBuilder &) = delete;
    PayloadBuilder &operator=(const PayloadBuilder &) = delete;

    /** The writable (pooled) buffer content is accumulated into. */
    Bytes &
    buffer()
    {
        if (!node_)
            node_ = detail::payloadAcquire();
        return node_->storage;
    }

    /** Freeze the buffer into an immutable Payload. */
    Payload
    seal()
    {
        Payload out;
        if (!node_)
            node_ = detail::payloadAcquire();
        node_->refs.store(1, std::memory_order_relaxed);
        out.node_ = node_;
        out.len_ = node_->storage.size();
        node_ = nullptr;
        return out;
    }

  private:
    detail::PayloadNode *node_ = nullptr;
};

/** CRC32 over a payload's visible range. */
inline std::uint32_t
crc32(const Payload &data)
{
    return crc32(data.data(), data.size());
}

} // namespace hydra

#endif // HYDRA_COMMON_PAYLOAD_HH
