/**
 * @file
 * Small string helpers shared by the ODF parser and bench output.
 */

#ifndef HYDRA_COMMON_STRINGS_HH
#define HYDRA_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace hydra {

/** Strip ASCII whitespace from both ends. */
std::string_view trim(std::string_view text);

/** Split on a delimiter character; empty fields preserved. */
std::vector<std::string> split(std::string_view text, char delim);

/** Case-sensitive prefix/suffix tests. */
bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** Parse a base-10 integer; returns false on any non-digit garbage. */
bool parseInt(std::string_view text, long long &out);

/** Parse a double; returns false on trailing garbage. */
bool parseDouble(std::string_view text, double &out);

/**
 * Render a series as 8-level block glyphs scaled against its own max.
 * Degenerate inputs stay sane: an empty series renders as "", a
 * single sample as one glyph, and negative or non-finite samples are
 * clamped to zero (an all-zero series is a row of baselines).
 */
std::string sparkline(const std::vector<double> &values);

} // namespace hydra

#endif // HYDRA_COMMON_STRINGS_HH
