/**
 * @file
 * Statistics utilities used by the evaluation harness: summary
 * statistics (median/average/stddev as reported in the paper's
 * Tables 2–4), fixed-bin histograms, and empirical CDFs (Fig. 9).
 */

#ifndef HYDRA_COMMON_STATS_HH
#define HYDRA_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hydra {

/**
 * One digest of a distribution — the shared currency between the
 * bench-side SampleSet (exact, sorted samples) and the obs-side
 * HDR histogram (bucketed): both produce this shape, so tables and
 * reports format through one implementation instead of each call
 * site re-sorting raw vectors.
 */
struct SummaryStats
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /** Sample standard deviation (n-1 denominator); 0 below n=2. */
    double stddev = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** Accumulates samples and reports the paper's summary statistics. */
class SampleSet
{
  public:
    void add(double sample);
    void addAll(const std::vector<double> &samples);
    void clear();

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Summary statistics; every accessor returns 0.0 when empty. */
    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation (n-1 denominator, as for a run). */
    double stddev() const;
    double median() const;
    /** Percentile via linear interpolation; pct clamps to [0, 100]. */
    double percentile(double pct) const;

    /** One pass over the (cached) sorted samples. */
    SummaryStats summary() const;

    const std::vector<double> &samples() const { return samples_; }
    /** Sorted view (cached; re-sorted only after new samples). */
    const std::vector<double> &sorted() const;

  private:
    /** Sorts the sample buffer if new samples arrived since last sort. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/** One bin of a histogram: [lo, hi) and its sample count. */
struct HistogramBin
{
    double lo = 0.0;
    double hi = 0.0;
    std::size_t count = 0;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples clamp.
 * Degenerate arguments are tolerated rather than undefined: zero
 * bins become one bin, and hi <= lo widens to a unit-width range.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);

    std::size_t totalCount() const { return total_; }
    const std::vector<HistogramBin> &bins() const { return bins_; }

    /** Fraction of samples in each bin (empty histogram: all zero). */
    std::vector<double> normalized() const;

    /** Render an ASCII bar chart (for bench output). */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double binWidth_;
    std::vector<HistogramBin> bins_;
    std::size_t total_ = 0;
};

/** A point on an empirical CDF: P(X <= value) = probability. */
struct CdfPoint
{
    double value = 0.0;
    double probability = 0.0;
};

/** Empirical CDF of a sample set, sampled at each distinct value. */
std::vector<CdfPoint> empiricalCdf(const SampleSet &samples);

} // namespace hydra

#endif // HYDRA_COMMON_STATS_HH
