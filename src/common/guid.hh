/**
 * @file
 * GUIDs identifying Offcodes and interfaces (paper Section 3.1).
 *
 * The paper identifies every Offcode and every interface by a GUID
 * that is "unique across all Offcodes". We model a GUID as a 64-bit
 * value with a textual form, plus a deterministic name-hash
 * constructor so ODF files may reference interfaces by name.
 */

#ifndef HYDRA_COMMON_GUID_HH
#define HYDRA_COMMON_GUID_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace hydra {

/** 64-bit globally unique identifier for Offcodes and interfaces. */
class Guid
{
  public:
    constexpr Guid() = default;
    constexpr explicit Guid(std::uint64_t value) : value_(value) {}

    /** Deterministic GUID derived from a name (FNV-1a 64-bit). */
    static Guid fromName(std::string_view name);

    /** Parse a decimal or 0x-prefixed hexadecimal GUID string. */
    static bool parse(std::string_view text, Guid &out);

    constexpr std::uint64_t value() const { return value_; }
    constexpr bool isNull() const { return value_ == 0; }

    std::string toString() const;

    constexpr auto operator<=>(const Guid &) const = default;

  private:
    std::uint64_t value_ = 0;
};

} // namespace hydra

template <>
struct std::hash<hydra::Guid>
{
    std::size_t
    operator()(const hydra::Guid &guid) const noexcept
    {
        return std::hash<std::uint64_t>{}(guid.value());
    }
};

#endif // HYDRA_COMMON_GUID_HH
