#include "common/payload.hh"

#include <cstring>
#include <mutex>

#include "obs/metrics.hh"

namespace hydra {

namespace {

/**
 * Freelist of retired payload nodes. Bounded two ways: at most
 * kMaxFreeNodes are kept, and buffers whose capacity outgrew
 * kMaxPooledCapacity are freed outright instead of being cached, so
 * one giant message cannot pin megabytes in the pool forever.
 */
constexpr std::size_t kMaxFreeNodes = 256;
constexpr std::size_t kMaxPooledCapacity = 512 * 1024;

struct PayloadMetrics
{
    obs::Counter &allocations = obs::counter("payload.allocations");
    obs::Counter &poolHits = obs::counter("payload.pool_hits");
    obs::Counter &recycles = obs::counter("payload.recycles");
    obs::Counter &deepCopies = obs::counter("payload.deep_copies");
};

PayloadMetrics &
payloadMetrics()
{
    static PayloadMetrics metrics;
    return metrics;
}

/**
 * Freelist shared by every execution site; all fields are guarded by
 * `mutex`. Pool traffic is a cold path next to refcount churn — a
 * node crosses the pool once per message, but its refcount moves on
 * every copy/slice/release — so one uncontended lock is cheaper than
 * sharding until profiles say otherwise.
 */
struct Pool
{
    std::mutex mutex;
    detail::PayloadNode *freeList = nullptr;
    std::size_t freeNodes = 0;
    PayloadPoolStats stats;
};

Pool &
pool()
{
    static Pool instance;
    return instance;
}

} // namespace

namespace detail {

PayloadNode *
payloadAcquire()
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    if (p.freeList) {
        PayloadNode *node = p.freeList;
        p.freeList = node->nextFree;
        --p.freeNodes;
        node->nextFree = nullptr;
        node->storage.clear(); // keeps capacity
        ++p.stats.poolHits;
        payloadMetrics().poolHits.increment();
        return node;
    }
    ++p.stats.allocations;
    payloadMetrics().allocations.increment();
    return new PayloadNode();
}

PayloadNode *
payloadAdopt(Bytes &&bytes)
{
    // The incoming vector brings its own buffer; taking a pooled node
    // would waste the pooled capacity, so allocate the wrapper only.
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    PayloadNode *node;
    if (p.freeList && p.freeList->storage.capacity() == 0) {
        node = p.freeList;
        p.freeList = node->nextFree;
        --p.freeNodes;
        node->nextFree = nullptr;
        ++p.stats.poolHits;
        payloadMetrics().poolHits.increment();
    } else {
        ++p.stats.allocations;
        payloadMetrics().allocations.increment();
        node = new PayloadNode();
    }
    node->storage = std::move(bytes);
    return node;
}

void
payloadRelease(PayloadNode *node)
{
    Pool &p = pool();
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        if (p.freeNodes < kMaxFreeNodes &&
            node->storage.capacity() <= kMaxPooledCapacity) {
            node->nextFree = p.freeList;
            p.freeList = node;
            ++p.freeNodes;
            ++p.stats.recycles;
            payloadMetrics().recycles.increment();
            return;
        }
    }
    delete node; // outside the lock
}

void
payloadCountDeepCopy()
{
    Pool &p = pool();
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        ++p.stats.deepCopies;
    }
    payloadMetrics().deepCopies.increment();
}

} // namespace detail

Payload
Payload::copyOf(const std::uint8_t *data, std::size_t size)
{
    detail::payloadCountDeepCopy();
    PayloadBuilder builder;
    Bytes &buffer = builder.buffer();
    buffer.resize(size);
    if (size > 0)
        std::memcpy(buffer.data(), data, size);
    return builder.seal();
}

Bytes
Payload::toBytes() const
{
    detail::payloadCountDeepCopy();
    return Bytes(begin(), end());
}

bool
operator==(const Payload &a, const Payload &b)
{
    return a.size() == b.size() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool
operator==(const Payload &a, const Bytes &b)
{
    return a.size() == b.size() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.size()) == 0);
}

PayloadPoolStats
payloadPoolStats()
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    PayloadPoolStats stats = p.stats;
    stats.freeNodes = p.freeNodes;
    return stats;
}

void
payloadPoolTrim()
{
    Pool &p = pool();
    std::lock_guard<std::mutex> lock(p.mutex);
    while (p.freeList) {
        detail::PayloadNode *node = p.freeList;
        p.freeList = node->nextFree;
        delete node;
    }
    p.freeNodes = 0;
}

} // namespace hydra
