#include "common/logging.hh"

#include <cstdio>
#include <mutex>

namespace hydra {

std::atomic<LogLevel> Log::level_{LogLevel::Warn};
Log::Sink Log::sink_;

namespace {

std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
Log::setSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sink_ = std::move(sink);
}

void
Log::write(LogLevel level, const std::string &message)
{
    if (!enabled(level))
        return;
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (sink_) {
        sink_(level, message);
        return;
    }
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), message.c_str());
}

} // namespace hydra
