/**
 * @file
 * Byte buffers and the wire serialization used by Call marshaling
 * (paper Section 3.1) and the network substrate.
 *
 * Encoding is little-endian, length-prefixed for variable payloads.
 */

#ifndef HYDRA_COMMON_BYTES_HH
#define HYDRA_COMMON_BYTES_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hh"

namespace hydra {

using Bytes = std::vector<std::uint8_t>;

/** Appends primitive values to a byte buffer in wire order. */
class ByteWriter
{
  public:
    explicit ByteWriter(Bytes &out) : out_(out) {}

    void writeU8(std::uint8_t value);
    void writeU16(std::uint16_t value);
    void writeU32(std::uint32_t value);
    void writeU64(std::uint64_t value);
    void writeI64(std::int64_t value);
    void writeF64(double value);
    /** Length-prefixed (u32) byte string. */
    void writeBytes(const Bytes &value);
    /** Length-prefixed (u32) UTF-8 string. */
    void writeString(std::string_view value);

    std::size_t size() const { return out_.size(); }

  private:
    Bytes &out_;
};

/** Consumes primitive values from a byte range; fails on underrun. */
class ByteReader
{
  public:
    explicit ByteReader(const Bytes &in)
        : in_(in.data()), size_(in.size())
    {
    }

    /** Read from any contiguous range (e.g. a Payload's view). */
    ByteReader(const std::uint8_t *data, std::size_t size)
        : in_(data), size_(size)
    {
    }

    Result<std::uint8_t> readU8();
    Result<std::uint16_t> readU16();
    Result<std::uint32_t> readU32();
    Result<std::uint64_t> readU64();
    Result<std::int64_t> readI64();
    Result<double> readF64();
    Result<Bytes> readBytes();
    Result<std::string> readString();

    std::size_t remaining() const { return size_ - pos_; }
    bool exhausted() const { return remaining() == 0; }

  private:
    bool need(std::size_t n) const { return remaining() >= n; }

    const std::uint8_t *in_ = nullptr;
    std::size_t size_ = 0;
    std::size_t pos_ = 0;
};

/** CRC32 (IEEE 802.3 polynomial) over a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);
std::uint32_t crc32(const Bytes &data);

} // namespace hydra

#endif // HYDRA_COMMON_BYTES_HH
