/**
 * @file
 * Result<T>: a value-or-error carrier used for all fallible APIs.
 */

#ifndef HYDRA_COMMON_RESULT_HH
#define HYDRA_COMMON_RESULT_HH

#include <cassert>
#include <string>
#include <utility>
#include <variant>

#include "common/error.hh"

namespace hydra {

/** Error payload: code plus an optional human-readable context string. */
struct Error
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;

    Error() = default;
    explicit Error(ErrorCode c) : code(c) {}
    Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

    /** Full description: "Code: message" or just "Code". */
    std::string
    describe() const
    {
        std::string out{errorName(code)};
        if (!message.empty()) {
            out += ": ";
            out += message;
        }
        return out;
    }
};

/**
 * A value of type T or an Error. Inspect with ok(); access the value
 * with value() only after checking ok() (asserted in debug builds).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : data_(std::move(value)) {}
    Result(Error error) : data_(std::move(error)) {}
    Result(ErrorCode code) : data_(Error(code)) {}
    Result(ErrorCode code, std::string msg)
        : data_(Error(code, std::move(msg))) {}

    bool ok() const { return std::holds_alternative<T>(data_); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        assert(ok());
        return std::get<T>(data_);
    }

    T &
    value() &
    {
        assert(ok());
        return std::get<T>(data_);
    }

    T &&
    value() &&
    {
        assert(ok());
        return std::get<T>(std::move(data_));
    }

    /** The value, or @p fallback when this result holds an error. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? std::get<T>(data_) : std::move(fallback);
    }

    const Error &
    error() const
    {
        assert(!ok());
        return std::get<Error>(data_);
    }

    ErrorCode
    code() const
    {
        return ok() ? ErrorCode::Ok : error().code;
    }

  private:
    std::variant<T, Error> data_;
};

/** Result specialization for operations that return no value. */
class Status
{
  public:
    Status() = default;
    Status(Error error) : error_(std::move(error)), failed_(true) {}
    Status(ErrorCode code) : Status(Error(code)) {}
    Status(ErrorCode code, std::string msg)
        : Status(Error(code, std::move(msg))) {}

    static Status success() { return Status(); }

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }

    const Error &
    error() const
    {
        assert(failed_);
        return error_;
    }

    ErrorCode code() const { return failed_ ? error_.code : ErrorCode::Ok; }

  private:
    Error error_;
    bool failed_ = false;
};

} // namespace hydra

#endif // HYDRA_COMMON_RESULT_HH
