#include "common/json.hh"

#include <cmath>
#include <cstdlib>

namespace hydra::json {

namespace {

constexpr int kMaxDepth = 128;

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    bool
    atEnd() const
    {
        return pos >= text.size();
    }

    char
    peek() const
    {
        return text[pos];
    }

    void
    skipSpace()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    Error
    fail(const std::string &what) const
    {
        return Error(ErrorCode::ParseError,
                     "json: " + what + " at offset " +
                         std::to_string(pos));
    }

    Result<Value>
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return parseString();
          case 't': return parseLiteral("true", Value{Value::Kind::Bool,
                                                      true});
          case 'f': return parseLiteral("false", Value{Value::Kind::Bool,
                                                       false});
          case 'n': return parseLiteral("null", Value{});
          default: return parseNumber();
        }
    }

    Result<Value>
    parseLiteral(const char *word, Value value)
    {
        for (const char *c = word; *c; ++c)
            if (!consume(*c))
                return fail(std::string("expected '") + word + "'");
        return value;
    }

    Result<Value>
    parseNumber()
    {
        const std::size_t start = pos;
        if (!atEnd() && peek() == '-')
            ++pos;
        while (!atEnd() && ((peek() >= '0' && peek() <= '9') ||
                            peek() == '.' || peek() == 'e' ||
                            peek() == 'E' || peek() == '+' ||
                            peek() == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        const std::string slice = text.substr(start, pos - start);
        char *end = nullptr;
        const double parsed = std::strtod(slice.c_str(), &end);
        if (end != slice.c_str() + slice.size() || !std::isfinite(parsed))
            return fail("bad number '" + slice + "'");
        Value value;
        value.kind = Value::Kind::Number;
        value.number = parsed;
        return value;
    }

    Result<Value>
    parseString()
    {
        auto raw = parseRawString();
        if (!raw)
            return raw.error();
        Value value;
        value.kind = Value::Kind::String;
        value.string = std::move(raw).value();
        return value;
    }

    Result<std::string>
    parseRawString()
    {
        if (!consume('"'))
            return fail("expected '\"'");
        std::string out;
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("dangling escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (atEnd())
                        return fail("truncated \\u escape");
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are beyond what our exporters ever emit).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
    }

    Result<Value>
    parseArray(int depth)
    {
        consume('[');
        Value value;
        value.kind = Value::Kind::Array;
        skipSpace();
        if (consume(']'))
            return value;
        while (true) {
            auto element = parseValue(depth + 1);
            if (!element)
                return element;
            value.array.push_back(std::move(element).value());
            skipSpace();
            if (consume(']'))
                return value;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    Result<Value>
    parseObject(int depth)
    {
        consume('{');
        Value value;
        value.kind = Value::Kind::Object;
        skipSpace();
        if (consume('}'))
            return value;
        while (true) {
            skipSpace();
            auto key = parseRawString();
            if (!key)
                return key.error();
            skipSpace();
            if (!consume(':'))
                return fail("expected ':'");
            auto member = parseValue(depth + 1);
            if (!member)
                return member;
            value.object.emplace_back(std::move(key).value(),
                                      std::move(member).value());
            skipSpace();
            if (consume('}'))
                return value;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }
};

} // namespace

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, member] : object)
        if (name == key)
            return &member;
    return nullptr;
}

std::uint64_t
Value::asU64() const
{
    if (kind != Kind::Number || number < 0.0)
        return 0;
    return static_cast<std::uint64_t>(number);
}

Result<Value>
parse(const std::string &text)
{
    Parser parser{text};
    auto value = parser.parseValue(0);
    if (!value)
        return value;
    parser.skipSpace();
    if (!parser.atEnd())
        return parser.fail("trailing characters");
    return value;
}

} // namespace hydra::json
