/**
 * @file
 * Minimal JSON document parser.
 *
 * Just enough to read back what the observability exporters write
 * (introspection snapshots, trace files): the full value grammar,
 * escape decoding, and a tiny ordered-object DOM. Numbers parse as
 * double, which is exact for every integer the exporters emit.
 */

#ifndef HYDRA_COMMON_JSON_HH
#define HYDRA_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hh"

namespace hydra::json {

/** One parsed JSON value (a tagged union, insertion-ordered object). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Number as u64 (0 when not a number or negative). */
    std::uint64_t asU64() const;
};

/** Parse one JSON document; trailing non-space input is an error. */
Result<Value> parse(const std::string &text);

} // namespace hydra::json

#endif // HYDRA_COMMON_JSON_HH
