/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the substrate (scheduling noise, link
 * jitter, workload generators) draws from explicitly seeded Rng
 * instances so that every experiment is reproducible bit-for-bit.
 */

#ifndef HYDRA_COMMON_RNG_HH
#define HYDRA_COMMON_RNG_HH

#include <cstdint>

namespace hydra {

/** xoshiro256** generator seeded via SplitMix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** True with probability p. */
    bool chance(double p);

    /** Normal variate (Box–Muller). */
    double normal(double mean, double stddev);

    /** Exponential variate with the given mean. */
    double exponential(double mean);

  private:
    std::uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace hydra

#endif // HYDRA_COMMON_RNG_HH
