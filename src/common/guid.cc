#include "common/guid.hh"

#include <charconv>
#include <cstdio>

namespace hydra {

Guid
Guid::fromName(std::string_view name)
{
    // FNV-1a, 64-bit.
    std::uint64_t hash = 14695981039346656037ull;
    for (unsigned char c : name) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    // Never produce the null GUID for a non-empty name.
    if (hash == 0)
        hash = 1;
    return Guid(hash);
}

bool
Guid::parse(std::string_view text, Guid &out)
{
    if (text.empty())
        return false;

    int base = 10;
    if (text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
        base = 16;
        text.remove_prefix(2);
    }

    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                     value, base);
    if (ec != std::errc() || ptr != text.data() + text.size())
        return false;

    out = Guid(value);
    return true;
}

std::string
Guid::toString() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value_));
    return buf;
}

} // namespace hydra
