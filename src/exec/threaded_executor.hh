/**
 * @file
 * ThreadedExecutor: a real multi-threaded execution engine.
 *
 * Thread model (DESIGN.md §10):
 *  - The *coordinator* is the thread that constructed the executor.
 *    It owns virtual time: timer events (schedule/scheduleAt/
 *    schedulePeriodic) dispatch on it in (when, id) order, exactly
 *    like the deterministic simulator.
 *  - Each addSite() spawns a dedicated *worker* thread. post(site,
 *    fn) hands fn to that worker through a mutex-free SPSC ring —
 *    one ring per (producer, site) pair, so device-to-device
 *    pipelines never contend on a shared queue. Rings carry
 *    std::function closures which in turn carry refcounted Payload
 *    buffers, so cross-thread handoff moves a pointer, not bytes.
 *  - Workers that schedule timers or cancel tasks inject them into
 *    the coordinator through a mutex-guarded inbox (cold path); the
 *    coordinator drains it between timer dispatches.
 *
 * Time semantics: virtual time never advances while posted work is
 * outstanding — runUntil()/drain() are synchronization barriers
 * against the workers. Posted work itself executes in wall-clock
 * concurrency and is therefore not deterministically ordered across
 * sites (per (producer, site) pair, posting order is preserved).
 */

#ifndef HYDRA_EXEC_THREADED_EXECUTOR_HH
#define HYDRA_EXEC_THREADED_EXECUTOR_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/executor.hh"
#include "exec/spsc_queue.hh"

namespace hydra::obs {
class Counter;
class Gauge;
class Histogram;
struct SiteActivitySlot;
} // namespace hydra::obs

namespace hydra::exec {

/** Thread-per-device-site engine. */
class ThreadedExecutor : public Executor
{
  public:
    struct Config
    {
        /** Slots per SPSC ring (rounded up to a power of two). */
        std::size_t ringCapacity = 256;
        /** Idle scan+yield passes before a worker parks on its cv. */
        int spinBeforePark = 64;
        /**
         * Ceiling on the adaptive drain quantum: the most closures a
         * worker consumes from one lane per popBatch. The quantum
         * starts at 1 (eager, latency-first) and only grows toward
         * this cap while observed occupancy exceeds it — batching is
         * earned by backlog, never bought with a delay.
         */
        std::size_t batchMax = 64;
    };

    /** Producers: kMainSite + up to this many sites. */
    static constexpr std::size_t kMaxSites = 64;

    ThreadedExecutor();
    explicit ThreadedExecutor(Config config);
    ~ThreadedExecutor() override;

    const char *backendName() const override { return "threaded"; }

    Time
    now() const override
    {
        return now_.load(std::memory_order_acquire);
    }

    TaskId schedule(Time delay, Callback fn) override;
    TaskId scheduleAt(Time when, Callback fn) override;
    TaskId schedulePeriodic(Time period,
                            std::function<bool()> fn) override;
    void cancel(TaskId id) override;

    SiteId addSite(const std::string &name) override;
    std::size_t siteCount() const override;

    void post(SiteId site, Callback fn) override;
    void postBatch(SiteId site, std::span<Callback> fns) override;

    void runUntil(Time until) override;
    void runToCompletion() override;
    bool step() override;
    void drain() override;

    std::uint64_t
    eventsDispatched() const override
    {
        return dispatched_.load(std::memory_order_relaxed) +
               postsExecuted_.load(std::memory_order_relaxed);
    }

    std::size_t pendingEvents() const override;

    /** Posts handed off and executed (tests). */
    std::uint64_t
    postsExecuted() const
    {
        return postsExecuted_.load(std::memory_order_relaxed);
    }

  private:
    struct TimerRecord
    {
        Time when;
        TaskId id;
        Callback fn;

        bool
        operator>(const TimerRecord &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id; // FIFO among equal timestamps
        }
    };

    struct Periodic
    {
        Time period;
        std::function<bool()> fn;
    };

    /**
     * One producer's lane into a site: a mutex-free SPSC ring plus a
     * mutex-guarded overflow spill for bursts. Per-producer FIFO
     * order is kept by the `overflowSize` gate: once a post spills,
     * the producer keeps spilling until the worker has drained the
     * overflow — otherwise a later ring push could overtake an older
     * spilled closure (the worker scans rings before overflows).
     */
    struct Inbox
    {
        explicit Inbox(std::size_t capacity) : ring(capacity) {}

        SpscQueue<Callback> ring;
        std::mutex mutex;
        std::deque<Callback> overflow;
        std::atomic<std::size_t> overflowSize{0};
    };

    /** One site's worker thread and its inboxes. */
    struct Worker
    {
        std::string name;
        SiteId id = 0;
        std::thread thread;

        /** inboxes[p]: lane from producer p (lazily created). The
         * ring half is SPSC — only the coordinator (p == kMainSite)
         * or the worker running site p may push it; unregistered
         * threads serialize through inbox[kMainSite]'s overflow. */
        std::array<std::atomic<Inbox *>, kMaxSites + 1> inboxes{};

        /** Parking protocol: flag + cv, mutex touched only to park. */
        std::atomic<bool> parked{false};
        std::mutex parkMutex;
        std::condition_variable cv;
        /**
         * Doorbell-coalescing latch. The first producer to ring a
         * parked site (false→true transition) pays the mutex+notify;
         * every later producer sees true, counts a coalesced
         * doorbell, and returns. The worker consumes the latch at
         * unpark (after clearing `parked`, under the park mutex), so
         * one latch cycle maps to exactly one park episode.
         */
        std::atomic<bool> doorbell{false};

        /** Adaptive drain quantum (worker-private; see drainInbox). */
        std::size_t quantum = 1;
        /** Scratch batch buffer, sized to batchMax (worker-private). */
        std::vector<Callback> drainBuffer;

        /** Per-site instruments (`{site=name}`), set at addSite(). */
        obs::Counter *parks = nullptr;
        obs::Counter *wakes = nullptr;
        obs::Counter *doorbellsCoalesced = nullptr;
        obs::Histogram *ringOccupancy = nullptr;
        obs::Histogram *batchSize = nullptr;
        obs::Gauge *ringDepth = nullptr;
        /** Profiler slot: the park/unpark transitions publish here. */
        obs::SiteActivitySlot *profileSlot = nullptr;

        ~Worker();
    };

    bool onCoordinator() const;
    void pushTimer(TimerRecord record);
    TimerRecord popTimer();
    void firePeriodic(TaskId series_id);
    void moveInjected();
    /** Dispatch the earliest timer if due by @p until; false if not. */
    bool dispatchDueTimer(Time until);
    bool postsOutstanding() const;

    Inbox &inboxFor(Worker &worker, SiteId producer);
    void wake(Worker &worker);
    void workerLoop(Worker &worker);
    std::size_t drainInbox(Worker &worker);
    /** Record every site's queued depth into its occupancy
     * instruments. Workers sample at service time; the coordinator
     * calls this periodically so sites whose work arrives through
     * virtual-time timers (no posts) still report their — empty —
     * rings instead of an absent series. */
    void sampleSiteOccupancy();

    /** Timer dispatches between coordinator occupancy samples. */
    static constexpr std::uint64_t kOccupancySampleMask = 63;

    Config config_;
    std::thread::id coordinator_;

    // --- coordinator-owned virtual time (same shape as sim) ---
    std::vector<TimerRecord> heap_;
    std::unordered_set<TaskId> cancelled_;
    std::unordered_map<TaskId, Periodic> periodics_;
    std::atomic<Time> now_{0};
    std::atomic<TaskId> nextId_{1};
    std::atomic<std::uint64_t> dispatched_{0};

    // --- cross-thread injection into the coordinator (cold path) ---
    mutable std::mutex injectMutex_;
    std::vector<TimerRecord> injectedTimers_;
    std::vector<TaskId> injectedCancels_;
    std::atomic<std::size_t> injectedCount_{0};

    // --- sites ---
    mutable std::mutex sitesMutex_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Lock-free site lookup for post(): siteTable_[id] once set is
     * immutable for the executor's lifetime. */
    std::array<std::atomic<Worker *>, kMaxSites + 1> siteTable_{};
    std::atomic<std::size_t> siteCount_{0};
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> postsPending_{0};
    std::atomic<std::uint64_t> postsExecuted_{0};
};

} // namespace hydra::exec

#endif // HYDRA_EXEC_THREADED_EXECUTOR_HH
