/**
 * @file
 * SimExecutor: the deterministic discrete-event engine, wrapping
 * sim::Simulator bit-for-bit. Golden traces produced against the bare
 * simulator stay unchanged: every Executor method forwards 1:1, and
 * post(site, fn) is a zero-delay event, so cross-site handoffs fire
 * in global scheduling order exactly as before the executor split.
 *
 * This file is one of the two executor backends allowed to include
 * sim/simulator.hh.
 */

#ifndef HYDRA_EXEC_SIM_EXECUTOR_HH
#define HYDRA_EXEC_SIM_EXECUTOR_HH

#include <vector>

#include "exec/executor.hh"
#include "sim/simulator.hh"

namespace hydra::exec {

/** Deterministic single-threaded engine (the default). */
class SimExecutor : public Executor
{
  public:
    SimExecutor();

    const char *backendName() const override { return "sim"; }

    Time now() const override { return sim_.now(); }

    TaskId
    schedule(Time delay, Callback fn) override
    {
        return sim_.schedule(delay, std::move(fn));
    }

    TaskId
    scheduleAt(Time when, Callback fn) override
    {
        return sim_.scheduleAt(when, std::move(fn));
    }

    TaskId
    schedulePeriodic(Time period, std::function<bool()> fn) override
    {
        return sim_.schedulePeriodic(period, std::move(fn));
    }

    void cancel(TaskId id) override { sim_.cancel(id); }

    SiteId addSite(const std::string &name) override;
    std::size_t siteCount() const override { return siteNames_.size(); }

    void post(SiteId site, Callback fn) override;
    void postBatch(SiteId site, std::span<Callback> fns) override;

    void runUntil(Time until) override { sim_.runUntil(until); }
    void runToCompletion() override { sim_.runToCompletion(); }
    bool step() override { return sim_.step(); }
    void drain() override;

    std::uint64_t
    eventsDispatched() const override
    {
        return sim_.eventsDispatched();
    }

    std::size_t pendingEvents() const override
    {
        return sim_.pendingEvents();
    }

    /** The wrapped kernel, for simulator-specific tests/tools. */
    sim::Simulator &simulator() { return sim_; }

  private:
    sim::Simulator sim_;
    std::vector<std::string> siteNames_;
    /** Chaos: virtual time each site is wedged until (0 = healthy). */
    std::vector<Time> stallUntil_;
};

} // namespace hydra::exec

#endif // HYDRA_EXEC_SIM_EXECUTOR_HH
