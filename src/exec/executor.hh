/**
 * @file
 * The execution engine abstraction (DESIGN.md §10).
 *
 * Every model in the substrate — hardware, OS, devices, network,
 * channels, the TiVo pipeline — advances by scheduling callbacks on
 * an Executor. The interface deliberately mirrors the discrete-event
 * simulator it was extracted from (now/schedule/cancel/run), plus
 * one new primitive the simulator never needed: post(site, fn),
 * site-affine immediate execution, the hook that lets an engine run
 * device sites on real threads.
 *
 * Two engines implement it:
 *  - SimExecutor: wraps sim::Simulator bit-for-bit. Deterministic;
 *    the default. post() degrades to a zero-delay event, so ordering
 *    stays globally serial.
 *  - ThreadedExecutor: thread-per-device-site with mutex-free SPSC
 *    handoff between sites. Virtual time still advances on the
 *    coordinator, but posted work runs concurrently.
 *
 * No file outside src/exec/ and src/sim/ may include
 * sim/simulator.hh; consumers depend on this interface only.
 */

#ifndef HYDRA_EXEC_EXECUTOR_HH
#define HYDRA_EXEC_EXECUTOR_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hh"

namespace hydra::exec {

/** Timestamps and durations, in the simulator's nanosecond units. */
using Time = sim::SimTime;

/** Opaque handle identifying a scheduled task (for cancellation). */
using TaskId = std::uint64_t;

/** An execution site registered with addSite(); 0 is the main loop. */
using SiteId = std::uint32_t;

/** The coordinator's own site: post() here runs on the main loop. */
constexpr SiteId kMainSite = 0;

/** Central clock, timer queue, and cross-site work router. */
class Executor
{
  public:
    using Callback = std::function<void()>;

    Executor() = default;
    virtual ~Executor() = default;

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Engine name, "sim" or "threaded" (metric label, CLI value). */
    virtual const char *backendName() const = 0;

    /** Current virtual time. */
    virtual Time now() const = 0;

    /** Schedule @p fn to run @p delay after now. */
    virtual TaskId schedule(Time delay, Callback fn) = 0;

    /** Schedule @p fn at absolute time @p when (>= now). */
    virtual TaskId scheduleAt(Time when, Callback fn) = 0;

    /**
     * Schedule @p fn every @p period, starting one period from now,
     * until it returns false or the task is cancelled.
     */
    virtual TaskId schedulePeriodic(Time period,
                                    std::function<bool()> fn) = 0;

    /** Cancel a pending task; no-op if already fired or cancelled. */
    virtual void cancel(TaskId id) = 0;

    /**
     * Register an execution site (a device's thread of control).
     * The threaded engine backs each site with a dedicated worker
     * thread; the sim engine only names it.
     */
    virtual SiteId addSite(const std::string &name) = 0;

    /**
     * Register a site that belongs to a named host machine. A fleet
     * shares ONE executor across N hosts, so the engine itself must
     * know which host each site serves — per-host CPU reports, the
     * placement map, and hydra_top's grouping all read this mapping
     * rather than re-deriving it from site-name conventions.
     */
    SiteId
    addSite(const std::string &name, const std::string &host)
    {
        const SiteId id = addSite(name);
        std::lock_guard<std::mutex> lock(siteHostMutex_);
        siteHosts_[id] = host;
        return id;
    }

    /** Host a site was registered under; "" for host-less sites. */
    std::string
    siteHost(SiteId site) const
    {
        std::lock_guard<std::mutex> lock(siteHostMutex_);
        auto it = siteHosts_.find(site);
        return it == siteHosts_.end() ? std::string() : it->second;
    }

    /** Sites registered under @p host, in registration order. */
    std::vector<SiteId>
    sitesOfHost(const std::string &host) const
    {
        std::lock_guard<std::mutex> lock(siteHostMutex_);
        std::vector<SiteId> sites;
        for (const auto &[id, owner] : siteHosts_)
            if (owner == host)
                sites.push_back(id);
        std::sort(sites.begin(), sites.end());
        return sites;
    }

    /** Sites registered so far (kMainSite excluded). */
    virtual std::size_t siteCount() const = 0;

    /**
     * Run @p fn on @p site as soon as possible, in posting order per
     * (producer, site) pair. Unlike schedule(), post() carries no
     * virtual-time semantics: under the threaded engine it is a
     * mutex-free SPSC handoff to the site's worker thread; under the
     * sim engine it is a zero-delay event on the main loop.
     */
    virtual void post(SiteId site, Callback fn) = 0;

    /**
     * Post a batch of callbacks to @p site in one handoff. Semantics
     * are identical to calling post() on each element in order — the
     * batch is an amortization, not a reordering: under the threaded
     * engine the whole span enters the site's ring with one index
     * publication and at most one doorbell; under the sim engine each
     * element becomes a zero-delay event in global FIFO order, so
     * replay stays byte-stable. Elements are moved from.
     */
    virtual void
    postBatch(SiteId site, std::span<Callback> fns)
    {
        for (Callback &fn : fns)
            post(site, std::move(fn));
    }

    /** Run until the timer queue drains or the clock passes @p until.
     * Synchronizes with posted work: returns only when every post
     * issued before the boundary has executed. */
    virtual void runUntil(Time until) = 0;

    /** Run until no timers, injected work, or posts remain. */
    virtual void runToCompletion() = 0;

    /** Fire exactly one timer event; false when none is pending. */
    virtual bool step() = 0;

    /**
     * Complete all in-flight posted work and any events due at the
     * current time, without advancing virtual time past now().
     */
    virtual void drain() = 0;

    /** Events + posts dispatched so far (tests/diagnostics). */
    virtual std::uint64_t eventsDispatched() const = 0;

    /** Timer events currently pending. */
    virtual std::size_t pendingEvents() const = 0;

  private:
    /** Site -> owning host, filled by the two-argument addSite(). */
    mutable std::mutex siteHostMutex_;
    std::unordered_map<SiteId, std::string> siteHosts_;
};

/** Which engine to construct (CLI: --executor=sim|threaded). */
enum class ExecutorKind { Sim, Threaded };

/** "sim" / "threaded". */
const char *executorKindName(ExecutorKind kind);

/** Parse an --executor value; false on unknown names. */
bool parseExecutorKind(const std::string &name, ExecutorKind &out);

/** Build an engine of @p kind. */
std::unique_ptr<Executor> makeExecutor(ExecutorKind kind);

/**
 * Build an engine of @p kind with an explicit drain-batch ceiling
 * (CLI: --batch-max). Bounds how many queued items a threaded worker
 * may consume per ring visit; the adaptive policy never exceeds it.
 * Ignored by the sim engine, whose batches are already a pure
 * amortization with no scheduling effect. 0 means the default.
 */
std::unique_ptr<Executor> makeExecutor(ExecutorKind kind,
                                       std::size_t batchMax);

} // namespace hydra::exec

#endif // HYDRA_EXEC_EXECUTOR_HH
