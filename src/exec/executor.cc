#include "exec/executor.hh"

#include "exec/sim_executor.hh"
#include "exec/threaded_executor.hh"

namespace hydra::exec {

std::unique_ptr<Executor>
makeExecutor(ExecutorKind kind)
{
    return makeExecutor(kind, 0);
}

std::unique_ptr<Executor>
makeExecutor(ExecutorKind kind, std::size_t batchMax)
{
    switch (kind) {
      case ExecutorKind::Threaded: {
        ThreadedExecutor::Config config;
        if (batchMax > 0)
            config.batchMax = batchMax;
        return std::make_unique<ThreadedExecutor>(config);
      }
      case ExecutorKind::Sim:
        break;
    }
    return std::make_unique<SimExecutor>();
}

} // namespace hydra::exec
