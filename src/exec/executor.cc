#include "exec/executor.hh"

#include "exec/sim_executor.hh"
#include "exec/threaded_executor.hh"

namespace hydra::exec {

std::unique_ptr<Executor>
makeExecutor(ExecutorKind kind)
{
    switch (kind) {
      case ExecutorKind::Threaded:
        return std::make_unique<ThreadedExecutor>();
      case ExecutorKind::Sim:
        break;
    }
    return std::make_unique<SimExecutor>();
}

} // namespace hydra::exec
