/**
 * @file
 * Bounded single-producer/single-consumer ring (the threaded
 * executor's inter-site handoff). Lock-free and wait-free on both
 * ends: one producer thread calls push(), one consumer thread calls
 * pop(), synchronized by two acquire/release indices. Each side keeps
 * a cached copy of the other's index so the common case touches only
 * one shared cache line.
 */

#ifndef HYDRA_EXEC_SPSC_QUEUE_HH
#define HYDRA_EXEC_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace hydra::exec {

template <typename T>
class SpscQueue
{
  public:
    /** @param capacity Slot count; rounded up to a power of two. */
    explicit SpscQueue(std::size_t capacity)
    {
        std::size_t rounded = 1;
        while (rounded < capacity)
            rounded <<= 1;
        slots_.resize(rounded);
        mask_ = rounded - 1;
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer side. False when the ring is full. */
    bool
    push(T &&item)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - cachedHead_ > mask_) {
            cachedHead_ = head_.load(std::memory_order_acquire);
            if (tail - cachedHead_ > mask_)
                return false;
        }
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. False when the ring is empty. */
    bool
    pop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == cachedTail_) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            if (head == cachedTail_)
                return false;
        }
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Racy size hint (either side; exact only on the caller's end). */
    std::size_t
    sizeHint() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;

    alignas(64) std::atomic<std::size_t> head_{0}; ///< consumer-owned
    alignas(64) std::size_t cachedTail_ = 0;       ///< consumer-local
    alignas(64) std::atomic<std::size_t> tail_{0}; ///< producer-owned
    alignas(64) std::size_t cachedHead_ = 0;       ///< producer-local
};

} // namespace hydra::exec

#endif // HYDRA_EXEC_SPSC_QUEUE_HH
