/**
 * @file
 * Bounded single-producer/single-consumer ring (the threaded
 * executor's inter-site handoff). Lock-free and wait-free on both
 * ends: one producer thread calls push()/pushBatch(), one consumer
 * thread calls pop()/popBatch(), synchronized by two acquire/release
 * indices. Each side keeps a cached copy of the other's index so the
 * common case touches only one shared cache line.
 *
 * Batch operations amortize the index publication: pushBatch() moves
 * N items with ONE tail store (one doorbell-visible update instead of
 * N), popBatch() consumes N with one head store. Consumed slots are
 * reset to a default-constructed T before the head index is
 * published, so resources the slot held (pooled Payload buffers
 * inside queued closures) release at consumption time instead of
 * living until the ring wraps and overwrites the slot.
 */

#ifndef HYDRA_EXEC_SPSC_QUEUE_HH
#define HYDRA_EXEC_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace hydra::exec {

template <typename T>
class SpscQueue
{
  public:
    /** @param capacity Slot count; rounded up to a power of two. */
    explicit SpscQueue(std::size_t capacity)
    {
        std::size_t rounded = 1;
        while (rounded < capacity)
            rounded <<= 1;
        slots_.resize(rounded);
        mask_ = rounded - 1;
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer side. False when the ring is full. */
    bool
    push(T &&item)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - cachedHead_ > mask_) {
            cachedHead_ = head_.load(std::memory_order_acquire);
            if (tail - cachedHead_ > mask_)
                return false;
        }
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Producer side: move as many of @p items into the ring as fit,
     * publishing ONE tail store for the whole batch. Returns the
     * number consumed from the front of the span (0 when full); the
     * caller spills or retries the remainder. Moved-in items are left
     * in their moved-from state.
     */
    std::size_t
    pushBatch(std::span<T> items)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = mask_ + 1 - (tail - cachedHead_);
        if (free < items.size()) {
            cachedHead_ = head_.load(std::memory_order_acquire);
            free = mask_ + 1 - (tail - cachedHead_);
        }
        const std::size_t count =
            items.size() < free ? items.size() : free;
        for (std::size_t i = 0; i < count; ++i)
            slots_[(tail + i) & mask_] = std::move(items[i]);
        if (count > 0)
            tail_.store(tail + count, std::memory_order_release);
        return count;
    }

    /** Consumer side. False when the ring is empty. */
    bool
    pop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == cachedTail_) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            if (head == cachedTail_)
                return false;
        }
        out = std::move(slots_[head & mask_]);
        // Reset the consumed slot: a moved-from T may legally keep its
        // old value (and the resources it pins) alive until the ring
        // wraps back around; pooled Payload refs must drop now.
        slots_[head & mask_] = T();
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: move up to @p max items into @p out, publishing
     * ONE head store for the whole batch. Consumed slots are reset.
     * Returns the number popped (0 when empty).
     */
    std::size_t
    popBatch(T *out, std::size_t max)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = cachedTail_ - head;
        if (avail == 0) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            avail = cachedTail_ - head;
        }
        const std::size_t count = max < avail ? max : avail;
        for (std::size_t i = 0; i < count; ++i) {
            T &slot = slots_[(head + i) & mask_];
            out[i] = std::move(slot);
            slot = T();
        }
        if (count > 0)
            head_.store(head + count, std::memory_order_release);
        return count;
    }

    /** Racy size hint (either side; exact only on the caller's end). */
    std::size_t
    sizeHint() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;

    alignas(64) std::atomic<std::size_t> head_{0}; ///< consumer-owned
    alignas(64) std::size_t cachedTail_ = 0;       ///< consumer-local
    alignas(64) std::atomic<std::size_t> tail_{0}; ///< producer-owned
    alignas(64) std::size_t cachedHead_ = 0;       ///< producer-local
};

} // namespace hydra::exec

#endif // HYDRA_EXEC_SPSC_QUEUE_HH
