#include "exec/threaded_executor.hh"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"

namespace hydra::exec {

namespace {

/** Process-wide instruments for the threaded engine. */
struct ThreadedExecMetrics
{
    obs::Counter &posts =
        obs::counter("exec.posts", {{"executor", "threaded"}});
    obs::Counter &overflow = obs::counter("exec.post_ring_full",
                                          {{"executor", "threaded"}});
    obs::Counter &timerEvents =
        obs::counter("exec.timer_events", {{"executor", "threaded"}});
    obs::Counter &parks =
        obs::counter("exec.worker_parks", {{"executor", "threaded"}});
    obs::Gauge &sites =
        obs::gauge("exec.sites", {{"executor", "threaded"}});
};

ThreadedExecMetrics &
metrics()
{
    static ThreadedExecMetrics instance;
    return instance;
}

/** Site the current thread runs as (kMainSite off the workers). */
thread_local SiteId tl_currentSite = kMainSite;

} // namespace

ThreadedExecutor::Worker::~Worker()
{
    for (auto &slot : inboxes)
        delete slot.load(std::memory_order_acquire);
}

ThreadedExecutor::ThreadedExecutor() : ThreadedExecutor(Config{}) {}

ThreadedExecutor::ThreadedExecutor(Config config)
    : config_(config), coordinator_(std::this_thread::get_id())
{
    if (config_.batchMax == 0)
        config_.batchMax = 1; // a zero quantum could never drain
    metrics();
}

ThreadedExecutor::~ThreadedExecutor()
{
    stop_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(sitesMutex_);
    for (auto &worker : workers_) {
        wake(*worker);
        if (worker->thread.joinable())
            worker->thread.join();
    }
}

bool
ThreadedExecutor::onCoordinator() const
{
    return std::this_thread::get_id() == coordinator_;
}

void
ThreadedExecutor::pushTimer(TimerRecord record)
{
    heap_.push_back(std::move(record));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

ThreadedExecutor::TimerRecord
ThreadedExecutor::popTimer()
{
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    TimerRecord record = std::move(heap_.back());
    heap_.pop_back();
    return record;
}

TaskId
ThreadedExecutor::schedule(Time delay, Callback fn)
{
    return scheduleAt(now() + delay, std::move(fn));
}

TaskId
ThreadedExecutor::scheduleAt(Time when, Callback fn)
{
    const TaskId id = nextId_.fetch_add(1, std::memory_order_relaxed);
    if (onCoordinator()) {
        assert(when >= now());
        pushTimer(TimerRecord{when, id, std::move(fn)});
    } else {
        // Worker path: completion callbacks re-enter virtual time
        // through the coordinator's inbox.
        std::lock_guard<std::mutex> lock(injectMutex_);
        injectedTimers_.push_back(TimerRecord{when, id, std::move(fn)});
        injectedCount_.fetch_add(1, std::memory_order_release);
    }
    return id;
}

TaskId
ThreadedExecutor::schedulePeriodic(Time period, std::function<bool()> fn)
{
    assert(period > 0);
    assert(onCoordinator() && "periodic series belong to the main loop");
    const TaskId seriesId = nextId_.fetch_add(1, std::memory_order_relaxed);
    periodics_[seriesId] = Periodic{period, std::move(fn)};
    const TaskId eventId = nextId_.fetch_add(1, std::memory_order_relaxed);
    pushTimer(TimerRecord{now() + period, eventId,
                          [this, seriesId]() { firePeriodic(seriesId); }});
    return seriesId;
}

void
ThreadedExecutor::firePeriodic(TaskId series_id)
{
    auto it = periodics_.find(series_id);
    if (it == periodics_.end())
        return; // cancelled
    if (!it->second.fn()) {
        periodics_.erase(series_id);
        return;
    }
    it = periodics_.find(series_id); // fn may cancel its own series
    if (it == periodics_.end())
        return;
    const TaskId eventId = nextId_.fetch_add(1, std::memory_order_relaxed);
    pushTimer(TimerRecord{now() + it->second.period, eventId,
                          [this, series_id]() { firePeriodic(series_id); }});
}

void
ThreadedExecutor::cancel(TaskId id)
{
    if (!onCoordinator()) {
        std::lock_guard<std::mutex> lock(injectMutex_);
        injectedCancels_.push_back(id);
        injectedCount_.fetch_add(1, std::memory_order_release);
        return;
    }
    if (periodics_.erase(id))
        return;
    if (id >= nextId_.load(std::memory_order_relaxed))
        return;
    cancelled_.insert(id);
}

void
ThreadedExecutor::moveInjected()
{
    if (injectedCount_.load(std::memory_order_acquire) == 0)
        return;
    std::vector<TimerRecord> timers;
    std::vector<TaskId> cancels;
    {
        std::lock_guard<std::mutex> lock(injectMutex_);
        timers.swap(injectedTimers_);
        cancels.swap(injectedCancels_);
        injectedCount_.store(0, std::memory_order_release);
    }
    for (TimerRecord &record : timers) {
        // A worker may have raced the clock; never schedule into the
        // past.
        record.when = std::max(record.when, now());
        pushTimer(std::move(record));
    }
    for (TaskId id : cancels) {
        if (!periodics_.erase(id))
            cancelled_.insert(id);
    }
}

SiteId
ThreadedExecutor::addSite(const std::string &name)
{
    std::lock_guard<std::mutex> lock(sitesMutex_);
    if (workers_.size() >= kMaxSites)
        return kMainSite; // out of site slots; run on the main loop
    auto worker = std::make_unique<Worker>();
    worker->name = name;
    worker->id = static_cast<SiteId>(workers_.size() + 1);
    // Per-site instruments are resolved once here so the worker's hot
    // paths only chase cached pointers.
    worker->parks = &obs::counter("exec.site_parks", {{"site", name}});
    worker->wakes = &obs::counter("exec.site_wakes", {{"site", name}});
    worker->doorbellsCoalesced =
        &obs::counter("exec.doorbells_coalesced", {{"site", name}});
    worker->ringOccupancy =
        &obs::histogram("exec.ring_occupancy", {{"site", name}});
    worker->batchSize = &obs::histogram("exec.batch_size", {{"site", name}});
    worker->ringDepth = &obs::gauge("exec.ring_depth", {{"site", name}});
    worker->drainBuffer.resize(config_.batchMax);
    worker->profileSlot = obs::Profiler::instance().slotFor(name);
    Worker *raw = worker.get();
    workers_.push_back(std::move(worker));
    siteTable_[raw->id].store(raw, std::memory_order_release);
    siteCount_.store(workers_.size(), std::memory_order_release);
    metrics().sites.set(static_cast<double>(workers_.size()));
    raw->thread = std::thread([this, raw]() { workerLoop(*raw); });
    return raw->id;
}

std::size_t
ThreadedExecutor::siteCount() const
{
    return siteCount_.load(std::memory_order_acquire);
}

ThreadedExecutor::Inbox &
ThreadedExecutor::inboxFor(Worker &worker, SiteId producer)
{
    std::atomic<Inbox *> &slot = worker.inboxes[producer];
    Inbox *inbox = slot.load(std::memory_order_acquire);
    if (inbox)
        return *inbox;
    auto *fresh = new Inbox(config_.ringCapacity);
    Inbox *expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel)) {
        return *fresh;
    }
    delete fresh; // another thread won the race
    return *expected;
}

void
ThreadedExecutor::wake(Worker &worker)
{
    if (!worker.parked.load(std::memory_order_acquire))
        return;
    // Doorbell coalescing: N producers ringing one parked site cost
    // one notify. Only the false→true winner pays the mutex; later
    // ringers piggyback on the notify already in flight (the latch is
    // consumed by the worker at unpark, so "in flight" holds until
    // the sleeper it targets is awake and rescanning). Items are
    // pushed before wake() is called, so the post-wake drain sees
    // every coalesced producer's work.
    if (worker.doorbell.exchange(true, std::memory_order_acq_rel)) {
        worker.doorbellsCoalesced->increment();
        return;
    }
    {
        // Taking the mutex orders this notify after the worker's
        // park decision, closing the lost-wakeup window.
        std::lock_guard<std::mutex> lock(worker.parkMutex);
    }
    worker.cv.notify_one();
    worker.wakes->increment();
}

void
ThreadedExecutor::post(SiteId site, Callback fn)
{
    metrics().posts.increment();
    Worker *worker = site <= kMaxSites
                         ? siteTable_[site].load(std::memory_order_acquire)
                         : nullptr;
    if (!worker) {
        // The main loop is its own site: run as a zero-delay event.
        if (onCoordinator()) {
            pushTimer(TimerRecord{
                now(), nextId_.fetch_add(1, std::memory_order_relaxed),
                std::move(fn)});
        } else {
            scheduleAt(now(), std::move(fn));
        }
        return;
    }
    postsPending_.fetch_add(1, std::memory_order_acq_rel);

    // Only the coordinator and site workers own a producer slot; any
    // other thread would alias the coordinator's ring (tl_currentSite
    // defaults to kMainSite), so it serializes through the overflow
    // lane instead of breaking the ring's single-producer contract.
    const SiteId producer = tl_currentSite;
    const bool ownsRing = producer != kMainSite || onCoordinator();
    Inbox &inbox = inboxFor(*worker, producer);
    if (ownsRing &&
        inbox.overflowSize.load(std::memory_order_acquire) == 0 &&
        inbox.ring.push(std::move(fn))) {
        wake(*worker);
        return;
    }
    // Ring full (burst) or foreign producer: spill to the mutex-guarded
    // overflow lane rather than block. The overflowSize gate keeps this
    // producer spilling until the worker catches up, preserving
    // per-(producer, site) FIFO order.
    metrics().overflow.increment();
    {
        std::lock_guard<std::mutex> lock(inbox.mutex);
        inbox.overflow.push_back(std::move(fn));
        inbox.overflowSize.fetch_add(1, std::memory_order_release);
    }
    wake(*worker);
}

void
ThreadedExecutor::postBatch(SiteId site, std::span<Callback> fns)
{
    if (fns.empty())
        return;
    Worker *worker = site <= kMaxSites
                         ? siteTable_[site].load(std::memory_order_acquire)
                         : nullptr;
    if (!worker) {
        // Main-loop target: fall back to per-item zero-delay events
        // (order is what matters there, not handoff cost).
        for (Callback &fn : fns)
            post(site, std::move(fn));
        return;
    }
    metrics().posts.add(fns.size());
    postsPending_.fetch_add(fns.size(), std::memory_order_acq_rel);

    const SiteId producer = tl_currentSite;
    const bool ownsRing = producer != kMainSite || onCoordinator();
    Inbox &inbox = inboxFor(*worker, producer);
    std::size_t pushed = 0;
    if (ownsRing &&
        inbox.overflowSize.load(std::memory_order_acquire) == 0) {
        // One tail publish for however much of the span fits.
        pushed = inbox.ring.pushBatch(fns);
    }
    if (pushed < fns.size()) {
        // Remainder (ring full, or a foreign producer): spill under
        // ONE lock hold. The overflowSize gate then keeps this
        // producer spilling until the worker catches up, preserving
        // per-(producer, site) FIFO exactly as in post().
        const std::size_t spilled = fns.size() - pushed;
        metrics().overflow.add(spilled);
        std::lock_guard<std::mutex> lock(inbox.mutex);
        for (std::size_t i = pushed; i < fns.size(); ++i)
            inbox.overflow.push_back(std::move(fns[i]));
        inbox.overflowSize.fetch_add(spilled, std::memory_order_release);
    }
    // One park/unpark decision — and at most one notify — for the
    // whole batch.
    wake(*worker);
}

std::size_t
ThreadedExecutor::drainInbox(Worker &worker)
{
    std::size_t executed = 0;
    std::size_t depth = 0;
    Callback *batch = worker.drainBuffer.data();
    const std::size_t producers = siteCount() + 1;
    for (SiteId p = 0; p < producers && p <= kMaxSites; ++p) {
        Inbox *inbox = worker.inboxes[p].load(std::memory_order_acquire);
        if (!inbox)
            continue;
        // Occupancy is sampled at service time: how much was queued
        // across this site's lanes when the worker got to them.
        const std::size_t queued =
            inbox->ring.sizeHint() +
            inbox->overflowSize.load(std::memory_order_acquire);
        depth += queued;
        // Adapt the drain quantum to the occupancy this visit
        // observes: double it while the lane is running ahead of it
        // (backlog — amortize the index publishes), halve it once the
        // lane runs far emptier (so a quiet site returns to
        // one-item-eager service). The quantum only bounds how much
        // one popBatch may take; it never waits for a batch to form,
        // which is what keeps low-load latency at the unbatched
        // floor.
        if (queued > worker.quantum)
            worker.quantum = std::min(worker.quantum * 2, config_.batchMax);
        else if (worker.quantum > 1 && queued * 4 < worker.quantum)
            worker.quantum /= 2;
        // Ring first (older), then this producer's spill; per-producer
        // order is preserved across the handback because the producer
        // re-enters the ring only once overflowSize reaches zero.
        for (;;) {
            const std::size_t n =
                inbox->ring.popBatch(batch, worker.quantum);
            if (n == 0)
                break;
            worker.batchSize->record(n);
            for (std::size_t i = 0; i < n; ++i) {
                batch[i]();
                batch[i] = nullptr;
            }
            executed += n;
        }
        // Swap the whole spill out under one lock hold (shorter than
        // the old pop-per-lock loop). overflowSize drops before these
        // closures run, which re-opens the ring to the producer — per
        // producer FIFO still holds because anything it pushes now is
        // popped on a later visit, after this older spill executes.
        if (inbox->overflowSize.load(std::memory_order_acquire) > 0) {
            std::deque<Callback> spill;
            {
                std::lock_guard<std::mutex> lock(inbox->mutex);
                spill.swap(inbox->overflow);
                inbox->overflowSize.store(0, std::memory_order_release);
            }
            if (!spill.empty())
                worker.batchSize->record(spill.size());
            for (Callback &fn : spill) {
                fn();
                fn = nullptr;
                ++executed;
            }
        }
    }
    if (executed > 0) {
        postsExecuted_.fetch_add(executed, std::memory_order_relaxed);
        postsPending_.fetch_sub(executed, std::memory_order_acq_rel);
        worker.ringOccupancy->record(depth);
        worker.ringDepth->set(static_cast<double>(depth));
    }
    return executed;
}

void
ThreadedExecutor::workerLoop(Worker &worker)
{
    tl_currentSite = worker.id;
    int idle = 0;
    chaos::ChaosEngine &chaosEngine = chaos::ChaosEngine::instance();
    while (!stop_.load(std::memory_order_acquire)) {
        if (drainInbox(worker) > 0) {
            idle = 0;
            // Chaos: a stuck/slow worker naps on the wall clock for a
            // bounded slice after servicing a batch. Virtual time and
            // posted work are untouched — the fault only delays when
            // this thread gets back to its rings, which is exactly
            // what a wedged firmware core looks like from outside.
            if (chaosEngine.enabled()) {
                sim::SimTime amount = 0;
                const Time at = now_.load(std::memory_order_acquire);
                if (chaosEngine.stallSite(at, amount) ||
                    chaosEngine.slowPost(at, amount)) {
                    const auto cap =
                        std::min<sim::SimTime>(amount, sim::milliseconds(2));
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(cap));
                }
            }
            continue;
        }
        if (++idle < config_.spinBeforePark) {
            std::this_thread::yield();
            continue;
        }
        metrics().parks.increment();
        worker.parks->increment();
        std::unique_lock<std::mutex> lock(worker.parkMutex);
        worker.parked.store(true, std::memory_order_release);
        worker.profileSlot->parked.store(true, std::memory_order_relaxed);
        // Re-check under the parked flag so a producer's wake() can't
        // slip between our last scan and the wait. The timeout is a
        // belt-and-braces bound, not the wakeup mechanism.
        bool empty = true;
        for (SiteId p = 0; p <= kMaxSites && empty; ++p) {
            Inbox *inbox =
                worker.inboxes[p].load(std::memory_order_acquire);
            if (inbox &&
                (inbox->ring.sizeHint() > 0 ||
                 inbox->overflowSize.load(std::memory_order_acquire) > 0))
                empty = false;
        }
        if (empty && !stop_.load(std::memory_order_acquire))
            worker.cv.wait_for(lock, std::chrono::milliseconds(2));
        worker.profileSlot->parked.store(false, std::memory_order_relaxed);
        worker.parked.store(false, std::memory_order_release);
        // Consume the doorbell only after clearing `parked`: a
        // producer observing the stale parked flag now either rings a
        // fresh latch (spurious but harmless notify) or piggybacks on
        // one whose unpark hasn't completed — never on a notify this
        // cycle already spent.
        worker.doorbell.store(false, std::memory_order_release);
        idle = 0;
    }
    // Complete handed-off work so drain() callers never lose posts.
    drainInbox(worker);
}

bool
ThreadedExecutor::postsOutstanding() const
{
    return postsPending_.load(std::memory_order_acquire) != 0;
}

void
ThreadedExecutor::sampleSiteOccupancy()
{
    const std::size_t producers = siteCount() + 1;
    for (std::size_t s = 1; s < producers && s <= kMaxSites; ++s) {
        Worker *worker = siteTable_[s].load(std::memory_order_acquire);
        if (!worker)
            continue;
        std::size_t depth = 0;
        for (SiteId p = 0; p < producers && p <= kMaxSites; ++p) {
            Inbox *inbox =
                worker->inboxes[p].load(std::memory_order_acquire);
            if (!inbox)
                continue;
            depth += inbox->ring.sizeHint() +
                     inbox->overflowSize.load(std::memory_order_acquire);
        }
        worker->ringOccupancy->record(depth);
        worker->ringDepth->set(static_cast<double>(depth));
    }
}

bool
ThreadedExecutor::dispatchDueTimer(Time until)
{
    while (!heap_.empty()) {
        const TimerRecord &top = heap_.front();
        if (cancelled_.erase(top.id)) {
            popTimer();
            continue;
        }
        if (top.when > until)
            return false;
        TimerRecord record = popTimer();
        assert(record.when >= now());
        now_.store(record.when, std::memory_order_release);
        const std::uint64_t n =
            dispatched_.fetch_add(1, std::memory_order_relaxed);
        if ((n & kOccupancySampleMask) == 0)
            sampleSiteOccupancy();
        metrics().timerEvents.increment();
        record.fn();
        return true;
    }
    return false;
}

void
ThreadedExecutor::runUntil(Time until)
{
    assert(onCoordinator());
    for (;;) {
        moveInjected();
        if (dispatchDueTimer(until))
            continue;
        if (postsOutstanding() ||
            injectedCount_.load(std::memory_order_acquire) != 0) {
            // Let workers finish; their completions may inject more
            // timers inside the window.
            std::this_thread::yield();
            continue;
        }
        break;
    }
    if (now() < until)
        now_.store(until, std::memory_order_release);
}

void
ThreadedExecutor::runToCompletion()
{
    assert(onCoordinator());
    for (;;) {
        moveInjected();
        if (dispatchDueTimer(static_cast<Time>(-1)))
            continue;
        if (postsOutstanding() ||
            injectedCount_.load(std::memory_order_acquire) != 0) {
            std::this_thread::yield();
            continue;
        }
        break;
    }
}

bool
ThreadedExecutor::step()
{
    assert(onCoordinator());
    moveInjected();
    return dispatchDueTimer(static_cast<Time>(-1));
}

void
ThreadedExecutor::drain()
{
    assert(onCoordinator());
    for (;;) {
        moveInjected();
        if (dispatchDueTimer(now()))
            continue;
        if (postsOutstanding() ||
            injectedCount_.load(std::memory_order_acquire) != 0) {
            std::this_thread::yield();
            continue;
        }
        break;
    }
}

std::size_t
ThreadedExecutor::pendingEvents() const
{
    // Coordinator-accurate; racy (but safe) from elsewhere.
    return heap_.size() + injectedCount_.load(std::memory_order_acquire);
}

} // namespace hydra::exec
