#include "exec/sim_executor.hh"

#include <algorithm>

#include "chaos/chaos.hh"
#include "obs/metrics.hh"

namespace hydra::exec {

namespace {

/** Process-wide instruments for the deterministic engine. */
struct SimExecMetrics
{
    obs::Counter &posts =
        obs::counter("exec.posts", {{"executor", "sim"}});
    obs::Gauge &sites = obs::gauge("exec.sites", {{"executor", "sim"}});
};

SimExecMetrics &
simExecMetrics()
{
    static SimExecMetrics metrics;
    return metrics;
}

} // namespace

SimExecutor::SimExecutor()
{
    simExecMetrics();
}

SiteId
SimExecutor::addSite(const std::string &name)
{
    siteNames_.push_back(name);
    simExecMetrics().sites.set(static_cast<double>(siteNames_.size()));
    return static_cast<SiteId>(siteNames_.size());
}

void
SimExecutor::post(SiteId site, Callback fn)
{
    // Site affinity is meaningless on a single thread; a zero-delay
    // event preserves global FIFO order, which keeps runs
    // deterministic (the property the sim engine exists to provide).
    simExecMetrics().posts.increment();

    chaos::ChaosEngine &chaosEngine = chaos::ChaosEngine::instance();
    if (chaosEngine.enabled()) {
        // Chaos under sim is still deterministic: a stalled site
        // parks subsequent posts at a fixed future instant, a slow
        // draw delays one task — both via scheduleAt, which preserves
        // FIFO among equal timestamps, so a seeded run replays
        // byte-for-byte.
        const Time now = sim_.now();
        sim::SimTime amount = 0;
        if (chaosEngine.stallSite(now, amount)) {
            if (stallUntil_.size() <= site)
                stallUntil_.resize(site + 1, 0);
            stallUntil_[site] = std::max(stallUntil_[site], now + amount);
        }
        Time when = now;
        if (site < stallUntil_.size())
            when = std::max(when, stallUntil_[site]);
        if (chaosEngine.slowPost(now, amount))
            when += amount;
        if (when > now) {
            sim_.scheduleAt(when, std::move(fn));
            return;
        }
    }
    sim_.schedule(0, std::move(fn));
}

void
SimExecutor::postBatch(SiteId site, std::span<Callback> fns)
{
    // One zero-delay event per element, in span order: exactly the
    // event ids, counters, and dispatch order N individual post()
    // calls would produce, so a batched run replays byte-identical to
    // an unbatched one. Batching under sim is a pure API convenience
    // (and chaos draws fire per element, same as unbatched).
    for (Callback &fn : fns)
        post(site, std::move(fn));
}

void
SimExecutor::drain()
{
    // Run everything due at the current instant — post() chains
    // schedule zero-delay events, so a pipeline drains fully — but
    // leave future timers for runUntil().
    sim_.runUntil(sim_.now());
}

const char *
executorKindName(ExecutorKind kind)
{
    switch (kind) {
      case ExecutorKind::Sim: return "sim";
      case ExecutorKind::Threaded: return "threaded";
    }
    return "?";
}

bool
parseExecutorKind(const std::string &name, ExecutorKind &out)
{
    if (name == "sim") {
        out = ExecutorKind::Sim;
        return true;
    }
    if (name == "threaded") {
        out = ExecutorKind::Threaded;
        return true;
    }
    return false;
}

} // namespace hydra::exec
