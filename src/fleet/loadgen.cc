#include "fleet/loadgen.hh"

#include <atomic>
#include <chrono>
#include <memory>

#include "common/bytes.hh"
#include "common/logging.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"

namespace hydra::fleet {

namespace {

/** One long-lived stream: a channel homed by the placement ring. */
struct Stream
{
    std::string key;
    Host *home = nullptr;
    Host *target = nullptr;
    core::Channel *channel = nullptr;
    core::ChannelId id = core::kInvalidChannel;
};

/** Shared run state the pacer, drivers, and handlers touch. */
struct RunState
{
    Fleet &fleet;
    const LoadgenConfig &config;
    obs::LatencyHistogram &latency;
    std::vector<Stream> streams;
    /** streams index lists, partitioned by home host. */
    std::vector<std::vector<std::size_t>> byHome;
    /** Deliveries counted at the receiving host (atomic: handlers
     * fire on the coordinator while drivers churn). */
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> delivered;
    std::atomic<std::uint64_t> churned{0};
    std::atomic<std::uint64_t> writeFailures{0};
};

Host &
pickTarget(Fleet &fleet, const LoadgenConfig &config, Host &home,
           const std::string &key)
{
    const std::size_t n = fleet.hostCount();
    if (n < 2)
        return home;
    if (config.remoteOnly || config.useDrivers) {
        // Deterministic cross-host peer, never the home itself.
        const std::uint64_t hash = placementHash(key + "#peer");
        return fleet.host((home.index() + 1 + hash % (n - 1)) % n);
    }
    return fleet.homeOf(key + "#peer");
}

/** Create (or re-create, under churn) one stream's channel. */
bool
buildStream(RunState &state, Stream &stream)
{
    core::ChannelConfig config;
    config.name = state.config.channelName;
    config.targetDevice = stream.target->nic().name();

    auto created = stream.home->executive().createChannel(
        config, stream.home->runtime().hostSite(),
        state.config.messageBytes);
    if (!created) {
        LOG_DEBUG << "loadgen: create failed for " << stream.key << ": "
                  << created.error().describe();
        return false;
    }
    stream.channel = created.value();
    stream.id = stream.channel->id();

    core::ExecutionSite *site =
        stream.target->runtime().siteByName(config.targetDevice);
    if (!site)
        return false;
    auto endpoint = stream.channel->connectSite(*site);
    if (!endpoint)
        return false;

    exec::Executor &executor = state.fleet.executor();
    obs::LatencyHistogram &latency = state.latency;
    std::atomic<std::uint64_t> *count =
        state.delivered[stream.target->index()].get();
    stream.channel->installHandler(
        endpoint.value(),
        [&executor, &latency, count](const Payload &message, std::size_t) {
            ByteReader reader(message.data(), message.size());
            auto stamp = reader.readU64();
            if (stamp)
                latency.record(executor.now() -
                               static_cast<sim::SimTime>(stamp.value()));
            count->fetch_add(1, std::memory_order_relaxed);
        });
    return true;
}

void
writeOne(RunState &state, Stream &stream)
{
    if (!stream.channel)
        return;
    PayloadBuilder builder;
    ByteWriter writer(builder.buffer());
    writer.writeU64(
        static_cast<std::uint64_t>(state.fleet.executor().now()));
    if (builder.buffer().size() < state.config.messageBytes)
        builder.buffer().resize(state.config.messageBytes, 0);
    Status written = stream.channel->write(builder.seal());
    if (!written)
        state.writeFailures.fetch_add(1, std::memory_order_relaxed);
}

/** Destroy + recreate one stream (the churn path). */
void
churnOne(RunState &state, Stream &stream)
{
    if (stream.channel) {
        Status destroyed =
            stream.home->executive().destroyChannelById(stream.id);
        if (!destroyed) {
            LOG_DEBUG << "loadgen: destroy failed for " << stream.key;
        }
        stream.channel = nullptr;
        stream.id = core::kInvalidChannel;
    }
    if (buildStream(state, stream))
        state.churned.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

LoadgenReport
runOpenLoop(Fleet &fleet, const LoadgenConfig &config)
{
    exec::Executor &executor = fleet.executor();
    LoadgenReport report;
    report.hosts = fleet.hostCount();
    report.streams = config.streams;
    if (config.streams == 0 || fleet.hostCount() == 0)
        return report;

    if (config.resetMetrics)
        obs::MetricsRegistry::instance().reset();

    RunState state{fleet, config,
                   obs::histogram("fleet.delivery_ns"),
                   {}, {}, {}, {}, {}};
    state.streams.resize(config.streams);
    state.byHome.resize(fleet.hostCount());
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        state.delivered.push_back(
            std::make_unique<std::atomic<std::uint64_t>>(0));

    const std::uint64_t latencyBase = state.latency.summary().count;
    auto &registry = obs::MetricsRegistry::instance();
    const std::uint64_t wireBase = registry.counterValue(
        "channel.payload_copies", {{"buffering", "wire"}});
    const std::uint64_t zeroBase = registry.counterValue(
        "channel.payload_copies", {{"buffering", "zero-copy"}});
    std::vector<std::uint64_t> busyBase(fleet.hostCount(), 0);

    // --- stand up the streams ---
    for (std::size_t i = 0; i < config.streams; ++i) {
        Stream &stream = state.streams[i];
        stream.key = "stream/" + std::to_string(i);
        stream.home = &fleet.homeOf(stream.key);
        stream.target =
            &pickTarget(fleet, config, *stream.home, stream.key);
        if (buildStream(state, stream)) {
            if (stream.home == stream.target)
                ++report.localStreams;
            else
                ++report.remoteStreams;
        }
        state.byHome[stream.home->index()].push_back(i);
    }
    executor.drain();

    // Baseline per-host busy AFTER setup so the report measures the
    // steady state, not channel bring-up.
    obs::CpuAttribution::instance().sync(executor.now());
    const auto busyOf = [&](Host &host) {
        const obs::Labels hostCpu{{"site", host.name() + ".host"},
                                  {"host", host.name()}};
        const obs::Labels nicCpu{{"site", host.nic().name()},
                                 {"host", host.name()}};
        return registry.counterValue("exec.site_busy_ns", hostCpu) +
               registry.counterValue("exec.site_busy_ns", nicCpu);
    };
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        busyBase[h] = busyOf(fleet.host(h));

    // --- open-loop pacer ---
    const sim::SimTime start = executor.now();
    const sim::SimTime end = start + config.duration;
    std::uint64_t issued = 0;
    std::size_t cursor = 0;
    std::vector<std::size_t> churnCursor(fleet.hostCount(), 0);
    std::size_t churnHost = 0;

    executor.schedulePeriodic(config.tick, [&]() -> bool {
        const sim::SimTime now = executor.now();
        if (now >= end)
            return false;
        const double elapsedSec =
            static_cast<double>(now - start) / 1e9;
        const auto target = static_cast<std::uint64_t>(
            config.offeredMsgsPerSec * elapsedSec);
        std::uint64_t due = target > issued ? target - issued : 0;

        if (!config.useDrivers) {
            for (std::uint64_t k = 0; k < due; ++k) {
                Stream &stream =
                    state.streams[cursor++ % state.streams.size()];
                writeOne(state, stream);
            }
            for (std::size_t c = 0; c < config.churnPerTick; ++c) {
                Stream &stream =
                    state.streams[cursor++ % state.streams.size()];
                churnOne(state, stream);
            }
            issued += due;
            return true;
        }

        // Driver mode: partition this tick's writes (and churn) by
        // home host and hand each host's slice to its driver site in
        // one post. Per-host single-writer: a stream is only ever
        // touched by its home driver.
        //
        // Churn rotates across hosts rather than dividing: with
        // churnPerTick < hostCount a proportional share would floor
        // to zero everywhere and no churn would ever happen.
        std::vector<std::size_t> churnByHost(fleet.hostCount(), 0);
        for (std::size_t c = 0; c < config.churnPerTick; ++c) {
            do {
                churnHost = (churnHost + 1) % fleet.hostCount();
            } while (state.byHome[churnHost].empty());
            ++churnByHost[churnHost];
        }
        for (std::size_t h = 0; h < fleet.hostCount(); ++h) {
            const std::vector<std::size_t> &homed = state.byHome[h];
            if (homed.empty())
                continue;
            const std::uint64_t share =
                due * homed.size() / state.streams.size();
            const std::size_t churnShare = churnByHost[h];
            if (share == 0 && churnShare == 0)
                continue;
            issued += share;
            std::size_t &hostCursor = churnCursor[h];
            const std::size_t begin = hostCursor;
            hostCursor += share + churnShare;
            executor.post(
                fleet.host(h).driverSite(),
                [&state, &homed, begin, share, churnShare]() {
                    for (std::uint64_t k = 0; k < share; ++k)
                        writeOne(state,
                                 state.streams[homed[(begin + k) %
                                                     homed.size()]]);
                    for (std::size_t c = 0; c < churnShare; ++c)
                        churnOne(
                            state,
                            state.streams[homed[(begin + share + c) %
                                                homed.size()]]);
                });
        }
        return true;
    });

    const auto wallStart = std::chrono::steady_clock::now();
    executor.runUntil(end + config.drain);
    executor.drain();
    const auto wallEnd = std::chrono::steady_clock::now();

    // --- collect ---
    obs::CpuAttribution::instance().sync(executor.now());
    report.offered = issued;
    report.churned = state.churned.load(std::memory_order_relaxed);
    report.elapsed = config.duration;
    const obs::HistogramSummary all = state.latency.summary();
    report.latency = all;
    report.latency.count = all.count - latencyBase;
    report.wireCopies = registry.counterValue("channel.payload_copies",
                                              {{"buffering", "wire"}}) -
                        wireBase;
    report.zeroCopies =
        registry.counterValue("channel.payload_copies",
                              {{"buffering", "zero-copy"}}) -
        zeroBase;
    for (std::size_t h = 0; h < fleet.hostCount(); ++h) {
        Host &host = fleet.host(h);
        LoadgenHostReport slice;
        slice.host = host.name();
        slice.streamsHomed = state.byHome[h].size();
        slice.delivered =
            state.delivered[h]->load(std::memory_order_relaxed);
        slice.busyNs = busyOf(host) - busyBase[h];
        report.delivered += slice.delivered;
        report.perHost.push_back(std::move(slice));
    }
    report.deliveredPerVirtualSec =
        static_cast<double>(report.delivered) /
        (static_cast<double>(config.duration) / 1e9);
    report.writeFailures =
        state.writeFailures.load(std::memory_order_relaxed);
    report.wallMs = std::chrono::duration<double, std::milli>(
                        wallEnd - wallStart)
                        .count();

    // Tear the streams down before the handlers' run-local capture
    // state goes out of scope (the fleet may keep running after us).
    for (Stream &stream : state.streams)
        if (stream.channel)
            stream.home->executive().destroyChannelById(stream.id);
    executor.drain();
    return report;
}

} // namespace hydra::fleet
