/**
 * @file
 * Open-loop workload generator for fleet scale runs (DESIGN.md §14).
 *
 * Open loop means arrivals are paced by a virtual-time clock, not by
 * completions: a pacer tick computes how many messages the offered
 * rate owes and writes them regardless of how far behind delivery
 * is, which is what exposes capacity walls (a closed loop would
 * politely slow down instead). Streams are long-lived channels placed
 * by the fleet's consistent-hash ring; optional churn
 * destroys/recreates streams while traffic flows, which is what
 * exposed the executive registry wall this refactor removed.
 *
 * Thread model: by default everything runs on the coordinator
 * (deterministic under the sim engine). With useDrivers, writes are
 * posted to each host's driver site — real threads under the
 * threaded engine — and placement is forced cross-host, because only
 * the remote transport is multi-writer safe.
 */

#ifndef HYDRA_FLEET_LOADGEN_HH
#define HYDRA_FLEET_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "obs/histogram.hh"

namespace hydra::fleet {

/** Open-loop run parameters. */
struct LoadgenConfig
{
    /** Concurrent streams (channels alive for the whole run). */
    std::size_t streams = 1000;
    std::size_t messageBytes = 256;
    /** Aggregate offered load, messages per virtual second. */
    double offeredMsgsPerSec = 1e6;
    /** Measurement window (virtual time). */
    sim::SimTime duration = sim::milliseconds(100);
    /** Pacer granularity. */
    sim::SimTime tick = sim::microseconds(100);
    /** Extra virtual time after the window for in-flight deliveries. */
    sim::SimTime drain = sim::milliseconds(5);
    /** Force every stream cross-host (implied by useDrivers). */
    bool remoteOnly = false;
    /** Post writes to per-host driver sites (threads when threaded). */
    bool useDrivers = false;
    /** Streams destroyed+recreated per pacer tick (registry churn). */
    std::size_t churnPerTick = 0;
    /** Shared channel display name: bounds the latency-histogram
     * registry at one series per creator host, not per stream. */
    std::string channelName = "fleet.stream";
    /** Zero the global metrics registry before the run (benches). */
    bool resetMetrics = false;
};

/** Per-host slice of the report. */
struct LoadgenHostReport
{
    std::string host;
    std::size_t streamsHomed = 0;
    /** Messages delivered to endpoints on this host. */
    std::uint64_t delivered = 0;
    /** Host CPU + NIC firmware busy ns over the run. */
    std::uint64_t busyNs = 0;
};

/** What an open-loop run measured. */
struct LoadgenReport
{
    std::size_t hosts = 0;
    std::size_t streams = 0;
    std::size_t remoteStreams = 0;
    std::size_t localStreams = 0;
    /** Messages the pacer wrote (open-loop offered count). */
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t churned = 0;
    /** Writes the channel layer rejected (should be zero). */
    std::uint64_t writeFailures = 0;
    /** channel.payload_copies{buffering=wire} delta over the run:
     * exactly one buffered copy per cross-host message. */
    std::uint64_t wireCopies = 0;
    /** channel.payload_copies{buffering=zero-copy} delta. The
     * counter records copies *performed*, so intra-host zero-copy
     * traffic must leave this at 0 (the fleet test's invariant). */
    std::uint64_t zeroCopies = 0;
    /** End-to-end write->handler latency (fleet.delivery_ns). */
    obs::HistogramSummary latency;
    /** Virtual measurement window. */
    sim::SimTime elapsed = 0;
    double deliveredPerVirtualSec = 0.0;
    /** Real time the run took to simulate. */
    double wallMs = 0.0;
    std::vector<LoadgenHostReport> perHost;
};

/** Drive @p fleet with an open-loop load; returns the measurements.
 * Runs the fleet's executor (runUntil) — the caller owns quiescence
 * before and after. */
LoadgenReport runOpenLoop(Fleet &fleet, const LoadgenConfig &config);

} // namespace hydra::fleet

#endif // HYDRA_FLEET_LOADGEN_HH
