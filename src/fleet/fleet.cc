#include "fleet/fleet.hh"

#include <algorithm>
#include <mutex>

#include "common/bytes.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/time.hh"

namespace hydra::fleet {

namespace {

/** Remote-transport cost constants (paper-scale: gigabit fabric). */
struct RemoteCosts
{
    /** Host/firmware cycles to build or retire one tx descriptor. */
    std::uint64_t txDescriptorCycles = 400;
    /** Endpoint-site cycles to consume one delivered frame. */
    std::uint64_t rxDescriptorCycles = 300;
    /** Sender-site cycles for a same-machine enqueue (cf. local). */
    std::uint64_t enqueueCycles = 250;
    /** Same-machine leg of a multicast: in-memory enqueue latency. */
    sim::SimTime localLatency = sim::nanoseconds(600);
};

constexpr RemoteCosts kCosts{};

/** Per-transport instruments, mirroring providers.cc's locals. */
struct RemoteMetrics
{
    obs::Counter &sent = obs::counter("channel.messages_sent",
                                      {{"transport", "remote"}});
    obs::Counter &bytes = obs::counter("channel.bytes_sent",
                                       {{"transport", "remote"}});
    obs::Counter &dropped = obs::counter("channel.messages_dropped",
                                         {{"transport", "remote"}});
    /**
     * The exactly-one wire copy per remote leg: header + body staged
     * into the frame buffer. Zero increments here would mean the wire
     * was never exercised; more than one per message is a regression
     * the fleet test asserts against.
     */
    obs::Counter &wireCopies = obs::counter(
        "channel.payload_copies", {{"buffering", "wire"}});
    /** Frames that arrived for a since-destroyed ChannelId. */
    obs::Counter &orphans = obs::counter("fleet.orphan_frames");
    /** Per-sender sequence gaps observed by receivers (loss/reorder;
     * zero on a lossless fabric — the FIFO test's invariant). */
    obs::Counter &seqGaps = obs::counter("fleet.seq_gaps");
};

RemoteMetrics &
remoteMetrics()
{
    static RemoteMetrics metrics;
    return metrics;
}

} // namespace

/**
 * Cross-machine transport: frames messages over the sender host's
 * NIC onto the shared fabric. FIFO per (sender endpoint, receiver
 * endpoint) holds structurally: one sender endpoint lives on one
 * host, its frames serialize through that host's DMA engine and
 * uplink, and the fabric delivers in order per (src, dst) node pair.
 *
 * Thread model: writeFrom may run on any driver site; delivery runs
 * on the coordinator (scheduled events). A per-channel recursive
 * mutex guards endpoints_/stats_; recursive so a receive handler may
 * write back into the same channel synchronously.
 */
class RemoteChannel : public core::Channel
{
  public:
    RemoteChannel(core::ChannelConfig config, Fleet &fleet, Host &home)
        : Channel(std::move(config)), fleet_(fleet), home_(home),
          wireLimit_(fleet.config().network.maxPayload > kWireHeaderBytes
                         ? fleet.config().network.maxPayload -
                               kWireHeaderBytes
                         : 0)
    {
    }

    ~RemoteChannel() override
    {
        // Unroute everywhere first: after this no fabric handler can
        // reach us (removeRoute blocks on any in-flight delivery).
        for (Host *host : routedHosts_)
            host->removeRoute(id());
    }

    Status
    writeFrom(std::size_t from, Payload message) override
    {
        std::lock_guard<std::recursive_mutex> lock(mutex_);
        if (closed_)
            return Status(ErrorCode::ChannelClosed, "channel closed");
        if (from >= endpoints_.size())
            return Status(ErrorCode::OutOfRange, "bad endpoint");
        if (endpoints_.size() < 2)
            return Status(ErrorCode::ChannelNotConnected,
                          "no peer endpoint");
        if (message.size() > config_.maxMessageBytes ||
            message.size() > wireLimit_) {
            remoteMetrics().dropped.increment();
            return Status(ErrorCode::MessageTooLarge,
                          "message exceeds wire frame limit");
        }

        ensureRoutes();

        ++stats_.messagesSent;
        stats_.bytesSent += message.size();
        RemoteMetrics &metrics = remoteMetrics();
        metrics.sent.increment();
        metrics.bytes.add(message.size());

        const sim::SimTime sentAt = home_.machine().executor().now();
        Wire &src = wires_[from];

        for (std::size_t to = 0; to < endpoints_.size(); ++to) {
            if (to == from)
                continue;
            if (wires_[to].host == src.host) {
                sendLocalLeg(from, to, message, sentAt);
                continue;
            }
            sendWireLeg(from, to, message, sentAt);
        }
        return Status::success();
    }

  protected:
    Result<std::size_t>
    addEndpoint(core::ExecutionSite &site) override
    {
        Host *owner = fleet_.hostOf(site.machine());
        if (!owner)
            return Error(ErrorCode::InvalidArgument,
                         "site's machine is not a fleet member");
        std::size_t index = 0;
        {
            std::lock_guard<std::recursive_mutex> lock(mutex_);
            auto added = Channel::addEndpoint(site);
            if (!added)
                return added;
            index = added.value();
            Wire wire;
            wire.host = owner;
            if (site.isHost())
                wire.txBuffer = owner->machine().os().allocRegion(
                    config_.maxMessageBytes + kWireHeaderBytes);
            wires_.push_back(std::move(wire));
            for (Wire &w : wires_) {
                w.txSeq.resize(wires_.size(), 0);
                w.rxSeen.resize(wires_.size(), 0);
            }
        }
        // Outside the channel lock: route registration takes the
        // host's fabric lock, which delivery holds while calling back
        // into the channel — never nest the two in reverse order.
        ensureRoutes();
        return index;
    }

  private:
    friend class Host;

    /** Per-endpoint wire state, parallel to endpoints_. */
    struct Wire
    {
        Host *host = nullptr;
        /** Host-side tx staging region (0 for device endpoints). */
        hw::Addr txBuffer = 0;
        /** txSeq[to]: next sequence this endpoint sends to `to`. */
        std::vector<std::uint64_t> txSeq;
        /** rxSeen[from]: frames received here from `from`. */
        std::vector<std::uint64_t> rxSeen;
    };

    /**
     * Register this channel's id on every endpoint host's fabric.
     * Lazy because the creator endpoint attaches before the executive
     * binds the id; by the time a remote endpoint attaches (or the
     * first write happens) the id is final.
     */
    void
    ensureRoutes()
    {
        if (id() == core::kInvalidChannel)
            return;
        std::vector<Host *> owners;
        {
            std::lock_guard<std::recursive_mutex> lock(mutex_);
            for (const Wire &wire : wires_)
                if (std::find(routedHosts_.begin(), routedHosts_.end(),
                              wire.host) == routedHosts_.end()) {
                    routedHosts_.push_back(wire.host);
                    owners.push_back(wire.host);
                }
        }
        for (Host *host : owners)
            host->addRoute(id(), this);
    }

    /** Same-machine leg of a multicast: zero-copy in-memory enqueue
     * (deliberately no channel.payload_copies increment — that
     * counter counts copies performed, and this path performs none).
     * The channel is resolved by id at delivery time, so a stream
     * destroyed with this leg in flight is dropped, not dereferenced. */
    void
    sendLocalLeg(std::size_t from, std::size_t to, const Payload &message,
                 sim::SimTime sentAt)
    {
        if (endpoints_[from].site)
            endpoints_[from].site->run(kCosts.enqueueCycles);
        Host *owner = wires_[from].host;
        const core::ChannelId channel = id();
        owner->machine().executor().schedule(
            kCosts.localLatency,
            [owner, channel, from, to, message, sentAt]() {
                auto *resolved = static_cast<RemoteChannel *>(
                    owner->executive().findChannel(channel));
                if (!resolved)
                    return;
                resolved->deliverLocal(to, from, message, sentAt);
            });
    }

    /** Cross-machine leg: ONE copy into the wire frame, then the
     * sender host's NIC (host path: DMA crossing; device path: pure
     * firmware) puts it on the fabric. */
    void
    sendWireLeg(std::size_t from, std::size_t to, const Payload &message,
                sim::SimTime sentAt)
    {
        Wire &src = wires_[from];
        const std::uint64_t seq = src.txSeq[to]++;

        PayloadBuilder builder;
        ByteWriter writer(builder.buffer());
        writer.writeU64(id());
        writer.writeU32(static_cast<std::uint32_t>(from));
        writer.writeU32(static_cast<std::uint32_t>(to));
        writer.writeU64(seq);
        writer.writeU64(static_cast<std::uint64_t>(sentAt));
        builder.buffer().insert(builder.buffer().end(), message.begin(),
                                message.end());
        remoteMetrics().wireCopies.increment();

        net::Packet packet;
        packet.dst = wires_[to].host->node();
        packet.dstPort = endpoints_[to].site->isHost() ? kFleetHostPort
                                                       : kFleetDevicePort;
        packet.srcPort = endpoints_[from].site->isHost()
                             ? kFleetHostPort
                             : kFleetDevicePort;
        packet.seq = seq;
        packet.payload = builder.seal();

        ++stats_.busCrossings;
        if (endpoints_[from].site)
            endpoints_[from].site->run(kCosts.txDescriptorCycles);
        Status sent = endpoints_[from].site->isHost()
                          ? src.host->nic().sendFromHost(
                                std::move(packet), src.txBuffer)
                          : src.host->nic().sendFromDevice(
                                std::move(packet));
        if (!sent) {
            remoteMetrics().dropped.increment();
            ++stats_.messagesDropped;
        }
    }

    void
    deliverLocal(std::size_t to, std::size_t from, const Payload &message,
                 sim::SimTime sentAt)
    {
        std::lock_guard<std::recursive_mutex> lock(mutex_);
        if (closed_ || to >= endpoints_.size())
            return;
        deliverTo(to, message, from, sentAt);
    }

    /** Inbound frame from the owning host's fabric table (called with
     * that host's fabric lock held — see Host::onFabric). */
    void
    deliverWire(std::size_t to, std::size_t from, std::uint64_t seq,
                sim::SimTime sentAt, const Payload &body)
    {
        std::lock_guard<std::recursive_mutex> lock(mutex_);
        if (closed_ || to >= endpoints_.size() || from >= endpoints_.size())
            return;
        Wire &dst = wires_[to];
        if (seq != dst.rxSeen[from])
            remoteMetrics().seqGaps.increment();
        dst.rxSeen[from] = seq + 1;
        if (endpoints_[to].site)
            endpoints_[to].site->run(kCosts.rxDescriptorCycles);
        deliverTo(to, body, from, sentAt);
    }

    Fleet &fleet_;
    Host &home_;
    std::size_t wireLimit_;
    std::recursive_mutex mutex_;
    std::vector<Wire> wires_;
    /** Hosts whose fabric tables carry our id (dtor unregisters). */
    std::vector<Host *> routedHosts_;
};

namespace {

/** Serves cross-machine channel pairs between fleet members. */
class RemoteChannelProvider : public core::ChannelProvider
{
  public:
    RemoteChannelProvider(Fleet &fleet, Host &home)
        : fleet_(fleet), home_(home)
    {
    }

    const std::string &name() const override { return name_; }

    bool
    canServe(const core::ChannelConfig &config,
             core::ExecutionSite &creator,
             core::ExecutionSite *target) const override
    {
        (void)config;
        if (!target)
            return false; // a connectionless channel stays local
        if (&creator.machine() == &target->machine())
            return false; // intra-host belongs to local/dma-ring
        return fleet_.hostOf(creator.machine()) != nullptr &&
               fleet_.hostOf(target->machine()) != nullptr;
    }

    core::ChannelCost
    estimateCost(const core::ChannelConfig &config,
                 core::ExecutionSite &creator,
                 core::ExecutionSite *target,
                 std::size_t bytes) const override
    {
        (void)config;
        (void)creator;
        (void)target;
        const net::NetworkConfig &net = fleet_.config().network;
        core::ChannelCost cost;
        // Uplink + downlink serialization, propagation both ways, the
        // switch, and the DMA/firmware/interrupt overheads on both
        // ends (~6 us on the modeled gigabit testbed).
        cost.perMessageLatency =
            2 * sim::transferTime(bytes + kWireHeaderBytes + 42,
                                  net.linkGbps) +
            2 * net.linkLatency + net.switchLatency +
            sim::microseconds(6);
        cost.throughputGbps = net.linkGbps;
        return cost;
    }

    std::unique_ptr<core::Channel>
    create(const core::ChannelConfig &config,
           core::ExecutionSite &creator) override
    {
        auto channel =
            std::make_unique<RemoteChannel>(config, fleet_, home_);
        channel->connectCreator(creator);
        return channel;
    }

  private:
    Fleet &fleet_;
    Host &home_;
    std::string name_ = "remote";
};

} // namespace

Host::Host(exec::Executor &executor, net::Network &network,
           const FleetConfig &config, std::size_t index)
    : exec_(executor), index_(index),
      name_("host" + std::to_string(index))
{
    hw::MachineConfig machineConfig = config.machine;
    machineConfig.name = name_;
    machineConfig.noiseSeed = config.seed * 1000003 + index * 131 + 1;
    if (config.quietHosts) {
        machineConfig.os.wakeupNoiseSigma = 0;
        machineConfig.os.preemptionProbability = 0.0;
        machineConfig.os.housekeepingJitterSigma = 0;
    }
    machine_ = std::make_unique<hw::Machine>(exec_, machineConfig);
    if (config.backgroundLoad)
        machine_->os().startBackgroundLoad();

    node_ = network.addNode(name_ + "-nic");
    dev::DeviceConfig nicConfig = dev::ProgrammableNic::nicDefaultConfig();
    nicConfig.name = name_ + "-nic";
    nicConfig.noiseSeed = machineConfig.noiseSeed + 7;
    nic_ = std::make_unique<dev::ProgrammableNic>(
        exec_, machine_->bus(), network, node_, nicConfig,
        config.nicCosts);

    runtime_ = std::make_unique<core::Runtime>(*machine_, config.runtime);
    Status attached = runtime_->attachDevice(*nic_);
    if (!attached) {
        LOG_DEBUG << name_
                  << ": nic attach failed: " << attached.error().describe();
    }

    driverSite_ = exec_.addSite(name_ + ".driver", name_);

    // Fabric demux: ONE device-path port and ONE host-path port per
    // host; frames carry the ChannelId, so stream count is unbounded
    // by the 16-bit port space.
    fabricRxBuffer_ = machine_->os().allocRegion(64 * 1024);
    nic_->bindDevicePort(kFleetDevicePort, [this](const net::Packet &p) {
        onFabric(p);
    });
    nic_->bindHostPort(kFleetHostPort, machine_->os(), fabricRxBuffer_,
                       [this](const net::Packet &p) { onFabric(p); });
}

Host::~Host()
{
    nic_->unbindPort(kFleetDevicePort);
    nic_->unbindPort(kFleetHostPort);
}

std::uint64_t
Host::orphanFrames() const
{
    std::lock_guard<std::mutex> lock(fabricMutex_);
    return orphans_;
}

void
Host::addRoute(core::ChannelId id, RemoteChannel *channel)
{
    std::lock_guard<std::mutex> lock(fabricMutex_);
    routes_[id] = channel;
}

void
Host::removeRoute(core::ChannelId id)
{
    std::lock_guard<std::mutex> lock(fabricMutex_);
    routes_.erase(id);
}

void
Host::onFabric(const net::Packet &packet)
{
    ByteReader reader(packet.payload.data(), packet.payload.size());
    auto id = reader.readU64();
    auto from = reader.readU32();
    auto to = reader.readU32();
    auto seq = reader.readU64();
    auto sentAt = reader.readU64();
    if (!id || !from || !to || !seq || !sentAt) {
        LOG_DEBUG << name_ << ": malformed fleet frame ("
                  << packet.payload.size() << " bytes)";
        return;
    }
    const Payload body = packet.payload.slice(
        kWireHeaderBytes, packet.payload.size() - kWireHeaderBytes);

    // Route under the fabric lock and deliver while still holding it:
    // a concurrent destroyChannel blocks in removeRoute until we are
    // done, so the channel cannot be freed under us.
    std::lock_guard<std::mutex> lock(fabricMutex_);
    auto it = routes_.find(id.value());
    if (it == routes_.end()) {
        ++orphans_;
        remoteMetrics().orphans.increment();
        return;
    }
    it->second->deliverWire(to.value(), from.value(), seq.value(),
                            static_cast<sim::SimTime>(sentAt.value()),
                            body);
}

Fleet::Fleet(exec::Executor &executor, FleetConfig config)
    : exec_(executor), config_(std::move(config))
{
    net_ = std::make_unique<net::Network>(exec_, config_.network);
    const std::size_t count = config_.hosts ? config_.hosts : 1;
    hosts_.reserve(count);
    std::vector<std::string> names;
    for (std::size_t i = 0; i < count; ++i) {
        hosts_.push_back(
            std::make_unique<Host>(exec_, *net_, config_, i));
        names.push_back(hosts_.back()->name());
    }
    ring_.rebuild(names, config_.vnodesPerHost);

    // Stitch the shards: cross-host name resolution plus the remote
    // provider, per host.
    for (auto &host : hosts_) {
        host->executive().setRemoteSiteLookup(
            [this](const std::string &name) { return findSite(name); });
        host->executive().registerProvider(
            std::make_unique<RemoteChannelProvider>(*this, *host));
    }
}

Fleet::~Fleet() = default;

Host *
Fleet::hostByName(std::string_view name)
{
    for (auto &host : hosts_)
        if (host->name() == name)
            return host.get();
    return nullptr;
}

Host *
Fleet::hostOf(const hw::Machine &machine)
{
    for (auto &host : hosts_)
        if (&host->machine() == &machine)
            return host.get();
    return nullptr;
}

Host &
Fleet::homeOf(std::string_view key)
{
    Host *host = hostByName(ring_.hostFor(key));
    return host ? *host : *hosts_.front();
}

core::ExecutionSite *
Fleet::findSite(const std::string &name)
{
    if (name == "host")
        return nullptr; // the generic alias never crosses hosts
    for (auto &host : hosts_)
        if (core::ExecutionSite *site = host->runtime().siteByName(name))
            return site;
    return nullptr;
}

} // namespace hydra::fleet
