#include "fleet/placement.hh"

#include <algorithm>

namespace hydra::fleet {

std::uint64_t
placementHash(std::string_view key)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : key) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 1099511628211ull;
    }
    // Raw FNV-1a avalanches poorly in the high bits for short,
    // similar keys ("host0#1" vs "host0#2"), which clumps the vnode
    // points and skews ring arcs >10x. Finish with a murmur3-style
    // mix so the full 64-bit order is uniform.
    hash ^= hash >> 33;
    hash *= 0xff51afd7ed558ccdull;
    hash ^= hash >> 33;
    hash *= 0xc4ceb9fe1a85ec53ull;
    hash ^= hash >> 33;
    return hash;
}

void
PlacementRing::rebuild(const std::vector<std::string> &hosts,
                       std::size_t vnodes)
{
    auto snap = std::make_shared<Snapshot>();
    snap->hosts = hosts;
    snap->points.reserve(hosts.size() * vnodes);
    for (std::uint32_t h = 0; h < hosts.size(); ++h)
        for (std::size_t v = 0; v < vnodes; ++v)
            snap->points.emplace_back(
                placementHash(hosts[h] + "#" + std::to_string(v)), h);
    std::sort(snap->points.begin(), snap->points.end());
    snapshot_.store(std::move(snap), std::memory_order_release);
}

std::string
PlacementRing::hostFor(std::string_view key) const
{
    const auto snap = load();
    if (!snap || snap->points.empty())
        return {};
    const std::uint64_t hash = placementHash(key);
    auto it = std::lower_bound(
        snap->points.begin(), snap->points.end(),
        std::make_pair(hash, std::uint32_t{0}),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    if (it == snap->points.end())
        it = snap->points.begin(); // wrap
    return snap->hosts[it->second];
}

std::size_t
PlacementRing::hostCount() const
{
    const auto snap = load();
    return snap ? snap->hosts.size() : 0;
}

std::size_t
PlacementRing::pointCount() const
{
    const auto snap = load();
    return snap ? snap->points.size() : 0;
}

} // namespace hydra::fleet
