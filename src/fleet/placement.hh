/**
 * @file
 * Consistent-hash channel -> host placement map (DESIGN.md §14).
 *
 * The fleet decides which host a stream lives on by hashing its key
 * onto a ring of virtual nodes. Reads are lock-free: the ring is an
 * immutable snapshot behind an atomic shared_ptr, so per-host load
 * drivers resolve placement concurrently while membership changes
 * (rebuild) swap in a fresh snapshot. Consistent hashing keeps the
 * reshuffle on membership change proportional to 1/N of the keys,
 * which the placement unit test asserts.
 */

#ifndef HYDRA_FLEET_PLACEMENT_HH
#define HYDRA_FLEET_PLACEMENT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hydra::fleet {

/** FNV-1a 64-bit; the ring's only hash (stable across runs). */
std::uint64_t placementHash(std::string_view key);

/** Lock-free-read consistent-hash ring over host names. */
class PlacementRing
{
  public:
    /**
     * Replace the membership. @p vnodes virtual points per host
     * smooth the key distribution (64 keeps the max/min host load
     * ratio under ~1.4 for uniform keys).
     */
    void rebuild(const std::vector<std::string> &hosts,
                 std::size_t vnodes = 64);

    /**
     * Host owning @p key; empty string when the ring is empty.
     * Lock-free: one atomic snapshot load plus a binary search.
     */
    std::string hostFor(std::string_view key) const;

    std::size_t hostCount() const;
    std::size_t pointCount() const;

  private:
    struct Snapshot
    {
        /** (hash, host index), sorted by hash. */
        std::vector<std::pair<std::uint64_t, std::uint32_t>> points;
        std::vector<std::string> hosts;
    };

    std::shared_ptr<const Snapshot>
    load() const
    {
        return snapshot_.load(std::memory_order_acquire);
    }

    std::atomic<std::shared_ptr<const Snapshot>> snapshot_{nullptr};
};

} // namespace hydra::fleet

#endif // HYDRA_FLEET_PLACEMENT_HH
