/**
 * @file
 * Multi-host testbed (DESIGN.md §14): N modeled machines on one
 * shared Ethernet fabric and one Executor.
 *
 * The single-host HYDRA stack composes unchanged: every Host owns a
 * full hw::Machine, a ProgrammableNic on the shared net::Network, and
 * a core::Runtime whose ChannelExecutive is that host's *shard*. The
 * Fleet stitches the shards together:
 *
 *  - a consistent-hash PlacementRing maps stream keys to hosts
 *    (lock-free reads; see placement.hh);
 *  - each shard gets a remote site lookup that resolves any other
 *    host's site names; and
 *  - a "remote" ChannelProvider serves cross-machine channel pairs by
 *    framing messages over the host NICs — exactly one payload copy
 *    at the sender (header + body into the wire buffer, counted as
 *    channel.payload_copies{buffering=wire}); the receive side is a
 *    zero-copy slice of the delivered packet.
 *
 * Wire demultiplexing is QUIC-style: every host binds two well-known
 * fabric ports (device path and host path) and routes inbound frames
 * by the ChannelId carried in the header, so port space never bounds
 * the number of concurrent streams.
 */

#ifndef HYDRA_FLEET_FLEET_HH
#define HYDRA_FLEET_FLEET_HH

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/runtime.hh"
#include "dev/nic.hh"
#include "fleet/placement.hh"
#include "hw/machine.hh"
#include "net/network.hh"

namespace hydra::fleet {

class Fleet;
class RemoteChannel;

/** Fabric port every host NIC answers on (device receive path). */
inline constexpr net::Port kFleetDevicePort = 9100;
/** Fabric port for host-path endpoints (DMA + interrupt on rx). */
inline constexpr net::Port kFleetHostPort = 9101;
/** Remote frame header: id(8) + from(4) + to(4) + seq(8) + sentAt(8). */
inline constexpr std::size_t kWireHeaderBytes = 32;

/** Fleet-wide construction parameters. */
struct FleetConfig
{
    std::size_t hosts = 4;
    /** Shared switched fabric (one Network instance). */
    net::NetworkConfig network;
    /** Per-host machine template; name/noiseSeed are set per host. */
    hw::MachineConfig machine;
    /**
     * Zero the OS noise sources (wakeup jitter, preemption) so scale
     * runs and the determinism check are reproducible; background
     * housekeeping still ticks when backgroundLoad is set.
     */
    bool quietHosts = true;
    bool backgroundLoad = false;
    std::uint64_t seed = 42;
    std::size_t vnodesPerHost = 64;
    dev::NicCosts nicCosts;
    core::RuntimeConfig runtime;
};

/**
 * One member machine: hw::Machine + ProgrammableNic + core::Runtime
 * (whose executive is this host's shard), plus the fabric routing
 * table inbound remote frames resolve against.
 */
class Host
{
  public:
    Host(exec::Executor &executor, net::Network &network,
         const FleetConfig &config, std::size_t index);
    ~Host();

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    const std::string &name() const { return name_; }
    std::size_t index() const { return index_; }
    hw::Machine &machine() { return *machine_; }
    core::Runtime &runtime() { return *runtime_; }
    dev::ProgrammableNic &nic() { return *nic_; }
    net::NodeId node() const { return node_; }
    core::ChannelExecutive &executive() { return runtime_->executive(); }

    /**
     * Worker site for this host's load driver (threaded engine: a
     * dedicated thread; sim engine: a named zero-delay lane). Not a
     * model CPU — it carries no attribution.
     */
    exec::SiteId driverSite() const { return driverSite_; }

    /** Frames whose ChannelId no longer routes (destroyed mid-flight). */
    std::uint64_t orphanFrames() const;

  private:
    friend class Fleet;
    friend class RemoteChannel;

    /** Register/remove a channel in the inbound routing table. */
    void addRoute(core::ChannelId id, RemoteChannel *channel);
    void removeRoute(core::ChannelId id);

    /** Both fabric ports land here; demux by the frame's ChannelId. */
    void onFabric(const net::Packet &packet);

    exec::Executor &exec_;
    std::size_t index_;
    std::string name_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<dev::ProgrammableNic> nic_;
    std::unique_ptr<core::Runtime> runtime_;
    net::NodeId node_ = net::kInvalidNode;
    hw::Addr fabricRxBuffer_ = 0;
    exec::SiteId driverSite_ = 0;

    /**
     * Inbound route table. Held across delivery so a concurrent
     * destroy (removeRoute in ~RemoteChannel) cannot free the channel
     * under the handler; consequently fabric handlers must not
     * destroy channels of the same host inline.
     */
    mutable std::mutex fabricMutex_;
    std::unordered_map<core::ChannelId, RemoteChannel *> routes_;
    std::uint64_t orphans_ = 0;
};

/** N hosts on one fabric + one executor, stitched into a fleet. */
class Fleet
{
  public:
    explicit Fleet(exec::Executor &executor, FleetConfig config = {});
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    exec::Executor &executor() { return exec_; }
    net::Network &network() { return *net_; }
    const FleetConfig &config() const { return config_; }

    std::size_t hostCount() const { return hosts_.size(); }
    Host &host(std::size_t index) { return *hosts_[index]; }
    Host *hostByName(std::string_view name);
    /** Fleet member owning @p machine; nullptr for outside machines. */
    Host *hostOf(const hw::Machine &machine);

    const PlacementRing &placement() const { return ring_; }
    /** Consistent-hash home of a stream key. */
    Host &homeOf(std::string_view key);

    /**
     * Resolve a site name across every host (the shards' remote
     * lookup): "host2.host", "host2-nic", or any attached device
     * name. The generic aliases ("host") stay host-local.
     */
    core::ExecutionSite *findSite(const std::string &name);

  private:
    exec::Executor &exec_;
    FleetConfig config_;
    std::unique_ptr<net::Network> net_;
    std::vector<std::unique_ptr<Host>> hosts_;
    PlacementRing ring_;
};

} // namespace hydra::fleet

#endif // HYDRA_FLEET_FLEET_HH
