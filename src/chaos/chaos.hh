/**
 * @file
 * Seeded, deterministic fault-injection engine.
 *
 * Chaos is opt-in: every binary runs with the engine disabled unless
 * `--chaos SEED[:spec]` configures it. Hot paths pay exactly one
 * relaxed atomic load while disabled. When enabled, every decision
 * point draws from a per-fault-class Rng stream (seed XOR a class
 * constant), so adding a new fault class never perturbs the draws of
 * an existing one and a seeded run replays byte-for-byte under the
 * deterministic SimExecutor.
 *
 * Fault classes:
 *  - packet drop / duplicate / corrupt, injected in net::Network;
 *  - slow or stalled executor sites (SimExecutor delays the posted
 *    work in virtual time; ThreadedExecutor naps the worker thread);
 *  - payload-pool exhaustion and ring overflow, injected in the
 *    channel providers;
 *  - scheduled device resets (`reset@MS=device[/downtime-ms]`),
 *    executed by the harness against `dev::Device::reset()`.
 *
 * Every injected fault increments `chaos.injected{fault=...}` and
 * emits a trace instant on the "chaos" lane; every successful
 * recovery (offcode restart completing, backlog replayed) counts in
 * `chaos.recoveries`.
 */

#ifndef HYDRA_CHAOS_CHAOS_HH
#define HYDRA_CHAOS_CHAOS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "sim/time.hh"

namespace hydra::chaos {

/** One scheduled device reset: `reset@MS=device[/downtime-ms]`. */
struct ScheduledReset
{
    sim::SimTime at = 0;        ///< virtual time of the reset
    std::string device;         ///< dev::Device name to reset
    sim::SimTime downtime = sim::milliseconds(5);
};

/**
 * Parsed `--chaos SEED[:k=v,...]` configuration. All probabilities
 * are per-decision-point and must lie in [0, 1].
 */
struct ChaosSpec
{
    std::uint64_t seed = 0;
    double packetDrop = 0.0;      ///< drop=P   on net::Network::send
    double packetDuplicate = 0.0; ///< dup=P    deliver the packet twice
    double packetCorrupt = 0.0;   ///< corrupt=P flip one payload byte
    double workerSlow = 0.0;      ///< slow=P   delay one posted task
    double workerStall = 0.0;     ///< stall=P  wedge a site for stallTime
    double poolExhaust = 0.0;     ///< poolfail=P channel write sees OOM
    double ringOverflow = 0.0;    ///< ringfull=P transport sees 0 credits
    sim::SimTime slowDelay = sim::microseconds(200); ///< slow-ms=N
    sim::SimTime stallTime = sim::milliseconds(2);   ///< stall-ms=N
    std::vector<ScheduledReset> resets;              ///< reset@MS=dev[/ms]
};

/**
 * Parse "SEED[:k=v,...]". SEED is a non-negative integer; keys are
 * drop, dup, corrupt, slow, stall, poolfail, ringfull (probabilities,
 * rejected outside [0,1] or non-numeric), slow-ms / stall-ms
 * (positive durations), and reset@MS=device[/downtime-ms]
 * (repeatable). Returns InvalidArgument with a message naming the
 * offending token otherwise.
 */
Result<ChaosSpec> parseChaosSpec(const std::string &text);

/**
 * Process-wide fault injector. Disabled by default; configure() arms
 * it. Decision points take the current virtual time so the injected
 * fault can be traced at the instant it fired.
 */
class ChaosEngine
{
  public:
    static ChaosEngine &instance();

    /** Arm the engine with @p spec (re-seeds every fault stream). */
    void configure(const ChaosSpec &spec);
    /** Disarm; decision points return false again. */
    void disable();
    /** One relaxed load — the only cost on hot paths while disarmed. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Copy of the active spec (harness reads the reset schedule). */
    ChaosSpec spec() const;

    // Decision points. Each returns true when the fault fires and, on
    // fire, has already counted + traced it. All are safe to call
    // while disarmed (they return false without drawing).
    bool dropPacket(sim::SimTime now);
    bool duplicatePacket(sim::SimTime now);
    bool corruptPacket(sim::SimTime now);
    /** Which payload byte to flip; only after corruptPacket() fired. */
    std::size_t corruptByteIndex(std::size_t payloadSize);
    /** Delay a posted task by @p delay of virtual time. */
    bool slowPost(sim::SimTime now, sim::SimTime &delay);
    /** Wedge a whole site until now + @p duration. */
    bool stallSite(sim::SimTime now, sim::SimTime &duration);
    bool exhaustPool(sim::SimTime now);
    bool overflowRing(sim::SimTime now);

    /** Count a fault injected by a caller (e.g. a scheduled reset). */
    void recordFault(const char *fault, sim::SimTime now);
    /** Count a completed recovery in `chaos.recoveries{kind=...}`. */
    static void recordRecovery(const char *kind);

    /** Total faults injected since configure(). */
    std::uint64_t injected() const;

  private:
    ChaosEngine() = default;

    enum Stream {
        kDrop = 0,
        kDuplicate,
        kCorrupt,
        kSlow,
        kStall,
        kPool,
        kRing,
        kStreamCount
    };

    bool draw(Stream stream, double ChaosSpec::*probability);
    void note(const char *fault, sim::SimTime now);

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> injected_{0};
    mutable std::mutex mutex_;
    ChaosSpec spec_;
    Rng streams_[kStreamCount];
};

} // namespace hydra::chaos

#endif // HYDRA_CHAOS_CHAOS_HH
