#include "chaos/chaos.hh"

#include <cstdlib>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::chaos {
namespace {

// Stream seeds are derived as spec.seed XOR a per-class constant, so
// each fault class consumes an independent xoshiro sequence and new
// classes can be added without perturbing existing seeded runs.
constexpr std::uint64_t kStreamSalt[] = {
    0x64726f70ull << 16, // drop
    0x64757065ull << 16, // dupe
    0x636f7272ull << 16, // corr
    0x736c6f77ull << 16, // slow
    0x7374616cull << 16, // stal
    0x706f6f6cull << 16, // pool
    0x72696e67ull << 16, // ring
};

bool
parseProbability(const std::string &value, double &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return false;
    if (!(parsed >= 0.0 && parsed <= 1.0))
        return false;
    out = parsed;
    return true;
}

bool
parsePositiveMs(const std::string &value, sim::SimTime &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return false;
    if (!(parsed > 0.0))
        return false;
    out = static_cast<sim::SimTime>(parsed *
                                    static_cast<double>(sim::kMillisecond));
    return out > 0;
}

bool
parseUint(const std::string &value, std::uint64_t &out)
{
    if (value.empty())
        return false;
    // strtoull silently negates "-1"; digits only, no sign, no space.
    for (const char c : value)
        if (c < '0' || c > '9')
            return false;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    out = parsed;
    return true;
}

} // namespace

Result<ChaosSpec>
parseChaosSpec(const std::string &text)
{
    ChaosSpec spec;
    const std::size_t colon = text.find(':');
    const std::string seedText = text.substr(0, colon);
    if (!parseUint(seedText, spec.seed))
        return {ErrorCode::InvalidArgument,
                "--chaos seed must be a non-negative integer, got '" +
                    seedText + "'"};
    if (colon == std::string::npos)
        return spec;

    std::string rest = text.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string token = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (token.empty())
            continue;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            return {ErrorCode::InvalidArgument,
                    "--chaos token '" + token + "' is not key=value"};
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);

        if (key.rfind("reset@", 0) == 0) {
            ScheduledReset reset;
            sim::SimTime at = 0;
            if (!parsePositiveMs(key.substr(6), at))
                return {ErrorCode::InvalidArgument,
                        "--chaos reset time in '" + token +
                            "' must be a positive ms value"};
            reset.at = at;
            const std::size_t slash = value.find('/');
            reset.device = value.substr(0, slash);
            if (reset.device.empty())
                return {ErrorCode::InvalidArgument,
                        "--chaos reset in '" + token + "' names no device"};
            if (slash != std::string::npos &&
                !parsePositiveMs(value.substr(slash + 1), reset.downtime))
                return {ErrorCode::InvalidArgument,
                        "--chaos reset downtime in '" + token +
                            "' must be a positive ms value"};
            spec.resets.push_back(std::move(reset));
            continue;
        }

        double *probability = nullptr;
        if (key == "drop")
            probability = &spec.packetDrop;
        else if (key == "dup")
            probability = &spec.packetDuplicate;
        else if (key == "corrupt")
            probability = &spec.packetCorrupt;
        else if (key == "slow")
            probability = &spec.workerSlow;
        else if (key == "stall")
            probability = &spec.workerStall;
        else if (key == "poolfail")
            probability = &spec.poolExhaust;
        else if (key == "ringfull")
            probability = &spec.ringOverflow;
        if (probability != nullptr) {
            if (!parseProbability(value, *probability))
                return {ErrorCode::InvalidArgument,
                        "--chaos " + key + " must be a probability in " +
                            "[0,1], got '" + value + "'"};
            continue;
        }
        if (key == "slow-ms") {
            if (!parsePositiveMs(value, spec.slowDelay))
                return {ErrorCode::InvalidArgument,
                        "--chaos slow-ms must be a positive ms value, " +
                            std::string("got '") + value + "'"};
            continue;
        }
        if (key == "stall-ms") {
            if (!parsePositiveMs(value, spec.stallTime))
                return {ErrorCode::InvalidArgument,
                        "--chaos stall-ms must be a positive ms value, " +
                            std::string("got '") + value + "'"};
            continue;
        }
        return {ErrorCode::InvalidArgument,
                "--chaos unknown key '" + key + "'"};
    }
    return spec;
}

ChaosEngine &
ChaosEngine::instance()
{
    static ChaosEngine engine;
    return engine;
}

void
ChaosEngine::configure(const ChaosSpec &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spec_ = spec;
    for (int i = 0; i < kStreamCount; ++i)
        streams_[i] = Rng(spec.seed ^ kStreamSalt[i]);
    injected_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
ChaosEngine::disable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
}

ChaosSpec
ChaosEngine::spec() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spec_;
}

bool
ChaosEngine::draw(Stream stream, double ChaosSpec::*probability)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const double p = spec_.*probability;
    if (p <= 0.0)
        return false;
    return streams_[stream].chance(p);
}

void
ChaosEngine::note(const char *fault, sim::SimTime now)
{
    injected_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("chaos.injected", {{"fault", fault}}).increment();
    if (HYDRA_TRACE_ACTIVE()) {
        const obs::TraceLane lane =
            obs::Tracer::instance().lane("chaos", "injector");
        HYDRA_TRACE_INSTANT(lane, std::string("chaos.") + fault, "chaos",
                            now);
    }
}

bool
ChaosEngine::dropPacket(sim::SimTime now)
{
    if (!enabled() || !draw(kDrop, &ChaosSpec::packetDrop))
        return false;
    note("packet_drop", now);
    return true;
}

bool
ChaosEngine::duplicatePacket(sim::SimTime now)
{
    if (!enabled() || !draw(kDuplicate, &ChaosSpec::packetDuplicate))
        return false;
    note("packet_duplicate", now);
    return true;
}

bool
ChaosEngine::corruptPacket(sim::SimTime now)
{
    if (!enabled() || !draw(kCorrupt, &ChaosSpec::packetCorrupt))
        return false;
    note("packet_corrupt", now);
    return true;
}

std::size_t
ChaosEngine::corruptByteIndex(std::size_t payloadSize)
{
    if (payloadSize == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::size_t>(streams_[kCorrupt].uniformInt(
        0, static_cast<std::int64_t>(payloadSize) - 1));
}

bool
ChaosEngine::slowPost(sim::SimTime now, sim::SimTime &delay)
{
    if (!enabled() || !draw(kSlow, &ChaosSpec::workerSlow))
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        delay = spec_.slowDelay;
    }
    note("worker_slow", now);
    return true;
}

bool
ChaosEngine::stallSite(sim::SimTime now, sim::SimTime &duration)
{
    if (!enabled() || !draw(kStall, &ChaosSpec::workerStall))
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        duration = spec_.stallTime;
    }
    note("worker_stall", now);
    return true;
}

bool
ChaosEngine::exhaustPool(sim::SimTime now)
{
    if (!enabled() || !draw(kPool, &ChaosSpec::poolExhaust))
        return false;
    note("pool_exhausted", now);
    return true;
}

bool
ChaosEngine::overflowRing(sim::SimTime now)
{
    if (!enabled() || !draw(kRing, &ChaosSpec::ringOverflow))
        return false;
    note("ring_overflow", now);
    return true;
}

void
ChaosEngine::recordFault(const char *fault, sim::SimTime now)
{
    note(fault, now);
}

void
ChaosEngine::recordRecovery(const char *kind)
{
    obs::counter("chaos.recoveries", {{"kind", kind}}).increment();
}

std::uint64_t
ChaosEngine::injected() const
{
    return injected_.load(std::memory_order_relaxed);
}

} // namespace hydra::chaos
