#include "hw/cache.hh"

#include <cassert>

namespace hydra::hw {

CacheModel::CacheModel(std::size_t capacity_bytes, std::size_t line_bytes,
                       std::size_t ways)
    : lineBytes_(line_bytes)
{
    assert(line_bytes > 0 && ways > 0);
    assert(capacity_bytes % (line_bytes * ways) == 0);
    const std::size_t num_sets = capacity_bytes / (line_bytes * ways);
    sets_.resize(num_sets);
    for (auto &set : sets_)
        set.ways.resize(ways);
}

bool
CacheModel::touchLine(Addr line_addr, bool is_write)
{
    (void)is_write; // write-allocate: reads and writes behave alike here
    const std::size_t set_idx =
        static_cast<std::size_t>(line_addr / lineBytes_) % sets_.size();
    const Addr tag = line_addr / lineBytes_;
    Set &set = sets_[set_idx];

    ++useClock_;
    for (auto &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            return false; // hit
        }
    }

    // Miss: fill into the LRU way.
    Line *victim = &set.ways[0];
    for (auto &line : set.ways) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return true;
}

void
CacheModel::access(Addr addr, std::size_t size, bool is_write)
{
    if (size == 0)
        return;
    const Addr first = addr / lineBytes_ * lineBytes_;
    const Addr last = (addr + size - 1) / lineBytes_ * lineBytes_;
    for (Addr line = first; line <= last; line += lineBytes_) {
        ++totals_.accesses;
        if (touchLine(line, is_write))
            ++totals_.misses;
    }
}

void
CacheModel::snoopInvalidate(Addr addr, std::size_t size)
{
    if (size == 0)
        return;
    const Addr first = addr / lineBytes_ * lineBytes_;
    const Addr last = (addr + size - 1) / lineBytes_ * lineBytes_;
    for (Addr line_addr = first; line_addr <= last;
         line_addr += lineBytes_) {
        const std::size_t set_idx =
            static_cast<std::size_t>(line_addr / lineBytes_) % sets_.size();
        const Addr tag = line_addr / lineBytes_;
        for (auto &line : sets_[set_idx].ways) {
            if (line.valid && line.tag == tag) {
                line.valid = false;
                break;
            }
        }
    }
}

CacheStats
CacheModel::windowStats() const
{
    CacheStats out;
    out.accesses = totals_.accesses - windowBase_.accesses;
    out.misses = totals_.misses - windowBase_.misses;
    return out;
}

void
CacheModel::beginWindow()
{
    windowBase_ = totals_;
}

void
CacheModel::flush()
{
    for (auto &set : sets_)
        for (auto &line : set.ways)
            line.valid = false;
}

} // namespace hydra::hw
