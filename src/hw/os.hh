/**
 * @file
 * Host operating-system cost model.
 *
 * Charges the host CPU (and pollutes the host L2) for the OS-path
 * operations the paper's evaluation hinges on: syscall entry/exit,
 * kernel/user copies, context switches, interrupt handling, and
 * timer-tick-quantized sleeping (the source of user-space jitter —
 * cf. the paper's reference to Tsafrir et al. on OS clock-tick
 * noise). Also generates the "idle system" background load that the
 * paper's tables use as the baseline (≈2.9 % CPU).
 */

#ifndef HYDRA_HW_OS_HH
#define HYDRA_HW_OS_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "hw/cache.hh"
#include "hw/cpu.hh"
#include "exec/executor.hh"
#include "sim/time.hh"

namespace hydra::hw {

/** Tunable cost constants for the OS model. */
struct OsConfig
{
    /** Scheduler tick period (Linux 2.6 HZ=1000 → 1 ms). */
    sim::SimTime tickPeriod = sim::milliseconds(1);

    /** Cycles charged per syscall entry/exit pair. */
    std::uint64_t syscallCycles = 1500;

    /** Cycles charged per context switch. */
    std::uint64_t contextSwitchCycles = 6000;

    /** Cache footprint a context switch drags through L2 (bytes). */
    std::size_t contextSwitchFootprint = 2 * 1024;

    /** Cycles charged per hardware interrupt. */
    std::uint64_t interruptCycles = 9000;

    /** Fixed + per-byte copy cost. */
    std::uint64_t copyBaseCycles = 300;
    double copyCyclesPerByte = 1.0;

    /**
     * Run-queue delay applied after a timer wakeup: half-normal with
     * this sigma. Tick quantization supplies the rest of the jitter.
     */
    sim::SimTime wakeupNoiseSigma = sim::microseconds(380);

    /**
     * Probability that a wakeup loses an extra tick to a competing
     * task (preemption by housekeeping/daemons).
     */
    double preemptionProbability = 0.07;

    /**
     * Background housekeeping (tick handler + daemons), expressed as
     * busy time per tick. 28.6 us per 1 ms tick ≈ 2.86 % CPU, the
     * paper's idle baseline.
     */
    sim::SimTime housekeepingPerTick = sim::nanoseconds(28600);
    sim::SimTime housekeepingJitterSigma = sim::nanoseconds(900);

    /** Kernel hot working set touched by housekeeping (mostly hits). */
    std::size_t hotSetBytes = 64 * 1024;

    /** Streaming bytes touched per tick (always missing). */
    std::size_t backgroundStreamPerTick = 1344;

    /** Size of the buffer the background stream cycles through. */
    std::size_t backgroundStreamBytes = 4 * 1024 * 1024;
};

/**
 * The host OS: owns a bump address-space allocator for modeled
 * buffers, charges CPU cycles + cache traffic for kernel paths, and
 * produces tick-quantized wakeups.
 */
class OsKernel
{
  public:
    OsKernel(exec::Executor &executor, Cpu &cpu, CacheModel &l2,
             OsConfig config, std::uint64_t noise_seed);

    const OsConfig &config() const { return config_; }
    Cpu &cpu() { return cpu_; }
    CacheModel &l2() { return l2_; }

    /** Allocate a modeled buffer region; returns its base address. */
    Addr allocRegion(std::size_t bytes);

    /** Charge one syscall; returns CPU completion time. */
    sim::SimTime syscall(std::uint64_t extra_cycles = 0);

    /**
     * Kernel/user copy: charges cycles and touches the cache (read
     * of src, write-allocate of dst).
     */
    sim::SimTime copyBytes(Addr src, Addr dst, std::size_t bytes);

    /** Charge a context switch (cycles + cache pollution). */
    sim::SimTime contextSwitch();

    /** Charge a hardware-interrupt service. */
    sim::SimTime handleInterrupt();

    /**
     * Model of nanosleep-class timer sleeping: the expiry lands on
     * the jiffy after the one containing now+duration (classic timer-
     * wheel semantics: floor to the current jiffy, plus one), then is
     * delayed by run-queue noise and occasional preemption. Returns
     * the absolute time at which the sleeping task actually resumes.
     */
    sim::SimTime wakeAfter(sim::SimTime duration);

    /**
     * Resumption after blocking I/O: the interrupt marks the task
     * runnable, but it is scheduled at the next tick boundary (plus
     * run-queue noise) when other tasks hold the CPU — the OS-noise
     * effect the paper cites (Tsafrir et al.).
     */
    sim::SimTime ioWake();

    /** A device DMA-wrote host memory at [dst, dst+bytes). */
    void dmaDelivered(Addr dst, std::size_t bytes);

    /**
     * Start the idle background load (periodic housekeeping). Runs
     * until the simulation ends.
     */
    void startBackgroundLoad();

  private:
    void housekeepingTick();

    exec::Executor &exec_;
    Cpu &cpu_;
    CacheModel &l2_;
    OsConfig config_;
    hydra::Rng rng_;
    /** Atomic bump pointer: fleet drivers allocate stream buffers
     * concurrently with the coordinator's kernel paths. */
    std::atomic<Addr> nextAddr_{0x1000'0000};
    Addr hotSet_ = 0;
    Addr backgroundStream_ = 0;
    std::size_t streamOffset_ = 0;
    bool backgroundRunning_ = false;
};

} // namespace hydra::hw

#endif // HYDRA_HW_OS_HH
