/**
 * @file
 * Processor models with cycle accounting.
 *
 * A Cpu is a serially-occupied resource: work items acquire it for a
 * duration and it tracks cumulative busy time, from which the paper's
 * CPU-utilization tables (Tables 3 and 4) are computed. The same
 * class models the 2.4 GHz host Pentium IV and the low-clocked
 * firmware processors on peripherals (e.g. an XScale-class core).
 */

#ifndef HYDRA_HW_CPU_HH
#define HYDRA_HW_CPU_HH

#include <atomic>
#include <string>

#include "exec/executor.hh"
#include "sim/time.hh"

namespace hydra::hw {

/** A single hardware execution resource (host core or firmware core). */
class Cpu
{
  public:
    Cpu(exec::Executor &executor, std::string name, double clock_ghz);

    const std::string &name() const { return name_; }
    double clockGhz() const { return clockGhz_; }

    /**
     * Occupy the CPU for @p cycles starting no earlier than now.
     * Returns the absolute completion time (start is delayed past any
     * previously queued work, modeling serial execution).
     */
    sim::SimTime runCycles(std::uint64_t cycles);

    /** Occupy the CPU for a wall-clock duration. */
    sim::SimTime runFor(sim::SimTime duration);

    /** Cumulative busy time since construction. */
    sim::SimTime
    busyTime() const
    {
        return busyTime_.load(std::memory_order_relaxed);
    }

    /** Time at which currently queued work completes. */
    sim::SimTime
    freeAt() const
    {
        return freeAt_.load(std::memory_order_relaxed);
    }

    /**
     * Cumulative busy time clamped to @p now. runFor charges whole
     * durations up front (freeAt_ may lie in the future); occupancy
     * is contiguous up to freeAt_, so the part not yet elapsed is
     * exactly freeAt_ - now. This is the attribution layer's read:
     * busy-so-far never exceeds wall (virtual) time so far.
     */
    sim::SimTime
    busyBefore(sim::SimTime now) const
    {
        const sim::SimTime busy = busyTime();
        const sim::SimTime free = freeAt();
        const sim::SimTime pending = free > now ? free - now : 0;
        return busy > pending ? busy - pending : 0;
    }

    /** Convert cycles to duration at this CPU's clock. */
    sim::SimTime
    cycleTime(std::uint64_t cycles) const
    {
        return sim::cyclesToTime(cycles, clockGhz_);
    }

  private:
    exec::Executor &exec_;
    std::string name_;
    double clockGhz_;
    /**
     * Relaxed atomics: each Cpu has a single writer (its site's
     * thread), but the coordinator reads both fields for CPU
     * attribution while the threaded engine's workers run.
     */
    std::atomic<sim::SimTime> busyTime_{0};
    std::atomic<sim::SimTime> freeAt_{0};
};

/**
 * Samples a Cpu's utilization over fixed windows, as the paper does
 * (samples every 5 s during a 10 minute run).
 */
class CpuMeter
{
  public:
    explicit CpuMeter(const Cpu &cpu);

    /** Begin a new measurement window at the current time. */
    void beginWindow(sim::SimTime now);

    /** Utilization (0..1) of the window ending at @p now. */
    double sample(sim::SimTime now);

  private:
    const Cpu &cpu_;
    sim::SimTime windowStart_ = 0;
    sim::SimTime busyAtStart_ = 0;
};

} // namespace hydra::hw

#endif // HYDRA_HW_CPU_HH
