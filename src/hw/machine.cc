#include "hw/machine.hh"

#include "obs/attribution.hh"

namespace hydra::hw {

Machine::Machine(exec::Executor &executor, MachineConfig config)
    : exec_(executor), name_(config.name)
{
    cpu_ = std::make_unique<Cpu>(exec_, name_ + ".cpu", config.cpuGhz);
    l2_ = std::make_unique<CacheModel>(config.l2Bytes, config.l2LineBytes,
                                       config.l2Ways);
    bus_ = std::make_unique<Bus>(exec_, name_ + ".bus", config.busGbps,
                                 config.busSetupLatency);
    os_ = std::make_unique<OsKernel>(exec_, *cpu_, *l2_, config.os,
                                     config.noiseSeed);
    // The host execution site carries the same name HostSite uses, so
    // attribution and channel spans agree on site identity.
    obs::CpuAttribution::instance().registerSite(
        name_ + ".host",
        [cpu = cpu_.get()](std::uint64_t now) {
            return cpu->busyBefore(now);
        },
        /*isDevice=*/false, exec_.now(), /*host=*/name_);
}

Machine::~Machine()
{
    obs::CpuAttribution::instance().unregisterSite(name_ + ".host");
}

} // namespace hydra::hw
