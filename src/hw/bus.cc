#include "hw/bus.hh"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::hw {

namespace {

struct BusMetrics
{
    obs::Counter &crossings = obs::counter("bus.crossings");
    obs::Counter &bytes = obs::counter("bus.bytes_moved");
    obs::Counter &stalls = obs::counter("bus.contention_stalls");
    obs::LatencyHistogram &stallNs = obs::histogram("bus.stall_ns");
};

BusMetrics &
busMetrics()
{
    static BusMetrics metrics;
    return metrics;
}

} // namespace

Bus::Bus(exec::Executor &executor, std::string name, double bandwidth_gbps,
         sim::SimTime setup_latency)
    : exec_(executor), name_(std::move(name)),
      bandwidthGbps_(bandwidth_gbps), setupLatency_(setup_latency)
{
    assert(bandwidth_gbps > 0.0);
}

void
Bus::transfer(std::uint64_t bytes, Callback done)
{
    const sim::SimTime nowTime = exec_.now();
    const sim::SimTime payload = sim::transferTime(bytes, bandwidthGbps_);
    const sim::SimTime duration = setupLatency_ + payload;
    sim::SimTime start = 0;
    sim::SimTime stalled = 0;
    sim::SimTime fireAt = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        start = std::max(nowTime, freeAt_);
        stalled = start - nowTime;
        freeAt_ = start + duration;
        fireAt = freeAt_;

        ++stats_.transactions;
        stats_.bytesMoved += bytes;
        stats_.busyTime += duration;
        if (stalled > 0) {
            ++stats_.contentionStalls;
            stats_.stallTime += stalled;
        }
    }

    BusMetrics &metrics = busMetrics();
    metrics.crossings.increment();
    metrics.bytes.add(bytes);
    if (stalled > 0) {
        metrics.stalls.increment();
        metrics.stallNs.record(stalled);
    }

    if (HYDRA_TRACE_ACTIVE()) {
        auto &tracer = obs::Tracer::instance();
        // "server.bus" -> process "server", thread "bus".
        const auto dot = name_.find('.');
        const std::string process =
            dot == std::string::npos ? name_ : name_.substr(0, dot);
        const std::string thread =
            dot == std::string::npos ? "bus" : name_.substr(dot + 1);
        tracer.complete(tracer.lane(process, thread), "bus.xfer", "bus",
                        start, duration);
    }

    exec_.scheduleAt(fireAt, std::move(done));
}

sim::SimTime
Bus::estimateCompletion(std::uint64_t bytes) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const sim::SimTime start = std::max(exec_.now(), freeAt_);
    return start + setupLatency_ + sim::transferTime(bytes, bandwidthGbps_);
}

BusStats
Bus::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

DmaEngine::DmaEngine(exec::Executor &executor, Bus &bus,
                     sim::SimTime per_descriptor_cost, std::string owner)
    : exec_(executor), bus_(bus), perDescriptorCost_(per_descriptor_cost)
{
    if (!owner.empty())
        transferNs_ = &obs::histogram("dma.transfer_ns",
                                      {{"device", std::move(owner)}});
}

void
DmaEngine::start(std::uint64_t bytes, Bus::Callback done)
{
    ++transfers_;
    const sim::SimTime startedAt = exec_.now();
    // Descriptor fetch/setup happens on the device before the payload
    // crosses the bus.
    exec_.schedule(
        perDescriptorCost_,
        [this, bytes, startedAt, done = std::move(done)]() mutable {
            bus_.transfer(
                bytes,
                [this, startedAt, done = std::move(done)]() mutable {
                    if (transferNs_)
                        transferNs_->record(exec_.now() - startedAt);
                    done();
                });
        });
}

} // namespace hydra::hw
