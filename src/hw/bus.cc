#include "hw/bus.hh"

#include <algorithm>
#include <cassert>

namespace hydra::hw {

Bus::Bus(sim::Simulator &simulator, std::string name, double bandwidth_gbps,
         sim::SimTime setup_latency)
    : sim_(simulator), name_(std::move(name)),
      bandwidthGbps_(bandwidth_gbps), setupLatency_(setup_latency)
{
    assert(bandwidth_gbps > 0.0);
}

void
Bus::transfer(std::uint64_t bytes, Callback done)
{
    const sim::SimTime start = std::max(sim_.now(), freeAt_);
    const sim::SimTime payload = sim::transferTime(bytes, bandwidthGbps_);
    const sim::SimTime duration = setupLatency_ + payload;
    freeAt_ = start + duration;

    ++stats_.transactions;
    stats_.bytesMoved += bytes;
    stats_.busyTime += duration;

    sim_.scheduleAt(freeAt_, std::move(done));
}

sim::SimTime
Bus::estimateCompletion(std::uint64_t bytes) const
{
    const sim::SimTime start = std::max(sim_.now(), freeAt_);
    return start + setupLatency_ + sim::transferTime(bytes, bandwidthGbps_);
}

DmaEngine::DmaEngine(sim::Simulator &simulator, Bus &bus,
                     sim::SimTime per_descriptor_cost)
    : sim_(simulator), bus_(bus), perDescriptorCost_(per_descriptor_cost)
{
}

void
DmaEngine::start(std::uint64_t bytes, Bus::Callback done)
{
    ++transfers_;
    // Descriptor fetch/setup happens on the device before the payload
    // crosses the bus.
    sim_.schedule(perDescriptorCost_,
                  [this, bytes, done = std::move(done)]() mutable {
                      bus_.transfer(bytes, std::move(done));
                  });
}

} // namespace hydra::hw
