#include "hw/cpu.hh"

#include <algorithm>
#include <cassert>

namespace hydra::hw {

Cpu::Cpu(exec::Executor &executor, std::string name, double clock_ghz)
    : exec_(executor), name_(std::move(name)), clockGhz_(clock_ghz)
{
    assert(clock_ghz > 0.0);
}

sim::SimTime
Cpu::runCycles(std::uint64_t cycles)
{
    return runFor(cycleTime(cycles));
}

sim::SimTime
Cpu::runFor(sim::SimTime duration)
{
    const sim::SimTime start = std::max(exec_.now(), freeAt());
    const sim::SimTime done = start + duration;
    freeAt_.store(done, std::memory_order_relaxed);
    busyTime_.fetch_add(duration, std::memory_order_relaxed);
    return done;
}

CpuMeter::CpuMeter(const Cpu &cpu) : cpu_(cpu) {}

void
CpuMeter::beginWindow(sim::SimTime now)
{
    windowStart_ = now;
    busyAtStart_ = cpu_.busyTime();
}

double
CpuMeter::sample(sim::SimTime now)
{
    if (now <= windowStart_)
        return 0.0;
    const auto busy =
        static_cast<double>(cpu_.busyTime() - busyAtStart_);
    const auto span = static_cast<double>(now - windowStart_);
    beginWindow(now);
    return std::min(1.0, busy / span);
}

} // namespace hydra::hw
