/**
 * @file
 * Trace-driven set-associative cache model.
 *
 * Used as the host L2 (256 kB in the paper's testbed) to reproduce
 * Fig. 10: host-side data copies stream through the cache and evict
 * resident lines, while device DMA bypasses the cache entirely (it
 * only snoop-invalidates the lines it overwrites).
 */

#ifndef HYDRA_HW_CACHE_HH
#define HYDRA_HW_CACHE_HH

#include <cstdint>
#include <vector>

namespace hydra::hw {

/** Physical-ish address within the modeled machine. */
using Addr = std::uint64_t;

/** Cache access statistics over a measurement window. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** Set-associative LRU cache with write-allocate policy. */
class CacheModel
{
  public:
    /**
     * @param capacity_bytes Total capacity (e.g. 256 kB).
     * @param line_bytes Line size (e.g. 64 B).
     * @param ways Associativity (e.g. 8).
     */
    CacheModel(std::size_t capacity_bytes, std::size_t line_bytes,
               std::size_t ways);

    /** CPU access to [addr, addr+size); read or write. */
    void access(Addr addr, std::size_t size, bool is_write);

    /** Device DMA overwrote host memory: invalidate covered lines. */
    void snoopInvalidate(Addr addr, std::size_t size);

    /** Running totals since construction. */
    const CacheStats &totals() const { return totals_; }

    /** Stats accumulated since the last beginWindow() call. */
    CacheStats windowStats() const;

    /** Start a new measurement window (paper samples every 5 s). */
    void beginWindow();

    /** Drop all cached lines (e.g. between benchmark scenarios). */
    void flush();

    std::size_t lineBytes() const { return lineBytes_; }
    std::size_t numSets() const { return sets_.size(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    struct Set
    {
        std::vector<Line> ways;
    };

    /** Touch one line; returns true on miss. */
    bool touchLine(Addr line_addr, bool is_write);

    std::size_t lineBytes_;
    std::vector<Set> sets_;
    std::uint64_t useClock_ = 0;
    CacheStats totals_;
    CacheStats windowBase_;
};

} // namespace hydra::hw

#endif // HYDRA_HW_CACHE_HH
