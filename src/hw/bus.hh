/**
 * @file
 * Shared I/O interconnect (PCI-class bus) and DMA engine models.
 *
 * Bus crossings are the central currency of the paper's layout
 * arguments: Gang/Pull constraints exist to minimize them. The Bus
 * therefore counts every transaction and serializes transfers at a
 * configured bandwidth with a per-transaction setup latency.
 */

#ifndef HYDRA_HW_BUS_HH
#define HYDRA_HW_BUS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "exec/executor.hh"
#include "sim/time.hh"

namespace hydra::obs {
class Histogram;
} // namespace hydra::obs

namespace hydra::hw {

/** Aggregate counters exposed for tests and benches. */
struct BusStats
{
    std::uint64_t transactions = 0;
    std::uint64_t bytesMoved = 0;
    sim::SimTime busyTime = 0;
    /** Transactions that waited for an in-flight transfer. */
    std::uint64_t contentionStalls = 0;
    /** Total time transactions spent waiting for the bus. */
    sim::SimTime stallTime = 0;
};

/** Shared interconnect: serializes transfers, counts crossings. */
class Bus
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param bandwidth_gbps Payload bandwidth in gigabits per second.
     * @param setup_latency Fixed per-transaction arbitration cost.
     */
    Bus(exec::Executor &executor, std::string name, double bandwidth_gbps,
        sim::SimTime setup_latency);

    /**
     * Queue a transfer of @p bytes; @p done fires when the payload has
     * fully crossed the bus. Transfers are serviced FIFO.
     */
    void transfer(std::uint64_t bytes, Callback done);

    /** Completion time of a transfer queued now (without queuing it). */
    sim::SimTime estimateCompletion(std::uint64_t bytes) const;

    /** Snapshot of the counters (safe while transfers run). */
    BusStats stats() const;
    const std::string &name() const { return name_; }
    double bandwidthGbps() const { return bandwidthGbps_; }

  private:
    exec::Executor &exec_;
    std::string name_;
    double bandwidthGbps_;
    sim::SimTime setupLatency_;
    /**
     * A real bus is an arbiter: in a fleet, a host's driver thread
     * (remote channel sends) and the coordinator (DMA completions,
     * intra-host rings) both queue transfers concurrently, so the
     * free-time bookkeeping serializes under a lock. The critical
     * section is a few integer updates; the completion callback is
     * scheduled outside it.
     */
    mutable std::mutex mutex_;
    sim::SimTime freeAt_ = 0;
    BusStats stats_;
};

/**
 * Bus-mastering DMA engine owned by a device: moves data between
 * device memory and host memory in a single bus crossing, optionally
 * snoop-invalidating the host cache (handled by the caller).
 *
 * When constructed with an owner name, the engine records each
 * transfer's start->completion time (descriptor fetch + bus crossing,
 * including contention stalls) into `dma.transfer_ns{device=owner}`.
 */
class DmaEngine
{
  public:
    DmaEngine(exec::Executor &executor, Bus &bus,
              sim::SimTime per_descriptor_cost, std::string owner = {});

    /** Start a DMA of @p bytes; @p done fires at completion. */
    void start(std::uint64_t bytes, Bus::Callback done);

    std::uint64_t
    transfersStarted() const
    {
        return transfers_.load(std::memory_order_relaxed);
    }

  private:
    exec::Executor &exec_;
    Bus &bus_;
    sim::SimTime perDescriptorCost_;
    /** Atomic: fleet driver threads start DMAs concurrently. */
    std::atomic<std::uint64_t> transfers_{0};
    /** `dma.transfer_ns{device=owner}`; nullptr when anonymous. */
    obs::Histogram *transferNs_ = nullptr;
};

} // namespace hydra::hw

#endif // HYDRA_HW_BUS_HH
