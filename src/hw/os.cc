#include "hw/os.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hydra::hw {

OsKernel::OsKernel(exec::Executor &executor, Cpu &cpu, CacheModel &l2,
                   OsConfig config, std::uint64_t noise_seed)
    : exec_(executor), cpu_(cpu), l2_(l2), config_(config), rng_(noise_seed)
{
    hotSet_ = allocRegion(config_.hotSetBytes);
    backgroundStream_ = allocRegion(config_.backgroundStreamBytes);
}

Addr
OsKernel::allocRegion(std::size_t bytes)
{
    // Keep regions line-aligned and non-adjacent so cache interactions
    // between unrelated buffers stay intentional.
    const std::size_t rounded = (bytes + 4095) / 4096 * 4096 + 4096;
    return nextAddr_.fetch_add(rounded, std::memory_order_relaxed);
}

sim::SimTime
OsKernel::syscall(std::uint64_t extra_cycles)
{
    return cpu_.runCycles(config_.syscallCycles + extra_cycles);
}

sim::SimTime
OsKernel::copyBytes(Addr src, Addr dst, std::size_t bytes)
{
    l2_.access(src, bytes, false);
    l2_.access(dst, bytes, true);
    const auto cycles =
        config_.copyBaseCycles +
        static_cast<std::uint64_t>(config_.copyCyclesPerByte *
                                   static_cast<double>(bytes));
    return cpu_.runCycles(cycles);
}

sim::SimTime
OsKernel::contextSwitch()
{
    // A switch drags the incoming task's state through the cache.
    l2_.access(hotSet_, config_.contextSwitchFootprint, false);
    return cpu_.runCycles(config_.contextSwitchCycles);
}

sim::SimTime
OsKernel::handleInterrupt()
{
    return cpu_.runCycles(config_.interruptCycles);
}

sim::SimTime
OsKernel::wakeAfter(sim::SimTime duration)
{
    const sim::SimTime now = exec_.now();
    const sim::SimTime earliest = now + duration;
    // Timer-wheel semantics: the timer fires on the jiffy after the
    // one containing the expiry instant (floor + 1).
    const sim::SimTime tick = config_.tickPeriod;
    sim::SimTime wake = earliest / tick * tick + tick;
    // Occasionally a competing task holds the CPU for a whole tick.
    if (rng_.chance(config_.preemptionProbability))
        wake += tick;
    // Run-queue delay: half-normal noise.
    const double noise = std::abs(
        rng_.normal(0.0, static_cast<double>(config_.wakeupNoiseSigma)));
    wake += static_cast<sim::SimTime>(noise);
    return wake;
}

sim::SimTime
OsKernel::ioWake()
{
    const sim::SimTime now = exec_.now();
    const sim::SimTime tick = config_.tickPeriod;
    sim::SimTime wake = now / tick * tick + tick;
    if (rng_.chance(config_.preemptionProbability))
        wake += tick;
    const double noise = std::abs(
        rng_.normal(0.0, static_cast<double>(config_.wakeupNoiseSigma)));
    wake += static_cast<sim::SimTime>(noise);
    return wake;
}

void
OsKernel::dmaDelivered(Addr dst, std::size_t bytes)
{
    l2_.snoopInvalidate(dst, bytes);
}

void
OsKernel::startBackgroundLoad()
{
    if (backgroundRunning_)
        return;
    backgroundRunning_ = true;
    exec_.schedulePeriodic(config_.tickPeriod, [this]() {
        housekeepingTick();
        return true;
    });
}

void
OsKernel::housekeepingTick()
{
    // Busy time: tick handler plus daemons, with mild variation.
    const double busy = std::max(
        0.0, rng_.normal(static_cast<double>(config_.housekeepingPerTick),
                         static_cast<double>(
                             config_.housekeepingJitterSigma)));
    cpu_.runFor(static_cast<sim::SimTime>(busy));

    // Cache behaviour: hot kernel set (mostly hits) plus a slowly
    // advancing stream (all misses) to give the idle system a stable
    // non-zero baseline miss rate.
    l2_.access(hotSet_, config_.hotSetBytes, false);
    l2_.access(backgroundStream_ + streamOffset_,
               config_.backgroundStreamPerTick, false);
    streamOffset_ += config_.backgroundStreamPerTick;
    if (streamOffset_ + config_.backgroundStreamPerTick >
        config_.backgroundStreamBytes)
        streamOffset_ = 0;
}

} // namespace hydra::hw
