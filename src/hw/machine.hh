/**
 * @file
 * A modeled host machine: CPU + L2 + I/O bus + OS, mirroring the
 * paper's testbed (2.4 GHz Pentium IV, 256 kB L2, PCI-attached
 * programmable peripherals).
 */

#ifndef HYDRA_HW_MACHINE_HH
#define HYDRA_HW_MACHINE_HH

#include <memory>
#include <string>

#include "hw/bus.hh"
#include "hw/cache.hh"
#include "hw/cpu.hh"
#include "hw/os.hh"
#include "exec/executor.hh"

namespace hydra::hw {

/** Construction parameters for a Machine. */
struct MachineConfig
{
    std::string name = "host";
    double cpuGhz = 2.4;
    std::size_t l2Bytes = 256 * 1024;
    std::size_t l2LineBytes = 64;
    std::size_t l2Ways = 8;
    double busGbps = 8.0; // PCI-X-class aggregate
    sim::SimTime busSetupLatency = sim::nanoseconds(700);
    OsConfig os;
    std::uint64_t noiseSeed = 1;
};

/** Owns and wires the per-host hardware and OS models. */
class Machine
{
  public:
    Machine(exec::Executor &executor, MachineConfig config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    exec::Executor &executor() { return exec_; }
    const std::string &name() const { return name_; }

    Cpu &cpu() { return *cpu_; }
    CacheModel &l2() { return *l2_; }
    Bus &bus() { return *bus_; }
    OsKernel &os() { return *os_; }

  private:
    exec::Executor &exec_;
    std::string name_;
    std::unique_ptr<Cpu> cpu_;
    std::unique_ptr<CacheModel> l2_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<OsKernel> os_;
};

} // namespace hydra::hw

#endif // HYDRA_HW_MACHINE_HH
