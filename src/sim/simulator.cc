#include "sim/simulator.hh"

#include <cassert>
#include <memory>

#include "obs/metrics.hh"

namespace hydra::sim {

namespace {

/**
 * Process-wide instruments, resolved once. Every Simulator instance
 * feeds the same counters; a test or bench scopes them by resetting
 * the registry before the run it cares about.
 */
struct SimMetrics
{
    obs::Counter &dispatched = obs::counter("sim.events_dispatched");
    obs::Counter &scheduled = obs::counter("sim.events_scheduled");
    obs::Counter &cancelled = obs::counter("sim.events_cancelled");
    obs::Gauge &queueDepth = obs::gauge("sim.queue_depth");
};

SimMetrics &
simMetrics()
{
    static SimMetrics metrics;
    return metrics;
}

} // namespace

EventId
Simulator::schedule(SimTime delay, Callback fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(SimTime when, Callback fn)
{
    assert(when >= now_);
    const EventId id = nextId_++;
    queue_.push(Record{when, id, std::move(fn)});
    simMetrics().scheduled.increment();
    return id;
}

EventId
Simulator::schedulePeriodic(SimTime period, std::function<bool()> fn)
{
    assert(period > 0);
    // The series lives in the periodics_ registry; each firing looks
    // itself up by id, so cancellation is just an erase and nothing
    // holds a self-referential closure.
    const EventId seriesId = nextId_++;
    periodics_[seriesId] = Periodic{period, std::move(fn)};
    queue_.push(Record{now_ + period, nextId_++,
                       [this, seriesId]() { firePeriodic(seriesId); }});
    return seriesId;
}

void
Simulator::firePeriodic(EventId series_id)
{
    auto it = periodics_.find(series_id);
    if (it == periodics_.end())
        return; // cancelled
    if (!it->second.fn()) {
        periodics_.erase(series_id);
        return;
    }
    // The callback may have cancelled its own series.
    it = periodics_.find(series_id);
    if (it == periodics_.end())
        return;
    queue_.push(Record{now_ + it->second.period, nextId_++,
                       [this, series_id]() { firePeriodic(series_id); }});
}

void
Simulator::cancel(EventId id)
{
    simMetrics().cancelled.increment();
    if (periodics_.erase(id))
        return;
    cancelled_.insert(id);
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Record rec = queue_.top();
        queue_.pop();
        if (cancelled_.erase(rec.id))
            continue;
        assert(rec.when >= now_);
        now_ = rec.when;
        ++dispatched_;
        SimMetrics &metrics = simMetrics();
        metrics.dispatched.increment();
        metrics.queueDepth.set(static_cast<double>(queue_.size()));
        rec.fn();
        return true;
    }
    return false;
}

void
Simulator::runUntil(SimTime until)
{
    while (!queue_.empty()) {
        const Record &top = queue_.top();
        if (cancelled_.count(top.id)) {
            cancelled_.erase(top.id);
            queue_.pop();
            continue;
        }
        if (top.when > until)
            break;
        step();
    }
    if (now_ < until)
        now_ = until;
}

void
Simulator::runToCompletion()
{
    while (step()) {
    }
}

std::size_t
Simulator::pendingEvents() const
{
    return queue_.size();
}

} // namespace hydra::sim
