#include "sim/simulator.hh"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/metrics.hh"

namespace hydra::sim {

namespace {

/**
 * Process-wide instruments, resolved once. Every Simulator instance
 * feeds the same counters; a test or bench scopes them by resetting
 * the registry before the run it cares about.
 */
struct SimMetrics
{
    obs::Counter &dispatched = obs::counter("sim.events_dispatched");
    obs::Counter &scheduled = obs::counter("sim.events_scheduled");
    obs::Counter &cancelled = obs::counter("sim.events_cancelled");
    obs::Gauge &queueDepth = obs::gauge("sim.queue_depth");
};

SimMetrics &
simMetrics()
{
    static SimMetrics metrics;
    return metrics;
}

} // namespace

EventId
Simulator::schedule(SimTime delay, Callback fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::push(Record record)
{
    heap_.push_back(std::move(record));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

Simulator::Record
Simulator::popTop()
{
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    Record record = std::move(heap_.back());
    heap_.pop_back();
    return record;
}

EventId
Simulator::scheduleAt(SimTime when, Callback fn)
{
    assert(when >= now_);
    const EventId id = nextId_++;
    push(Record{when, id, std::move(fn)});
    simMetrics().scheduled.increment();
    return id;
}

EventId
Simulator::schedulePeriodic(SimTime period, std::function<bool()> fn)
{
    assert(period > 0);
    // The series lives in the periodics_ registry; each firing looks
    // itself up by id, so cancellation is just an erase and nothing
    // holds a self-referential closure.
    const EventId seriesId = nextId_++;
    periodics_[seriesId] = Periodic{period, std::move(fn)};
    push(Record{now_ + period, nextId_++,
                [this, seriesId]() { firePeriodic(seriesId); }});
    return seriesId;
}

void
Simulator::firePeriodic(EventId series_id)
{
    auto it = periodics_.find(series_id);
    if (it == periodics_.end())
        return; // cancelled
    if (!it->second.fn()) {
        periodics_.erase(series_id);
        return;
    }
    // The callback may have cancelled its own series.
    it = periodics_.find(series_id);
    if (it == periodics_.end())
        return;
    push(Record{now_ + it->second.period, nextId_++,
                [this, series_id]() { firePeriodic(series_id); }});
}

void
Simulator::cancel(EventId id)
{
    simMetrics().cancelled.increment();
    if (periodics_.erase(id))
        return;
    // Ids never handed out cannot be pending; remembering them would
    // grow cancelled_ forever with nothing to erase them.
    if (id >= nextId_)
        return;
    cancelled_.insert(id);
    pruneCancelled();
}

void
Simulator::pruneCancelled()
{
    // Cancelling an already-fired id leaves a tombstone no pop will
    // ever claim. Once the set clearly outgrows the pending queue,
    // intersect it with the ids actually still scheduled.
    constexpr std::size_t kSlack = 64;
    if (cancelled_.size() <= heap_.size() + kSlack)
        return;
    std::unordered_set<EventId> live;
    live.reserve(heap_.size());
    for (const Record &record : heap_)
        live.insert(record.id);
    std::erase_if(cancelled_,
                  [&live](EventId id) { return !live.count(id); });
}

bool
Simulator::step()
{
    while (!heap_.empty()) {
        Record rec = popTop();
        if (cancelled_.erase(rec.id))
            continue;
        assert(rec.when >= now_);
        now_ = rec.when;
        ++dispatched_;
        SimMetrics &metrics = simMetrics();
        metrics.dispatched.increment();
        metrics.queueDepth.set(static_cast<double>(heap_.size()));
        rec.fn();
        return true;
    }
    return false;
}

void
Simulator::runUntil(SimTime until)
{
    while (!heap_.empty()) {
        const Record &top = heap_.front();
        if (cancelled_.count(top.id)) {
            cancelled_.erase(top.id);
            popTop();
            continue;
        }
        if (top.when > until)
            break;
        step();
    }
    if (now_ < until)
        now_ = until;
}

void
Simulator::runToCompletion()
{
    while (step()) {
    }
}

std::size_t
Simulator::pendingEvents() const
{
    return heap_.size();
}

} // namespace hydra::sim
