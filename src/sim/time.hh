/**
 * @file
 * Simulated time. The simulator counts integer nanoseconds; helpers
 * convert to and from the units used in the paper (ms packet gaps,
 * GHz clock rates, Gbps link rates).
 */

#ifndef HYDRA_SIM_TIME_HH
#define HYDRA_SIM_TIME_HH

#include <cstdint>

namespace hydra::sim {

/** Simulation timestamp / duration in nanoseconds. */
using SimTime = std::uint64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr SimTime
nanoseconds(std::uint64_t n)
{
    return n;
}

constexpr SimTime
microseconds(std::uint64_t n)
{
    return n * kMicrosecond;
}

constexpr SimTime
milliseconds(std::uint64_t n)
{
    return n * kMillisecond;
}

constexpr SimTime
seconds(std::uint64_t n)
{
    return n * kSecond;
}

constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double
toMilliseconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

constexpr double
toMicroseconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Duration of @p cycles at @p ghz (rounded up to a whole ns). */
constexpr SimTime
cyclesToTime(std::uint64_t cycles, double ghz)
{
    const double ns = static_cast<double>(cycles) / ghz;
    return static_cast<SimTime>(ns) + ((ns > static_cast<SimTime>(ns)) ? 1
                                                                       : 0);
}

/** Time to move @p bytes at @p gbps (gigabits per second). */
constexpr SimTime
transferTime(std::uint64_t bytes, double gbps)
{
    const double ns = static_cast<double>(bytes) * 8.0 / gbps;
    return static_cast<SimTime>(ns) + ((ns > static_cast<SimTime>(ns)) ? 1
                                                                       : 0);
}

} // namespace hydra::sim

#endif // HYDRA_SIM_TIME_HH
