/**
 * @file
 * The discrete-event simulation kernel.
 *
 * Every hardware and software model in the substrate (host CPUs, OS
 * kernel, bus, devices, network links) advances by scheduling
 * callbacks on a single Simulator instance. Events at equal
 * timestamps fire in scheduling order, which keeps runs
 * deterministic for a fixed seed.
 */

#ifndef HYDRA_SIM_SIMULATOR_HH
#define HYDRA_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace hydra::sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Central event queue and clock. */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule @p fn to run @p delay after now. */
    EventId schedule(SimTime delay, Callback fn);

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId scheduleAt(SimTime when, Callback fn);

    /**
     * Schedule @p fn every @p period, starting one period from now,
     * until it returns false or the event is cancelled.
     */
    EventId schedulePeriodic(SimTime period, std::function<bool()> fn);

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(EventId id);

    /** Run until the queue drains or the clock passes @p until. */
    void runUntil(SimTime until);

    /** Run until the event queue is empty. */
    void runToCompletion();

    /** Fire exactly one event; returns false when the queue is empty. */
    bool step();

    /** Number of events dispatched so far (for tests/diagnostics). */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const;

    /**
     * Cancelled ids remembered but not yet matched against a fired or
     * popped event. Bounded: cancel() ignores ids that cannot be
     * pending and prunes entries whose events are long gone (tests).
     */
    std::size_t cancelledBacklog() const { return cancelled_.size(); }

  private:
    struct Record
    {
        SimTime when;
        EventId id;
        Callback fn;

        bool
        operator>(const Record &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id; // FIFO among equal timestamps
        }
    };

    struct Periodic
    {
        SimTime period;
        std::function<bool()> fn;
    };

    void firePeriodic(EventId series_id);

    void push(Record record);
    /** Move the top record out of the heap (no std::function copy). */
    Record popTop();
    void pruneCancelled();

    /**
     * Min-heap on (when, id) kept by std::push_heap/std::pop_heap. A
     * hand-rolled heap instead of std::priority_queue so dispatch can
     * move the record (and its captured state) out of the container.
     */
    std::vector<Record> heap_;
    std::unordered_set<EventId> cancelled_;
    std::unordered_map<EventId, Periodic> periodics_;
    SimTime now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t dispatched_ = 0;
};

} // namespace hydra::sim

#endif // HYDRA_SIM_SIMULATOR_HH
