#include "net/network.hh"

#include <algorithm>
#include <cassert>

#include "chaos/chaos.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hydra::net {

namespace {

struct NetMetrics
{
    obs::Counter &sent = obs::counter("net.packets_sent");
    obs::Counter &delivered = obs::counter("net.packets_delivered");
    obs::Counter &dropped = obs::counter("net.packets_dropped");
    obs::Counter &bytes = obs::counter("net.bytes_delivered");
    /** Reserved: the fabric models lossy UDP, nothing retransmits
     * today; registered so dashboards see an explicit zero. */
    obs::Counter &retransmits = obs::counter("net.retransmits");
    obs::LatencyHistogram &flightNs = obs::histogram("net.flight_ns");
};

NetMetrics &
netMetrics()
{
    static NetMetrics metrics;
    return metrics;
}

} // namespace

Network::Network(exec::Executor &executor, NetworkConfig config)
    : exec_(executor), config_(config), rng_(config.seed)
{
}

NodeId
Network::addNode(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_.push_back(Node{std::move(name), 0, 0, {}});
    return static_cast<NodeId>(nodes_.size() - 1);
}

Status
Network::bind(NodeId node, Port port, PacketHandler handler)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (node >= nodes_.size())
        return Status(ErrorCode::NotFound, "no such node");
    auto &handlers = nodes_[node].handlers;
    if (handlers.count(port))
        return Status(ErrorCode::AlreadyExists, "port already bound");
    handlers[port] = std::move(handler);
    return Status::success();
}

void
Network::unbind(NodeId node, Port port)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (node < nodes_.size())
        nodes_[node].handlers.erase(port);
}

std::string
Network::nodeName(NodeId node) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return node < nodes_.size() ? nodes_[node].name : "<unknown>";
}

std::size_t
Network::nodeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.size();
}

NetworkStats
Network::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

Status
Network::send(Packet packet)
{
    packet.sentAt = exec_.now();
    if (!packet.traceCtx.valid())
        packet.traceCtx = obs::activeContext();

    sim::SimTime delivered = 0;
    sim::SimTime duplicateAt = 0;
    chaos::ChaosEngine &chaosEngine = chaos::ChaosEngine::instance();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (packet.src >= nodes_.size() || packet.dst >= nodes_.size())
            return Status(ErrorCode::NetworkUnreachable, "bad address");
        if (packet.payload.size() > config_.maxPayload)
            return Status(ErrorCode::MessageTooLarge,
                          "payload too large");

        ++stats_.packetsSent;
        netMetrics().sent.increment();

        if (config_.dropProbability > 0.0 &&
            (config_.lossPort == 0 ||
             packet.dstPort == config_.lossPort) &&
            rng_.chance(config_.dropProbability)) {
            ++stats_.packetsDropped;
            netMetrics().dropped.increment();
            return Status::success(); // datagram loss is silent
        }

        if (chaosEngine.enabled()) {
            if (chaosEngine.dropPacket(packet.sentAt)) {
                ++stats_.packetsDropped;
                netMetrics().dropped.increment();
                return Status::success(); // injected loss is silent too
            }
            if (chaosEngine.corruptPacket(packet.sentAt) &&
                packet.payload.size() > 0) {
                // Payload buffers are immutable and shared; corrupting
                // the wire copy means a deliberate deep copy.
                Bytes bytes = packet.payload.toBytes();
                bytes[chaosEngine.corruptByteIndex(bytes.size())] ^= 0x01;
                packet.payload = Payload(std::move(bytes));
            }
        }

        // Serialize on the sender's uplink.
        Node &src = nodes_[packet.src];
        const sim::SimTime wire =
            sim::transferTime(packet.wireBytes(), config_.linkGbps);
        const sim::SimTime tx_start =
            std::max(packet.sentAt, src.txFreeAt);
        src.txFreeAt = tx_start + wire;

        // Propagate, switch, then serialize on the receiver's
        // downlink.
        Node &dst = nodes_[packet.dst];
        const sim::SimTime arrive_at_switch =
            src.txFreeAt + config_.linkLatency + config_.switchLatency;
        const sim::SimTime rx_start =
            std::max(arrive_at_switch, dst.rxFreeAt);
        dst.rxFreeAt = rx_start + wire;
        delivered = dst.rxFreeAt + config_.linkLatency;

        if (chaosEngine.enabled() &&
            chaosEngine.duplicatePacket(packet.sentAt)) {
            // The duplicate serializes behind the original on both
            // links, exactly as a retransmitted datagram would.
            const sim::SimTime tx2 =
                std::max(packet.sentAt, src.txFreeAt);
            src.txFreeAt = tx2 + wire;
            const sim::SimTime arrive2 =
                src.txFreeAt + config_.linkLatency + config_.switchLatency;
            const sim::SimTime rx2 = std::max(arrive2, dst.rxFreeAt);
            dst.rxFreeAt = rx2 + wire;
            duplicateAt = dst.rxFreeAt + config_.linkLatency;
            ++stats_.packetsSent;
            netMetrics().sent.increment();
        }
    }

    if (duplicateAt != 0) {
        exec_.scheduleAt(duplicateAt, [this, pkt = packet]() mutable {
            deliver(std::move(pkt));
        });
    }
    exec_.scheduleAt(delivered, [this, pkt = std::move(packet)]() mutable {
        deliver(std::move(pkt));
    });
    return Status::success();
}

void
Network::deliver(Packet packet)
{
    PacketHandler handler;
    {
        // Copy the handler out so the receive path (which may re-enter
        // send()) runs without the fabric lock.
        std::lock_guard<std::mutex> lock(mutex_);
        Node &dst = nodes_[packet.dst];
        auto it = dst.handlers.find(packet.dstPort);
        if (it == dst.handlers.end()) {
            ++stats_.packetsDropped;
            netMetrics().dropped.increment();
            LOG_DEBUG << "packet to " << dst.name << ":"
                      << packet.dstPort << " dropped (no listener)";
            return;
        }
        handler = it->second;
        ++stats_.packetsDelivered;
        stats_.bytesDelivered += packet.payload.size();
    }
    NetMetrics &metrics = netMetrics();
    metrics.delivered.increment();
    metrics.bytes.add(packet.payload.size());
    metrics.flightNs.record(exec_.now() - packet.sentAt);
    // Restore the sender's causal context for the receive path; the
    // wire transfer itself is a span on the fabric's lane.
    obs::ContextScope scope(packet.traceCtx);
    obs::Span span;
    if (HYDRA_TRACE_ACTIVE())
        span.open("network", nodeName(packet.dst), "net.xfer", "net",
                  packet.sentAt);
    span.end(exec_.now());
    handler(packet);
}

} // namespace hydra::net
