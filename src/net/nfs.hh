/**
 * @file
 * NFS-lite: a minimal file-access protocol over the modeled network.
 *
 * The paper's testbed stores media on a NAS reached via NFS (both by
 * the video server and by the emulated "smart disk"). NfsLite
 * provides just enough of that protocol — LOOKUP/READ/WRITE with a
 * request/response exchange — to exercise the same remote-storage
 * code path.
 */

#ifndef HYDRA_NET_NFS_HH
#define HYDRA_NET_NFS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "common/bytes.hh"
#include "common/result.hh"
#include "net/network.hh"

namespace hydra::net {

/** Well-known NFS-lite port. */
constexpr Port kNfsPort = 2049;

/** NFS-lite wire operation codes. */
enum class NfsOp : std::uint8_t {
    Lookup = 1,
    Read = 2,
    Write = 3,
    GetSize = 4,
    ReplyOk = 100,
    ReplyError = 101,
};

/** In-memory file server bound to a network node. */
class NfsServer
{
  public:
    NfsServer(Network &network, NodeId node);
    ~NfsServer();

    NfsServer(const NfsServer &) = delete;
    NfsServer &operator=(const NfsServer &) = delete;

    /** Create or replace a file. */
    void putFile(const std::string &name, Bytes content);

    /** Direct (out-of-band) access for test verification. */
    Result<Bytes> fileContent(const std::string &name) const;
    bool hasFile(const std::string &name) const;
    std::size_t fileCount() const { return files_.size(); }

    std::uint64_t requestsServed() const { return requestsServed_; }

  private:
    void onRequest(const Packet &request);

    Network &net_;
    NodeId node_;
    std::unordered_map<std::string, Bytes> files_;
    std::uint64_t requestsServed_ = 0;
};

/**
 * Asynchronous NFS-lite client. Completion callbacks run when the
 * reply datagram arrives; requests time out only through higher
 * layers (datagram loss surfaces as a never-fired callback, like a
 * lost RPC without retransmit — the fabric defaults to lossless).
 */
class NfsClient
{
  public:
    using ReadCallback = std::function<void(Result<Bytes>)>;
    using WriteCallback = std::function<void(Status)>;
    using SizeCallback = std::function<void(Result<std::uint64_t>)>;

    /**
     * @param reply_port Local port for replies; each client instance
     * on a node needs a distinct one.
     */
    NfsClient(Network &network, NodeId node, NodeId server,
              Port reply_port = 33049);
    ~NfsClient();

    NfsClient(const NfsClient &) = delete;
    NfsClient &operator=(const NfsClient &) = delete;

    void read(const std::string &file, std::uint64_t offset,
              std::uint32_t length, ReadCallback done);
    void write(const std::string &file, std::uint64_t offset,
               const Bytes &data, WriteCallback done);
    void getSize(const std::string &file, SizeCallback done);

    std::uint64_t outstanding() const { return pending_.size(); }

  private:
    struct Pending
    {
        NfsOp op;
        ReadCallback onRead;
        WriteCallback onWrite;
        SizeCallback onSize;
    };

    void onReply(const Packet &reply);
    std::uint64_t sendRequest(NfsOp op, const std::string &file,
                              std::uint64_t offset, std::uint32_t length,
                              const Bytes *data);

    Network &net_;
    NodeId node_;
    NodeId server_;
    Port replyPort_;
    std::uint64_t nextXid_ = 1;
    std::map<std::uint64_t, Pending> pending_;
};

} // namespace hydra::net

#endif // HYDRA_NET_NFS_HH
