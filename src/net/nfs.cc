#include "net/nfs.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hydra::net {

namespace {

/** Request wire format shared by client encoder and server decoder. */
struct Request
{
    NfsOp op = NfsOp::Lookup;
    std::uint64_t xid = 0;
    std::string file;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    Bytes data;
};

Bytes
encodeRequest(const Request &req)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(req.op));
    writer.writeU64(req.xid);
    writer.writeString(req.file);
    writer.writeU64(req.offset);
    writer.writeU32(req.length);
    writer.writeBytes(req.data);
    return out;
}

bool
decodeRequest(const Payload &wire, Request &out)
{
    ByteReader reader(wire.data(), wire.size());
    auto op = reader.readU8();
    auto xid = reader.readU64();
    auto file = reader.readString();
    auto offset = reader.readU64();
    auto length = reader.readU32();
    auto data = reader.readBytes();
    if (!op || !xid || !file || !offset || !length || !data)
        return false;
    out.op = static_cast<NfsOp>(op.value());
    out.xid = xid.value();
    out.file = std::move(file).value();
    out.offset = offset.value();
    out.length = length.value();
    out.data = std::move(data).value();
    return true;
}

Bytes
encodeReply(std::uint64_t xid, NfsOp orig_op, bool ok, const Bytes &payload,
            std::string_view error_message)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(ok ? NfsOp::ReplyOk
                                                : NfsOp::ReplyError));
    writer.writeU64(xid);
    writer.writeU8(static_cast<std::uint8_t>(orig_op));
    if (ok)
        writer.writeBytes(payload);
    else
        writer.writeString(error_message);
    return out;
}

} // namespace

NfsServer::NfsServer(Network &network, NodeId node)
    : net_(network), node_(node)
{
    Status bound = net_.bind(node_, kNfsPort,
                             [this](const Packet &p) { onRequest(p); });
    if (!bound) {
        LOG_ERROR << "NfsServer: bind failed: " << bound.error().describe();
    }
}

NfsServer::~NfsServer()
{
    net_.unbind(node_, kNfsPort);
}

void
NfsServer::putFile(const std::string &name, Bytes content)
{
    files_[name] = std::move(content);
}

Result<Bytes>
NfsServer::fileContent(const std::string &name) const
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Error(ErrorCode::NotFound, name);
    return it->second;
}

bool
NfsServer::hasFile(const std::string &name) const
{
    return files_.count(name) != 0;
}

void
NfsServer::onRequest(const Packet &request)
{
    Request req;
    if (!decodeRequest(request.payload, req)) {
        LOG_WARN << "NfsServer: malformed request dropped";
        return;
    }
    ++requestsServed_;

    bool ok = true;
    Bytes payload;
    std::string error_message;

    auto it = files_.find(req.file);
    switch (req.op) {
      case NfsOp::Lookup:
        ok = it != files_.end();
        if (!ok)
            error_message = "no such file";
        break;
      case NfsOp::GetSize:
        if (it == files_.end()) {
            ok = false;
            error_message = "no such file";
        } else {
            ByteWriter writer(payload);
            writer.writeU64(it->second.size());
        }
        break;
      case NfsOp::Read:
        if (it == files_.end()) {
            ok = false;
            error_message = "no such file";
        } else {
            const Bytes &content = it->second;
            const std::uint64_t start =
                std::min<std::uint64_t>(req.offset, content.size());
            const std::uint64_t end =
                std::min<std::uint64_t>(start + req.length, content.size());
            payload.assign(content.begin() +
                               static_cast<std::ptrdiff_t>(start),
                           content.begin() +
                               static_cast<std::ptrdiff_t>(end));
        }
        break;
      case NfsOp::Write: {
        Bytes &content = files_[req.file]; // creates on first write
        const std::uint64_t end = req.offset + req.data.size();
        if (content.size() < end)
            content.resize(end);
        std::copy(req.data.begin(), req.data.end(),
                  content.begin() + static_cast<std::ptrdiff_t>(req.offset));
        ByteWriter writer(payload);
        writer.writeU32(static_cast<std::uint32_t>(req.data.size()));
        break;
      }
      default:
        ok = false;
        error_message = "bad op";
        break;
    }

    Packet reply;
    reply.src = node_;
    reply.dst = request.src;
    reply.srcPort = kNfsPort;
    reply.dstPort = request.srcPort;
    reply.payload = encodeReply(req.xid, req.op, ok, payload, error_message);
    net_.send(std::move(reply));
}

NfsClient::NfsClient(Network &network, NodeId node, NodeId server,
                     Port reply_port)
    : net_(network), node_(node), server_(server), replyPort_(reply_port)
{
    Status bound = net_.bind(node_, replyPort_,
                             [this](const Packet &p) { onReply(p); });
    if (!bound) {
        LOG_ERROR << "NfsClient: bind failed: " << bound.error().describe();
    }
}

NfsClient::~NfsClient()
{
    net_.unbind(node_, replyPort_);
}

std::uint64_t
NfsClient::sendRequest(NfsOp op, const std::string &file,
                       std::uint64_t offset, std::uint32_t length,
                       const Bytes *data)
{
    Request req;
    req.op = op;
    req.xid = nextXid_++;
    req.file = file;
    req.offset = offset;
    req.length = length;
    if (data)
        req.data = *data;

    Packet packet;
    packet.src = node_;
    packet.dst = server_;
    packet.srcPort = replyPort_;
    packet.dstPort = kNfsPort;
    packet.payload = encodeRequest(req);
    net_.send(std::move(packet));
    return req.xid;
}

void
NfsClient::read(const std::string &file, std::uint64_t offset,
                std::uint32_t length, ReadCallback done)
{
    const std::uint64_t xid =
        sendRequest(NfsOp::Read, file, offset, length, nullptr);
    Pending pending;
    pending.op = NfsOp::Read;
    pending.onRead = std::move(done);
    pending_[xid] = std::move(pending);
}

void
NfsClient::write(const std::string &file, std::uint64_t offset,
                 const Bytes &data, WriteCallback done)
{
    const std::uint64_t xid =
        sendRequest(NfsOp::Write, file, offset, 0, &data);
    Pending pending;
    pending.op = NfsOp::Write;
    pending.onWrite = std::move(done);
    pending_[xid] = std::move(pending);
}

void
NfsClient::getSize(const std::string &file, SizeCallback done)
{
    const std::uint64_t xid =
        sendRequest(NfsOp::GetSize, file, 0, 0, nullptr);
    Pending pending;
    pending.op = NfsOp::GetSize;
    pending.onSize = std::move(done);
    pending_[xid] = std::move(pending);
}

void
NfsClient::onReply(const Packet &reply)
{
    ByteReader reader(reply.payload.data(), reply.payload.size());
    auto status = reader.readU8();
    auto xid = reader.readU64();
    auto orig = reader.readU8();
    if (!status || !xid || !orig) {
        LOG_WARN << "NfsClient: malformed reply dropped";
        return;
    }
    (void)orig;

    auto it = pending_.find(xid.value());
    if (it == pending_.end())
        return; // stale or duplicate reply
    Pending pending = std::move(it->second);
    pending_.erase(it);

    const bool ok =
        static_cast<NfsOp>(status.value()) == NfsOp::ReplyOk;

    if (!ok) {
        auto message = reader.readString();
        Error error(ErrorCode::NotFound,
                    message ? message.value() : "nfs error");
        switch (pending.op) {
          case NfsOp::Read:
            pending.onRead(error);
            break;
          case NfsOp::Write:
            pending.onWrite(Status(error));
            break;
          case NfsOp::GetSize:
            pending.onSize(error);
            break;
          default:
            break;
        }
        return;
    }

    auto payload = reader.readBytes();
    if (!payload) {
        LOG_WARN << "NfsClient: truncated reply";
        return;
    }

    switch (pending.op) {
      case NfsOp::Read:
        pending.onRead(std::move(payload).value());
        break;
      case NfsOp::Write:
        pending.onWrite(Status::success());
        break;
      case NfsOp::GetSize: {
        ByteReader inner(payload.value());
        auto size = inner.readU64();
        if (size)
            pending.onSize(size.value());
        else
            pending.onSize(Error(ErrorCode::ParseError, "bad size reply"));
        break;
      }
      default:
        break;
    }
}

} // namespace hydra::net
