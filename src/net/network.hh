/**
 * @file
 * The modeled Ethernet fabric: nodes attached through a store-and-
 * forward switch (the paper's Dell PowerConnect 6024), each via a
 * full-duplex gigabit link. Delivery is in-order per sender with
 * serialization delay, fixed propagation latency, and optional drop.
 */

#ifndef HYDRA_NET_NETWORK_HH
#define HYDRA_NET_NETWORK_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "net/packet.hh"
#include "exec/executor.hh"

namespace hydra::net {

/** Fabric-wide configuration. */
struct NetworkConfig
{
    double linkGbps = 1.0;
    sim::SimTime linkLatency = sim::microseconds(5);
    sim::SimTime switchLatency = sim::microseconds(4);
    double dropProbability = 0.0;
    /** When nonzero, loss applies only to this destination port. */
    Port lossPort = 0;
    std::uint64_t seed = 7;
    std::size_t maxPayload = 64 * 1024;
};

/** Delivery counters for tests and benches. */
struct NetworkStats
{
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsDelivered = 0;
    std::uint64_t packetsDropped = 0;
    std::uint64_t bytesDelivered = 0;
};

/** Star-topology switched network. */
class Network
{
  public:
    Network(exec::Executor &executor, NetworkConfig config);

    /** Attach a node; returns its address. */
    NodeId addNode(std::string name);

    /** Register a receive handler for (node, port). */
    Status bind(NodeId node, Port port, PacketHandler handler);

    /** Remove a handler. */
    void unbind(NodeId node, Port port);

    /**
     * Transmit a datagram. Fails fast on bad addresses or oversized
     * payloads; silently drops (with stats) on modeled loss.
     */
    Status send(Packet packet);

    /** Snapshot of the delivery counters (safe while senders run). */
    NetworkStats stats() const;
    std::string nodeName(NodeId node) const;
    std::size_t nodeCount() const;

  private:
    struct Node
    {
        std::string name;
        sim::SimTime txFreeAt = 0;
        sim::SimTime rxFreeAt = 0;
        std::map<Port, PacketHandler> handlers;
    };

    void deliver(Packet packet);

    exec::Executor &exec_;
    NetworkConfig config_;
    /**
     * One fabric is shared by every host of a fleet, so link-state
     * updates (txFreeAt/rxFreeAt), stats, and the loss RNG are reached
     * from multiple threaded-executor workers concurrently. One lock
     * covers them all: the critical sections are a handful of integer
     * updates, far cheaper than the modeled wire times they compute.
     * Handlers are invoked WITHOUT the lock held (deliver copies the
     * handler out), so receive paths may re-enter send().
     */
    mutable std::mutex mutex_;
    std::vector<Node> nodes_;
    NetworkStats stats_;
    hydra::Rng rng_;
};

} // namespace hydra::net

#endif // HYDRA_NET_NETWORK_HH
