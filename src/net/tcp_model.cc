#include "net/tcp_model.hh"

#include <algorithm>
#include <cassert>

namespace hydra::net {

TcpPathModel::TcpPathModel(TcpCostModel costs) : costs_(costs) {}

TcpPathPoint
TcpPathModel::evaluate(TcpDirection direction,
                       std::size_t packet_bytes) const
{
    assert(packet_bytes > 0);

    const bool tx = direction == TcpDirection::Transmit;
    const double per_packet =
        tx ? costs_.txPerPacketCycles : costs_.rxPerPacketCycles;
    const double per_byte =
        tx ? costs_.txPerByteCycles : costs_.rxPerByteCycles;

    const double bytes = static_cast<double>(packet_bytes);
    const double cycles_per_packet = per_packet + per_byte * bytes;
    const double bits_per_packet = bytes * 8.0;

    // Packets per second the CPU could process at 100 % utilization.
    const double cpu_pps =
        costs_.hostClockGhz * 1e9 / cycles_per_packet;
    const double cpu_gbps = cpu_pps * bits_per_packet / 1e9;

    TcpPathPoint point;
    point.packetBytes = packet_bytes;
    point.throughputGbps = std::min(costs_.lineRateGbps, cpu_gbps);
    point.cpuUtilization =
        std::min(1.0, point.throughputGbps / cpu_gbps);
    point.ghzPerGbps = point.cpuUtilization * costs_.hostClockGhz /
                       point.throughputGbps;
    return point;
}

std::vector<TcpPathPoint>
TcpPathModel::sweep(TcpDirection direction,
                    const std::vector<std::size_t> &packet_sizes) const
{
    std::vector<TcpPathPoint> out;
    out.reserve(packet_sizes.size());
    for (std::size_t size : packet_sizes)
        out.push_back(evaluate(direction, size));
    return out;
}

} // namespace hydra::net
