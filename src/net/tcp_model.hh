/**
 * @file
 * Analytic TCP host-processing cost model, after Foong et al.,
 * "TCP performance re-visited" (ISPASS'03) — the source of the
 * paper's Figure 1 (GHz/Gbps transmit and receive ratios).
 *
 * The model charges a fixed per-packet cost (protocol processing,
 * interrupt and descriptor handling) plus a per-byte cost (copies
 * and checksum; higher on receive, where the payload arrives cache
 * cold). From these it derives the paper's metric:
 *
 *     GHz/Gbps ratio = (%cpu × processor_speed) / throughput
 *
 * which reduces to cycles-per-bit when the link is the bottleneck
 * and to clock/throughput when the CPU saturates first.
 */

#ifndef HYDRA_NET_TCP_MODEL_HH
#define HYDRA_NET_TCP_MODEL_HH

#include <cstdint>
#include <vector>

namespace hydra::net {

/** Direction of the modeled TCP data path. */
enum class TcpDirection { Transmit, Receive };

/** Cost constants of the modeled host TCP stack. */
struct TcpCostModel
{
    double hostClockGhz = 2.4;
    double lineRateGbps = 1.0;

    /** Per-packet cycles: protocol, descriptor, interrupt amortized. */
    double txPerPacketCycles = 4000.0;
    double rxPerPacketCycles = 6200.0;

    /** Per-byte cycles: copy + checksum (+ cold misses on receive). */
    double txPerByteCycles = 4.0;
    double rxPerByteCycles = 6.5;
};

/** Result of evaluating the model at one packet size. */
struct TcpPathPoint
{
    std::size_t packetBytes = 0;
    /** Achieved throughput in Gbps (min of line rate, CPU limit). */
    double throughputGbps = 0.0;
    /** Host CPU utilization in [0, 1] at that throughput. */
    double cpuUtilization = 0.0;
    /** The paper's GHz/Gbps metric. */
    double ghzPerGbps = 0.0;
};

/** Evaluates the cost model across packet sizes (Fig. 1 sweep). */
class TcpPathModel
{
  public:
    explicit TcpPathModel(TcpCostModel costs = {});

    /** Evaluate one direction at one packet size. */
    TcpPathPoint evaluate(TcpDirection direction,
                          std::size_t packet_bytes) const;

    /** Evaluate a full sweep (one Fig. 1 panel). */
    std::vector<TcpPathPoint>
    sweep(TcpDirection direction,
          const std::vector<std::size_t> &packet_sizes) const;

    const TcpCostModel &costs() const { return costs_; }

  private:
    TcpCostModel costs_;
};

} // namespace hydra::net

#endif // HYDRA_NET_TCP_MODEL_HH
