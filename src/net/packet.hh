/**
 * @file
 * Network packet representation for the modeled Ethernet fabric.
 */

#ifndef HYDRA_NET_PACKET_HH
#define HYDRA_NET_PACKET_HH

#include <cstdint>
#include <functional>
#include <span>

#include "common/bytes.hh"
#include "common/payload.hh"
#include "obs/span.hh"
#include "sim/time.hh"

namespace hydra::net {

/** Identifies an attachment point on the modeled network. */
using NodeId = std::uint32_t;

/** UDP-style port number. */
using Port = std::uint16_t;

constexpr NodeId kInvalidNode = 0xffffffffu;

/** A UDP-lite datagram. */
struct Packet
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    Port srcPort = 0;
    Port dstPort = 0;
    std::uint64_t seq = 0;
    /** Shared immutable buffer; copying the Packet shares the bytes. */
    Payload payload;
    /** Stamped by Network::send for latency/jitter measurement. */
    sim::SimTime sentAt = 0;
    /** Causal context of the sender, restored at delivery. */
    obs::SpanContext traceCtx;

    std::size_t
    wireBytes() const
    {
        // Ethernet + IP + UDP framing overhead on the modeled wire.
        return payload.size() + 42;
    }
};

using PacketHandler = std::function<void(const Packet &)>;

/** Payload bytes a batch of packets moves over one DMA chain. */
inline std::size_t
payloadBytes(std::span<const Packet> packets)
{
    std::size_t total = 0;
    for (const Packet &packet : packets)
        total += packet.payload.size();
    return total;
}

} // namespace hydra::net

#endif // HYDRA_NET_PACKET_HH
