/**
 * @file
 * The evaluation testbed (paper Section 6.4): two 2.4 GHz hosts
 * joined by a gigabit switch, a NAS holding the movie, programmable
 * NICs on both hosts, and a smart disk and GPU on the client. The
 * Testbed assembles any scenario the paper measures (server kind ×
 * client kind, plus the idle baseline) and samples CPU utilization
 * and L2 miss rates every 5 seconds, recording client-side packet
 * inter-arrival times for the jitter study.
 */

#ifndef HYDRA_TIVO_HARNESS_HH
#define HYDRA_TIVO_HARNESS_HH

#include <memory>

#include "common/stats.hh"
#include "exec/executor.hh"
#include "tivo/client.hh"
#include "tivo/server.hh"

namespace hydra::tivo {

/** Which server implementation streams. */
enum class ServerKind { None, Simple, Sendfile, Onloaded, Offloaded };

/** Which client implementation watches. */
enum class ClientKind { None, Receiver, UserSpace, Offloaded };

std::string_view serverKindName(ServerKind kind);
std::string_view clientKindName(ClientKind kind);

/** Scenario parameters. */
struct TestbedConfig
{
    ServerKind server = ServerKind::Simple;
    ClientKind client = ClientKind::Receiver;

    /** Execution engine: deterministic sim (default) or threaded. */
    exec::ExecutorKind executor = exec::ExecutorKind::Sim;

    /**
     * Ceiling on the threaded engine's adaptive drain quantum
     * (--batch-max); 0 keeps the engine default. The sim engine
     * ignores it (its batches have no scheduling effect).
     */
    std::size_t batchMax = 0;

    /** Measured run length (the paper: 10 minutes). */
    sim::SimTime duration = sim::seconds(60);
    /** Settling time excluded from all samples. */
    sim::SimTime warmup = sim::seconds(2);
    /** CPU / L2 sampling interval (the paper: 5 s). */
    sim::SimTime sampleInterval = sim::seconds(5);
    /**
     * Flight-recorder snapshot interval; 0 disables recording. When
     * enabled the testbed captures one snapshot per interval during
     * the measurement window plus a final capture at the end, all on
     * executor time (so SimExecutor runs are deterministic).
     */
    sim::SimTime flightInterval = 0;
    /**
     * Sampling-profiler interval; 0 disables sampling. Samples are
     * taken on executor time (deterministic under SimExecutor) and
     * only when the global obs::Profiler is enabled.
     */
    sim::SimTime profileInterval = 0;

    std::uint64_t seed = 1;
    MpegConfig mpeg;
    /** Movie length in frames (the stream wraps around). */
    std::uint32_t movieFrames = 192;

    sim::SimTime sendPeriod = sim::milliseconds(5);
    std::size_t chunkBytes = 1024;

    /** Fabric loss rate (UDP semantics; decoder resyncs on I frames). */
    double dropProbability = 0.0;

    /** Client smart disk backed by the NAS (as the paper emulates). */
    bool diskNfsBacked = true;
    /**
     * Ablation knob (DESIGN.md D3): disable the hosts' stochastic OS
     * noise (run-queue delay, preemption), leaving only deterministic
     * tick quantization.
     */
    bool quietHost = false;
    /** PCIe-style single-transaction multicast on the client bus. */
    bool busMulticast = true;

    ServerConfig serverTuning;
    ClientConfig clientTuning;
};

/** Everything a scenario run produces. */
struct ScenarioResult
{
    std::string scenarioName;

    /** Client-side packet inter-arrival times, in milliseconds. */
    SampleSet interarrivalMs;

    /** Per-window CPU utilization, percent. */
    SampleSet serverCpuPct;
    SampleSet clientCpuPct;

    /** Per-window L2 miss rates (absolute, not normalized). */
    SampleSet serverL2MissRate;
    SampleSet clientL2MissRate;

    std::uint64_t chunksSent = 0;
    std::uint64_t packetsReceived = 0;
    std::uint64_t framesDisplayed = 0;
    std::uint64_t serverBusCrossings = 0;
    std::uint64_t clientBusCrossings = 0;
    std::uint64_t networkDrops = 0;
    bool deploymentOk = true;
};

/** Builds and runs one scenario. */
class Testbed
{
  public:
    explicit Testbed(TestbedConfig config);
    ~Testbed();

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    /** Run the scenario to completion and collect results. */
    ScenarioResult run();

    // --- component access for integration tests ---
    exec::Executor &executor() { return *exec_; }
    hw::Machine &serverMachine() { return *serverMachine_; }
    hw::Machine &clientMachine() { return *clientMachine_; }
    net::Network &network() { return *network_; }
    net::NfsServer &nas() { return *nas_; }
    core::Runtime *clientRuntime() { return clientRuntime_.get(); }
    core::Runtime *serverRuntime() { return serverRuntime_.get(); }
    OffloadedClient *offloadedClient() { return offloadedClient_.get(); }
    UserSpaceClient *userClient() { return userClient_.get(); }
    VideoServer *server() { return server_.get(); }
    TivoEnvPtr clientEnv() { return clientEnv_; }
    dev::Gpu &gpu() { return *gpu_; }

  private:
    void buildFabric();
    void buildServer();
    void buildClient();
    void recordArrival(sim::SimTime now);

    TestbedConfig config_;

    std::unique_ptr<exec::Executor> exec_;
    std::unique_ptr<net::Network> network_;
    net::NodeId nasNode_ = net::kInvalidNode;
    net::NodeId serverNode_ = net::kInvalidNode;
    net::NodeId clientNode_ = net::kInvalidNode;
    net::NodeId clientDiskNode_ = net::kInvalidNode;
    std::unique_ptr<net::NfsServer> nas_;

    std::unique_ptr<hw::Machine> serverMachine_;
    std::unique_ptr<hw::Machine> clientMachine_;
    std::unique_ptr<dev::ProgrammableNic> serverNic_;
    std::unique_ptr<dev::ProgrammableNic> clientNic_;
    std::unique_ptr<dev::SmartDisk> clientDisk_;
    std::unique_ptr<dev::Gpu> gpu_;

    std::unique_ptr<core::Runtime> serverRuntime_;
    std::unique_ptr<core::Runtime> clientRuntime_;
    TivoEnvPtr serverEnv_;
    TivoEnvPtr clientEnv_;

    std::unique_ptr<VideoServer> server_;
    std::unique_ptr<UserSpaceClient> userClient_;
    std::unique_ptr<OffloadedClient> offloadedClient_;

    // Measurement state.
    sim::SimTime measureStart_ = 0;
    sim::SimTime lastArrival_ = 0;
    bool haveArrival_ = false;
    ScenarioResult result_;
    bool receiverBound_ = false;
};

} // namespace hydra::tivo

#endif // HYDRA_TIVO_HARNESS_HH
