/**
 * @file
 * The two Video Client implementations of the paper's evaluation
 * (Table 4): the conventional user-space client (every packet and
 * every frame crosses the host CPU) and the offload-aware client
 * (five Offcodes deployed across NIC, smart disk and GPU; the host
 * runs only the GUI).
 */

#ifndef HYDRA_TIVO_CLIENT_HH
#define HYDRA_TIVO_CLIENT_HH

#include <memory>

#include "core/runtime.hh"
#include "dev/disk.hh"
#include "dev/gpu.hh"
#include "dev/nic.hh"
#include "tivo/components.hh"
#include "tivo/mpeg.hh"

namespace hydra::tivo {

/** Parameters for the user-space client. */
struct ClientConfig
{
    net::Port videoPort = 5004;
    std::size_t chunkBytes = 1024;

    /**
     * Per-packet host-path cost beyond the modeled operations,
     * calibrated against Table 4 (see EXPERIMENTS.md).
     */
    std::uint64_t pathOverheadCycles = 470000;
    /** Software MPEG decode cost. */
    double decodeCyclesPerByte = 6.0;
};

/** Common interface for the harness. */
class VideoClient
{
  public:
    virtual ~VideoClient() = default;

    virtual Status startWatching() = 0;
    virtual void stop() = 0;

    virtual std::uint64_t packetsReceived() const = 0;
    virtual std::uint64_t framesDisplayed() const = 0;
};

/** Conventional client: everything on the host CPU. */
class UserSpaceClient : public VideoClient
{
  public:
    UserSpaceClient(hw::Machine &machine, dev::ProgrammableNic &nic,
                    dev::Gpu &gpu, dev::SmartDisk *disk,
                    ClientConfig config);
    ~UserSpaceClient() override;

    Status startWatching() override;
    void stop() override;

    std::uint64_t packetsReceived() const override { return packets_; }
    std::uint64_t framesDisplayed() const override { return frames_; }
    std::uint64_t decodeErrors() const { return decodeErrors_; }

    /** Measurement tap fired at packet arrival (client jitter). */
    std::function<void(sim::SimTime)> onPacketArrival;

  private:
    void onPacket(const net::Packet &packet);

    hw::Machine &machine_;
    dev::ProgrammableNic &nic_;
    dev::Gpu &gpu_;
    dev::SmartDisk *disk_;
    ClientConfig config_;

    hw::Addr rxKernelBuffer_ = 0;
    hw::Addr rxUserBuffer_ = 0;
    hw::Addr frameBuffers_ = 0;
    hw::Addr gpuStaging_ = 0;
    hw::Addr diskStaging_ = 0;
    std::size_t frameBufferSlot_ = 0;

    StreamAssembler assembler_;
    MpegDecoder decoder_;
    std::uint64_t recordOffset_ = 0;
    Bytes recordBlockBuffer_;

    std::uint64_t packets_ = 0;
    std::uint64_t frames_ = 0;
    std::uint64_t decodeErrors_ = 0;
    bool running_ = false;
};

/** Offload-aware client: deploys the TiVoPC layout over HYDRA. */
class OffloadedClient : public VideoClient
{
  public:
    OffloadedClient(core::Runtime &runtime, TivoEnvPtr env);

    Status startWatching() override;
    void stop() override;

    std::uint64_t packetsReceived() const override;
    std::uint64_t framesDisplayed() const override;

    bool deployed() const { return deployed_; }
    const std::string &deploymentError() const { return error_; }

    /** GUI controls (valid after deployment). */
    Status replay();
    Status stopReplay();

    /** Typed access to a deployed component (nullptr if missing). */
    template <typename T>
    T *
    component(const std::string &bindname) const
    {
        auto handle =
            const_cast<core::Runtime &>(runtime_).getOffcode(bindname);
        if (!handle)
            return nullptr;
        return dynamic_cast<T *>(handle.value().offcode);
    }

  private:
    core::Runtime &runtime_;
    TivoEnvPtr env_;
    bool deployed_ = false;
    bool startRequested_ = false;
    std::string error_;
};

} // namespace hydra::tivo

#endif // HYDRA_TIVO_CLIENT_HH
