#include "tivo/components.hh"

#include <cassert>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace.hh"

namespace hydra::tivo {

namespace {

/** Host-path per-packet cost constants. */
constexpr std::uint64_t kHostStreamerCycles = 2500;
constexpr std::uint64_t kDeviceStreamerCycles = 900;
constexpr std::uint64_t kDeviceForwardCycles = 400;

/**
 * Begin a pipeline-stage span on the stage's execution lane:
 * process = machine, thread = site (host CPU or device firmware).
 * Compute at a site is modeled busy-until style, so the stage end is
 * the completion time returned by ExecutionSite::run(). Downstream
 * channel writes must happen while the span is alive so they inherit
 * its context and the frame's journey stays one connected trace.
 */
void
openStageSpan(obs::Span &span, core::ExecutionSite &site,
              const char *stage, sim::SimTime started)
{
    if (!HYDRA_TRACE_ACTIVE())
        return;
    span.open(site.machine().name(), site.name(), stage, "tivo",
              started);
}

/** Serialized raw-frame header for the Decoder -> Display channel. */
Bytes
serializeRawFrame(const RawFrame &frame)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU32(frame.width);
    writer.writeU32(frame.height);
    writer.writeU32(frame.sequence);
    writer.writeBytes(frame.pixels);
    return out;
}

Result<RawFrame>
deserializeRawFrame(const Payload &wire)
{
    ByteReader reader(wire.data(), wire.size());
    auto width = reader.readU32();
    auto height = reader.readU32();
    auto seq = reader.readU32();
    auto pixels = reader.readBytes();
    if (!width || !height || !seq || !pixels)
        return Error(ErrorCode::ParseError, "bad raw frame");
    RawFrame frame;
    frame.width = width.value();
    frame.height = height.value();
    frame.sequence = seq.value();
    frame.pixels = std::move(pixels).value();
    return frame;
}

/** Credit grant payload for the server File flow control. */
Bytes
encodeCredits(std::uint32_t count)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeString("more");
    writer.writeU32(count);
    return out;
}

/** Create a data channel from @p owner to a deployed peer. */
core::Channel *
makeDataChannel(core::Offcode &owner, const std::string &peer_bindname,
                core::ChannelConfig::Type type, std::size_t max_message)
{
    auto peer = owner.runtime().getOffcode(peer_bindname);
    if (!peer) {
        LOG_WARN << owner.bindname() << ": peer " << peer_bindname
                 << " not deployed: " << peer.error().describe();
        return nullptr;
    }

    core::ChannelConfig config;
    config.type = type;
    config.reliable = true;
    config.sync = core::ChannelConfig::Sync::Sequential;
    config.buffering = core::ChannelConfig::Buffering::ZeroCopy;
    config.maxMessageBytes = max_message;
    config.targetDevice = peer.value().deviceAddr();
    // Named for per-channel delivery-latency attribution.
    config.name = owner.bindname() + "->" + peer_bindname;

    auto channel =
        owner.runtime().executive().createChannel(config, owner.site());
    if (!channel) {
        LOG_WARN << owner.bindname() << ": channel to " << peer_bindname
                 << " failed: " << channel.error().describe();
        return nullptr;
    }
    Status connected =
        channel.value()->connectOffcode(*peer.value().offcode);
    if (!connected) {
        LOG_WARN << owner.bindname() << ": connect to " << peer_bindname
                 << " failed: " << connected.error().describe();
        return nullptr;
    }
    return channel.value();
}

} // namespace

// --------------------------------------------------------------------
// StreamerNetOffcode
// --------------------------------------------------------------------

StreamerNetOffcode::StreamerNetOffcode(TivoEnvPtr env)
    : Offcode("tivo.StreamerNet"), env_(std::move(env))
{
}

Status
StreamerNetOffcode::start()
{
    // Fan the received stream out to the Decoder and the disk-side
    // Streamer (paper Fig. 2: a packet goes to the GPU and the disk
    // controller; with a PCIe-style bus this is one transaction).
    auto decoder = runtime().getOffcode("tivo.Decoder");
    if (decoder) {
        core::ChannelConfig config;
        config.type = core::ChannelConfig::Type::Multicast;
        config.reliable = true;
        config.buffering = core::ChannelConfig::Buffering::ZeroCopy;
        config.maxMessageBytes = 8 * 1024;
        config.targetDevice = decoder.value().deviceAddr();
        config.name = "tivo.StreamerNet->fanout";
        auto channel = runtime().executive().createChannel(config, site());
        if (channel) {
            fanout_ = channel.value();
            fanout_->connectOffcode(*decoder.value().offcode);
            auto diskStreamer = runtime().getOffcode("tivo.StreamerDisk");
            if (diskStreamer)
                fanout_->connectOffcode(*diskStreamer.value().offcode);
        }
    }

    if (!env_->nic)
        return Status(ErrorCode::DeviceFault, "no NIC in environment");

    net::PacketHandler handler = [this](const net::Packet &packet) {
        onPacket(packet);
    };

    if (site().device() == env_->nic) {
        // Offloaded: packets terminate on the NIC firmware.
        Status bound =
            env_->nic->bindDevicePort(env_->videoPort, std::move(handler));
        if (!bound)
            return bound;
    } else {
        // Host fallback: DMA + interrupt + kernel/user copy per
        // packet.
        hw::OsKernel &os = site().machine().os();
        hostBuffer_ = os.allocRegion(env_->chunkBytes * 4);
        Status bound = env_->nic->bindHostPort(
            env_->videoPort, os, hostBuffer_, std::move(handler));
        if (!bound)
            return bound;
    }
    portBound_ = true;
    return Status::success();
}

void
StreamerNetOffcode::stop()
{
    if (portBound_ && env_->nic) {
        env_->nic->unbindPort(env_->videoPort);
        portBound_ = false;
    }
}

Bytes
StreamerNetOffcode::snapshotState() const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU64(packetsHandled_);
    return out;
}

void
StreamerNetOffcode::restoreState(const Bytes &snapshot)
{
    ByteReader reader(snapshot);
    auto handled = reader.readU64();
    if (handled)
        packetsHandled_ = handled.value();
}

void
StreamerNetOffcode::onPacket(const net::Packet &packet)
{
    ++packetsHandled_;
    const sim::SimTime started = site().machine().executor().now();
    obs::counter("tivo.packets_handled",
                 {{"site", site().isHost() ? "host" : "device"}})
        .increment();
    if (env_->onPacketArrival)
        env_->onPacketArrival(started);

    obs::Span span;
    openStageSpan(span, site(), "StreamerNet.onPacket", started);
    sim::SimTime finished;
    if (site().isHost()) {
        hw::OsKernel &os = site().machine().os();
        os.syscall();
        os.copyBytes(hostBuffer_, hostBuffer_ + env_->chunkBytes,
                     packet.payload.size());
        finished = site().run(kHostStreamerCycles);
    } else {
        finished = site().run(kDeviceStreamerCycles);
    }
    span.end(finished);

    if (fanout_) {
        Status written = fanout_->write(core::encodeData(packet.payload));
        if (!written) {
            LOG_DEBUG << "StreamerNet: fanout write failed: "
                      << written.error().describe();
        }
    }
}

// --------------------------------------------------------------------
// StreamerDiskOffcode
// --------------------------------------------------------------------

StreamerDiskOffcode::StreamerDiskOffcode(TivoEnvPtr env)
    : Offcode("tivo.StreamerDisk"), env_(std::move(env))
{
}

Status
StreamerDiskOffcode::start()
{
    toFile_ = makeDataChannel(*this, "tivo.File",
                              core::ChannelConfig::Type::Unicast,
                              8 * 1024);
    if (toFile_) {
        auto file = runtime().getOffcode("tivo.File");
        fileProxy_ = std::make_unique<core::Proxy>(
            *toFile_, file.value().offcode->guid(),
            file.value().offcode->guid());
    }
    if (resumeReplay_) {
        // A predecessor died mid-replay; pick up at the restored
        // offset so the viewer never notices the restart.
        resumeReplay_ = false;
        if (!toDecoder_)
            toDecoder_ = makeDataChannel(
                *this, "tivo.Decoder",
                core::ChannelConfig::Type::Unicast, 8 * 1024);
        replaying_ = true;
        replayTick();
    }
    return Status::success();
}

Bytes
StreamerDiskOffcode::snapshotState() const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU64(chunksRecorded_);
    writer.writeU64(chunksReplayed_);
    writer.writeU64(replayOffset_);
    writer.writeU32(replaying_ ? 1 : 0);
    return out;
}

void
StreamerDiskOffcode::restoreState(const Bytes &snapshot)
{
    ByteReader reader(snapshot);
    auto recorded = reader.readU64();
    auto replayed = reader.readU64();
    auto offset = reader.readU64();
    auto replaying = reader.readU32();
    if (!recorded || !replayed || !offset || !replaying)
        return;
    chunksRecorded_ = recorded.value();
    chunksReplayed_ = replayed.value();
    replayOffset_ = offset.value();
    resumeReplay_ = replaying.value() != 0;
}

void
StreamerDiskOffcode::stop()
{
    stopped_ = true;
    replaying_ = false;
}

void
StreamerDiskOffcode::onData(const Payload &payload, core::ChannelHandle from)
{
    (void)from;
    // Record path: store the chunk unmodified, so the stored stream
    // is byte-identical to the live one (the paper's trick that lets
    // one Streamer component serve both devices).
    ++chunksRecorded_;
    obs::counter("tivo.chunks_recorded").increment();
    const sim::SimTime started = site().machine().executor().now();
    obs::Span span;
    openStageSpan(span, site(), "StreamerDisk.record", started);
    span.end(site().run(kDeviceForwardCycles));
    if (toFile_) {
        Status written = toFile_->write(core::encodeData(payload));
        if (!written) {
            LOG_DEBUG << "StreamerDisk: file write failed: "
                      << written.error().describe();
        }
    }
}

void
StreamerDiskOffcode::onManagement(const Payload &payload,
                                  core::ChannelHandle from)
{
    (void)from;
    const std::string command(payload.begin(), payload.end());
    if (command == "replay") {
        if (replaying_)
            return;
        if (!toDecoder_)
            toDecoder_ = makeDataChannel(
                *this, "tivo.Decoder",
                core::ChannelConfig::Type::Unicast, 8 * 1024);
        replaying_ = true;
        replayOffset_ = 0;
        replayTick();
    } else if (command == "stop-replay") {
        replaying_ = false;
    }
}

void
StreamerDiskOffcode::replayTick()
{
    if (!replaying_ || stopped_ || !fileProxy_ || !toDecoder_)
        return;

    Bytes args;
    ByteWriter writer(args);
    writer.writeU64(replayOffset_);
    writer.writeU32(static_cast<std::uint32_t>(env_->chunkBytes));

    fileProxy_->invoke("Read", args, [this](Result<Bytes> data) {
        if (!replaying_ || stopped_)
            return;
        if (!data) {
            LOG_DEBUG << "StreamerDisk: replay read failed: "
                      << data.error().describe();
            replaying_ = false;
            return;
        }
        if (data.value().empty()) {
            replaying_ = false; // end of recording
            return;
        }
        replayOffset_ += data.value().size();
        ++chunksReplayed_;
        obs::counter("tivo.chunks_replayed").increment();
        const sim::SimTime started = site().machine().executor().now();
        {
            obs::Span span;
            openStageSpan(span, site(), "StreamerDisk.replay", started);
            span.end(site().run(kDeviceForwardCycles));
            toDecoder_->write(core::encodeData(data.value()));
        }
        site().timerAfter(env_->sendPeriod, [this]() { replayTick(); });
    });
}

// --------------------------------------------------------------------
// DecoderOffcode
// --------------------------------------------------------------------

DecoderOffcode::DecoderOffcode(TivoEnvPtr env)
    : Offcode("tivo.Decoder"), env_(std::move(env))
{
}

Status
DecoderOffcode::start()
{
    toDisplay_ = makeDataChannel(*this, "tivo.Display",
                                 core::ChannelConfig::Type::Unicast,
                                 256 * 1024);
    if (site().isHost()) {
        // Software decoding drags frame buffers through the host L2.
        hostFrameBuffer_ = site().machine().os().allocRegion(
            static_cast<std::size_t>(env_->mpeg.width) *
            env_->mpeg.height * 4);
    }
    return Status::success();
}

void
DecoderOffcode::stop()
{
    assembler_ = StreamAssembler();
    decoder_.reset();
}

Bytes
DecoderOffcode::snapshotState() const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU64(framesDecoded_);
    writer.writeU64(decodeErrors_);
    return out;
}

void
DecoderOffcode::restoreState(const Bytes &snapshot)
{
    ByteReader reader(snapshot);
    auto decoded = reader.readU64();
    auto errors = reader.readU64();
    if (!decoded || !errors)
        return;
    framesDecoded_ = decoded.value();
    decodeErrors_ = errors.value();
    // The assembler and GOP state restart cold; decode resynchronizes
    // on the next I frame exactly as it does after corruption.
}

void
DecoderOffcode::onData(const Payload &payload, core::ChannelHandle from)
{
    (void)from;
    assembler_.feed(payload);

    while (true) {
        auto encoded = assembler_.nextFrame();
        if (!encoded)
            break; // incomplete — wait for more stream bytes

        auto frame = decoder_.decode(encoded.value());
        if (!frame) {
            // Mid-GOP join or corruption: resynchronize on the next
            // I frame.
            ++decodeErrors_;
            decoder_.reset();
            continue;
        }

        const std::size_t out_bytes = frame.value().bytes();
        const sim::SimTime started = site().machine().executor().now();
        obs::Span span;
        openStageSpan(span, site(), "Decoder.decode", started);
        sim::SimTime finished;
        if (site().device() == env_->gpu && env_->gpu) {
            finished = env_->gpu->acceleratedDecode(out_bytes);
        } else {
            const auto cycles = static_cast<std::uint64_t>(
                6.0 * static_cast<double>(out_bytes));
            finished = site().run(cycles);
            if (site().isHost())
                site().machine().l2().access(hostFrameBuffer_, out_bytes,
                                             true);
        }
        ++framesDecoded_;
        obs::counter("tivo.frames_decoded",
                     {{"site", site().isHost() ? "host" : "device"}})
            .increment();
        span.end(finished);

        if (toDisplay_) {
            toDisplay_->write(
                core::encodeData(serializeRawFrame(frame.value())));
        }
    }
}

// --------------------------------------------------------------------
// DisplayOffcode
// --------------------------------------------------------------------

DisplayOffcode::DisplayOffcode(TivoEnvPtr env)
    : Offcode("tivo.Display"), env_(std::move(env))
{
}

void
DisplayOffcode::onData(const Payload &payload, core::ChannelHandle from)
{
    (void)from;
    auto frame = deserializeRawFrame(payload);
    if (!frame) {
        LOG_WARN << "Display: bad frame: " << frame.error().describe();
        return;
    }

    ++framesPresented_;
    obs::counter("tivo.frames_presented").increment();
    const std::uint32_t seq = frame.value().sequence;
    const sim::SimTime started = site().machine().executor().now();

    if (env_->gpu && site().device() == env_->gpu) {
        obs::Span span;
        openStageSpan(span, site(), "Display.present", started);
        span.end(site().run(300));
        env_->gpu->presentFrame(frame.value().pixels);
        if (env_->onFramePresented)
            env_->onFramePresented(seq);
        return;
    }

    // Host fallback: stage the frame and DMA it to the framebuffer.
    if (env_->gpu) {
        obs::Span span;
        openStageSpan(span, site(), "Display.present", started);
        span.end(site().run(1500));
        env_->gpu->dma().start(
            frame.value().pixels.size(),
            [this, pixels = frame.value().pixels, seq]() {
                env_->gpu->presentFrame(pixels);
                if (env_->onFramePresented)
                    env_->onFramePresented(seq);
            });
    } else if (env_->onFramePresented) {
        env_->onFramePresented(seq);
    }
}

// --------------------------------------------------------------------
// FileOffcode
// --------------------------------------------------------------------

FileOffcode::FileOffcode(TivoEnvPtr env, std::string bindname)
    : Offcode(std::move(bindname)), env_(std::move(env))
{
    registerMethod("Read",
                   [this](const Bytes &args) { return readMethod(args); });
    registerMethod("Size",
                   [this](const Bytes &args) { return sizeMethod(args); });
}

Status
FileOffcode::start()
{
    return Status::success();
}

void
FileOffcode::onData(const Payload &payload, core::ChannelHandle from)
{
    (void)from;
    // Append to the controller's write-back cache, then flush whole
    // blocks to the backing store asynchronously.
    content_.insert(content_.end(), payload.begin(), payload.end());
    site().run(300 + payload.size() / 8);
    flushBlocks();
}

void
FileOffcode::flushBlocks()
{
    dev::SmartDisk *disk =
        env_->disk && site().device() == env_->disk ? env_->disk : nullptr;
    if (!disk)
        return; // host fallback: the in-memory mirror is the store

    const std::size_t block = disk->diskConfig().blockBytes;
    while (content_.size() - flushedBytes_ >= block) {
        const std::uint64_t lba = flushedBytes_ / block;
        Bytes data(content_.begin() +
                       static_cast<std::ptrdiff_t>(flushedBytes_),
                   content_.begin() +
                       static_cast<std::ptrdiff_t>(flushedBytes_ + block));
        flushedBytes_ += block;
        disk->writeBlocks(lba, data, [](Status status) {
            if (!status) {
                LOG_WARN << "File: flush failed: "
                         << status.error().describe();
            }
        });
    }
}

Bytes
FileOffcode::snapshotState() const
{
    // The write-back cache *is* the recording; hand the whole store
    // (plus the flush cursor) to the successor so replay after a
    // controller restart serves identical bytes.
    Bytes out;
    ByteWriter writer(out);
    writer.writeU64(flushedBytes_);
    writer.writeBytes(content_);
    return out;
}

void
FileOffcode::restoreState(const Bytes &snapshot)
{
    ByteReader reader(snapshot);
    auto flushed = reader.readU64();
    auto content = reader.readBytes();
    if (!flushed || !content)
        return;
    flushedBytes_ = flushed.value();
    content_ = std::move(content).value();
}

Result<Bytes>
FileOffcode::readMethod(const Bytes &args)
{
    ByteReader reader(args);
    auto offset = reader.readU64();
    auto length = reader.readU32();
    if (!offset || !length)
        return Error(ErrorCode::InvalidArgument, "expected offset+length");

    site().run(400 + length.value() / 8);

    if (offset.value() >= content_.size())
        return Bytes{}; // EOF
    const std::size_t end = std::min<std::size_t>(
        offset.value() + length.value(), content_.size());
    return Bytes(content_.begin() +
                     static_cast<std::ptrdiff_t>(offset.value()),
                 content_.begin() + static_cast<std::ptrdiff_t>(end));
}

Result<Bytes>
FileOffcode::sizeMethod(const Bytes &)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU64(content_.size());
    return out;
}

// --------------------------------------------------------------------
// GuiOffcode
// --------------------------------------------------------------------

GuiOffcode::GuiOffcode(TivoEnvPtr env)
    : Offcode("tivo.Gui"), env_(std::move(env))
{
}

Status
GuiOffcode::requestReplay()
{
    auto oob = runtime().oobChannelOf("tivo.StreamerDisk");
    if (!oob)
        return Status(oob.error());
    const std::string command = "replay";
    return oob.value()->write(core::encodeManagement(
        Bytes(command.begin(), command.end())));
}

Status
GuiOffcode::requestStopReplay()
{
    auto oob = runtime().oobChannelOf("tivo.StreamerDisk");
    if (!oob)
        return Status(oob.error());
    const std::string command = "stop-replay";
    return oob.value()->write(core::encodeManagement(
        Bytes(command.begin(), command.end())));
}

// --------------------------------------------------------------------
// ServerFileOffcode
// --------------------------------------------------------------------

ServerFileOffcode::ServerFileOffcode(TivoEnvPtr env)
    : Offcode("tivo.server.File"), env_(std::move(env))
{
}

Status
ServerFileOffcode::start()
{
    if (!env_->network || env_->nasNode == net::kInvalidNode)
        return Status(ErrorCode::NetworkUnreachable,
                      "server File needs a NAS");

    // The NFS endpoint lives wherever this Offcode runs: on the NIC
    // when offloaded (the firmware speaks NFS directly), on the host
    // node otherwise.
    const net::NodeId node = env_->nic ? env_->nic->nodeId()
                                       : env_->peerNode;
    nfs_ = std::make_unique<net::NfsClient>(*env_->network, node,
                                            env_->nasNode,
                                            /*reply_port=*/33060);

    nfs_->getSize(env_->movieFile, [this](Result<std::uint64_t> size) {
        if (!size) {
            LOG_ERROR << "server File: movie missing: "
                      << size.error().describe();
            return;
        }
        fileSize_ = size.value();
        pump();
    });
    return Status::success();
}

void
ServerFileOffcode::stop()
{
    stopped_ = true;
}

void
ServerFileOffcode::onChannelConnected(core::ChannelHandle channel)
{
    // The streamer's pull channel (the OOB channel is Copying-mode;
    // data channels are ZeroCopy).
    if (channel.channel->config().buffering ==
        core::ChannelConfig::Buffering::ZeroCopy)
        consumer_ = channel;
}

void
ServerFileOffcode::onManagement(const Payload &payload,
                                core::ChannelHandle from)
{
    ByteReader reader(payload.data(), payload.size());
    auto command = reader.readString();
    auto count = reader.readU32();
    if (!command || command.value() != "more" || !count)
        return;
    if (from.valid())
        consumer_ = from;
    credits_ += count.value();
    pump();
}

void
ServerFileOffcode::pump()
{
    if (stopped_ || fileSize_ == 0 || !consumer_.valid())
        return;
    while (credits_ > 0 && inFlight_ < env_->prefetchWindow) {
        --credits_;
        ++inFlight_;
        const std::uint64_t offset = fileOffset_ % fileSize_;
        fileOffset_ += env_->chunkBytes;
        nfs_->read(env_->movieFile, offset,
                   static_cast<std::uint32_t>(env_->chunkBytes),
                   [this](Result<Bytes> data) {
                       if (inFlight_ > 0)
                           --inFlight_;
                       if (stopped_)
                           return;
                       if (!data) {
                           LOG_WARN << "server File: read failed: "
                                    << data.error().describe();
                           return;
                       }
                       ++chunksServed_;
                       site().run(500);
                       consumer_.write(core::encodeData(data.value()));
                       pump();
                   });
    }
}

// --------------------------------------------------------------------
// ServerBroadcastOffcode
// --------------------------------------------------------------------

ServerBroadcastOffcode::ServerBroadcastOffcode(TivoEnvPtr env)
    : Offcode("tivo.server.Broadcast"), env_(std::move(env))
{
}

Bytes
ServerBroadcastOffcode::snapshotState() const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU64(seq_);
    writer.writeU64(packetsSent_);
    return out;
}

void
ServerBroadcastOffcode::restoreState(const Bytes &snapshot)
{
    ByteReader reader(snapshot);
    auto seq = reader.readU64();
    auto sent = reader.readU64();
    if (!seq || !sent)
        return;
    seq_ = seq.value();
    packetsSent_ = sent.value();
}

void
ServerBroadcastOffcode::onData(const Payload &payload,
                               core::ChannelHandle from)
{
    (void)from;
    if (!env_->nic || env_->peerNode == net::kInvalidNode)
        return;

    net::Packet packet;
    packet.dst = env_->peerNode;
    packet.srcPort = env_->videoPort;
    packet.dstPort = env_->videoPort;
    packet.seq = seq_++;
    packet.payload = payload;

    if (site().device() == env_->nic) {
        env_->nic->sendFromDevice(std::move(packet));
    } else {
        hw::OsKernel &os = site().machine().os();
        os.syscall();
        const hw::Addr staging = os.allocRegion(payload.size());
        os.copyBytes(staging, staging + payload.size(), payload.size());
        env_->nic->sendFromHost(std::move(packet), staging);
    }
    ++packetsSent_;
}

// --------------------------------------------------------------------
// ServerStreamerOffcode
// --------------------------------------------------------------------

ServerStreamerOffcode::ServerStreamerOffcode(TivoEnvPtr env)
    : Offcode("tivo.server.Streamer"), env_(std::move(env))
{
}

Status
ServerStreamerOffcode::start()
{
    fromFile_ = makeDataChannel(*this, "tivo.server.File",
                                core::ChannelConfig::Type::Unicast,
                                8 * 1024);
    toBroadcast_ = makeDataChannel(*this, "tivo.server.Broadcast",
                                   core::ChannelConfig::Type::Unicast,
                                   8 * 1024);
    if (!fromFile_ || !toBroadcast_)
        return Status(ErrorCode::ChannelNotConnected,
                      "server streamer peers missing");

    // File pushes chunks back on our creator endpoint.
    fromFile_->installCallHandler(
        [this](const Payload &message, std::size_t) {
            auto payload = core::decodeData(message);
            if (payload)
                buffer_.push_back(std::move(payload).value());
        });

    // Prime the prefetch window, then run the pacing loop.
    fromFile_->write(core::encodeManagement(encodeCredits(
        static_cast<std::uint32_t>(env_->prefetchWindow))));
    site().timerAfter(env_->sendPeriod, [this]() { tick(); });
    return Status::success();
}

void
ServerStreamerOffcode::stop()
{
    stopped_ = true;
}

void
ServerStreamerOffcode::tick()
{
    if (stopped_)
        return;

    if (buffer_.empty()) {
        ++underruns_;
        obs::counter("tivo.server.underruns").increment();
    } else {
        Payload chunk = std::move(buffer_.front());
        buffer_.pop_front();
        const sim::SimTime started = site().machine().executor().now();
        // Ticks fire from a timer with no active context, so this
        // span is the root of each streamed chunk's trace.
        obs::Span span;
        openStageSpan(span, site(), "server.Streamer.tick", started);
        span.end(site().run(kDeviceForwardCycles));
        toBroadcast_->write(core::encodeData(chunk));
        ++chunksSent_;
        obs::counter("tivo.server.chunks_sent").increment();
        // Return the consumed credit so File stays one window ahead.
        fromFile_->write(core::encodeManagement(encodeCredits(1)));
    }
    site().timerAfter(env_->sendPeriod, [this]() { tick(); });
}

// --------------------------------------------------------------------
// Registration
// --------------------------------------------------------------------

namespace {

std::string
clientGuiOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.Gui</bindname>
    <interface name="IGui">
      <method name="Play"/><method name="Pause"/><method name="Replay"/>
    </interface>
  </package>
  <sw-env>
    <import><bindname>tivo.StreamerNet</bindname>
      <reference type="Link" pri="0"/></import>
    <import><bindname>tivo.StreamerDisk</bindname>
      <reference type="Link" pri="0"/></import>
  </sw-env>
  <targets><host-fallback/></targets>
</offcode>)";
}

std::string
clientStreamerNetOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.StreamerNet</bindname>
    <interface name="IStreamer"><method name="OnPacket"/></interface>
  </package>
  <sw-env>
    <import><bindname>tivo.Decoder</bindname>
      <reference type="Gang" pri="1"/></import>
    <import><bindname>tivo.StreamerDisk</bindname>
      <reference type="Gang" pri="1"/></import>
    <requires memory="131072">
      <capability name="mac-ethernet"/>
    </requires>
  </sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name>
      <bus>pci</bus><mac>ethernet</mac></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.2"/>
</offcode>)";
}

std::string
clientStreamerDiskOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.StreamerDisk</bindname>
    <interface name="IStreamer"><method name="Replay"/></interface>
  </package>
  <sw-env>
    <import><bindname>tivo.File</bindname>
      <reference type="Pull" pri="2"/></import>
    <requires memory="131072"/>
  </sw-env>
  <targets>
    <device-class id="0x0002"><name>Storage Controller</name>
      <bus>pci</bus></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.2"/>
</offcode>)";
}

std::string
clientDecoderOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.Decoder</bindname>
    <interface name="IDecoder"><method name="Decode"/></interface>
  </package>
  <sw-env>
    <import><bindname>tivo.Display</bindname>
      <reference type="Pull" pri="2"/></import>
    <requires memory="262144"/>
  </sw-env>
  <targets>
    <device-class id="0x0003"><name>Graphics Adapter</name></device-class>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.3"/>
</offcode>)";
}

std::string
clientDisplayOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.Display</bindname>
    <interface name="IDisplay"><method name="Present"/></interface>
  </package>
  <sw-env>
    <requires memory="262144">
      <capability name="framebuffer"/>
    </requires>
  </sw-env>
  <targets>
    <device-class id="0x0003"><name>Graphics Adapter</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.3"/>
</offcode>)";
}

std::string
clientFileOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.File</bindname>
    <interface name="IFile">
      <method name="Read"/><method name="Size"/>
    </interface>
  </package>
  <sw-env>
    <requires memory="524288">
      <capability name="block-store"/>
    </requires>
  </sw-env>
  <targets>
    <device-class id="0x0002"><name>Storage Controller</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.2"/>
</offcode>)";
}

std::string
serverStreamerOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.server.Streamer</bindname>
    <interface name="IServerStreamer"><method name="Start"/></interface>
  </package>
  <sw-env>
    <import><bindname>tivo.server.File</bindname>
      <reference type="Pull" pri="2"/></import>
    <import><bindname>tivo.server.Broadcast</bindname>
      <reference type="Pull" pri="2"/></import>
    <requires memory="131072"/>
  </sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.2"/>
</offcode>)";
}

std::string
serverFileOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.server.File</bindname>
    <interface name="IFile"><method name="Read"/></interface>
  </package>
  <sw-env>
    <requires memory="262144">
      <capability name="mac-ethernet"/>
    </requires>
  </sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.2"/>
</offcode>)";
}

std::string
serverBroadcastOdf()
{
    return R"(<offcode>
  <package>
    <bindname>tivo.server.Broadcast</bindname>
    <interface name="IBroadcast"><method name="Send"/></interface>
  </package>
  <sw-env>
    <requires memory="131072">
      <capability name="mac-ethernet"/>
    </requires>
  </sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.2"/>
</offcode>)";
}

} // namespace

Status
registerTivoOffcodes(core::Runtime &runtime, TivoEnvPtr env, TivoRole role)
{
    core::OffcodeDepot &depot = runtime.depot();
    Status status = Status::success();

    auto reg = [&](const std::string &xml,
                   std::function<std::unique_ptr<core::Offcode>()> factory,
                   std::size_t image) {
        if (!status)
            return;
        status = depot.registerOffcode(xml, std::move(factory), image);
    };

    if (role == TivoRole::Client) {
        reg(clientGuiOdf(),
            [env]() { return std::make_unique<GuiOffcode>(env); }, 24576);
        reg(clientStreamerNetOdf(),
            [env]() { return std::make_unique<StreamerNetOffcode>(env); },
            49152);
        reg(clientStreamerDiskOdf(),
            [env]() { return std::make_unique<StreamerDiskOffcode>(env); },
            49152);
        reg(clientDecoderOdf(),
            [env]() { return std::make_unique<DecoderOffcode>(env); },
            98304);
        reg(clientDisplayOdf(),
            [env]() { return std::make_unique<DisplayOffcode>(env); },
            32768);
        reg(clientFileOdf(),
            [env]() {
                return std::make_unique<FileOffcode>(env, "tivo.File");
            },
            65536);
    } else {
        reg(serverStreamerOdf(),
            [env]() {
                return std::make_unique<ServerStreamerOffcode>(env);
            },
            49152);
        reg(serverFileOdf(),
            [env]() { return std::make_unique<ServerFileOffcode>(env); },
            65536);
        reg(serverBroadcastOdf(),
            [env]() {
                return std::make_unique<ServerBroadcastOffcode>(env);
            },
            32768);
    }
    return status;
}

} // namespace hydra::tivo
