/**
 * @file
 * The TiVoPC Offcodes (paper Section 6, Table 1, Figs. 7-8).
 *
 * Client side: Streamer (one instance per device role, as the paper
 * deploys the component at both the NIC and the smart disk), Decoder,
 * Display, File, and the host-resident GUI. Server side: Streamer,
 * Broadcast and File Offcodes that together form the offloaded video
 * server. Every component implements both its offloaded path and a
 * host-CPU fallback, so the same binaries deploy anywhere the layout
 * resolver decides.
 */

#ifndef HYDRA_TIVO_COMPONENTS_HH
#define HYDRA_TIVO_COMPONENTS_HH

#include <deque>
#include <functional>
#include <memory>

#include "core/proxy.hh"
#include "core/runtime.hh"
#include "dev/disk.hh"
#include "dev/gpu.hh"
#include "dev/nic.hh"
#include "net/nfs.hh"
#include "tivo/mpeg.hh"

namespace hydra::tivo {

/** Shared environment every TiVoPC Offcode sees (one per machine). */
struct TivoEnv
{
    MpegConfig mpeg;
    net::Network *network = nullptr;
    net::Port videoPort = 5004;
    std::string movieFile = "movie.mpg";
    net::NodeId nasNode = net::kInvalidNode;
    net::NodeId peerNode = net::kInvalidNode; ///< stream destination

    dev::ProgrammableNic *nic = nullptr;
    dev::SmartDisk *disk = nullptr;
    dev::Gpu *gpu = nullptr;

    /** Streaming parameters (paper: 1 kB every 5 ms). */
    sim::SimTime sendPeriod = sim::milliseconds(5);
    std::size_t chunkBytes = 1024;
    std::size_t prefetchWindow = 32;

    /** Measurement taps. */
    std::function<void(sim::SimTime)> onPacketArrival;
    std::function<void(std::uint32_t)> onFramePresented;
};

using TivoEnvPtr = std::shared_ptr<TivoEnv>;

// --------------------------------------------------------------------
// Client-side Offcodes
// --------------------------------------------------------------------

/** Streamer at the network edge: NIC packets -> Decoder + disk. */
class StreamerNetOffcode : public core::Offcode
{
  public:
    explicit StreamerNetOffcode(TivoEnvPtr env);

    std::uint64_t packetsHandled() const { return packetsHandled_; }

    Bytes snapshotState() const override;
    void restoreState(const Bytes &snapshot) override;

  protected:
    Status start() override;
    void stop() override;

  private:
    void onPacket(const net::Packet &packet);

    TivoEnvPtr env_;
    core::Channel *fanout_ = nullptr; ///< multicast to Decoder + disk
    hw::Addr hostBuffer_ = 0;
    std::uint64_t packetsHandled_ = 0;
    bool portBound_ = false;
};

/** Streamer at the storage edge: recording and replay. */
class StreamerDiskOffcode : public core::Offcode
{
  public:
    explicit StreamerDiskOffcode(TivoEnvPtr env);

    void onData(const Payload &payload, core::ChannelHandle from) override;
    void onManagement(const Payload &payload,
                      core::ChannelHandle from) override;

    std::uint64_t chunksRecorded() const { return chunksRecorded_; }
    std::uint64_t chunksReplayed() const { return chunksReplayed_; }
    bool replaying() const { return replaying_; }

    Bytes snapshotState() const override;
    void restoreState(const Bytes &snapshot) override;

  protected:
    Status start() override;
    void stop() override;

  private:
    void replayTick();

    TivoEnvPtr env_;
    core::Channel *toFile_ = nullptr;
    core::Channel *toDecoder_ = nullptr;
    std::unique_ptr<core::Proxy> fileProxy_;
    std::uint64_t chunksRecorded_ = 0;
    std::uint64_t chunksReplayed_ = 0;
    std::uint64_t replayOffset_ = 0;
    bool replaying_ = false;
    bool stopped_ = false;
    /** A predecessor was restarted mid-replay; resume at start(). */
    bool resumeReplay_ = false;
};

/** MPEG decoder: payload chunks -> raw frames. */
class DecoderOffcode : public core::Offcode
{
  public:
    explicit DecoderOffcode(TivoEnvPtr env);

    void onData(const Payload &payload, core::ChannelHandle from) override;

    std::uint64_t framesDecoded() const { return framesDecoded_; }
    std::uint64_t decodeErrors() const { return decodeErrors_; }

    Bytes snapshotState() const override;
    void restoreState(const Bytes &snapshot) override;

  protected:
    Status start() override;
    void stop() override;

  private:
    TivoEnvPtr env_;
    core::Channel *toDisplay_ = nullptr;
    StreamAssembler assembler_;
    MpegDecoder decoder_;
    hw::Addr hostFrameBuffer_ = 0;
    std::uint64_t framesDecoded_ = 0;
    std::uint64_t decodeErrors_ = 0;
};

/** Display: raw frames -> GPU framebuffer. */
class DisplayOffcode : public core::Offcode
{
  public:
    explicit DisplayOffcode(TivoEnvPtr env);

    void onData(const Payload &payload, core::ChannelHandle from) override;

    std::uint64_t framesPresented() const { return framesPresented_; }

  private:
    TivoEnvPtr env_;
    std::uint64_t framesPresented_ = 0;
};

/** File: record/replay store on the smart disk (or host memory). */
class FileOffcode : public core::Offcode
{
  public:
    explicit FileOffcode(TivoEnvPtr env, std::string bindname);

    void onData(const Payload &payload, core::ChannelHandle from) override;

    std::uint64_t bytesStored() const { return content_.size(); }

    Bytes snapshotState() const override;
    void restoreState(const Bytes &snapshot) override;

  protected:
    Status start() override;

  private:
    Result<Bytes> readMethod(const Bytes &args);
    Result<Bytes> sizeMethod(const Bytes &args);
    void flushBlocks();

    TivoEnvPtr env_;
    /** Controller write-back cache mirroring the backing store. */
    Bytes content_;
    std::uint64_t flushedBytes_ = 0;
};

/** GUI: host-side controls (play / pause / replay). */
class GuiOffcode : public core::Offcode
{
  public:
    explicit GuiOffcode(TivoEnvPtr env);

    /** Ask the disk-side Streamer to replay the recorded stream. */
    Status requestReplay();
    Status requestStopReplay();

  private:
    TivoEnvPtr env_;
};

// --------------------------------------------------------------------
// Server-side Offcodes
// --------------------------------------------------------------------

/** Server File: prefetching NAS reader (double-buffered). */
class ServerFileOffcode : public core::Offcode
{
  public:
    explicit ServerFileOffcode(TivoEnvPtr env);

    std::uint64_t chunksServed() const { return chunksServed_; }

  protected:
    Status start() override;
    void stop() override;

  public:
    void onChannelConnected(core::ChannelHandle channel) override;
    void onManagement(const Payload &payload,
                      core::ChannelHandle from) override;

  private:
    void pump();

    TivoEnvPtr env_;
    std::unique_ptr<net::NfsClient> nfs_;
    core::ChannelHandle consumer_;
    std::uint64_t fileOffset_ = 0;
    std::uint64_t fileSize_ = 0;
    std::size_t inFlight_ = 0;
    std::size_t credits_ = 0;
    std::uint64_t chunksServed_ = 0;
    bool stopped_ = false;
};

/** Server Broadcast: UDP transmit of stream chunks. */
class ServerBroadcastOffcode : public core::Offcode
{
  public:
    explicit ServerBroadcastOffcode(TivoEnvPtr env);

    void onData(const Payload &payload, core::ChannelHandle from) override;

    std::uint64_t packetsSent() const { return packetsSent_; }

    Bytes snapshotState() const override;
    void restoreState(const Bytes &snapshot) override;

  private:
    TivoEnvPtr env_;
    std::uint64_t seq_ = 0;
    std::uint64_t packetsSent_ = 0;
};

/** Server Streamer: the 5 ms pacing loop. */
class ServerStreamerOffcode : public core::Offcode
{
  public:
    explicit ServerStreamerOffcode(TivoEnvPtr env);

    std::uint64_t chunksSent() const { return chunksSent_; }
    std::uint64_t underruns() const { return underruns_; }

  protected:
    Status start() override;
    void stop() override;

  private:
    void tick();

    TivoEnvPtr env_;
    core::Channel *fromFile_ = nullptr;
    core::Channel *toBroadcast_ = nullptr;
    std::deque<Payload> buffer_;
    std::uint64_t chunksSent_ = 0;
    std::uint64_t underruns_ = 0;
    bool stopped_ = false;
};

// --------------------------------------------------------------------
// Registration
// --------------------------------------------------------------------

/** Which side's component set to register. */
enum class TivoRole { Client, Server };

/**
 * Register the role's Offcodes (ODF manifests + factories) with a
 * runtime's depot. Client root: "tivo.Gui"; server root:
 * "tivo.server.Streamer".
 */
Status registerTivoOffcodes(core::Runtime &runtime, TivoEnvPtr env,
                            TivoRole role);

} // namespace hydra::tivo

#endif // HYDRA_TIVO_COMPONENTS_HH
