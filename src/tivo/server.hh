/**
 * @file
 * The three Video Server implementations of the paper's evaluation
 * (Section 6.4, Fig. 7 markers 1-3):
 *
 *  1. SimpleServer — user-space loop: nanosleep pacing, blocking
 *     NFS read() into a user buffer, then a UDP send(); two copies
 *     and two syscalls per chunk, each wakeup at the mercy of the
 *     scheduler tick.
 *  2. SendfileServer — sendfile(): the NAS payload lands in a kernel
 *     page by DMA and the NIC scatter-gathers straight from it; one
 *     syscall, no user copies, no mid-iteration blocking (readahead
 *     keeps the page warm).
 *  3. OffloadedVideoServer — the HYDRA version: Streamer, File and
 *     Broadcast Offcodes Pull-constrained onto the programmable NIC;
 *     the host CPU never sees the stream.
 */

#ifndef HYDRA_TIVO_SERVER_HH
#define HYDRA_TIVO_SERVER_HH

#include <deque>
#include <memory>

#include "common/rng.hh"
#include "core/runtime.hh"
#include "dev/nic.hh"
#include "net/nfs.hh"
#include "tivo/components.hh"

namespace hydra::tivo {

/** Shared server parameters. */
struct ServerConfig
{
    sim::SimTime sendPeriod = sim::milliseconds(5);
    std::size_t chunkBytes = 1024;
    std::string movieFile = "movie.mpg";
    net::NodeId nasNode = net::kInvalidNode;
    net::NodeId clientNode = net::kInvalidNode;
    net::Port videoPort = 5004;

    /**
     * Per-iteration host-path cost beyond the explicitly modeled
     * operations (allocator churn, TLB/cache stalls, daemon
     * interference) — calibrated against the paper's Table 3 CPU
     * utilization (see EXPERIMENTS.md).
     */
    std::uint64_t simplePathOverheadCycles = 750000;
    std::uint64_t sendfilePathOverheadCycles = 460000;
};

/** Common interface so the harness can drive any server kind. */
class VideoServer
{
  public:
    virtual ~VideoServer() = default;

    /** Begin streaming (asynchronous; runs until stop()). */
    virtual Status startStreaming() = 0;
    virtual void stop() = 0;

    virtual std::uint64_t chunksSent() const = 0;
};

/** Implementation 1: copy-everything user-space server. */
class SimpleServer : public VideoServer
{
  public:
    SimpleServer(hw::Machine &machine, dev::ProgrammableNic &nic,
                 net::Network &network, ServerConfig config);
    ~SimpleServer() override;

    Status startStreaming() override;
    void stop() override;
    std::uint64_t chunksSent() const override { return chunksSent_; }

  private:
    void iteration();

    hw::Machine &machine_;
    dev::ProgrammableNic &nic_;
    ServerConfig config_;
    std::unique_ptr<net::NfsClient> nfs_;
    hw::Addr kernelBuffer_ = 0;
    hw::Addr userBuffer_ = 0;
    hw::Addr skbPool_ = 0;
    std::size_t skbSlot_ = 0;
    std::uint64_t fileOffset_ = 0;
    std::uint64_t fileSize_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t chunksSent_ = 0;
    bool running_ = false;
};

/** Implementation 2: zero-copy sendfile server. */
class SendfileServer : public VideoServer
{
  public:
    SendfileServer(hw::Machine &machine, dev::ProgrammableNic &nic,
                   net::Network &network, ServerConfig config);
    ~SendfileServer() override;

    Status startStreaming() override;
    void stop() override;
    std::uint64_t chunksSent() const override { return chunksSent_; }

  private:
    void iteration();
    void refillReadahead();

    hw::Machine &machine_;
    dev::ProgrammableNic &nic_;
    ServerConfig config_;
    std::unique_ptr<net::NfsClient> nfs_;
    hw::Addr pageCache_ = 0;
    std::deque<Bytes> readahead_;
    std::size_t readaheadInFlight_ = 0;
    std::uint64_t fileOffset_ = 0;
    std::uint64_t fileSize_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t chunksSent_ = 0;
    bool running_ = false;
};

/**
 * Extra baseline (paper §1.1): an "onloaded" server in the style of
 * Piglet / Regnier et al. — a dedicated host CPU core busy-polls a
 * microsecond-precision software timer wheel and runs the whole I/O
 * path, bypassing the scheduler tick. Pacing jitter rivals the
 * offloaded server, but every payload still crosses the host bus,
 * the shared L2 still sees the copies, and an entire 68 W host core
 * is pinned at 100 % — the trade the paper's offloading argument
 * calls out.
 */
class OnloadedServer : public VideoServer
{
  public:
    OnloadedServer(hw::Machine &machine, dev::ProgrammableNic &nic,
                   net::Network &network, ServerConfig config);
    ~OnloadedServer() override;

    Status startStreaming() override;
    void stop() override;
    std::uint64_t chunksSent() const override { return chunksSent_; }

    /** The dedicated I/O core (fully consumed by busy-polling). */
    hw::Cpu &ioCpu() { return *ioCpu_; }

  private:
    void iteration();

    hw::Machine &machine_;
    dev::ProgrammableNic &nic_;
    ServerConfig config_;
    std::unique_ptr<hw::Cpu> ioCpu_;
    std::unique_ptr<net::NfsClient> nfs_;
    hydra::Rng rng_;
    hw::Addr kernelBuffer_ = 0;
    hw::Addr skbPool_ = 0;
    std::size_t skbSlot_ = 0;
    std::deque<Bytes> readahead_;
    std::size_t readaheadInFlight_ = 0;
    std::uint64_t fileOffset_ = 0;
    std::uint64_t fileSize_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t chunksSent_ = 0;
    bool running_ = false;

    void refillReadahead();
};

/** Implementation 3: the offload-aware server on HYDRA. */
class OffloadedVideoServer : public VideoServer
{
  public:
    /**
     * @param runtime A runtime on the server machine with the NIC
     * attached. Registers the server Offcodes and deploys
     * "tivo.server.Streamer" (which Pulls File and Broadcast onto
     * the NIC).
     */
    OffloadedVideoServer(core::Runtime &runtime, TivoEnvPtr env);

    Status startStreaming() override;
    void stop() override;
    std::uint64_t chunksSent() const override;

    /** True once deployment finished (deployment is event-driven). */
    bool deployed() const { return deployed_; }
    const std::string &deploymentError() const { return error_; }

  private:
    core::Runtime &runtime_;
    TivoEnvPtr env_;
    bool deployed_ = false;
    bool startRequested_ = false;
    std::string error_;
};

} // namespace hydra::tivo

#endif // HYDRA_TIVO_SERVER_HH
