#include "tivo/mpeg.hh"

#include <cassert>

namespace hydra::tivo {

namespace {

constexpr std::uint16_t kFrameMagic = 0x4d4c; // "ML"

/** Run-length encode (count, value) pairs; count in [1, 255]. */
Bytes
rleEncode(const Bytes &input)
{
    Bytes out;
    out.reserve(input.size() / 4 + 16);
    std::size_t i = 0;
    while (i < input.size()) {
        const std::uint8_t value = input[i];
        std::size_t run = 1;
        while (i + run < input.size() && input[i + run] == value &&
               run < 255)
            ++run;
        out.push_back(static_cast<std::uint8_t>(run));
        out.push_back(value);
        i += run;
    }
    return out;
}

Result<Bytes>
rleDecode(const Bytes &input, std::size_t expected_size)
{
    Bytes out;
    out.reserve(expected_size);
    if (input.size() % 2 != 0)
        return Error(ErrorCode::ParseError, "odd RLE payload");
    for (std::size_t i = 0; i < input.size(); i += 2) {
        const std::uint8_t run = input[i];
        const std::uint8_t value = input[i + 1];
        if (run == 0)
            return Error(ErrorCode::ParseError, "zero-length RLE run");
        out.insert(out.end(), run, value);
    }
    if (out.size() != expected_size)
        return Error(ErrorCode::ParseError, "RLE size mismatch");
    return out;
}

} // namespace

SyntheticVideo::SyntheticVideo(MpegConfig config, std::uint64_t seed)
    : config_(config), seed_(seed)
{
}

RawFrame
SyntheticVideo::frame(std::uint32_t sequence) const
{
    RawFrame out;
    out.width = config_.width;
    out.height = config_.height;
    out.sequence = sequence;
    out.pixels.resize(static_cast<std::size_t>(config_.width) *
                      config_.height);

    // A banded gradient that drifts with time: smooth enough that
    // delta frames compress well, structured enough to detect
    // corruption anywhere in the pipeline.
    const std::uint32_t shift =
        static_cast<std::uint32_t>((seed_ + sequence * 3) & 0xff);
    for (std::uint32_t y = 0; y < config_.height; ++y) {
        const std::uint8_t row_base =
            static_cast<std::uint8_t>((y / 8) * 16 + shift);
        for (std::uint32_t x = 0; x < config_.width; ++x) {
            const std::size_t i =
                static_cast<std::size_t>(y) * config_.width + x;
            std::uint8_t pixel =
                static_cast<std::uint8_t>(row_base + (x / 32));
            // Quasi-static film grain on every fourth pixel: keeps
            // intra-frame RLE runs short (realistic I-frame sizes)
            // while changing slowly (every 8 frames) so delta frames
            // stay much smaller than I frames.
            if (x % 4 == 0) {
                const std::uint64_t h =
                    (seed_ ^
                     (static_cast<std::uint64_t>(sequence / 8) << 32) ^
                     i) *
                    0x9e3779b97f4a7c15ull;
                pixel = static_cast<std::uint8_t>(pixel + (h >> 61));
            }
            out.pixels[i] = pixel;
        }
    }
    return out;
}

MpegEncoder::MpegEncoder(MpegConfig config) : config_(config)
{
    assert(config_.gopLength > 0);
    assert(config_.pSpacing > 0);
}

FrameType
MpegEncoder::frameTypeFor(std::uint32_t sequence) const
{
    const std::uint32_t pos = sequence % config_.gopLength;
    if (pos == 0)
        return FrameType::I;
    return pos % config_.pSpacing == 0 ? FrameType::P : FrameType::B;
}

void
MpegEncoder::reset()
{
    reference_.clear();
    hasReference_ = false;
}

Result<EncodedFrame>
MpegEncoder::encode(const RawFrame &frame)
{
    const std::size_t expected =
        static_cast<std::size_t>(frame.width) * frame.height;
    if (frame.pixels.size() != expected)
        return Error(ErrorCode::InvalidArgument, "frame size mismatch");

    EncodedFrame out;
    out.sequence = frame.sequence;
    out.width = frame.width;
    out.height = frame.height;
    out.type = frameTypeFor(frame.sequence);

    if (out.type == FrameType::I || !hasReference_) {
        out.type = FrameType::I;
        out.payload = rleEncode(frame.pixels);
    } else {
        Bytes delta(frame.pixels.size());
        for (std::size_t i = 0; i < delta.size(); ++i)
            delta[i] = static_cast<std::uint8_t>(frame.pixels[i] -
                                                 reference_[i]);
        out.payload = rleEncode(delta);
    }

    reference_ = frame.pixels;
    hasReference_ = true;
    return out;
}

void
MpegDecoder::reset()
{
    reference_.clear();
    hasReference_ = false;
}

Result<RawFrame>
MpegDecoder::decode(const EncodedFrame &frame)
{
    const std::size_t expected =
        static_cast<std::size_t>(frame.width) * frame.height;

    RawFrame out;
    out.width = frame.width;
    out.height = frame.height;
    out.sequence = frame.sequence;

    if (frame.type == FrameType::I) {
        auto pixels = rleDecode(frame.payload, expected);
        if (!pixels)
            return pixels.error();
        out.pixels = std::move(pixels).value();
    } else {
        if (!hasReference_ || reference_.size() != expected)
            return Error(ErrorCode::ParseError,
                         "delta frame without matching reference");
        auto delta = rleDecode(frame.payload, expected);
        if (!delta)
            return delta.error();
        out.pixels.resize(expected);
        for (std::size_t i = 0; i < expected; ++i)
            out.pixels[i] = static_cast<std::uint8_t>(
                reference_[i] + delta.value()[i]);
    }

    reference_ = out.pixels;
    hasReference_ = true;
    return out;
}

Bytes
serializeFrame(const EncodedFrame &frame)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU16(kFrameMagic);
    writer.writeU8(static_cast<std::uint8_t>(frame.type));
    writer.writeU32(frame.sequence);
    writer.writeU32(frame.width);
    writer.writeU32(frame.height);
    writer.writeBytes(frame.payload);
    return out;
}

void
StreamAssembler::feed(const std::uint8_t *data, std::size_t size)
{
    // Compact occasionally so long streams stay bounded.
    if (pos_ > 0 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

Result<EncodedFrame>
StreamAssembler::nextFrame()
{
    // Header: magic(2) type(1) seq(4) w(4) h(4) payload_len(4).
    constexpr std::size_t kHeaderBytes = 19;

    // Resynchronize on the frame magic, so a consumer that joins the
    // stream mid-frame skips to the next frame boundary.
    while (buffer_.size() - pos_ >= 2 &&
           !(buffer_[pos_] == (kFrameMagic & 0xff) &&
             buffer_[pos_ + 1] == (kFrameMagic >> 8)))
        ++pos_;

    if (buffer_.size() - pos_ < kHeaderBytes)
        return Error(ErrorCode::NotFound, "incomplete header");

    Bytes view(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
               buffer_.end());
    ByteReader reader(view);
    auto magic = reader.readU16();
    if (!magic || magic.value() != kFrameMagic)
        return Error(ErrorCode::ParseError, "bad frame magic");
    auto type = reader.readU8();
    auto seq = reader.readU32();
    auto width = reader.readU32();
    auto height = reader.readU32();
    auto payload = reader.readBytes();
    if (!payload)
        return Error(ErrorCode::NotFound, "incomplete frame payload");

    EncodedFrame frame;
    frame.type = static_cast<FrameType>(type.value());
    frame.sequence = seq.value();
    frame.width = width.value();
    frame.height = height.value();
    frame.payload = std::move(payload).value();

    pos_ += kHeaderBytes + frame.payload.size();
    return frame;
}

Bytes
encodeMovie(const MpegConfig &config, std::uint32_t frames,
            std::uint64_t seed)
{
    SyntheticVideo source(config, seed);
    MpegEncoder encoder(config);
    Bytes out;
    for (std::uint32_t i = 0; i < frames; ++i) {
        auto encoded = encoder.encode(source.frame(i));
        assert(encoded);
        const Bytes wire = serializeFrame(encoded.value());
        out.insert(out.end(), wire.begin(), wire.end());
    }
    return out;
}

} // namespace hydra::tivo
