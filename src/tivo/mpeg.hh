/**
 * @file
 * MpegLite: a small, lossless MPEG-like codec for the TiVoPC case
 * study. Real MPEG streams are unavailable offline, so MpegLite
 * keeps the structural properties the paper's pipeline exercises —
 * a GOP of I/P/B frames (I: intra-coded full frame; P/B: delta
 * against a reference) with run-length-coded payloads framed by
 * per-frame headers — while remaining exactly decodable so tests
 * can verify the Streamer/Decoder/Display chain end to end.
 */

#ifndef HYDRA_TIVO_MPEG_HH
#define HYDRA_TIVO_MPEG_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"
#include "common/payload.hh"
#include "common/result.hh"

namespace hydra::tivo {

/** MPEG frame types (paper Section 6.2). */
enum class FrameType : std::uint8_t { I = 1, P = 2, B = 3 };

/** One decoded (raw) video frame. */
struct RawFrame
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::uint32_t sequence = 0;
    Bytes pixels; ///< width*height luma bytes

    std::size_t bytes() const { return pixels.size(); }
};

/** One encoded frame as it appears in the stream. */
struct EncodedFrame
{
    FrameType type = FrameType::I;
    std::uint32_t sequence = 0;
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    Bytes payload; ///< RLE(-delta) coded pixel data
};

/** Codec configuration. */
struct MpegConfig
{
    std::uint32_t width = 160;
    std::uint32_t height = 120;
    /** GOP pattern length: one I frame per gopLength frames. */
    std::uint32_t gopLength = 9;
    /** Within a GOP, every bFrequency-th frame is P, the rest B. */
    std::uint32_t pSpacing = 3;
};

/** Deterministic synthetic video source (moving gradient). */
class SyntheticVideo
{
  public:
    explicit SyntheticVideo(MpegConfig config, std::uint64_t seed = 42);

    /** Generate the raw frame at index @p sequence. */
    RawFrame frame(std::uint32_t sequence) const;

  private:
    MpegConfig config_;
    std::uint64_t seed_;
};

/** Encoder: raw frames in GOP order to encoded frames. */
class MpegEncoder
{
  public:
    explicit MpegEncoder(MpegConfig config);

    /** Encode the next frame (state: reference frame for deltas). */
    Result<EncodedFrame> encode(const RawFrame &frame);

    /** Frame type the GOP assigns to @p sequence. */
    FrameType frameTypeFor(std::uint32_t sequence) const;

    void reset();

  private:
    MpegConfig config_;
    Bytes reference_;
    bool hasReference_ = false;
};

/** Decoder: encoded frames back to raw frames (exact). */
class MpegDecoder
{
  public:
    MpegDecoder() = default;

    /**
     * Decode one frame. P/B frames require the reference from a
     * previously decoded frame; decoding an I frame resets state.
     */
    Result<RawFrame> decode(const EncodedFrame &frame);

    void reset();

  private:
    Bytes reference_;
    bool hasReference_ = false;
};

/** Serialize an encoded frame with its stream header. */
Bytes serializeFrame(const EncodedFrame &frame);

/**
 * Incremental stream parser: feed arbitrary byte chunks (the paper
 * streams 1 kB chunks that ignore frame boundaries) and retrieve
 * complete frames as they form.
 */
class StreamAssembler
{
  public:
    /** Append a chunk of stream bytes. */
    void feed(const std::uint8_t *data, std::size_t size);
    void feed(const Bytes &chunk) { feed(chunk.data(), chunk.size()); }
    void feed(const Payload &chunk) { feed(chunk.data(), chunk.size()); }

    /** Pop the next complete frame, if any. */
    Result<EncodedFrame> nextFrame();

    /** Bytes buffered but not yet consumed. */
    std::size_t bufferedBytes() const { return buffer_.size() - pos_; }

  private:
    Bytes buffer_;
    std::size_t pos_ = 0;
};

/** Encode a whole movie to a byte stream (for NAS seeding). */
Bytes encodeMovie(const MpegConfig &config, std::uint32_t frames,
                  std::uint64_t seed = 42);

} // namespace hydra::tivo

#endif // HYDRA_TIVO_MPEG_HH
