#include "tivo/harness.hh"

#include "chaos/chaos.hh"
#include "common/logging.hh"
#include "obs/attribution.hh"
#include "obs/flight.hh"
#include "obs/profiler.hh"
#include "obs/slo.hh"

namespace hydra::tivo {

std::string_view
serverKindName(ServerKind kind)
{
    switch (kind) {
      case ServerKind::None: return "idle";
      case ServerKind::Simple: return "simple";
      case ServerKind::Sendfile: return "sendfile";
      case ServerKind::Onloaded: return "onloaded";
      case ServerKind::Offloaded: return "offloaded";
    }
    return "?";
}

std::string_view
clientKindName(ClientKind kind)
{
    switch (kind) {
      case ClientKind::None: return "idle";
      case ClientKind::Receiver: return "receiver";
      case ClientKind::UserSpace: return "user-space";
      case ClientKind::Offloaded: return "offloaded";
    }
    return "?";
}

Testbed::Testbed(TestbedConfig config) : config_(config)
{
    exec_ = exec::makeExecutor(config_.executor, config_.batchMax);
    buildFabric();
    buildServer();
    buildClient();
    result_.scenarioName = std::string(serverKindName(config_.server)) +
                           "/" + std::string(clientKindName(config_.client));
}

Testbed::~Testbed()
{
    // Stop active producers before tearing down devices they use.
    if (server_)
        server_->stop();
    if (userClient_)
        userClient_->stop();
    if (offloadedClient_)
        offloadedClient_->stop();
}

void
Testbed::buildFabric()
{
    net::NetworkConfig netConfig;
    netConfig.linkGbps = 1.0;
    netConfig.dropProbability = config_.dropProbability;
    netConfig.lossPort = 5004; // lose only video datagrams, not NFS
    netConfig.seed = config_.seed * 31 + 7;
    network_ = std::make_unique<net::Network>(*exec_, netConfig);

    nasNode_ = network_->addNode("nas");
    serverNode_ = network_->addNode("server-nic");
    clientNode_ = network_->addNode("client-nic");
    clientDiskNode_ = network_->addNode("client-smartdisk");

    nas_ = std::make_unique<net::NfsServer>(*network_, nasNode_);
    nas_->putFile(config_.serverTuning.movieFile.empty()
                      ? "movie.mpg"
                      : config_.serverTuning.movieFile,
                  encodeMovie(config_.mpeg, config_.movieFrames,
                              config_.seed));
}

void
Testbed::buildServer()
{
    hw::MachineConfig machineConfig;
    machineConfig.name = "server";
    machineConfig.noiseSeed = config_.seed * 131 + 1;
    if (config_.quietHost) {
        machineConfig.os.wakeupNoiseSigma = 0;
        machineConfig.os.preemptionProbability = 0.0;
    }
    serverMachine_ = std::make_unique<hw::Machine>(*exec_, machineConfig);
    serverMachine_->os().startBackgroundLoad();

    dev::DeviceConfig nicConfig = dev::ProgrammableNic::nicDefaultConfig();
    nicConfig.name = "server-nic";
    nicConfig.noiseSeed = config_.seed * 131 + 2;
    serverNic_ = std::make_unique<dev::ProgrammableNic>(
        *exec_, serverMachine_->bus(), *network_, serverNode_, nicConfig);

    ServerConfig serverConfig = config_.serverTuning;
    serverConfig.sendPeriod = config_.sendPeriod;
    serverConfig.chunkBytes = config_.chunkBytes;
    serverConfig.nasNode = nasNode_;
    serverConfig.clientNode = clientNode_;
    if (serverConfig.movieFile.empty())
        serverConfig.movieFile = "movie.mpg";

    switch (config_.server) {
      case ServerKind::None:
        break;
      case ServerKind::Simple:
        server_ = std::make_unique<SimpleServer>(
            *serverMachine_, *serverNic_, *network_, serverConfig);
        break;
      case ServerKind::Sendfile:
        server_ = std::make_unique<SendfileServer>(
            *serverMachine_, *serverNic_, *network_, serverConfig);
        break;
      case ServerKind::Onloaded:
        server_ = std::make_unique<OnloadedServer>(
            *serverMachine_, *serverNic_, *network_, serverConfig);
        break;
      case ServerKind::Offloaded: {
        serverRuntime_ = std::make_unique<core::Runtime>(*serverMachine_);
        serverRuntime_->attachDevice(*serverNic_);

        serverEnv_ = std::make_shared<TivoEnv>();
        serverEnv_->mpeg = config_.mpeg;
        serverEnv_->network = network_.get();
        serverEnv_->videoPort = serverConfig.videoPort;
        serverEnv_->movieFile = serverConfig.movieFile;
        serverEnv_->nasNode = nasNode_;
        serverEnv_->peerNode = clientNode_;
        serverEnv_->nic = serverNic_.get();
        serverEnv_->sendPeriod = config_.sendPeriod;
        serverEnv_->chunkBytes = config_.chunkBytes;
        server_ = std::make_unique<OffloadedVideoServer>(*serverRuntime_,
                                                         serverEnv_);
        break;
      }
    }
}

void
Testbed::buildClient()
{
    hw::MachineConfig machineConfig;
    machineConfig.name = "client";
    machineConfig.noiseSeed = config_.seed * 131 + 3;
    if (config_.quietHost) {
        machineConfig.os.wakeupNoiseSigma = 0;
        machineConfig.os.preemptionProbability = 0.0;
    }
    clientMachine_ = std::make_unique<hw::Machine>(*exec_, machineConfig);
    clientMachine_->os().startBackgroundLoad();

    dev::DeviceConfig nicConfig = dev::ProgrammableNic::nicDefaultConfig();
    nicConfig.name = "client-nic";
    nicConfig.noiseSeed = config_.seed * 131 + 4;
    clientNic_ = std::make_unique<dev::ProgrammableNic>(
        *exec_, clientMachine_->bus(), *network_, clientNode_, nicConfig);

    dev::DeviceConfig diskConfig = dev::SmartDisk::diskDefaultConfig();
    diskConfig.name = "client-disk";
    diskConfig.noiseSeed = config_.seed * 131 + 5;
    if (config_.diskNfsBacked) {
        clientDisk_ = std::make_unique<dev::SmartDisk>(
            *exec_, clientMachine_->bus(), *network_, clientDiskNode_,
            nasNode_, diskConfig);
    } else {
        clientDisk_ = std::make_unique<dev::SmartDisk>(
            *exec_, clientMachine_->bus(), diskConfig);
    }

    dev::DeviceConfig gpuConfig = dev::Gpu::gpuDefaultConfig();
    gpuConfig.name = "client-gpu";
    gpuConfig.noiseSeed = config_.seed * 131 + 6;
    gpu_ = std::make_unique<dev::Gpu>(*exec_, clientMachine_->bus(),
                                      gpuConfig);

    auto arrivalTap = [this](sim::SimTime now) { recordArrival(now); };

    switch (config_.client) {
      case ClientKind::None:
        break;
      case ClientKind::Receiver: {
        // Minimal measurement receiver: packets terminate on the NIC
        // and only the arrival time is recorded (the measurement
        // point for Table 2 / Fig. 9).
        Status bound = clientNic_->bindDevicePort(
            5004, [this](const net::Packet &packet) {
                (void)packet;
                ++result_.packetsReceived;
                recordArrival(exec_->now());
            });
        receiverBound_ = bound.ok();
        break;
      }
      case ClientKind::UserSpace: {
        ClientConfig clientConfig = config_.clientTuning;
        clientConfig.chunkBytes = config_.chunkBytes;
        userClient_ = std::make_unique<UserSpaceClient>(
            *clientMachine_, *clientNic_, *gpu_, clientDisk_.get(),
            clientConfig);
        userClient_->onPacketArrival = arrivalTap;
        break;
      }
      case ClientKind::Offloaded: {
        core::RuntimeConfig runtimeConfig;
        runtimeConfig.busMulticast = config_.busMulticast;
        clientRuntime_ = std::make_unique<core::Runtime>(*clientMachine_,
                                                         runtimeConfig);
        clientRuntime_->attachDevice(*clientNic_);
        clientRuntime_->attachDevice(*clientDisk_);
        clientRuntime_->attachDevice(*gpu_);

        clientEnv_ = std::make_shared<TivoEnv>();
        clientEnv_->mpeg = config_.mpeg;
        clientEnv_->network = network_.get();
        clientEnv_->videoPort = 5004;
        clientEnv_->nasNode = nasNode_;
        clientEnv_->peerNode = serverNode_;
        clientEnv_->nic = clientNic_.get();
        clientEnv_->disk = clientDisk_.get();
        clientEnv_->gpu = gpu_.get();
        clientEnv_->sendPeriod = config_.sendPeriod;
        clientEnv_->chunkBytes = config_.chunkBytes;
        clientEnv_->onPacketArrival = arrivalTap;
        offloadedClient_ =
            std::make_unique<OffloadedClient>(*clientRuntime_, clientEnv_);
        break;
      }
    }
}

void
Testbed::recordArrival(sim::SimTime now)
{
    if (now < measureStart_)
        return;
    if (haveArrival_) {
        result_.interarrivalMs.add(
            sim::toMilliseconds(now - lastArrival_));
    }
    lastArrival_ = now;
    haveArrival_ = true;
}

ScenarioResult
Testbed::run()
{
    measureStart_ = config_.warmup;

    // Deterministic chaos: execute the --chaos reset schedule against
    // this testbed's devices (matched by name). The reset itself is
    // the fault; the runtime's reset listeners drive the recovery.
    auto &chaosEngine = chaos::ChaosEngine::instance();
    if (chaosEngine.enabled()) {
        for (const chaos::ScheduledReset &reset :
             chaosEngine.spec().resets) {
            dev::Device *target = nullptr;
            for (dev::Device *candidate :
                 {static_cast<dev::Device *>(serverNic_.get()),
                  static_cast<dev::Device *>(clientNic_.get()),
                  static_cast<dev::Device *>(clientDisk_.get()),
                  static_cast<dev::Device *>(gpu_.get())})
                if (candidate && candidate->name() == reset.device)
                    target = candidate;
            if (!target) {
                LOG_WARN << "chaos: no device named '" << reset.device
                         << "' in this scenario; reset skipped";
                continue;
            }
            exec_->scheduleAt(
                reset.at, [target, at = reset.at,
                           downtime = reset.downtime]() {
                    chaos::ChaosEngine::instance().recordFault(
                        "device_reset", at);
                    target->reset(downtime);
                });
        }
    }

    // Kick off the workload.
    if (userClient_) {
        Status started = userClient_->startWatching();
        if (!started)
            result_.deploymentOk = false;
    }
    if (offloadedClient_) {
        Status started = offloadedClient_->startWatching();
        if (!started)
            result_.deploymentOk = false;
    }
    if (server_) {
        Status started = server_->startStreaming();
        if (!started)
            result_.deploymentOk = false;
    }

    // Let deployment and stream start-up settle.
    exec_->runUntil(config_.warmup);

    if (offloadedClient_ && !offloadedClient_->deployed())
        result_.deploymentOk = false;
    if (auto *offloaded =
            dynamic_cast<OffloadedVideoServer *>(server_.get());
        offloaded && !offloaded->deployed())
        result_.deploymentOk = false;

    // Measurement epoch: reset windows and sample periodically.
    hw::CpuMeter serverMeter(serverMachine_->cpu());
    hw::CpuMeter clientMeter(clientMachine_->cpu());
    serverMeter.beginWindow(exec_->now());
    clientMeter.beginWindow(exec_->now());
    serverMachine_->l2().beginWindow();
    clientMachine_->l2().beginWindow();

    const std::uint64_t serverBusBase =
        serverMachine_->bus().stats().transactions;
    const std::uint64_t clientBusBase =
        clientMachine_->bus().stats().transactions;

    const exec::TaskId sampler =
        exec_->schedulePeriodic(config_.sampleInterval, [&]() {
        result_.serverCpuPct.add(serverMeter.sample(exec_->now()) * 100.0);
        result_.clientCpuPct.add(clientMeter.sample(exec_->now()) * 100.0);
        result_.serverL2MissRate.add(
            serverMachine_->l2().windowStats().missRate());
        result_.clientL2MissRate.add(
            clientMachine_->l2().windowStats().missRate());
        serverMachine_->l2().beginWindow();
        clientMachine_->l2().beginWindow();
        // Keep the per-site busy/idle counters current even when no
        // flight recorder is on.
        obs::CpuAttribution::instance().sync(exec_->now());
        return true;
    });

    exec::TaskId flightSampler = 0; // ids start at 1; 0 = not scheduled
    if (config_.flightInterval > 0) {
        flightSampler =
            exec_->schedulePeriodic(config_.flightInterval, [this]() {
                // Order matters: attribution sync publishes fresh
                // busy/idle deltas, the capture snapshots them, and
                // the watchdog then judges the captured interval.
                obs::CpuAttribution::instance().sync(exec_->now());
                obs::FlightRecorder::instance().capture(exec_->now());
                obs::SloEngine::instance().evaluate(exec_->now());
                return true;
            });
    }

    exec::TaskId profileSampler = 0;
    if (config_.profileInterval > 0 &&
        obs::Profiler::instance().enabled()) {
        profileSampler =
            exec_->schedulePeriodic(config_.profileInterval, [this]() {
                obs::Profiler::instance().sample(exec_->now());
                return true;
            });
    }

    exec_->runUntil(config_.warmup + config_.duration);
    exec_->cancel(sampler); // the lambda references this frame's locals
    if (profileSampler != 0)
        exec_->cancel(profileSampler);
    // Final sync so busy+idle covers the whole run up to now().
    obs::CpuAttribution::instance().sync(exec_->now());
    if (flightSampler != 0) {
        exec_->cancel(flightSampler);
        // Final capture so the last partial window is not lost.
        obs::FlightRecorder::instance().capture(exec_->now());
    }
    if (obs::SloEngine::instance().hasRules())
        obs::SloEngine::instance().evaluate(exec_->now());

    // Quiesce.
    if (server_)
        server_->stop();
    if (userClient_)
        userClient_->stop();
    if (offloadedClient_)
        offloadedClient_->stop();
    if (receiverBound_) {
        clientNic_->unbindPort(5004);
        receiverBound_ = false;
    }

    if (server_)
        result_.chunksSent = server_->chunksSent();
    if (userClient_) {
        result_.packetsReceived = userClient_->packetsReceived();
        result_.framesDisplayed = userClient_->framesDisplayed();
    }
    if (offloadedClient_) {
        result_.packetsReceived = offloadedClient_->packetsReceived();
        result_.framesDisplayed = offloadedClient_->framesDisplayed();
    }
    result_.serverBusCrossings =
        serverMachine_->bus().stats().transactions - serverBusBase;
    result_.clientBusCrossings =
        clientMachine_->bus().stats().transactions - clientBusBase;
    result_.networkDrops = network_->stats().packetsDropped;
    return result_;
}

} // namespace hydra::tivo
