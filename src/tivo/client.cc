#include "tivo/client.hh"

#include "common/logging.hh"

namespace hydra::tivo {

namespace {

constexpr std::size_t kFrameBufferSlots = 1; // decoder reuses one buffer

} // namespace

// --------------------------------------------------------------------
// UserSpaceClient
// --------------------------------------------------------------------

UserSpaceClient::UserSpaceClient(hw::Machine &machine,
                                 dev::ProgrammableNic &nic, dev::Gpu &gpu,
                                 dev::SmartDisk *disk, ClientConfig config)
    : machine_(machine), nic_(nic), gpu_(gpu), disk_(disk), config_(config)
{
    hw::OsKernel &os = machine_.os();
    rxKernelBuffer_ = os.allocRegion(config_.chunkBytes * 2);
    rxUserBuffer_ = os.allocRegion(config_.chunkBytes * 2);
    gpuStaging_ = os.allocRegion(512 * 1024);
    diskStaging_ = os.allocRegion(64 * 1024);
}

UserSpaceClient::~UserSpaceClient()
{
    stop();
}

Status
UserSpaceClient::startWatching()
{
    if (running_)
        return Status(ErrorCode::AlreadyExists, "already watching");

    Status bound = nic_.bindHostPort(
        config_.videoPort, machine_.os(), rxKernelBuffer_,
        [this](const net::Packet &packet) { onPacket(packet); });
    if (!bound)
        return bound;
    running_ = true;
    return Status::success();
}

void
UserSpaceClient::stop()
{
    if (running_) {
        nic_.unbindPort(config_.videoPort);
        running_ = false;
    }
}

void
UserSpaceClient::onPacket(const net::Packet &packet)
{
    if (!running_)
        return;
    ++packets_;
    if (onPacketArrival)
        onPacketArrival(machine_.executor().now());

    hw::OsKernel &os = machine_.os();

    // recvfrom(): wake + copy to user space.
    os.contextSwitch();
    os.syscall();
    os.copyBytes(rxKernelBuffer_, rxUserBuffer_, packet.payload.size());
    machine_.cpu().runCycles(config_.pathOverheadCycles);

    // Record path: buffer into whole blocks, write() to the disk.
    recordBlockBuffer_.insert(recordBlockBuffer_.end(),
                              packet.payload.begin(),
                              packet.payload.end());
    if (disk_) {
        const std::size_t block = disk_->diskConfig().blockBytes;
        while (recordBlockBuffer_.size() >= block) {
            Bytes blockData(
                recordBlockBuffer_.begin(),
                recordBlockBuffer_.begin() +
                    static_cast<std::ptrdiff_t>(block));
            recordBlockBuffer_.erase(
                recordBlockBuffer_.begin(),
                recordBlockBuffer_.begin() +
                    static_cast<std::ptrdiff_t>(block));
            os.syscall(); // write()
            os.copyBytes(rxUserBuffer_, diskStaging_, block);
            disk_->writeBlocks(recordOffset_ / block, blockData,
                               [](Status status) {
                                   if (!status) {
                                       LOG_WARN << "client record failed";
                                   }
                               });
            recordOffset_ += block;
        }
    }

    // Decode path: software MPEG on the host CPU.
    assembler_.feed(packet.payload);
    if (frameBuffers_ == 0) {
        // Lazily size the frame buffers from the first decoded frame.
        frameBuffers_ = os.allocRegion(kFrameBufferSlots * 512 * 1024);
    }
    while (true) {
        auto encoded = assembler_.nextFrame();
        if (!encoded)
            break;
        auto frame = decoder_.decode(encoded.value());
        if (!frame) {
            ++decodeErrors_;
            decoder_.reset();
            continue;
        }
        const std::size_t bytes = frame.value().bytes();
        // Decode touches the payload and writes the frame buffer —
        // this is "much of" the paper's +12 % client L2 misses.
        machine_.cpu().runCycles(static_cast<std::uint64_t>(
            config_.decodeCyclesPerByte * static_cast<double>(bytes)));
        const hw::Addr slot =
            frameBuffers_ + frameBufferSlot_ * 512 * 1024;
        frameBufferSlot_ = (frameBufferSlot_ + 1) % kFrameBufferSlots;
        machine_.l2().access(slot, bytes, true);

        // Blit: copy into pinned staging, then GPU DMA pulls it.
        os.copyBytes(slot, gpuStaging_, bytes);
        gpu_.dma().start(bytes,
                         [this, pixels = frame.value().pixels]() {
                             gpu_.presentFrame(pixels);
                         });
        ++frames_;
    }
}

// --------------------------------------------------------------------
// OffloadedClient
// --------------------------------------------------------------------

OffloadedClient::OffloadedClient(core::Runtime &runtime, TivoEnvPtr env)
    : runtime_(runtime), env_(std::move(env))
{
    Status registered =
        registerTivoOffcodes(runtime_, env_, TivoRole::Client);
    if (!registered) {
        error_ = registered.error().describe();
        LOG_ERROR << "OffloadedClient: registration failed: " << error_;
    }
}

Status
OffloadedClient::startWatching()
{
    if (startRequested_)
        return Status(ErrorCode::AlreadyExists, "already watching");
    if (!error_.empty())
        return Status(ErrorCode::Internal, error_);
    startRequested_ = true;

    runtime_.createOffcode(
        "tivo.Gui", [this](Result<core::OffcodeHandle> root) {
            if (!root) {
                error_ = root.error().describe();
                LOG_ERROR << "OffloadedClient: deployment failed: "
                          << error_;
                return;
            }
            deployed_ = true;
        });
    return Status::success();
}

void
OffloadedClient::stop()
{
    for (const char *name :
         {"tivo.StreamerNet", "tivo.StreamerDisk", "tivo.Decoder",
          "tivo.Display", "tivo.File", "tivo.Gui"}) {
        auto handle = runtime_.getOffcode(name);
        if (handle)
            handle.value().offcode->doStop();
    }
}

std::uint64_t
OffloadedClient::packetsReceived() const
{
    const auto *streamer =
        component<StreamerNetOffcode>("tivo.StreamerNet");
    return streamer ? streamer->packetsHandled() : 0;
}

std::uint64_t
OffloadedClient::framesDisplayed() const
{
    const auto *display = component<DisplayOffcode>("tivo.Display");
    return display ? display->framesPresented() : 0;
}

Status
OffloadedClient::replay()
{
    auto *gui = component<GuiOffcode>("tivo.Gui");
    if (!gui)
        return Status(ErrorCode::NotFound, "GUI not deployed");
    return gui->requestReplay();
}

Status
OffloadedClient::stopReplay()
{
    auto *gui = component<GuiOffcode>("tivo.Gui");
    if (!gui)
        return Status(ErrorCode::NotFound, "GUI not deployed");
    return gui->requestStopReplay();
}

} // namespace hydra::tivo
