#include "tivo/server.hh"

#include <cmath>

#include "common/logging.hh"

namespace hydra::tivo {

namespace {

constexpr std::size_t kSkbPoolSlots = 16;
constexpr std::size_t kReadaheadWindow = 8;

} // namespace

// --------------------------------------------------------------------
// SimpleServer
// --------------------------------------------------------------------

SimpleServer::SimpleServer(hw::Machine &machine, dev::ProgrammableNic &nic,
                           net::Network &network, ServerConfig config)
    : machine_(machine), nic_(nic), config_(config)
{
    nfs_ = std::make_unique<net::NfsClient>(network, nic_.nodeId(),
                                            config_.nasNode,
                                            /*reply_port=*/33070);
    hw::OsKernel &os = machine_.os();
    kernelBuffer_ = os.allocRegion(config_.chunkBytes * 2);
    userBuffer_ = os.allocRegion(config_.chunkBytes * 2);
    skbPool_ = os.allocRegion(kSkbPoolSlots * config_.chunkBytes);
}

SimpleServer::~SimpleServer()
{
    stop();
}

Status
SimpleServer::startStreaming()
{
    if (running_)
        return Status(ErrorCode::AlreadyExists, "already streaming");
    running_ = true;
    nfs_->getSize(config_.movieFile, [this](Result<std::uint64_t> size) {
        if (!size) {
            LOG_ERROR << "SimpleServer: movie missing: "
                      << size.error().describe();
            running_ = false;
            return;
        }
        fileSize_ = size.value();
        const sim::SimTime wake =
            machine_.os().wakeAfter(config_.sendPeriod);
        machine_.executor().scheduleAt(wake, [this]() { iteration(); });
    });
    return Status::success();
}

void
SimpleServer::stop()
{
    running_ = false;
}

void
SimpleServer::iteration()
{
    if (!running_ || fileSize_ == 0)
        return;

    hw::OsKernel &os = machine_.os();
    os.contextSwitch(); // sleeper scheduled back in
    os.syscall();       // read()

    const std::uint64_t offset = fileOffset_ % fileSize_;
    fileOffset_ += config_.chunkBytes;

    // The read blocks: the payload is on the NAS, one NFS round trip
    // away.
    nfs_->read(config_.movieFile, offset,
               static_cast<std::uint32_t>(config_.chunkBytes),
               [this](Result<Bytes> data) {
                   if (!running_)
                       return;
                   if (!data) {
                       LOG_WARN << "SimpleServer: read failed";
                       return;
                   }

                   hw::OsKernel &os = machine_.os();
                   os.handleInterrupt(); // NFS reply arrival

                   // The blocked process resumes at the next tick.
                   const sim::SimTime resume = os.ioWake();
                   machine_.executor().scheduleAt(
                       resume,
                       [this, chunk = std::move(data).value()]() mutable {
                           if (!running_)
                               return;
                           hw::OsKernel &os = machine_.os();
                           os.contextSwitch();

                           // read(): NFS reply was DMA'd into the
                           // kernel buffer; copy it out to user space.
                           os.dmaDelivered(kernelBuffer_, chunk.size());
                           os.copyBytes(kernelBuffer_, userBuffer_,
                                        chunk.size());

                           // send(): user buffer into a rotating skb.
                           os.syscall();
                           const hw::Addr skb =
                               skbPool_ + skbSlot_ * config_.chunkBytes;
                           skbSlot_ = (skbSlot_ + 1) % kSkbPoolSlots;
                           os.copyBytes(userBuffer_, skb, chunk.size());

                           machine_.cpu().runCycles(
                               config_.simplePathOverheadCycles);

                           net::Packet packet;
                           packet.dst = config_.clientNode;
                           packet.srcPort = config_.videoPort;
                           packet.dstPort = config_.videoPort;
                           packet.seq = seq_++;
                           packet.payload = std::move(chunk);
                           nic_.sendFromHost(std::move(packet), skb);
                           ++chunksSent_;

                           const sim::SimTime wake =
                               os.wakeAfter(config_.sendPeriod);
                           machine_.executor().scheduleAt(
                               wake, [this]() { iteration(); });
                       });
               });
}

// --------------------------------------------------------------------
// SendfileServer
// --------------------------------------------------------------------

SendfileServer::SendfileServer(hw::Machine &machine,
                               dev::ProgrammableNic &nic,
                               net::Network &network, ServerConfig config)
    : machine_(machine), nic_(nic), config_(config)
{
    nfs_ = std::make_unique<net::NfsClient>(network, nic_.nodeId(),
                                            config_.nasNode,
                                            /*reply_port=*/33071);
    pageCache_ = machine_.os().allocRegion(kReadaheadWindow *
                                           config_.chunkBytes);
}

SendfileServer::~SendfileServer()
{
    stop();
}

Status
SendfileServer::startStreaming()
{
    if (running_)
        return Status(ErrorCode::AlreadyExists, "already streaming");
    running_ = true;
    nfs_->getSize(config_.movieFile, [this](Result<std::uint64_t> size) {
        if (!size) {
            LOG_ERROR << "SendfileServer: movie missing: "
                      << size.error().describe();
            running_ = false;
            return;
        }
        fileSize_ = size.value();
        refillReadahead();
        const sim::SimTime wake =
            machine_.os().wakeAfter(config_.sendPeriod);
        machine_.executor().scheduleAt(wake, [this]() { iteration(); });
    });
    return Status::success();
}

void
SendfileServer::stop()
{
    running_ = false;
}

void
SendfileServer::refillReadahead()
{
    if (!running_ || fileSize_ == 0)
        return;
    while (readahead_.size() + readaheadInFlight_ < kReadaheadWindow) {
        ++readaheadInFlight_;
        const std::uint64_t offset = fileOffset_ % fileSize_;
        fileOffset_ += config_.chunkBytes;
        nfs_->read(config_.movieFile, offset,
                   static_cast<std::uint32_t>(config_.chunkBytes),
                   [this](Result<Bytes> data) {
                       if (readaheadInFlight_ > 0)
                           --readaheadInFlight_;
                       if (!running_ || !data)
                           return;
                       // Kernel-side arrival: interrupt plus a DMA
                       // into the page cache — no process wakeup, no
                       // user copy.
                       hw::OsKernel &os = machine_.os();
                       os.handleInterrupt();
                       os.dmaDelivered(pageCache_, data.value().size());
                       readahead_.push_back(std::move(data).value());
                   });
    }
}

void
SendfileServer::iteration()
{
    if (!running_ || fileSize_ == 0)
        return;

    hw::OsKernel &os = machine_.os();
    os.contextSwitch();
    os.syscall(); // sendfile()

    if (readahead_.empty()) {
        // Readahead miss: skip this period (rare at steady state).
        refillReadahead();
    } else {
        Bytes chunk = std::move(readahead_.front());
        readahead_.pop_front();

        machine_.cpu().runCycles(config_.sendfilePathOverheadCycles);

        // Scatter-gather: the NIC DMA-reads the kernel page directly.
        net::Packet packet;
        packet.dst = config_.clientNode;
        packet.srcPort = config_.videoPort;
        packet.dstPort = config_.videoPort;
        packet.seq = seq_++;
        packet.payload = std::move(chunk);
        nic_.sendFromHost(std::move(packet), pageCache_);
        ++chunksSent_;
        refillReadahead();
    }

    const sim::SimTime wake = os.wakeAfter(config_.sendPeriod);
    machine_.executor().scheduleAt(wake, [this]() { iteration(); });
}

// --------------------------------------------------------------------
// OnloadedServer
// --------------------------------------------------------------------

OnloadedServer::OnloadedServer(hw::Machine &machine,
                               dev::ProgrammableNic &nic,
                               net::Network &network, ServerConfig config)
    : machine_(machine), nic_(nic), config_(config),
      rng_(config.nasNode * 977 + 5)
{
    // Piglet-style dedicated I/O core: same silicon as the host CPU.
    ioCpu_ = std::make_unique<hw::Cpu>(machine_.executor(),
                                       machine_.name() + ".iocpu",
                                       machine_.cpu().clockGhz());
    nfs_ = std::make_unique<net::NfsClient>(network, nic_.nodeId(),
                                            config_.nasNode,
                                            /*reply_port=*/33072);
    kernelBuffer_ = machine_.os().allocRegion(config_.chunkBytes *
                                              kReadaheadWindow);
    skbPool_ = machine_.os().allocRegion(kSkbPoolSlots *
                                         config_.chunkBytes);
}

OnloadedServer::~OnloadedServer()
{
    stop();
}

Status
OnloadedServer::startStreaming()
{
    if (running_)
        return Status(ErrorCode::AlreadyExists, "already streaming");
    running_ = true;
    nfs_->getSize(config_.movieFile, [this](Result<std::uint64_t> size) {
        if (!size) {
            LOG_ERROR << "OnloadedServer: movie missing: "
                      << size.error().describe();
            running_ = false;
            return;
        }
        fileSize_ = size.value();
        refillReadahead();
        machine_.executor().schedule(config_.sendPeriod,
                                      [this]() { iteration(); });
    });
    return Status::success();
}

void
OnloadedServer::stop()
{
    running_ = false;
}

void
OnloadedServer::refillReadahead()
{
    if (!running_ || fileSize_ == 0)
        return;
    while (readahead_.size() + readaheadInFlight_ < kReadaheadWindow) {
        ++readaheadInFlight_;
        const std::uint64_t offset = fileOffset_ % fileSize_;
        fileOffset_ += config_.chunkBytes;
        nfs_->read(config_.movieFile, offset,
                   static_cast<std::uint32_t>(config_.chunkBytes),
                   [this](Result<Bytes> data) {
                       if (readaheadInFlight_ > 0)
                           --readaheadInFlight_;
                       if (!running_ || !data)
                           return;
                       // The I/O core polls the NIC: no interrupt on
                       // the application core, but the payload still
                       // lands in host memory.
                       machine_.os().dmaDelivered(kernelBuffer_,
                                                  data.value().size());
                       ioCpu_->runCycles(2000); // poll + protocol
                       readahead_.push_back(std::move(data).value());
                   });
    }
}

void
OnloadedServer::iteration()
{
    if (!running_ || fileSize_ == 0)
        return;

    // The dedicated core busy-polls its timer wheel: no tick
    // quantization, only sub-microsecond polling granularity.
    if (!readahead_.empty()) {
        Bytes chunk = std::move(readahead_.front());
        readahead_.pop_front();

        // Copy into a transmit skb on the I/O core; the shared L2
        // still sees it.
        const hw::Addr skb = skbPool_ + skbSlot_ * config_.chunkBytes;
        skbSlot_ = (skbSlot_ + 1) % kSkbPoolSlots;
        machine_.l2().access(kernelBuffer_, chunk.size(), false);
        machine_.l2().access(skb, chunk.size(), true);
        ioCpu_->runCycles(
            1500 + static_cast<std::uint64_t>(chunk.size()));

        net::Packet packet;
        packet.dst = config_.clientNode;
        packet.srcPort = config_.videoPort;
        packet.dstPort = config_.videoPort;
        packet.seq = seq_++;
        packet.payload = std::move(chunk);
        nic_.sendFromHost(std::move(packet), skb);
        ++chunksSent_;
        refillReadahead();
    }

    // Polling granularity: a handful of microseconds of slop. The
    // dedicated core spins through the whole gap — that is the cost
    // of onloading: the core is 100 % consumed whether or not
    // packets flow.
    const auto slop = static_cast<sim::SimTime>(
        std::abs(rng_.normal(0.0, 4000.0))); // 4 us sigma
    ioCpu_->runFor(config_.sendPeriod + slop);
    machine_.executor().schedule(config_.sendPeriod + slop,
                                  [this]() { iteration(); });
}

// --------------------------------------------------------------------
// OffloadedVideoServer
// --------------------------------------------------------------------

OffloadedVideoServer::OffloadedVideoServer(core::Runtime &runtime,
                                           TivoEnvPtr env)
    : runtime_(runtime), env_(std::move(env))
{
    Status registered =
        registerTivoOffcodes(runtime_, env_, TivoRole::Server);
    if (!registered) {
        error_ = registered.error().describe();
        LOG_ERROR << "OffloadedVideoServer: registration failed: "
                  << error_;
    }
}

Status
OffloadedVideoServer::startStreaming()
{
    if (startRequested_)
        return Status(ErrorCode::AlreadyExists, "already streaming");
    if (!error_.empty())
        return Status(ErrorCode::Internal, error_);
    startRequested_ = true;

    runtime_.createOffcode(
        "tivo.server.Streamer", [this](Result<core::OffcodeHandle> root) {
            if (!root) {
                error_ = root.error().describe();
                LOG_ERROR << "OffloadedVideoServer: deployment failed: "
                          << error_;
                return;
            }
            deployed_ = true;
            // The Streamer Offcode's start() hook began the pacing
            // loop on the NIC already; nothing to do on the host —
            // that is the point.
        });
    return Status::success();
}

void
OffloadedVideoServer::stop()
{
    auto streamer = runtime_.getOffcode("tivo.server.Streamer");
    if (streamer)
        streamer.value().offcode->doStop();
    auto file = runtime_.getOffcode("tivo.server.File");
    if (file)
        file.value().offcode->doStop();
}

std::uint64_t
OffloadedVideoServer::chunksSent() const
{
    auto streamer = const_cast<core::Runtime &>(runtime_).getOffcode(
        "tivo.server.Streamer");
    if (!streamer)
        return 0;
    return static_cast<const ServerStreamerOffcode *>(
               streamer.value().offcode)
        ->chunksSent();
}

} // namespace hydra::tivo
