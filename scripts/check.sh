#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, and run the full test
# suite. This is the command CI and pre-merge checks run.
#
# Usage:
#   scripts/check.sh               # default build + all tests
#   scripts/check.sh --sanitize    # ASan/UBSan build, obs-labeled tests
#                                  # first, then the full suite
#   scripts/check.sh --no-tracing  # HYDRA_TRACING=OFF build: proves
#                                  # spans/traces compile out and the
#                                  # suite still passes without them
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
SANITIZE=0

for arg in "$@"; do
    case "$arg" in
      --sanitize)
        SANITIZE=1
        BUILD_DIR=build-sanitize
        CMAKE_ARGS+=(-DHYDRA_SANITIZE=ON)
        ;;
      --no-tracing)
        BUILD_DIR=build-notrace
        CMAKE_ARGS+=(-DHYDRA_TRACING=OFF)
        ;;
      *)
        echo "usage: $0 [--sanitize|--no-tracing]" >&2
        exit 2
        ;;
    esac
done

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
if [ "$SANITIZE" -eq 1 ]; then
    # The obs label covers the subsystem with the most lock-free and
    # ring-buffer code — run it first for a fast sanitizer signal.
    ctest -L obs --output-on-failure
fi
ctest --output-on-failure -j "$(nproc)"
