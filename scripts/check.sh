#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, and run the full test
# suite. This is the command CI and pre-merge checks run.
#
# Usage:
#   scripts/check.sh               # default build + all tests
#   scripts/check.sh --sanitize    # ASan/UBSan build, obs-labeled tests
#                                  # first, then the full suite
#   scripts/check.sh --no-tracing  # HYDRA_TRACING=OFF build: proves
#                                  # spans/traces compile out and the
#                                  # suite still passes without them
#   scripts/check.sh --bench-smoke # Release build, run the channel
#                                  # data-path benches, fail if any is
#                                  # >2x slower than the checked-in
#                                  # baseline (scripts/bench_baseline.json)
#   scripts/check.sh --tsan        # ThreadSanitizer build, run the
#                                  # threaded-executor test label (the
#                                  # SPSC rings, payload pool, span id
#                                  # generator, and the full TiVo run
#                                  # on the threaded engine)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
SANITIZE=0
BENCH_SMOKE=0
TSAN=0

for arg in "$@"; do
    case "$arg" in
      --sanitize)
        SANITIZE=1
        BUILD_DIR=build-sanitize
        CMAKE_ARGS+=(-DHYDRA_SANITIZE=ON)
        ;;
      --no-tracing)
        BUILD_DIR=build-notrace
        CMAKE_ARGS+=(-DHYDRA_TRACING=OFF)
        ;;
      --bench-smoke)
        BENCH_SMOKE=1
        BUILD_DIR=build
        CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Release)
        ;;
      --tsan)
        TSAN=1
        BUILD_DIR=build-tsan
        CMAKE_ARGS+=(-DHYDRA_TSAN=ON)
        ;;
      *)
        echo "usage: $0 [--sanitize|--no-tracing|--bench-smoke|--tsan]" >&2
        exit 2
        ;;
    esac
done

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [ "$BENCH_SMOKE" -eq 1 ]; then
    # Wall-clock smoke of the zero-copy data path: the channel benches
    # plus the sim-engine pipeline rows (the deterministic executor's
    # per-hop dispatch cost; the threaded rows are excluded — real
    # threads on a shared box are too noisy for a regression gate)
    # against the committed baseline. Generous 2x threshold -- this
    # catches "the fast path regressed to deep copies", not
    # machine-to-machine noise.
    # Fleet end-to-end smoke first: the scale ladder (10k/100k
    # streams, threaded executor) plus the 1-vs-4-host scaling bar.
    # The binary exits nonzero if a run fails to deliver cleanly or
    # the 4-host goodput drops below 2x of one host.
    "$BUILD_DIR/bench/fleet_scale"
    OUT="$BUILD_DIR/bench_smoke.json"
    # Note: the bundled google-benchmark wants a bare double here (no
    # trailing time unit).
    "$BUILD_DIR/bench/perf_micro" \
        --benchmark_filter='BM_HistogramRecord|BM_ChannelThroughput|BM_ChannelBatchThroughput|BM_ChannelLowLoad|BM_MulticastFanout|BM_FleetOpenLoop|BM_PipelineParallel.*threaded:0|BM_BatchedPipeline.*threaded:0' \
        --benchmark_min_time=0.1 \
        --benchmark_format=json > "$OUT"
    echo "bench JSON written to $OUT"
    python3 scripts/bench_compare.py scripts/bench_baseline.json "$OUT" 2.0
    # Telemetry-engine budget: histogram record cost stays under
    # ~15 ns, the instrumented channel rows (hist:1) stay within 5%
    # of their uninstrumented hist:0 twins from the same run, and the
    # sampling profiler (profile:1) stays within 5% of its disabled
    # twin. A 5% bound needs quieter numbers than one 0.1 s pass on a
    # shared VM gives, so the gated benches run again with repetitions
    # and the gate reads the medians. Limits are env-overridable
    # (HYDRA_HIST_RECORD_NS_MAX, HYDRA_CHANNEL_RATIO_MAX,
    # HYDRA_PROFILER_RATIO_MAX). The batching gates pair
    # BM_BatchedPipeline batch:64 rows against their batch:1 twins
    # (batched must not be slower at sites=4) and hold the
    # BM_ChannelLowLoad virtual-time delivery p99 within 5% of the
    # unbatched twin (HYDRA_BATCH_RATIO_MAX, HYDRA_LOWLOAD_P99_MAX).
    # The fleet gate holds the BM_FleetOpenLoop 4-host/1-host
    # virtual-time goodput ratio at >= 2x (HYDRA_FLEET_SCALE_MIN).
    GATE_OUT="$BUILD_DIR/bench_gate.json"
    "$BUILD_DIR/bench/perf_micro" \
        --benchmark_filter='BM_ChannelThroughput|BM_HistogramRecord|BM_ProfilerOverhead|BM_BatchedPipeline|BM_ChannelLowLoad|BM_FleetOpenLoop' \
        --benchmark_min_time=0.1 \
        --benchmark_repetitions=5 \
        --benchmark_enable_random_interleaving=true \
        --benchmark_report_aggregates_only=true \
        --benchmark_format=json > "$GATE_OUT"
    python3 scripts/bench_gate.py scripts/bench_baseline.json "$GATE_OUT"
    exit 0
fi

cd "$BUILD_DIR"
if [ "$TSAN" -eq 1 ]; then
    # Under TSan, only the threaded label matters: it exercises every
    # cross-thread structure (SPSC rings, the worker park/wake
    # protocol, the payload pool, atomic span ids) plus one full TiVo
    # scenario on the threaded engine.
    ctest -L threaded --output-on-failure
    # The chaos label adds the fault-injection paths under TSan: the
    # engine's seeded draws from network and worker threads, plus the
    # NIC-reset recovery protocol on the threaded engine.
    ctest -L chaos --output-on-failure
    exit 0
fi
if [ "$SANITIZE" -eq 1 ]; then
    # The obs label covers the subsystem with the most lock-free and
    # ring-buffer code — run it first for a fast sanitizer signal.
    ctest -L obs --output-on-failure
fi
# Fault-injection + recovery paths first: a broken restart protocol
# should fail loudly before the full matrix runs.
ctest -L chaos --output-on-failure
ctest --output-on-failure -j "$(nproc)"
