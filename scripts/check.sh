#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, and run the full test
# suite. This is the command CI and pre-merge checks run.
#
# Usage:
#   scripts/check.sh               # default build + all tests
#   scripts/check.sh --sanitize    # ASan/UBSan build, obs-labeled tests
#                                  # first, then the full suite
#   scripts/check.sh --no-tracing  # HYDRA_TRACING=OFF build: proves
#                                  # spans/traces compile out and the
#                                  # suite still passes without them
#   scripts/check.sh --bench-smoke # Release build, run the channel
#                                  # data-path benches, fail if any is
#                                  # >2x slower than the checked-in
#                                  # baseline (scripts/bench_baseline.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
SANITIZE=0
BENCH_SMOKE=0

for arg in "$@"; do
    case "$arg" in
      --sanitize)
        SANITIZE=1
        BUILD_DIR=build-sanitize
        CMAKE_ARGS+=(-DHYDRA_SANITIZE=ON)
        ;;
      --no-tracing)
        BUILD_DIR=build-notrace
        CMAKE_ARGS+=(-DHYDRA_TRACING=OFF)
        ;;
      --bench-smoke)
        BENCH_SMOKE=1
        BUILD_DIR=build
        CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Release)
        ;;
      *)
        echo "usage: $0 [--sanitize|--no-tracing|--bench-smoke]" >&2
        exit 2
        ;;
    esac
done

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [ "$BENCH_SMOKE" -eq 1 ]; then
    # Wall-clock smoke of the zero-copy data path: the two channel
    # benches against the committed baseline. Generous 2x threshold --
    # this catches "the fast path regressed to deep copies", not
    # machine-to-machine noise.
    OUT="$BUILD_DIR/bench_smoke.json"
    # Note: the bundled google-benchmark wants a bare double here (no
    # trailing time unit).
    "$BUILD_DIR/bench/perf_micro" \
        --benchmark_filter='BM_ChannelThroughput|BM_MulticastFanout' \
        --benchmark_min_time=0.1 \
        --benchmark_format=json > "$OUT"
    echo "bench JSON written to $OUT"
    python3 scripts/bench_compare.py scripts/bench_baseline.json "$OUT" 2.0
    exit 0
fi

cd "$BUILD_DIR"
if [ "$SANITIZE" -eq 1 ]; then
    # The obs label covers the subsystem with the most lock-free and
    # ring-buffer code — run it first for a fast sanitizer signal.
    ctest -L obs --output-on-failure
fi
ctest --output-on-failure -j "$(nproc)"
