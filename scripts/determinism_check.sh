#!/usr/bin/env bash
# Determinism regression check for the sim executor: two runs of the
# TiVo integration scenario with the same seed must produce
# byte-identical metrics JSON, span listings, and profiler output.
# Registered in ctest as `determinism_sim_executor`; each run is a
# fresh process, so the metrics registry, span id counter, and
# profiler sample store start from zero both times.
#
# With a third argument (the hydra_fleet binary), a 4-host fleet
# scale run on the sim executor is checked the same way: two fresh
# processes, byte-identical report JSON and metrics dump. Registered
# in ctest as `determinism_fleet`.
#
# Usage: determinism_check.sh <hydra_sim-binary> <scratch-dir> \
#                             [hydra_fleet-binary]
set -euo pipefail

BIN="$1"
SCRATCH="$2"
FLEET_BIN="${3:-}"
mkdir -p "$SCRATCH"

# Each run gets its own subdirectory but identical file names, so the
# paths echoed into stdout are comparable byte for byte.
run() {
    local dir="$SCRATCH/$1"
    mkdir -p "$dir"
    (cd "$dir" &&
     "$BIN" --server offloaded --client offloaded --executor sim \
            --seconds 8 --seed 42 \
            --metrics-format=json \
            --metrics-out metrics.json \
            --spans-out spans.json \
            --flight-out flight.json --flight-interval-ms 500 \
            --profile-out profile.folded --profile-interval-ms 250 \
            > stdout.txt)
}

run a
run b

cmp "$SCRATCH/a/metrics.json" "$SCRATCH/b/metrics.json" || {
    echo "FAIL: --executor=sim metrics JSON differs between runs" >&2
    diff "$SCRATCH/a/metrics.json" "$SCRATCH/b/metrics.json" | head >&2
    exit 1
}
cmp "$SCRATCH/a/spans.json" "$SCRATCH/b/spans.json" || {
    echo "FAIL: --executor=sim span output differs between runs" >&2
    diff "$SCRATCH/a/spans.json" "$SCRATCH/b/spans.json" | head >&2
    exit 1
}
cmp "$SCRATCH/a/flight.json" "$SCRATCH/b/flight.json" || {
    echo "FAIL: --executor=sim flight recording differs between runs" >&2
    diff "$SCRATCH/a/flight.json" "$SCRATCH/b/flight.json" | head >&2
    exit 1
}
cmp "$SCRATCH/a/profile.folded" "$SCRATCH/b/profile.folded" || {
    echo "FAIL: --executor=sim profile output differs between runs" >&2
    diff "$SCRATCH/a/profile.folded" "$SCRATCH/b/profile.folded" | head >&2
    exit 1
}
cmp "$SCRATCH/a/stdout.txt" "$SCRATCH/b/stdout.txt" || {
    echo "FAIL: --executor=sim scenario output differs between runs" >&2
    diff "$SCRATCH/a/stdout.txt" "$SCRATCH/b/stdout.txt" | head >&2
    exit 1
}

echo "OK: sim executor is deterministic (metrics, spans, flight"
echo "    recording, profile, and scenario output byte-identical)"

# Chaos section: the seeded fault injector must not cost determinism.
# Two fresh-process runs with the same chaos seed — packet drop /
# duplicate / corrupt draws, slowed posts, and a mid-stream NIC reset
# with its restart-with-state-handoff recovery — must still be
# byte-identical.
run_chaos() {
    local dir="$SCRATCH/chaos-$1"
    mkdir -p "$dir"
    (cd "$dir" &&
     "$BIN" --server offloaded --client offloaded --executor sim \
            --seconds 8 --seed 42 \
            --chaos '7:drop=0.01,dup=0.01,corrupt=0.005,slow=0.02,reset@3000=client-nic/5' \
            --metrics-format=json \
            --metrics-out metrics.json \
            > stdout.txt)
}

run_chaos a
run_chaos b

cmp "$SCRATCH/chaos-a/metrics.json" "$SCRATCH/chaos-b/metrics.json" || {
    echo "FAIL: seeded-chaos metrics JSON differs between runs" >&2
    diff "$SCRATCH/chaos-a/metrics.json" \
         "$SCRATCH/chaos-b/metrics.json" | head >&2
    exit 1
}
cmp "$SCRATCH/chaos-a/stdout.txt" "$SCRATCH/chaos-b/stdout.txt" || {
    echo "FAIL: seeded-chaos scenario output differs between runs" >&2
    diff "$SCRATCH/chaos-a/stdout.txt" \
         "$SCRATCH/chaos-b/stdout.txt" | head >&2
    exit 1
}
grep -q "faults injected" "$SCRATCH/chaos-a/stdout.txt" || {
    echo "FAIL: chaos run reported no injected faults" >&2
    exit 1
}

echo "OK: seeded chaos injection replays byte-for-byte (faults,"
echo "    recovery, metrics, and scenario output identical)"

# Fleet section: a 4-host open-loop scale run (placement ring, remote
# wire channels, churn) must be just as reproducible under the sim
# engine. The JSON report carries only virtual-time quantities, so it
# is comparable byte for byte; wall-clock lives in the table output
# only.
if [ -n "$FLEET_BIN" ]; then
    run_fleet() {
        local dir="$SCRATCH/fleet-$1"
        mkdir -p "$dir"
        (cd "$dir" &&
         "$FLEET_BIN" --hosts 4 --streams 500 --rate 200000 \
                      --duration-ms 20 --churn 1 --seed 42 \
                      --executor sim --json \
                      --metrics-out metrics.json \
                      > report.json)
    }
    run_fleet a
    run_fleet b
    cmp "$SCRATCH/fleet-a/report.json" "$SCRATCH/fleet-b/report.json" || {
        echo "FAIL: 4-host fleet report differs between runs" >&2
        diff "$SCRATCH/fleet-a/report.json" \
             "$SCRATCH/fleet-b/report.json" | head >&2
        exit 1
    }
    cmp "$SCRATCH/fleet-a/metrics.json" \
        "$SCRATCH/fleet-b/metrics.json" || {
        echo "FAIL: 4-host fleet metrics JSON differs between runs" >&2
        diff "$SCRATCH/fleet-a/metrics.json" \
             "$SCRATCH/fleet-b/metrics.json" | head >&2
        exit 1
    }
    echo "OK: 4-host fleet scale run is deterministic (report and"
    echo "    metrics byte-identical)"
fi
