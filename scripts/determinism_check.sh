#!/usr/bin/env bash
# Determinism regression check for the sim executor: two runs of the
# TiVo integration scenario with the same seed must produce
# byte-identical metrics JSON, span listings, and profiler output.
# Registered in ctest as `determinism_sim_executor`; each run is a
# fresh process, so the metrics registry, span id counter, and
# profiler sample store start from zero both times.
#
# Usage: determinism_check.sh <hydra_sim-binary> <scratch-dir>
set -euo pipefail

BIN="$1"
SCRATCH="$2"
mkdir -p "$SCRATCH"

# Each run gets its own subdirectory but identical file names, so the
# paths echoed into stdout are comparable byte for byte.
run() {
    local dir="$SCRATCH/$1"
    mkdir -p "$dir"
    (cd "$dir" &&
     "$BIN" --server offloaded --client offloaded --executor sim \
            --seconds 8 --seed 42 \
            --metrics-format=json \
            --metrics-out metrics.json \
            --spans-out spans.json \
            --flight-out flight.json --flight-interval-ms 500 \
            --profile-out profile.folded --profile-interval-ms 250 \
            > stdout.txt)
}

run a
run b

cmp "$SCRATCH/a/metrics.json" "$SCRATCH/b/metrics.json" || {
    echo "FAIL: --executor=sim metrics JSON differs between runs" >&2
    diff "$SCRATCH/a/metrics.json" "$SCRATCH/b/metrics.json" | head >&2
    exit 1
}
cmp "$SCRATCH/a/spans.json" "$SCRATCH/b/spans.json" || {
    echo "FAIL: --executor=sim span output differs between runs" >&2
    diff "$SCRATCH/a/spans.json" "$SCRATCH/b/spans.json" | head >&2
    exit 1
}
cmp "$SCRATCH/a/flight.json" "$SCRATCH/b/flight.json" || {
    echo "FAIL: --executor=sim flight recording differs between runs" >&2
    diff "$SCRATCH/a/flight.json" "$SCRATCH/b/flight.json" | head >&2
    exit 1
}
cmp "$SCRATCH/a/profile.folded" "$SCRATCH/b/profile.folded" || {
    echo "FAIL: --executor=sim profile output differs between runs" >&2
    diff "$SCRATCH/a/profile.folded" "$SCRATCH/b/profile.folded" | head >&2
    exit 1
}
cmp "$SCRATCH/a/stdout.txt" "$SCRATCH/b/stdout.txt" || {
    echo "FAIL: --executor=sim scenario output differs between runs" >&2
    diff "$SCRATCH/a/stdout.txt" "$SCRATCH/b/stdout.txt" | head >&2
    exit 1
}

echo "OK: sim executor is deterministic (metrics, spans, flight"
echo "    recording, profile, and scenario output byte-identical)"
