#!/usr/bin/env python3
"""Telemetry-engine perf gates (DESIGN.md section 11 overhead budget).

Usage: bench_gate.py BASELINE.json CURRENT.json

Three gates on top of bench_compare.py's generic 2x noise gate:

 1. Histogram hot path: every BM_HistogramRecord row must run in at
    most HYDRA_HIST_RECORD_NS_MAX ns per record (default 15). This is
    the price each instrumented delivery/dispatch site pays, so it is
    gated absolutely rather than relative to a baseline.

 2. Channel throughput: each BM_ChannelThroughput hist:1 row (named
    channel, per-delivery histogram records) is paired with its hist:0
    twin (anonymous channel, uninstrumented) from the SAME run, which
    isolates the telemetry cost from cross-session machine drift
    (bench_compare.py's coarser baseline gate absorbs that instead).
    The *geometric mean* of the pair ratios must stay at most
    HYDRA_CHANNEL_RATIO_MAX (default 1.05, i.e. <5% overhead): a
    single 0.1 s pair on a shared 1-CPU VM has a noise floor around
    +/-10%, well above the budget, but averaging 8 pairs cuts it by
    ~sqrt(8). Each individual pair is additionally bounded by
    HYDRA_CHANNEL_PAIR_MAX (default 1.25) to catch a pathological
    regression confined to one configuration.

 3. Sampling profiler: BM_ProfilerOverhead profile:1 (scopes
    published, profiler enabled, one sample per batch) paired with
    its profile:0 twin (same scopes, profiler disabled) from the SAME
    run. Geomean of the pair ratios must stay at most
    HYDRA_PROFILER_RATIO_MAX (default 1.05); each pair is bounded by
    HYDRA_PROFILER_PAIR_MAX (default 1.25).

 4. Batched pipeline: each BM_BatchedPipeline sites:4 batch:64 row is
    paired with its batch:1 twin from the SAME run. Batching is a
    throughput feature, so batched must never be the slower side:
    geomean and per-pair time ratios must stay at most
    HYDRA_BATCH_RATIO_MAX / HYDRA_BATCH_PAIR_MAX (both default 1.0 --
    the tentpole target is ~0.2x, so unity still leaves the full
    noise floor as headroom). Rows at other site counts (e.g. the
    2-site scaling row) are informational and not gated.

 5. Low-load latency: BM_ChannelLowLoad exports the deterministic
    virtual-time delivery p99 as the `p99_ns` benchmark counter; the
    batched:1 / batched:0 counter ratio must stay at most
    HYDRA_LOWLOAD_P99_MAX (default 1.05). This is the adaptivity
    invariant: batching must not buy throughput with added latency
    when the pipe is idle.

 6. Fleet scaling: BM_FleetOpenLoop exports virtual-time goodput of a
    saturating open loop as the `vmsgs_per_sec` counter; the hosts:4
    / hosts:1 ratio must stay at least HYDRA_FLEET_SCALE_MIN (default
    2.0). Like gate 5 this is a virtual-clock property — adding hosts
    must keep buying capacity, or the fleet refactor's premise (shard
    the executive, spread the load) has regressed.

All limits are env-overridable for slow or shared machines.
"""

import json
import math
import os
import sys


KNOWN_COUNTERS = ("p99_ns", "vmsgs_per_sec")


def load(path):
    """(name -> real_time, name -> {counter -> value}). Prefers
    median aggregates (repetition runs) over single-iteration rows
    when both are present."""
    with open(path) as fh:
        doc = json.load(fh)
    iterations = {}
    medians = {}
    counters = {}
    counter_medians = {}
    for bench in doc.get("benchmarks", []):
        run_type = bench.get("run_type", "iteration")
        if run_type == "iteration":
            name = bench["name"]
            iterations[name] = float(bench["real_time"])
            row = {c: float(bench[c]) for c in KNOWN_COUNTERS
                   if c in bench}
            if row:
                counters[name] = row
        elif (run_type == "aggregate" and
              bench.get("aggregate_name") == "median"):
            name = bench.get("run_name",
                             bench["name"].rsplit("_median", 1)[0])
            medians[name] = float(bench["real_time"])
            row = {c: float(bench[c]) for c in KNOWN_COUNTERS
                   if c in bench}
            if row:
                counter_medians[name] = row
    iterations.update(medians)
    counters.update(counter_medians)
    return iterations, counters


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    baseline, _ = load(sys.argv[1])
    current, current_counters = load(sys.argv[2])
    record_max = float(os.environ.get("HYDRA_HIST_RECORD_NS_MAX", "15"))
    ratio_max = float(os.environ.get("HYDRA_CHANNEL_RATIO_MAX", "1.05"))

    failed = []

    record_rows = [n for n in current if n.startswith("BM_HistogramRecord")]
    if not record_rows:
        print("bench_gate: BM_HistogramRecord missing from current run")
        failed.append("BM_HistogramRecord(absent)")
    for name in sorted(record_rows):
        ok = current[name] <= record_max
        print(f"{name:56s} {current[name]:8.2f} ns/record "
              f"(limit {record_max:.0f}){'' if ok else ' REGRESSION'}")
        if not ok:
            failed.append(name)

    def gate_pairs(bench, on, off, pair_max, geo_max, require=None):
        """Pair each `/{on}` row with its `/{off}` twin from the same
        run; per-pair and geomean ratio limits feed `failed`. When
        `require` is set, only rows containing that substring are
        gated (the rest are informational)."""
        ratios = []
        for name in sorted(current):
            if not name.startswith(bench) or f"/{on}" not in name:
                continue
            if require is not None and require not in name:
                continue
            twin = name.replace(f"/{on}", f"/{off}")
            if twin not in current:
                print(f"bench_gate: {name} has no {off} twin in "
                      "current run")
                failed.append(f"{name}(unpaired)")
                continue
            ratio = current[name] / current[twin] if current[twin] else 1.0
            ratios.append(ratio)
            ok = ratio <= pair_max
            print(f"{name:56s} {ratio:7.3f}x vs {off} "
                  f"(pair limit {pair_max:.2f})"
                  f"{'' if ok else ' REGRESSION'}")
            if not ok:
                failed.append(name)
        if ratios:
            geomean = math.exp(
                sum(math.log(r) for r in ratios) / len(ratios))
            ok = geomean <= geo_max
            print(f"{f'{bench} geomean({on}/{off})':56s} "
                  f"{geomean:7.3f}x "
                  f"(limit {geo_max:.2f}){'' if ok else ' REGRESSION'}")
            if not ok:
                failed.append(f"{bench}(geomean)")
        else:
            print(f"bench_gate: no {bench} {on} rows in current run")
            failed.append(f"{bench}(absent)")

    gate_pairs(
        "BM_ChannelThroughput", "hist:1", "hist:0",
        float(os.environ.get("HYDRA_CHANNEL_PAIR_MAX", "1.25")),
        ratio_max)
    gate_pairs(
        "BM_ProfilerOverhead", "profile:1", "profile:0",
        float(os.environ.get("HYDRA_PROFILER_PAIR_MAX", "1.25")),
        float(os.environ.get("HYDRA_PROFILER_RATIO_MAX", "1.05")))
    gate_pairs(
        "BM_BatchedPipeline", "batch:64", "batch:1",
        float(os.environ.get("HYDRA_BATCH_PAIR_MAX", "1.0")),
        float(os.environ.get("HYDRA_BATCH_RATIO_MAX", "1.0")),
        require="sites:4")

    # Gate 5: batching must not add delivery latency at low load.
    # The p99 comes from the sim engine's virtual clock, so the ratio
    # is deterministic (no noise floor to budget for).
    p99_max = float(os.environ.get("HYDRA_LOWLOAD_P99_MAX", "1.05"))
    on = "BM_ChannelLowLoad/batched:1"
    off = "BM_ChannelLowLoad/batched:0"
    if (on in current_counters and off in current_counters and
            "p99_ns" in current_counters[on] and
            "p99_ns" in current_counters[off]):
        denom = current_counters[off]["p99_ns"]
        ratio = (current_counters[on]["p99_ns"] / denom if denom
                 else 1.0)
        ok = ratio <= p99_max
        print(f"{'BM_ChannelLowLoad p99_ns(batched/unbatched)':56s} "
              f"{ratio:7.3f}x (limit {p99_max:.2f})"
              f"{'' if ok else ' REGRESSION'}")
        if not ok:
            failed.append("BM_ChannelLowLoad(p99)")
    else:
        print("bench_gate: BM_ChannelLowLoad p99_ns counters missing "
              "from current run")
        failed.append("BM_ChannelLowLoad(absent)")

    # Gate 6: more hosts must keep meaning more capacity. The goodput
    # counters come from the sim engine's virtual clock, so the ratio
    # is deterministic.
    scale_min = float(os.environ.get("HYDRA_FLEET_SCALE_MIN", "2.0"))
    wide = "BM_FleetOpenLoop/hosts:4"
    narrow = "BM_FleetOpenLoop/hosts:1"
    if (wide in current_counters and narrow in current_counters and
            "vmsgs_per_sec" in current_counters[wide] and
            "vmsgs_per_sec" in current_counters[narrow]):
        denom = current_counters[narrow]["vmsgs_per_sec"]
        ratio = (current_counters[wide]["vmsgs_per_sec"] / denom
                 if denom else 0.0)
        ok = ratio >= scale_min
        print(f"{'BM_FleetOpenLoop vmsgs_per_sec(4 hosts/1 host)':56s} "
              f"{ratio:7.3f}x (min {scale_min:.2f})"
              f"{'' if ok else ' REGRESSION'}")
        if not ok:
            failed.append("BM_FleetOpenLoop(scaling)")
    else:
        print("bench_gate: BM_FleetOpenLoop vmsgs_per_sec counters "
              "missing from current run")
        failed.append("BM_FleetOpenLoop(absent)")

    if failed:
        print(f"\nbench gate FAILED: {', '.join(failed)}")
        return 1
    print("\nbench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
