#!/usr/bin/env python3
"""Telemetry-engine perf gates (DESIGN.md section 11 overhead budget).

Usage: bench_gate.py BASELINE.json CURRENT.json

Three gates on top of bench_compare.py's generic 2x noise gate:

 1. Histogram hot path: every BM_HistogramRecord row must run in at
    most HYDRA_HIST_RECORD_NS_MAX ns per record (default 15). This is
    the price each instrumented delivery/dispatch site pays, so it is
    gated absolutely rather than relative to a baseline.

 2. Channel throughput: each BM_ChannelThroughput hist:1 row (named
    channel, per-delivery histogram records) is paired with its hist:0
    twin (anonymous channel, uninstrumented) from the SAME run, which
    isolates the telemetry cost from cross-session machine drift
    (bench_compare.py's coarser baseline gate absorbs that instead).
    The *geometric mean* of the pair ratios must stay at most
    HYDRA_CHANNEL_RATIO_MAX (default 1.05, i.e. <5% overhead): a
    single 0.1 s pair on a shared 1-CPU VM has a noise floor around
    +/-10%, well above the budget, but averaging 8 pairs cuts it by
    ~sqrt(8). Each individual pair is additionally bounded by
    HYDRA_CHANNEL_PAIR_MAX (default 1.25) to catch a pathological
    regression confined to one configuration.

 3. Sampling profiler: BM_ProfilerOverhead profile:1 (scopes
    published, profiler enabled, one sample per batch) paired with
    its profile:0 twin (same scopes, profiler disabled) from the SAME
    run. Geomean of the pair ratios must stay at most
    HYDRA_PROFILER_RATIO_MAX (default 1.05); each pair is bounded by
    HYDRA_PROFILER_PAIR_MAX (default 1.25).

All limits are env-overridable for slow or shared machines.
"""

import json
import math
import os
import sys


def load(path):
    """Name -> real_time. Prefers median aggregates (repetition runs)
    over single-iteration rows when both are present."""
    with open(path) as fh:
        doc = json.load(fh)
    iterations = {}
    medians = {}
    for bench in doc.get("benchmarks", []):
        run_type = bench.get("run_type", "iteration")
        if run_type == "iteration":
            iterations[bench["name"]] = float(bench["real_time"])
        elif (run_type == "aggregate" and
              bench.get("aggregate_name") == "median"):
            name = bench.get("run_name",
                             bench["name"].rsplit("_median", 1)[0])
            medians[name] = float(bench["real_time"])
    iterations.update(medians)
    return iterations


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    record_max = float(os.environ.get("HYDRA_HIST_RECORD_NS_MAX", "15"))
    ratio_max = float(os.environ.get("HYDRA_CHANNEL_RATIO_MAX", "1.05"))

    failed = []

    record_rows = [n for n in current if n.startswith("BM_HistogramRecord")]
    if not record_rows:
        print("bench_gate: BM_HistogramRecord missing from current run")
        failed.append("BM_HistogramRecord(absent)")
    for name in sorted(record_rows):
        ok = current[name] <= record_max
        print(f"{name:56s} {current[name]:8.2f} ns/record "
              f"(limit {record_max:.0f}){'' if ok else ' REGRESSION'}")
        if not ok:
            failed.append(name)

    def gate_pairs(bench, on, off, pair_max, geo_max):
        """Pair each `/{on}` row with its `/{off}` twin from the same
        run; per-pair and geomean ratio limits feed `failed`."""
        ratios = []
        for name in sorted(current):
            if not name.startswith(bench) or f"/{on}" not in name:
                continue
            twin = name.replace(f"/{on}", f"/{off}")
            if twin not in current:
                print(f"bench_gate: {name} has no {off} twin in "
                      "current run")
                failed.append(f"{name}(unpaired)")
                continue
            ratio = current[name] / current[twin] if current[twin] else 1.0
            ratios.append(ratio)
            ok = ratio <= pair_max
            print(f"{name:56s} {ratio:7.3f}x vs {off} "
                  f"(pair limit {pair_max:.2f})"
                  f"{'' if ok else ' REGRESSION'}")
            if not ok:
                failed.append(name)
        if ratios:
            geomean = math.exp(
                sum(math.log(r) for r in ratios) / len(ratios))
            ok = geomean <= geo_max
            print(f"{f'{bench} geomean({on}/{off})':56s} "
                  f"{geomean:7.3f}x "
                  f"(limit {geo_max:.2f}){'' if ok else ' REGRESSION'}")
            if not ok:
                failed.append(f"{bench}(geomean)")
        else:
            print(f"bench_gate: no {bench} {on} rows in current run")
            failed.append(f"{bench}(absent)")

    gate_pairs(
        "BM_ChannelThroughput", "hist:1", "hist:0",
        float(os.environ.get("HYDRA_CHANNEL_PAIR_MAX", "1.25")),
        ratio_max)
    gate_pairs(
        "BM_ProfilerOverhead", "profile:1", "profile:0",
        float(os.environ.get("HYDRA_PROFILER_PAIR_MAX", "1.25")),
        float(os.environ.get("HYDRA_PROFILER_RATIO_MAX", "1.05")))

    if failed:
        print(f"\nbench gate FAILED: {', '.join(failed)}")
        return 1
    print("\nbench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
