#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json MAX_RATIO

Exits non-zero when any benchmark present in both files is more than
MAX_RATIO times slower (real_time) than the baseline. Benchmarks only
present on one side are reported but not fatal, so adding a case does
not require regenerating the baseline in the same commit.
"""

import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def main():
    if len(sys.argv) != 4:
        sys.stderr.write(__doc__)
        return 2
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    max_ratio = float(sys.argv[3])

    failed = []
    print(f"{'benchmark':56s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:56s} {baseline[name]:12.0f} {'absent':>12s}")
            continue
        ratio = current[name] / baseline[name] if baseline[name] else 1.0
        flag = " REGRESSION" if ratio > max_ratio else ""
        print(f"{name:56s} {baseline[name]:12.0f} {current[name]:12.0f} "
              f"{ratio:7.2f}{flag}")
        if ratio > max_ratio:
            failed.append(name)
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:56s} {'(new)':>12s} {current[name]:12.0f}")

    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed more than "
              f"{max_ratio}x: {', '.join(failed)}")
        return 1
    print("\nbench smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
