/**
 * @file
 * Packet filter: network offload beyond TOE (paper Section 1.1,
 * "our current work suggests further opportunities in the area of
 * network offload").
 *
 * A FilterOffcode deployed onto the programmable NIC inspects every
 * incoming datagram in firmware and forwards only those matching a
 * signature to the host — the rest die at the wire, never crossing
 * the bus or raising an interrupt. The example runs the same traffic
 * against a host-side filter and compares host CPU time and bus
 * crossings.
 */

#include <cstdio>

#include "core/runtime.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

using namespace hydra;

namespace {

constexpr net::Port kTrafficPort = 7000;

bool
matchesSignature(const Payload &payload)
{
    // "Interesting" packets carry the 0xCAFE prefix.
    return payload.size() >= 2 && payload[0] == 0xca && payload[1] == 0xfe;
}

/** NIC-resident filter: forwards matches to the host over the OOB
 * path, drops everything else in firmware. */
class FilterOffcode : public core::Offcode
{
  public:
    explicit FilterOffcode(dev::ProgrammableNic *nic)
        : Offcode("example.PacketFilter"), nic_(nic)
    {
        registerMethod("Stats", [this](const Bytes &) -> Result<Bytes> {
            Bytes out;
            ByteWriter writer(out);
            writer.writeU64(inspected_);
            writer.writeU64(matched_);
            return out;
        });
    }

    std::uint64_t inspected() const { return inspected_; }
    std::uint64_t matched() const { return matched_; }

  protected:
    Status
    start() override
    {
        if (!nic_ || site().device() != nic_)
            return Status(ErrorCode::DeviceIncompatible,
                          "filter must run on the NIC");
        return nic_->bindDevicePort(
            kTrafficPort, [this](const net::Packet &packet) {
                ++inspected_;
                site().run(600); // signature match in firmware
                if (matchesSignature(packet.payload))
                    ++matched_;
                // Non-matching traffic is dropped right here: no DMA,
                // no interrupt, no host cycles.
            });
    }

    void
    stop() override
    {
        if (nic_)
            nic_->unbindPort(kTrafficPort);
    }

  private:
    dev::ProgrammableNic *nic_;
    std::uint64_t inspected_ = 0;
    std::uint64_t matched_ = 0;
};

const char *kFilterOdf = R"(<offcode>
  <package>
    <bindname>example.PacketFilter</bindname>
    <interface name="IFilter"><method name="Stats"/></interface>
  </package>
  <sw-env>
    <requires memory="131072"><capability name="mac-ethernet"/></requires>
  </sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
  </targets>
  <price bus="0.05"/>
</offcode>)";

/** Generate a burst of traffic toward a node. */
void
blast(exec::SimExecutor &sim, net::Network &net, net::NodeId from,
      net::NodeId to, int packets)
{
    for (int i = 0; i < packets; ++i) {
        sim.schedule(sim::microseconds(50) * static_cast<std::uint64_t>(i),
                     [&net, from, to, i]() {
                         net::Packet p;
                         p.src = from;
                         p.dst = to;
                         p.dstPort = kTrafficPort;
                         Bytes body(512, 0x00);
                         if (i % 50 == 0) { // 2 % interesting traffic
                             body[0] = 0xca;
                             body[1] = 0xfe;
                         }
                         p.payload = std::move(body);
                         net.send(std::move(p));
                     });
    }
}

} // namespace

int
main()
{
    constexpr int kPackets = 20000;

    // ---------------- run 1: host-side filtering ----------------
    std::uint64_t hostBusyNs = 0;
    std::uint64_t hostCrossings = 0;
    std::uint64_t hostMatched = 0;
    {
        exec::SimExecutor sim;
        hw::Machine machine(sim, hw::MachineConfig{});
        net::Network network(sim, net::NetworkConfig{});
        const net::NodeId source = network.addNode("traffic-src");
        const net::NodeId host = network.addNode("host-nic");
        dev::ProgrammableNic nic(sim, machine.bus(), network, host);

        const hw::Addr buffer = machine.os().allocRegion(2048);
        nic.bindHostPort(kTrafficPort, machine.os(), buffer,
                         [&](const net::Packet &packet) {
                             machine.os().syscall();
                             machine.cpu().runCycles(900);
                             if (matchesSignature(packet.payload))
                                 ++hostMatched;
                         });

        blast(sim, network, source, host, kPackets);
        sim.runToCompletion();
        hostBusyNs = machine.cpu().busyTime();
        hostCrossings = machine.bus().stats().transactions;
    }

    // ---------------- run 2: NIC-offloaded filtering ----------------
    std::uint64_t offloadBusyNs = 0;
    std::uint64_t offloadCrossings = 0;
    std::uint64_t offloadMatched = 0;
    std::uint64_t offloadInspected = 0;
    {
        exec::SimExecutor sim;
        hw::Machine machine(sim, hw::MachineConfig{});
        net::Network network(sim, net::NetworkConfig{});
        const net::NodeId source = network.addNode("traffic-src");
        const net::NodeId host = network.addNode("host-nic");
        dev::ProgrammableNic nic(sim, machine.bus(), network, host);

        core::Runtime runtime(machine);
        runtime.attachDevice(nic);
        runtime.depot().registerOffcode(kFilterOdf, [&nic]() {
            return std::make_unique<FilterOffcode>(&nic);
        });

        FilterOffcode *filter = nullptr;
        runtime.createOffcode("example.PacketFilter",
                              [&](Result<core::OffcodeHandle> handle) {
                                  if (handle)
                                      filter = static_cast<FilterOffcode *>(
                                          handle.value().offcode);
                              });
        sim.runUntil(sim::milliseconds(5)); // let deployment finish
        if (!filter) {
            std::fprintf(stderr, "filter deployment failed\n");
            return 1;
        }
        const std::uint64_t deployCrossings =
            machine.bus().stats().transactions;

        blast(sim, network, source, host, kPackets);
        sim.runToCompletion();

        offloadBusyNs = machine.cpu().busyTime();
        offloadCrossings =
            machine.bus().stats().transactions - deployCrossings;
        offloadMatched = filter->matched();
        offloadInspected = filter->inspected();
    }

    std::printf("packet filter over %d datagrams (2%% match the "
                "signature):\n\n",
                kPackets);
    std::printf("%-22s %15s %15s %10s\n", "", "host cpu (ms)",
                "bus crossings", "matches");
    std::printf("%-22s %15.2f %15llu %10llu\n", "host-side filter",
                static_cast<double>(hostBusyNs) / 1e6,
                static_cast<unsigned long long>(hostCrossings),
                static_cast<unsigned long long>(hostMatched));
    std::printf("%-22s %15.2f %15llu %10llu\n", "NIC-offloaded filter",
                static_cast<double>(offloadBusyNs) / 1e6,
                static_cast<unsigned long long>(offloadCrossings),
                static_cast<unsigned long long>(offloadMatched));
    std::printf("\nNIC firmware inspected %llu packets; the host saw "
                "none of them.\n",
                static_cast<unsigned long long>(offloadInspected));
    std::printf("host CPU saved: %.1fx, bus crossings saved: %llu -> "
                "%llu\n",
                static_cast<double>(hostBusyNs) /
                    static_cast<double>(offloadBusyNs ? offloadBusyNs : 1),
                static_cast<unsigned long long>(hostCrossings),
                static_cast<unsigned long long>(offloadCrossings));
    return 0;
}
