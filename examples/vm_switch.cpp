/**
 * @file
 * Virtual-machine switch: the paper's Section 8 virtualization
 * direction — "offload-capable devices could perform ... multiplexing
 * incoming network packets directly to the destination virtual
 * machine."
 *
 * A VmSwitchOffcode on the programmable NIC reads each packet's VM
 * tag in firmware and DMA-delivers it straight into the destination
 * VM's pinned ring — one bus crossing and zero hypervisor work. The
 * baseline models a software hypervisor switch: every packet
 * interrupts the host, is classified on the host CPU, and is copied
 * into the VM's buffer.
 */

#include <cstdio>
#include <vector>

#include "core/runtime.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

using namespace hydra;

namespace {

constexpr net::Port kVmPort = 8000;
constexpr std::size_t kVms = 4;
constexpr int kPackets = 20000;

std::size_t
vmOf(const net::Packet &packet)
{
    return packet.payload.empty() ? 0 : packet.payload[0] % kVms;
}

/** NIC-resident VM demultiplexer. */
class VmSwitchOffcode : public core::Offcode
{
  public:
    VmSwitchOffcode(dev::ProgrammableNic *nic, hw::OsKernel *os,
                    std::vector<hw::Addr> rings)
        : Offcode("example.VmSwitch"), nic_(nic), os_(os),
          rings_(std::move(rings)), delivered_(rings_.size(), 0)
    {
    }

    const std::vector<std::uint64_t> &delivered() const
    {
        return delivered_;
    }

  protected:
    Status
    start() override
    {
        if (!nic_ || site().device() != nic_)
            return Status(ErrorCode::DeviceIncompatible,
                          "vm switch must run on the NIC");
        return nic_->bindDevicePort(
            kVmPort, [this](const net::Packet &packet) {
                // Classify in firmware, DMA straight into the
                // destination VM's pinned ring; the guest polls its
                // ring (virtio-style), so no host interrupt at all.
                site().run(500);
                const std::size_t vm = vmOf(packet);
                nic_->dma().start(packet.payload.size(),
                                  [this, vm, bytes =
                                             packet.payload.size()]() {
                                      os_->dmaDelivered(rings_[vm],
                                                        bytes);
                                      ++delivered_[vm];
                                  });
            });
    }

    void
    stop() override
    {
        if (nic_)
            nic_->unbindPort(kVmPort);
    }

  private:
    dev::ProgrammableNic *nic_;
    hw::OsKernel *os_;
    std::vector<hw::Addr> rings_;
    std::vector<std::uint64_t> delivered_;
};

const char *kVmSwitchOdf = R"(<offcode>
  <package>
    <bindname>example.VmSwitch</bindname>
    <interface name="IVmSwitch"><method name="Stats"/></interface>
  </package>
  <sw-env>
    <requires memory="262144"><capability name="mac-ethernet"/></requires>
  </sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
  </targets>
  <price bus="0.4"/>
</offcode>)";

void
blast(exec::SimExecutor &sim, net::Network &net, net::NodeId from,
      net::NodeId to)
{
    for (int i = 0; i < kPackets; ++i) {
        sim.schedule(sim::microseconds(40) * static_cast<std::uint64_t>(i),
                     [&net, from, to, i]() {
                         net::Packet p;
                         p.src = from;
                         p.dst = to;
                         p.dstPort = kVmPort;
                         Bytes body(1024, 0);
                         body[0] =
                             static_cast<std::uint8_t>(i * 7); // VM tag
                         p.payload = std::move(body);
                         net.send(std::move(p));
                     });
    }
}

} // namespace

int
main()
{
    // ----------------- baseline: hypervisor software switch --------
    std::uint64_t hyperBusyNs = 0;
    std::vector<std::uint64_t> hyperDelivered(kVms, 0);
    {
        exec::SimExecutor sim;
        hw::Machine machine(sim, hw::MachineConfig{});
        net::Network network(sim, net::NetworkConfig{});
        const net::NodeId source = network.addNode("wire");
        const net::NodeId host = network.addNode("host");
        dev::ProgrammableNic nic(sim, machine.bus(), network, host);

        const hw::Addr rxBuffer = machine.os().allocRegion(2048);
        std::vector<hw::Addr> vmBuffers;
        for (std::size_t vm = 0; vm < kVms; ++vm)
            vmBuffers.push_back(machine.os().allocRegion(64 * 1024));

        nic.bindHostPort(
            kVmPort, machine.os(), rxBuffer,
            [&](const net::Packet &packet) {
                // Hypervisor: classify, context-switch to the guest,
                // copy into the guest's buffer.
                machine.cpu().runCycles(1200); // classification
                machine.os().contextSwitch();
                const std::size_t vm = vmOf(packet);
                machine.os().copyBytes(rxBuffer, vmBuffers[vm],
                                       packet.payload.size());
                ++hyperDelivered[vm];
            });

        blast(sim, network, source, host);
        sim.runToCompletion();
        hyperBusyNs = machine.cpu().busyTime();
    }

    // ----------------- offloaded: NIC-resident VM switch -----------
    std::uint64_t offloadBusyNs = 0;
    std::vector<std::uint64_t> offloadDelivered(kVms, 0);
    {
        exec::SimExecutor sim;
        hw::Machine machine(sim, hw::MachineConfig{});
        net::Network network(sim, net::NetworkConfig{});
        const net::NodeId source = network.addNode("wire");
        const net::NodeId host = network.addNode("host");
        dev::ProgrammableNic nic(sim, machine.bus(), network, host);

        std::vector<hw::Addr> rings;
        for (std::size_t vm = 0; vm < kVms; ++vm)
            rings.push_back(machine.os().allocRegion(64 * 1024));

        core::Runtime runtime(machine);
        runtime.attachDevice(nic);
        runtime.depot().registerOffcode(
            kVmSwitchOdf, [&nic, &machine, rings]() {
                return std::make_unique<VmSwitchOffcode>(
                    &nic, &machine.os(), rings);
            });

        VmSwitchOffcode *vmSwitch = nullptr;
        runtime.createOffcode(
            "example.VmSwitch", [&](Result<core::OffcodeHandle> handle) {
                if (handle)
                    vmSwitch = static_cast<VmSwitchOffcode *>(
                        handle.value().offcode);
            });
        sim.runUntil(sim::milliseconds(5));
        if (!vmSwitch) {
            std::fprintf(stderr, "vm switch deployment failed\n");
            return 1;
        }

        const auto busyBase = machine.cpu().busyTime();
        blast(sim, network, source, host);
        sim.runToCompletion();
        offloadBusyNs = machine.cpu().busyTime() - busyBase;
        offloadDelivered = vmSwitch->delivered();
    }

    std::printf("VM packet switch, %d packets across %zu guests:\n\n",
                kPackets, kVms);
    std::printf("%-26s %15s  per-VM deliveries\n", "",
                "hypervisor cpu ms");
    auto printRow = [](const char *name, std::uint64_t busy,
                       const std::vector<std::uint64_t> &per_vm) {
        std::printf("%-26s %15.2f  [", name,
                    static_cast<double>(busy) / 1e6);
        for (std::size_t vm = 0; vm < per_vm.size(); ++vm)
            std::printf("%s%llu", vm ? ", " : "",
                        static_cast<unsigned long long>(per_vm[vm]));
        std::printf("]\n");
    };
    printRow("software switch (host)", hyperBusyNs, hyperDelivered);
    printRow("NIC-offloaded switch", offloadBusyNs, offloadDelivered);

    std::uint64_t total = 0;
    for (const std::uint64_t count : offloadDelivered)
        total += count;
    std::printf("\nall %llu packets reached their VMs with zero "
                "hypervisor involvement\n",
                static_cast<unsigned long long>(total));
    return 0;
}
