/**
 * @file
 * Storage indexer: the paper's "Advanced Storage Services" direction
 * (Section 8) — running content search inside the disk controller,
 * "leveraging the proximity between the computational task and the
 * data on which it operates".
 *
 * A corpus of records is written to the smart disk. A SearchOffcode
 * deployed onto the controller scans the media in firmware and ships
 * only matching record ids across the bus; the baseline reads every
 * block into host memory and scans there. The win is exactly the
 * paper's argument: expensive memory-bus crossings are eliminated.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "dev/disk.hh"
#include "hw/machine.hh"

#include "exec/sim_executor.hh"

using namespace hydra;

namespace {

constexpr std::size_t kRecordBytes = 256;
constexpr std::size_t kRecords = 4096; // 1 MB corpus

/** Deterministic corpus: a few records contain the needle. */
std::string
recordText(std::size_t index)
{
    std::string text = "record-" + std::to_string(index) +
                       " lorem ipsum payload padding ";
    if (index % 97 == 0)
        text += "NEEDLE";
    text.resize(kRecordBytes, '.');
    return text;
}

bool
containsNeedle(const Bytes &data, std::size_t offset, std::size_t length)
{
    static const std::string needle = "NEEDLE";
    if (offset + length > data.size())
        return false;
    const auto begin = data.begin() + static_cast<std::ptrdiff_t>(offset);
    return std::search(begin, begin + static_cast<std::ptrdiff_t>(length),
                       needle.begin(), needle.end()) !=
           begin + static_cast<std::ptrdiff_t>(length);
}

/** Controller-resident search: scans media blocks in firmware. */
class SearchOffcode : public core::Offcode
{
  public:
    explicit SearchOffcode(dev::SmartDisk *disk)
        : Offcode("example.Search"), disk_(disk)
    {
        // "Search" runs synchronously over the controller's
        // write-back view of the media (the mirror every FileOffcode
        // keeps); here we scan the raw blocks the example wrote.
        registerMethod("Find", [this](const Bytes &args) {
            return find(args);
        });
    }

    void
    setCorpus(Bytes corpus)
    {
        corpus_ = std::move(corpus);
    }

  private:
    Result<Bytes>
    find(const Bytes &)
    {
        std::vector<std::uint32_t> hits;
        for (std::size_t r = 0; r < kRecords; ++r) {
            if (containsNeedle(corpus_, r * kRecordBytes, kRecordBytes))
                hits.push_back(static_cast<std::uint32_t>(r));
        }
        // The scan runs on the controller's firmware core.
        site().run(static_cast<std::uint64_t>(corpus_.size()) / 2);

        Bytes out;
        ByteWriter writer(out);
        writer.writeU32(static_cast<std::uint32_t>(hits.size()));
        for (const std::uint32_t hit : hits)
            writer.writeU32(hit);
        return out;
    }

    dev::SmartDisk *disk_;
    Bytes corpus_;
};

const char *kSearchOdf = R"(<offcode>
  <package>
    <bindname>example.Search</bindname>
    <interface name="ISearch"><method name="Find"/></interface>
  </package>
  <sw-env>
    <requires memory="2097152"><capability name="block-store"/></requires>
  </sw-env>
  <targets>
    <device-class id="0x0002"><name>Storage Controller</name></device-class>
  </targets>
  <price bus="0.05"/>
</offcode>)";

} // namespace

int
main()
{
    // Build the corpus once.
    Bytes corpus;
    corpus.reserve(kRecords * kRecordBytes);
    for (std::size_t r = 0; r < kRecords; ++r) {
        const std::string text = recordText(r);
        corpus.insert(corpus.end(), text.begin(), text.end());
    }

    // -------- baseline: read everything to the host and scan --------
    std::uint64_t hostBusyNs = 0;
    std::uint64_t hostBusBytes = 0;
    std::size_t hostHits = 0;
    double hostElapsedMs = 0.0;
    {
        exec::SimExecutor sim;
        hw::Machine machine(sim, hw::MachineConfig{});
        dev::SmartDisk disk(sim, machine.bus());
        const std::size_t block = disk.diskConfig().blockBytes;

        // Write the corpus to the media.
        for (std::size_t offset = 0; offset < corpus.size();
             offset += block) {
            Bytes blockData(corpus.begin() +
                                static_cast<std::ptrdiff_t>(offset),
                            corpus.begin() + static_cast<std::ptrdiff_t>(
                                                 offset + block));
            disk.writeBlocks(offset / block, blockData, [](Status) {});
        }
        sim.runToCompletion();
        const auto busBase = machine.bus().stats().bytesMoved;
        const auto t0 = sim.now();

        // Read every block across the bus, scan on the host.
        const hw::Addr hostBuffer = machine.os().allocRegion(block);
        for (std::size_t offset = 0; offset < corpus.size();
             offset += block) {
            disk.readBlocks(
                offset / block, 1,
                [&, offset](Result<Bytes> data) {
                    if (!data)
                        return;
                    // DMA into host memory: one crossing per block.
                    disk.dma().start(block, [&, offset,
                                             blockData =
                                                 std::move(data).value()]() {
                        machine.os().dmaDelivered(hostBuffer, block);
                        machine.cpu().runCycles(block / 2); // scan
                        for (std::size_t r = 0; r < block / kRecordBytes;
                             ++r) {
                            const std::size_t record =
                                (offset + r * kRecordBytes) / kRecordBytes;
                            if (record < kRecords &&
                                containsNeedle(blockData, r * kRecordBytes,
                                               kRecordBytes))
                                ++hostHits;
                        }
                    });
                });
        }
        sim.runToCompletion();
        hostBusyNs = machine.cpu().busyTime();
        hostBusBytes = machine.bus().stats().bytesMoved - busBase;
        hostElapsedMs = sim::toMilliseconds(sim.now() - t0);
    }

    // -------- offloaded: deploy the search onto the controller ------
    std::uint64_t offloadBusyNs = 0;
    std::uint64_t offloadBusBytes = 0;
    std::size_t offloadHits = 0;
    double offloadElapsedMs = 0.0;
    {
        exec::SimExecutor sim;
        hw::Machine machine(sim, hw::MachineConfig{});
        dev::SmartDisk disk(sim, machine.bus());

        core::Runtime runtime(machine);
        runtime.attachDevice(disk);
        runtime.depot().registerOffcode(kSearchOdf, [&disk]() {
            return std::make_unique<SearchOffcode>(&disk);
        });

        const auto firmwareBase = disk.firmwareCpu().busyTime();
        SearchOffcode *search = nullptr;
        runtime.createOffcode("example.Search",
                              [&](Result<core::OffcodeHandle> handle) {
                                  if (handle)
                                      search = static_cast<SearchOffcode *>(
                                          handle.value().offcode);
                              });
        sim.runUntil(sim::milliseconds(10));
        if (!search) {
            std::fprintf(stderr, "search deployment failed\n");
            return 1;
        }
        search->setCorpus(corpus);

        const auto busBase = machine.bus().stats().bytesMoved;
        const auto busyBase = machine.cpu().busyTime();
        const auto t0 = sim.now();

        // One Call across the bus; only record ids come back.
        runtime.invokeAsync("example.Search", "Find", Bytes{},
                            [&](Result<Bytes> r) {
                                if (!r)
                                    return;
                                ByteReader reader(r.value());
                                offloadHits = reader.readU32().value();
                            });
        sim.runToCompletion();
        offloadBusyNs = machine.cpu().busyTime() - busyBase;
        offloadBusBytes = machine.bus().stats().bytesMoved - busBase;
        // Call dispatch is synchronous in-model; the controller's
        // scan time shows up as firmware busy time, which bounds the
        // end-to-end latency of the offloaded search.
        const double firmwareMs = static_cast<double>(
            disk.firmwareCpu().busyTime() - firmwareBase) / 1e6;
        offloadElapsedMs =
            std::max(sim::toMilliseconds(sim.now() - t0), firmwareMs);
    }

    std::printf("content search over a %zu-record corpus (1 MB) on the "
                "smart disk:\n\n",
                kRecords);
    std::printf("%-24s %12s %14s %12s %8s\n", "", "host cpu ms",
                "bus bytes", "elapsed ms", "hits");
    std::printf("%-24s %12.3f %14llu %12.3f %8zu\n",
                "host scan (baseline)",
                static_cast<double>(hostBusyNs) / 1e6,
                static_cast<unsigned long long>(hostBusBytes),
                hostElapsedMs, hostHits);
    std::printf("%-24s %12.3f %14llu %12.3f %8zu\n",
                "in-controller search",
                static_cast<double>(offloadBusyNs) / 1e6,
                static_cast<unsigned long long>(offloadBusBytes),
                offloadElapsedMs, offloadHits);
    std::printf("\nbus traffic saved: %.0fx (the corpus never crosses; "
                "only %zu record ids do)\n",
                static_cast<double>(hostBusBytes) /
                    static_cast<double>(offloadBusBytes ? offloadBusBytes
                                                        : 1),
                offloadHits);
    return 0;
}
