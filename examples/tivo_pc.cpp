/**
 * @file
 * TiVoPC: the paper's Section 6 case study, end to end.
 *
 * Spins up the full testbed (video server + NAS + client with
 * programmable NIC, smart disk and GPU), deploys the offload-aware
 * client and server, streams live video for thirty simulated
 * seconds, pauses the broadcast, and replays the recording from the
 * smart disk — all without the client host CPU touching a single
 * media byte.
 */

#include <cstdio>

#include "tivo/harness.hh"

#include "exec/sim_executor.hh"

using namespace hydra;
using namespace hydra::tivo;

int
main()
{
    TestbedConfig config;
    config.server = ServerKind::Offloaded;
    config.client = ClientKind::Offloaded;
    config.movieFrames = 192;

    Testbed testbed(config);
    exec::Executor &sim = testbed.executor();

    std::printf("TiVoPC: deploying offload-aware client and server...\n");
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    sim.runUntil(sim::seconds(1));

    if (!testbed.offloadedClient()->deployed()) {
        std::fprintf(stderr, "client deployment failed: %s\n",
                     testbed.offloadedClient()->deploymentError().c_str());
        return 1;
    }

    core::Runtime &rt = *testbed.clientRuntime();
    std::printf("\noffloading layout (paper Fig. 8):\n");
    for (const char *name : {"tivo.Gui", "tivo.StreamerNet",
                             "tivo.StreamerDisk", "tivo.Decoder",
                             "tivo.Display", "tivo.File"}) {
        auto handle = rt.getOffcode(name);
        std::printf("  %-18s -> %s\n", name,
                    handle ? handle.value().deviceAddr().c_str()
                           : "<not deployed>");
    }

    // --- live TV for 30 simulated seconds ---
    const auto cpuBusyBefore = testbed.clientMachine().cpu().busyTime();
    sim.runUntil(sim::seconds(31));
    const double hostBusyMs = sim::toMilliseconds(
        testbed.clientMachine().cpu().busyTime() - cpuBusyBefore);

    auto *display =
        testbed.offloadedClient()->component<DisplayOffcode>(
            "tivo.Display");
    auto *file =
        testbed.offloadedClient()->component<FileOffcode>("tivo.File");
    std::printf("\nafter 30 s live streaming:\n");
    std::printf("  packets received:  %llu\n",
                static_cast<unsigned long long>(
                    testbed.offloadedClient()->packetsReceived()));
    std::printf("  frames displayed:  %llu\n",
                static_cast<unsigned long long>(
                    display->framesPresented()));
    std::printf("  recording size:    %llu bytes on the smart disk\n",
                static_cast<unsigned long long>(file->bytesStored()));
    std::printf("  client host CPU:   %.1f ms busy in 30 s (idle "
                "housekeeping only)\n",
                hostBusyMs);

    // --- pause the broadcast, replay from the recording ---
    std::printf("\npausing broadcast, replaying from the smart "
                "disk...\n");
    testbed.server()->stop();
    sim.runUntil(sim::seconds(32));

    const auto framesBeforeReplay = display->framesPresented();
    testbed.offloadedClient()->replay();
    sim.runUntil(sim::seconds(42));

    auto *diskStreamer =
        testbed.offloadedClient()->component<StreamerDiskOffcode>(
            "tivo.StreamerDisk");
    std::printf("after 10 s replay:\n");
    std::printf("  chunks replayed:   %llu\n",
                static_cast<unsigned long long>(
                    diskStreamer->chunksReplayed()));
    std::printf("  frames displayed:  +%llu\n",
                static_cast<unsigned long long>(
                    display->framesPresented() - framesBeforeReplay));

    testbed.offloadedClient()->stopReplay();
    sim.runUntil(sim::seconds(43));

    std::printf("\ntotals: %llu simulated events, %llu client bus "
                "crossings\n",
                static_cast<unsigned long long>(sim.eventsDispatched()),
                static_cast<unsigned long long>(
                    testbed.clientMachine().bus().stats().transactions));
    return 0;
}
