/**
 * @file
 * Quickstart: the smallest complete HYDRA program.
 *
 * Builds a simulated host with one programmable NIC, registers a
 * checksum Offcode (with its ODF manifest), deploys it — the layout
 * resolver offloads it to the NIC — and invokes it twice: through
 * the paper's Fig. 3 channel API with a transparent proxy, and via
 * the manual Call-object scheme.
 */

#include <cstdio>

#include "core/runtime.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

using namespace hydra;

namespace {

/** An Offcode computing CRC32 checksums near the wire. */
class ChecksumOffcode : public core::Offcode
{
  public:
    ChecksumOffcode() : Offcode("example.Checksum")
    {
        registerMethod("Crc32", [](const Bytes &args) -> Result<Bytes> {
            Bytes out;
            ByteWriter writer(out);
            writer.writeU32(crc32(args));
            return out;
        });
    }
};

const char *kChecksumOdf = R"(<offcode>
  <package>
    <bindname>example.Checksum</bindname>
    <interface name="IChecksum"><method name="Crc32"/></interface>
  </package>
  <sw-env><requires memory="65536"/></sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback/>
  </targets>
  <price bus="0.1"/>
</offcode>)";

} // namespace

int
main()
{
    // --- the simulated world: one host, one programmable NIC ---
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    net::Network network(sim, net::NetworkConfig{});
    dev::ProgrammableNic nic(sim, machine.bus(), network,
                             network.addNode("nic"));

    // --- the HYDRA runtime (the Offloading Access Layer) ---
    core::Runtime runtime(machine);
    runtime.attachDevice(nic);

    // Register the Offcode's manifest + factory in the depot.
    Status registered = runtime.depot().registerOffcode(
        kChecksumOdf, []() { return std::make_unique<ChecksumOffcode>(); });
    if (!registered) {
        std::fprintf(stderr, "register failed: %s\n",
                     registered.error().describe().c_str());
        return 1;
    }

    // --- CreateOffcode: ODF -> layout graph -> placement -> load ---
    runtime.createOffcode(
        "example.Checksum", [&](Result<core::OffcodeHandle> handle) {
            if (!handle) {
                std::fprintf(stderr, "deployment failed: %s\n",
                             handle.error().describe().c_str());
                return;
            }
            std::printf("deployed example.Checksum at '%s' (offloaded: "
                        "%s)\n",
                        handle.value().deviceAddr().c_str(),
                        handle.value().site->isHost() ? "no" : "yes");

            // --- Fig. 3: set up a channel and invoke through it ---
            core::ChannelConfig config;
            config.type = core::ChannelConfig::Type::Unicast;
            config.reliable = true;
            config.sync = core::ChannelConfig::Sync::Sequential;
            config.buffering = core::ChannelConfig::Buffering::ZeroCopy;
            config.targetDevice = handle.value().deviceAddr();

            auto channel = runtime.executive().createChannel(
                config, runtime.hostSite());
            if (!channel) {
                std::fprintf(stderr, "channel failed: %s\n",
                             channel.error().describe().c_str());
                return;
            }
            channel.value()->connectOffcode(*handle.value().offcode);

            // Transparent scheme: a proxy marshals the Call.
            static core::Proxy proxy(*channel.value(),
                                     handle.value().offcode->guid(),
                                     Guid::fromName("IChecksum"));
            const Bytes payload = {'h', 'y', 'd', 'r', 'a'};
            proxy.invoke("Crc32", payload, [](Result<Bytes> r) {
                if (!r) {
                    std::fprintf(stderr, "call failed\n");
                    return;
                }
                ByteReader reader(r.value());
                std::printf("proxy invocation:  crc32(\"hydra\") = "
                            "0x%08x\n",
                            reader.readU32().value());
            });

            // Manual scheme: build the Call object yourself.
            core::Call call = proxy.makeCall("Crc32", payload, false);
            std::printf("manual Call object: method=%s, %zu arg bytes, "
                        "id=%llu\n",
                        call.method.c_str(), call.arguments.size(),
                        static_cast<unsigned long long>(call.callId));
        });

    sim.runToCompletion();

    std::printf("\nsimulated time: %.3f ms, events: %llu, bus "
                "crossings: %llu\n",
                sim::toMilliseconds(sim.now()),
                static_cast<unsigned long long>(sim.eventsDispatched()),
                static_cast<unsigned long long>(
                    machine.bus().stats().transactions));
    return 0;
}
