/**
 * @file
 * Section 5 reproduction / ablation (DESIGN.md D2): the offloading
 * layout ILP versus the greedy baseline.
 *
 * Part 1 solves the actual TiVoPC layout graph (Fig. 8) under the
 * Maximized Offloading objective and prints the placement.
 * Part 2 sweeps randomized multi-application layout graphs under the
 * Maximize Bus Usage objective with per-device link capacities and
 * reports how often greedy is suboptimal and by how much — the
 * paper's motivation for the ILP ("for complex scenarios a greedy
 * solution is not always optimal").
 */

#include <cstdio>

#include "common/rng.hh"
#include "ilp/layout.hh"

namespace {

using namespace hydra;
using namespace hydra::ilp;

/** Hand-built spec of the TiVoPC client graph (Fig. 8). */
LayoutSpec
tivoSpec()
{
    // Offcodes: 0 Gui, 1 StreamerNet, 2 StreamerDisk, 3 Decoder,
    // 4 Display, 5 File. Devices: 0 host, 1 NIC, 2 disk, 3 GPU.
    LayoutSpec spec;
    spec.numOffcodes = 6;
    spec.numDevices = 4;
    spec.offcodeNames = {"Gui",     "StreamerNet", "StreamerDisk",
                         "Decoder", "Display",     "File"};
    spec.deviceNames = {"host", "nic", "disk", "gpu"};
    spec.compatible = {
        {true, false, false, false}, // Gui: host only
        {true, true, false, false},  // StreamerNet: NIC
        {true, false, true, false},  // StreamerDisk: disk
        {true, true, false, true},   // Decoder: NIC or GPU
        {true, false, false, true},  // Display: GPU
        {true, false, true, false},  // File: disk
    };
    spec.edges = {
        {1, 3, LayoutConstraint::Gang}, // StreamerNet ~ Decoder
        {1, 2, LayoutConstraint::Gang}, // StreamerNet ~ StreamerDisk
        {3, 4, LayoutConstraint::Pull}, // Decoder = Display
        {2, 5, LayoutConstraint::Pull}, // StreamerDisk = File
    };
    spec.objective = LayoutObjective::MaximizeOffloading;
    return spec;
}

LayoutSpec
randomSpec(Rng &rng, std::size_t offcodes, std::size_t devices)
{
    LayoutSpec spec;
    spec.numOffcodes = offcodes;
    spec.numDevices = devices;
    spec.objective = LayoutObjective::MaximizeBusUsage;
    spec.compatible.assign(offcodes,
                           std::vector<bool>(devices, false));
    for (std::size_t n = 0; n < offcodes; ++n) {
        spec.compatible[n][0] = true; // host fallback
        for (std::size_t k = 1; k < devices; ++k)
            spec.compatible[n][k] = rng.chance(0.6);
    }
    for (std::size_t e = 0; e < offcodes; ++e) {
        if (!rng.chance(0.45))
            continue;
        LayoutEdge edge;
        edge.a = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(offcodes) - 1));
        edge.b = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(offcodes) - 1));
        if (edge.a == edge.b)
            continue;
        edge.kind = static_cast<LayoutConstraint>(rng.uniformInt(0, 2));
        spec.edges.push_back(edge);
    }
    spec.busPrice.resize(offcodes);
    for (auto &price : spec.busPrice)
        price = rng.uniform(0.1, 0.8);
    spec.linkCapacity.assign(devices, 1.2);
    spec.linkCapacity[0] = 0.0;
    return spec;
}

} // namespace

int
main()
{
    std::printf("\n=== Section 5: offloading layout optimization "
                "(ILP vs greedy) ===\n\n");

    // ---- Part 1: the TiVoPC graph ----
    const LayoutSpec tivo = tivoSpec();
    auto exact = solveLayout(tivo);
    if (!exact) {
        std::printf("TiVo layout: ILP failed: %s\n",
                    exact.error().describe().c_str());
        return 1;
    }
    std::printf("TiVoPC layout (Maximized Offloading):\n");
    for (std::size_t n = 0; n < tivo.numOffcodes; ++n)
        std::printf("  %-14s -> %s\n", tivo.offcodeNames[n].c_str(),
                    tivo.deviceNames[exact.value().device[n]].c_str());
    std::printf("  offloaded %zu/6 components, %llu B&B nodes\n\n",
                exact.value().offloadedCount(),
                static_cast<unsigned long long>(
                    exact.value().nodesExplored));

    // ---- Part 2: randomized multi-application sweep ----
    std::printf("%-10s %10s %10s %10s %12s %12s\n", "offcodes",
                "instances", "greedyOK", "infeas", "avg gap", "avg nodes");
    for (std::size_t offcodes : {6u, 10u, 14u, 18u, 22u}) {
        Rng rng(offcodes * 1234567);
        int solved = 0, greedyOptimal = 0, infeasible = 0;
        double gapSum = 0.0;
        double nodeSum = 0.0;
        const int kTrials = 40;
        for (int trial = 0; trial < kTrials; ++trial) {
            const LayoutSpec spec = randomSpec(rng, offcodes, 4);
            auto ilp = solveLayout(spec);
            if (!ilp) {
                ++infeasible;
                continue;
            }
            ++solved;
            nodeSum += static_cast<double>(ilp.value().nodesExplored);
            auto greedy = greedyLayout(spec);
            const double greedyObjective =
                greedy ? greedy.value().objective : 0.0;
            const double gap =
                ilp.value().objective > 1e-12
                    ? 1.0 - greedyObjective / ilp.value().objective
                    : 0.0;
            gapSum += gap;
            if (gap < 1e-9)
                ++greedyOptimal;
        }
        std::printf("%-10zu %10d %9.0f%% %10d %11.1f%% %12.0f\n",
                    offcodes, solved,
                    solved ? 100.0 * greedyOptimal / solved : 0.0,
                    infeasible, solved ? 100.0 * gapSum / solved : 0.0,
                    solved ? nodeSum / solved : 0.0);
    }
    std::printf("\nshape: greedy leaves bus bandwidth unused on "
                "contended graphs; the ILP recovers it at modest "
                "search cost\n");
    return 0;
}
