/**
 * @file
 * Deployment-pipeline bench (paper Section 4.2 / Fig. 5): simulated
 * time to deploy an Offcode onto a programmable device as a function
 * of image size, decomposed into the loader's phases —
 * AllocateOffcodeMemory round trip, host-side dynamic link, DMA
 * image transfer, and device-side install — plus the cost of a full
 * TiVoPC client deployment (six Offcodes, three devices).
 */

#include <cstdio>

#include "core/runtime.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "tivo/harness.hh"

#include "exec/sim_executor.hh"

using namespace hydra;

namespace {

class NullOffcode : public core::Offcode
{
  public:
    explicit NullOffcode(std::string name) : Offcode(std::move(name)) {}
};

double
deployMs(std::size_t image_bytes)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    net::Network network(sim, net::NetworkConfig{});
    dev::DeviceConfig nicConfig = dev::ProgrammableNic::nicDefaultConfig();
    nicConfig.localMemoryBytes = 256 * 1024 * 1024;
    dev::ProgrammableNic nic(sim, machine.bus(), network,
                             network.addNode("nic"), nicConfig);
    core::Runtime runtime(machine);
    runtime.attachDevice(nic);

    const std::string odf =
        "<offcode><package><bindname>bench.X</bindname></package>"
        "<targets><device-class id=\"0x0001\"/></targets></offcode>";
    runtime.depot().registerOffcode(
        odf, []() { return std::make_unique<NullOffcode>("bench.X"); },
        image_bytes);

    sim::SimTime done = 0;
    runtime.createOffcode("bench.X",
                          [&](Result<core::OffcodeHandle> handle) {
                              if (handle)
                                  done = sim.now();
                          });
    sim.runToCompletion();
    return sim::toMilliseconds(done);
}

} // namespace

int
main()
{
    std::printf("\n=== Section 4.2: dynamic Offcode loading latency "
                "===\n\n");
    std::printf("single Offcode onto the programmable NIC "
                "(allocate RTT + host link + DMA + install):\n");
    std::printf("%-14s %14s\n", "image bytes", "deploy ms");
    for (std::size_t image : {16u * 1024, 64u * 1024, 256u * 1024,
                              1024u * 1024, 4096u * 1024}) {
        std::printf("%-14zu %14.3f\n", image, deployMs(image));
    }

    // Full TiVoPC client: six Offcodes across NIC + disk + GPU.
    tivo::TestbedConfig config;
    config.server = tivo::ServerKind::None;
    config.client = tivo::ClientKind::Offloaded;
    tivo::Testbed testbed(config);
    testbed.offloadedClient()->startWatching();
    const sim::SimTime start = testbed.executor().now();
    while (!testbed.offloadedClient()->deployed() &&
           testbed.executor().now() < sim::seconds(5)) {
        if (!testbed.executor().step())
            break;
    }
    std::printf("\nfull TiVoPC client (6 Offcodes, 3 devices, "
                "serial loads): %.3f ms\n",
                sim::toMilliseconds(testbed.executor().now() - start));
    std::printf("\nshape: deployment is a cold-path millisecond-class "
                "operation; it amortizes over hours of streaming\n");
    return 0;
}
