/**
 * @file
 * Reproduces Figure 1: the GHz/Gbps ratio (= %cpu x processor_speed
 * / throughput) of host TCP processing for the transmit (a) and
 * receive (b) paths across packet sizes, after Foong et al.
 * (ISPASS'03).
 *
 * Expected shape: the ratio falls steeply with packet size (per-
 * packet costs amortize), receive stays above transmit (cache-cold
 * payload touch), and both flatten toward the per-byte floor at
 * large sizes.
 */

#include <cstdio>
#include <vector>

#include "net/tcp_model.hh"

int
main()
{
    using namespace hydra::net;

    std::printf("\n=== Figure 1: GHz/Gbps ratio vs packet size ===\n");
    std::printf("Host: 2.4 GHz, line rate 1 Gbps (Foong et al. "
                "testbed class)\n\n");

    TcpPathModel model;
    const std::vector<std::size_t> sizes{64,   128,  256,   512,
                                         1024, 1460, 4096,  8192,
                                         16384, 32768, 65536};

    std::printf("%-10s | %-28s | %-28s\n", "", "(a) Transmit",
                "(b) Receive");
    std::printf("%-10s | %9s %9s %7s | %9s %9s %7s\n", "pkt bytes",
                "GHz/Gbps", "thru Gbps", "cpu%", "GHz/Gbps", "thru Gbps",
                "cpu%");
    std::printf("-----------+------------------------------+----------"
                "--------------------\n");

    for (const std::size_t bytes : sizes) {
        const auto tx = model.evaluate(TcpDirection::Transmit, bytes);
        const auto rx = model.evaluate(TcpDirection::Receive, bytes);
        std::printf("%-10zu | %9.3f %9.3f %6.1f%% | %9.3f %9.3f %6.1f%%\n",
                    bytes, tx.ghzPerGbps, tx.throughputGbps,
                    tx.cpuUtilization * 100.0, rx.ghzPerGbps,
                    rx.throughputGbps, rx.cpuUtilization * 100.0);
    }

    // Shape checks mirrored from the paper's narrative.
    const auto tx64 = model.evaluate(TcpDirection::Transmit, 64);
    const auto tx64k = model.evaluate(TcpDirection::Transmit, 65536);
    const auto rx1460 = model.evaluate(TcpDirection::Receive, 1460);
    const auto tx1460 = model.evaluate(TcpDirection::Transmit, 1460);
    std::printf("\nshape: ratio(64B)/ratio(64KB) tx = %.1fx (steep "
                "small-packet penalty)\n",
                tx64.ghzPerGbps / tx64k.ghzPerGbps);
    std::printf("shape: receive/transmit at MTU = %.2fx (receive "
                "costlier)\n",
                rx1460.ghzPerGbps / tx1460.ghzPerGbps);
    std::printf("shape: ~1 GHz per Gbps near MTU: rx=%.2f GHz/Gbps\n",
                rx1460.ghzPerGbps);
    return 0;
}
