/**
 * @file
 * Reproduces Table 4: client-side CPU utilization for the idle
 * system, the conventional user-space client, and the fully
 * offloaded client — plus the client L2 note from the text (the
 * non-offloaded client generates ~12 % more L2 misses, much of it
 * from MPEG decoding).
 *
 * Paper values:      median  average  stddev
 *   Idle Client        2.90%    2.86%   0.09%
 *   User-space Client  7.30%    6.90%   0.32%
 *   Offloaded Client   2.90%    2.86%   0.09%
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace hydra;
    using namespace hydra::bench;
    using namespace hydra::tivo;

    printHeader("Table 4: client-side CPU utilization (%)");

    const ScenarioResult idle =
        runScenario(ServerKind::None, ClientKind::None);
    const ScenarioResult userSpace =
        runScenario(ServerKind::Offloaded, ClientKind::UserSpace);
    const ScenarioResult offloaded =
        runScenario(ServerKind::Offloaded, ClientKind::Offloaded);

    std::printf("%-18s %-28s %-28s\n", "Scenario",
                "   paper (med avg std)", "  measured (med avg std)");
    printStatRow("Idle Client", 2.90, 2.86, 0.09, idle.clientCpuPct);
    printStatRow("User-space Client", 7.30, 6.90, 0.32,
                 userSpace.clientCpuPct);
    printStatRow("Offloaded Client", 2.90, 2.86, 0.09,
                 offloaded.clientCpuPct);

    std::printf("\nclient L2 misses (text: non-offloaded +12%% vs "
                "idle):\n");
    const double base = idle.clientL2MissRate.mean();
    std::printf("  idle:       %.4f%% (1.00x)\n", base * 100.0);
    std::printf("  user-space: %.4f%% (%.2fx)\n",
                userSpace.clientL2MissRate.mean() * 100.0,
                userSpace.clientL2MissRate.mean() / base);
    std::printf("  offloaded:  %.4f%% (%.2fx)\n",
                offloaded.clientL2MissRate.mean() * 100.0,
                offloaded.clientL2MissRate.mean() / base);

    std::printf("\nshape checks:\n");
    std::printf("  offloaded == idle ('no components left on the "
                "host'): %s (delta %.3f%%)\n",
                std::abs(offloaded.clientCpuPct.mean() -
                         idle.clientCpuPct.mean()) < 0.05
                    ? "yes"
                    : "NO",
                offloaded.clientCpuPct.mean() - idle.clientCpuPct.mean());
    std::printf("  both clients display video: user=%llu, "
                "offloaded=%llu frames\n",
                static_cast<unsigned long long>(userSpace.framesDisplayed),
                static_cast<unsigned long long>(
                    offloaded.framesDisplayed));
    return 0;
}
