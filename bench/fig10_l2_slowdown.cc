/**
 * @file
 * Reproduces Figure 10: server-side L2 cache miss-rate slowdown,
 * normalized to the idle system, for the three Video Server
 * implementations (L2 miss rate sampled every 5 s over the run).
 *
 * Paper shape: Simple Server ~ +7 %, Sendfile ~ idle (negligible —
 * scatter-gather keeps the kernel on a zero-copy path), Offloaded =
 * idle exactly (the host never touches the stream).
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace hydra;
    using namespace hydra::bench;
    using namespace hydra::tivo;

    printHeader("Figure 10: L2 slowdown, server side (normalized "
                "miss rate)");

    const ScenarioResult idle =
        runScenario(ServerKind::None, ClientKind::None);
    const ScenarioResult simple =
        runScenario(ServerKind::Simple, ClientKind::Receiver);
    const ScenarioResult sendfile =
        runScenario(ServerKind::Sendfile, ClientKind::Receiver);
    const ScenarioResult offloaded =
        runScenario(ServerKind::Offloaded, ClientKind::Receiver);

    const double base = idle.serverL2MissRate.mean();

    struct Row
    {
        const char *name;
        double paperNormalized;
        double measuredRate;
    };
    const Row rows[] = {
        {"Idle", 1.00, idle.serverL2MissRate.mean()},
        {"Simple Server", 1.07, simple.serverL2MissRate.mean()},
        {"Sendfile Server", 1.00, sendfile.serverL2MissRate.mean()},
        {"Offloaded Server", 1.00, offloaded.serverL2MissRate.mean()},
    };

    std::printf("%-18s %14s %16s %16s\n", "Scenario", "paper (norm)",
                "measured rate", "measured (norm)");
    for (const Row &row : rows) {
        const double normalized = row.measuredRate / base;
        std::printf("%-18s %14.2f %15.4f%% %15.3f  |%s\n", row.name,
                    row.paperNormalized, row.measuredRate * 100.0,
                    normalized,
                    std::string(static_cast<std::size_t>(
                                    normalized * 30.0),
                                '#')
                        .c_str());
    }

    std::printf("\nshape: simple > sendfile ~= offloaded ~= idle: %s\n",
                simple.serverL2MissRate.mean() >
                            1.03 * sendfile.serverL2MissRate.mean() &&
                        std::abs(offloaded.serverL2MissRate.mean() -
                                 base) < 0.02 * base
                    ? "yes"
                    : "NO");
    return 0;
}
