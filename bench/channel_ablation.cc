/**
 * @file
 * Ablation D1 (DESIGN.md): the Fig. 6 zero-copy DMA-ring channel
 * versus a staged-copy channel, in simulated time. For each message
 * size the bench drives a batch of messages host -> NIC through both
 * buffering modes and reports simulated per-message latency,
 * achievable throughput, and the host L2 traffic each mode causes —
 * the quantitative version of the paper's zero-copy argument.
 * A ring-depth sweep shows the backpressure knee of reliable
 * channels.
 */

#include <cstdio>

#include "core/executive.hh"
#include "core/offcode.hh"
#include "core/providers.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

namespace {

using namespace hydra;
using namespace hydra::core;

/** Counts deliveries. */
class SinkOffcode : public Offcode
{
  public:
    SinkOffcode() : Offcode("bench.Sink") {}

    void
    onData(const Payload &, ChannelHandle) override
    {
        ++received;
    }

    std::uint64_t received = 0;
};

struct RunResult
{
    double perMessageUs = 0.0;
    double throughputGbps = 0.0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dropped = 0;
};

RunResult
driveChannel(ChannelConfig::Buffering buffering, std::size_t message_bytes,
             std::size_t messages, std::size_t ring_depth, bool reliable)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    net::Network net(sim, net::NetworkConfig{});
    const net::NodeId node = net.addNode("nic");
    dev::ProgrammableNic nic(sim, machine.bus(), net, node);

    HostSite host(machine);
    DeviceSite device(machine, nic);

    ChannelExecutive executive([&](const std::string &name)
                                   -> ExecutionSite * {
        if (name == device.name())
            return &device;
        return nullptr;
    });
    executive.registerProvider(
        std::make_unique<DmaRingChannelProvider>(sim, false));

    ChannelConfig config;
    config.buffering = buffering;
    config.reliable = reliable;
    config.ringDepth = ring_depth;
    config.maxMessageBytes = message_bytes + 64; // payload + framing
    config.targetDevice = device.name();

    auto channel = executive.createChannel(config, host, message_bytes);
    if (!channel) {
        std::fprintf(stderr, "channel creation failed: %s\n",
                     channel.error().describe().c_str());
        std::exit(1);
    }
    SinkOffcode sink;
    OffcodeContext ctx;
    ctx.site = &device;
    sink.doInitialize(ctx);
    sink.doStart();
    channel.value()->connectOffcode(sink);

    const auto l2Before = machine.l2().totals().accesses;
    const Payload payload = encodeData(Bytes(message_bytes, 0x42));

    // Paced producer: a new message as soon as the previous write
    // returned (back-to-back offered load).
    for (std::size_t i = 0; i < messages; ++i)
        channel.value()->write(payload);
    sim.runToCompletion();

    RunResult out;
    const double elapsed = sim::toSeconds(sim.now());
    out.perMessageUs = elapsed * 1e6 / static_cast<double>(messages);
    out.throughputGbps = static_cast<double>(sink.received) *
                         static_cast<double>(message_bytes) * 8.0 /
                         (elapsed * 1e9);
    out.l2Accesses = machine.l2().totals().accesses - l2Before;
    out.dropped = channel.value()->stats().messagesDropped;
    return out;
}

} // namespace

int
main()
{
    std::printf("\n=== Ablation D1: zero-copy ring vs staged copy "
                "(host -> NIC) ===\n\n");

    std::printf("%-10s | %-30s | %-30s\n", "", "zero-copy",
                "staged copy");
    std::printf("%-10s | %9s %9s %9s | %9s %9s %9s\n", "msg bytes",
                "us/msg", "Gbps", "L2 acc", "us/msg", "Gbps", "L2 acc");
    std::printf("-----------+--------------------------------+--------"
                "------------------------\n");
    for (std::size_t bytes : {256u, 1024u, 4096u, 16384u, 65536u}) {
        const RunResult zc =
            driveChannel(ChannelConfig::Buffering::ZeroCopy, bytes, 512,
                         64, true);
        const RunResult copy =
            driveChannel(ChannelConfig::Buffering::Copying, bytes, 512,
                         64, true);
        std::printf("%-10zu | %9.2f %9.3f %9llu | %9.2f %9.3f %9llu\n",
                    bytes, zc.perMessageUs, zc.throughputGbps,
                    static_cast<unsigned long long>(zc.l2Accesses),
                    copy.perMessageUs, copy.throughputGbps,
                    static_cast<unsigned long long>(copy.l2Accesses));
    }
    std::printf("\nshape: identical wire time, but the copying "
                "channel streams every payload byte through the host "
                "L2 (the Fig. 10 pollution mechanism)\n");

    std::printf("\nring-depth sweep, unreliable channel, 4 kB "
                "messages, 512 offered:\n");
    std::printf("%-10s %12s %12s\n", "depth", "delivered", "dropped");
    for (std::size_t depth : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const RunResult r = driveChannel(
            ChannelConfig::Buffering::ZeroCopy, 4096, 512, depth, false);
        std::printf("%-10zu %12llu %12llu\n", depth,
                    static_cast<unsigned long long>(512 - r.dropped),
                    static_cast<unsigned long long>(r.dropped));
    }
    std::printf("\nshape: pre-posted descriptors bound the burst an "
                "unreliable channel absorbs; reliable channels "
                "backpressure instead (0 drops at any depth)\n");
    return 0;
}
