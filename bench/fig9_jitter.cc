/**
 * @file
 * Reproduces Figure 9: histogram and cumulative distribution of
 * client-side packet jitter for the three Video Server
 * implementations (Simple / Sendfile / Offloaded), streaming 1 kB
 * every 5 ms.
 *
 * Expected shape: the offloaded server's distribution is a needle at
 * 5 ms; the sendfile server centres on 6 ms and the simple server on
 * 7 ms, both with visible millisecond-scale spread from scheduler-
 * tick quantization and run-queue noise.
 *
 * Also prints a no-noise ablation row (D3 in DESIGN.md): with the
 * host's OS noise disabled the user-space servers still quantize to
 * ticks, isolating where the jitter comes from.
 */

#include "bench/bench_common.hh"

namespace {

using namespace hydra;
using namespace hydra::bench;
using namespace hydra::tivo;

void
printDistribution(const char *name, const SampleSet &samples)
{
    const SummaryStats stats = samples.summary();
    std::printf("--- %s: n=%zu, median=%.3f ms, avg=%.3f ms, "
                "stddev=%.4f ms\n",
                name, stats.count, stats.p50, stats.mean, stats.stddev);

    Histogram histogram(4.0, 9.0, 25);
    for (double v : samples.samples())
        histogram.add(v);
    std::printf("%s", histogram.render(46).c_str());

    std::printf("CDF: ");
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0})
        std::printf("p%.0f=%.3f  ", p, samples.percentile(p));
    std::printf("\n\n");
}

/** D3 ablation: host OS stochastic noise off; quantization remains. */
SampleSet
quietHostJitter(ServerKind kind)
{
    TestbedConfig config = scenarioConfig(kind, ClientKind::Receiver);
    config.duration = std::min<sim::SimTime>(config.duration,
                                             sim::seconds(120));
    config.quietHost = true;
    Testbed testbed(config);
    return testbed.run().interarrivalMs;
}

} // namespace

int
main()
{
    using hydra::tivo::ServerKind;

    hydra::bench::printHeader(
        "Figure 9: jitter distribution (histogram + CDF)");

    const ScenarioResult simple =
        runScenario(ServerKind::Simple, ClientKind::Receiver);
    const ScenarioResult sendfile =
        runScenario(ServerKind::Sendfile, ClientKind::Receiver);
    const ScenarioResult offloaded =
        runScenario(ServerKind::Offloaded, ClientKind::Receiver);

    printDistribution("Simple Server", simple.interarrivalMs);
    printDistribution("Sendfile Server", sendfile.interarrivalMs);
    printDistribution("Offloaded Server", offloaded.interarrivalMs);

    maybeWriteCsv("fig9_simple", simple.interarrivalMs);
    maybeWriteCsv("fig9_sendfile", sendfile.interarrivalMs);
    maybeWriteCsv("fig9_offloaded", offloaded.interarrivalMs);

    std::printf("shape: offloaded stddev is %.0fx below sendfile and "
                "%.0fx below simple\n",
                sendfile.interarrivalMs.stddev() /
                    offloaded.interarrivalMs.stddev(),
                simple.interarrivalMs.stddev() /
                    offloaded.interarrivalMs.stddev());
    std::printf("shape: medians %.2f > %.2f > %.2f ms (paper: 6.99 > "
                "6.00 > 5.00)\n",
                simple.interarrivalMs.median(),
                sendfile.interarrivalMs.median(),
                offloaded.interarrivalMs.median());

    // D3 ablation: with the host's stochastic OS noise disabled, the
    // user-space servers collapse onto exact tick multiples but stay
    // above 5 ms — the median offset is pure tick quantization, the
    // spread is run-queue noise.
    const SampleSet quiet = quietHostJitter(ServerKind::Simple);
    std::printf("\nablation (quiet host, simple server): median=%.3f "
                "ms, stddev=%.4f ms\n",
                quiet.median(), quiet.stddev());
    std::printf("-> quantization sets the median; OS noise supplies "
                "the spread\n");
    return 0;
}
