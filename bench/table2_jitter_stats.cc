/**
 * @file
 * Reproduces Table 2: client-side jitter statistics (median,
 * average, standard deviation of packet inter-arrival, ms) for the
 * three Video Server implementations.
 *
 * Paper values:      median  average  stddev
 *   Simple Server      6.99     7.00  0.5521
 *   Sendfile Server    6.00     5.99  0.4720
 *   Offloaded Server   5.00     5.00  0.0369
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace hydra;
    using namespace hydra::bench;
    using namespace hydra::tivo;

    printHeader("Table 2: client-side jitter statistics (ms)");

    const ScenarioResult simple =
        runScenario(ServerKind::Simple, ClientKind::Receiver);
    const ScenarioResult sendfile =
        runScenario(ServerKind::Sendfile, ClientKind::Receiver);
    const ScenarioResult offloaded =
        runScenario(ServerKind::Offloaded, ClientKind::Receiver);

    std::printf("%-18s %-28s %-28s\n", "Scenario",
                "   paper (med avg std)", "  measured (med avg std)");
    printStatRow("Simple Server", 6.99, 7.00, 0.5521,
                 simple.interarrivalMs);
    printStatRow("Sendfile Server", 6.00, 5.99, 0.4720,
                 sendfile.interarrivalMs);
    printStatRow("Offloaded Server", 5.00, 5.00, 0.0369,
                 offloaded.interarrivalMs);

    std::printf("\nshape checks:\n");
    std::printf("  medians ordered 7 > 6 > 5 ms: %s\n",
                simple.interarrivalMs.median() >
                            sendfile.interarrivalMs.median() &&
                        sendfile.interarrivalMs.median() >
                            offloaded.interarrivalMs.median()
                    ? "yes"
                    : "NO");
    std::printf("  offloaded stddev >=10x below user-space: %s "
                "(%.0fx / %.0fx)\n",
                simple.interarrivalMs.stddev() >
                            10.0 * offloaded.interarrivalMs.stddev() &&
                        sendfile.interarrivalMs.stddev() >
                            10.0 * offloaded.interarrivalMs.stddev()
                    ? "yes"
                    : "NO",
                simple.interarrivalMs.stddev() /
                    offloaded.interarrivalMs.stddev(),
                sendfile.interarrivalMs.stddev() /
                    offloaded.interarrivalMs.stddev());
    return 0;
}
