/**
 * @file
 * Shared helpers for the reproduction benches: scenario execution at
 * paper-length durations (10 minutes simulated, configurable through
 * HYDRA_BENCH_SECONDS) and table formatting with paper-vs-measured
 * columns.
 */

#ifndef HYDRA_BENCH_COMMON_HH
#define HYDRA_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/metrics.hh"
#include "tivo/harness.hh"

namespace hydra::bench {

/** Simulated measurement duration (default: the paper's 10 min). */
inline sim::SimTime
benchDuration()
{
    if (const char *env = std::getenv("HYDRA_BENCH_SECONDS")) {
        const long seconds = std::strtol(env, nullptr, 10);
        if (seconds > 0)
            return sim::seconds(static_cast<std::uint64_t>(seconds));
    }
    return sim::seconds(600);
}

/** Build the standard testbed configuration for one scenario. */
inline tivo::TestbedConfig
scenarioConfig(tivo::ServerKind server, tivo::ClientKind client,
               std::uint64_t seed = 1)
{
    tivo::TestbedConfig config;
    config.server = server;
    config.client = client;
    config.duration = benchDuration();
    config.warmup = sim::seconds(5);
    config.sampleInterval = sim::seconds(5); // the paper's cadence
    config.seed = seed;
    return config;
}

/**
 * Optional metrics export: when HYDRA_BENCH_METRICS names a directory,
 * runScenario() dumps the scenario's registry snapshot there as JSON.
 */
inline void
maybeWriteMetrics(const std::string &name)
{
    const char *dir = std::getenv("HYDRA_BENCH_METRICS");
    if (!dir)
        return;
    const std::string path =
        std::string(dir) + "/" + name + ".metrics.json";
    std::ofstream out(path);
    if (out) {
        out << obs::MetricsRegistry::instance().toJson() << '\n';
        std::printf("(wrote %s)\n", path.c_str());
    }
}

/** Run one scenario to completion. */
inline tivo::ScenarioResult
runScenario(tivo::ServerKind server, tivo::ClientKind client,
            std::uint64_t seed = 1)
{
    // Scope the process-wide metrics to this scenario so exported
    // snapshots are per-run, not cumulative across the bench.
    obs::MetricsRegistry::instance().reset();
    tivo::Testbed testbed(scenarioConfig(server, client, seed));
    tivo::ScenarioResult result = testbed.run();
    maybeWriteMetrics(std::string(tivo::serverKindName(server)) + "-" +
                      std::string(tivo::clientKindName(client)));
    return result;
}

/**
 * Optional CSV export: when HYDRA_BENCH_CSV names a directory, benches
 * dump raw series there for external plotting.
 */
inline void
maybeWriteCsv(const std::string &name, const SampleSet &samples)
{
    const char *dir = std::getenv("HYDRA_BENCH_CSV");
    if (!dir || samples.empty())
        return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    if (std::FILE *file = std::fopen(path.c_str(), "w")) {
        std::fprintf(file, "value\n");
        for (double v : samples.samples())
            std::fprintf(file, "%.6f\n", v);
        std::fclose(file);
        std::printf("(wrote %s)\n", path.c_str());
    }
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(simulated duration per scenario: %.0f s; "
                "set HYDRA_BENCH_SECONDS to change)\n\n",
                sim::toSeconds(benchDuration()));
}

/** One "paper vs measured" row for a three-column statistic. */
inline void
printStatRow(const char *scenario, double paper_median,
             double paper_avg, double paper_std, const SampleSet &measured)
{
    const SummaryStats stats = measured.summary();
    std::printf("%-18s paper: %6.2f %6.2f %7.4f   measured: "
                "%6.2f %6.2f %7.4f\n",
                scenario, paper_median, paper_avg, paper_std,
                stats.p50, stats.mean, stats.stddev);
}

} // namespace hydra::bench

#endif // HYDRA_BENCH_COMMON_HH
