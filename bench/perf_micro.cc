/**
 * @file
 * Wall-clock microbenchmarks (google-benchmark) of the framework's
 * hot primitives: event dispatch, Call marshaling, RLE codec, XML
 * parsing, cache-model accesses, and the branch-and-bound solver.
 * These guard the simulator's own performance — a 10-minute
 * evaluation run replays ~10^7 events.
 */

#include <benchmark/benchmark.h>

#include "core/call.hh"
#include "hw/cache.hh"
#include "ilp/layout.hh"
#include "odf/odf.hh"
#include "sim/simulator.hh"
#include "tivo/mpeg.hh"

namespace {

using namespace hydra;

void
BM_SimulatorDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int counter = 0;
        for (int i = 0; i < 1000; ++i)
            sim.schedule(static_cast<sim::SimTime>(i), [&]() { ++counter; });
        sim.runToCompletion();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorDispatch);

void
BM_CallRoundTrip(benchmark::State &state)
{
    core::Call call;
    call.targetOffcode = Guid(1);
    call.interfaceGuid = Guid(2);
    call.method = "Decode";
    call.arguments.assign(static_cast<std::size_t>(state.range(0)), 7);
    for (auto _ : state) {
        const Bytes wire = call.serialize();
        auto decoded = core::Call::deserialize(wire);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CallRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_MpegEncodeDecode(benchmark::State &state)
{
    tivo::MpegConfig config;
    tivo::SyntheticVideo source(config, 42);
    std::uint32_t seq = 0;
    tivo::MpegEncoder encoder(config);
    tivo::MpegDecoder decoder;
    for (auto _ : state) {
        auto encoded = encoder.encode(source.frame(seq++));
        auto raw = decoder.decode(encoded.value());
        benchmark::DoNotOptimize(raw);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpegEncodeDecode);

void
BM_XmlParseOdf(benchmark::State &state)
{
    const std::string xml = R"(<offcode>
      <package><bindname>bench.Offcode</bindname>
        <interface name="I"><method name="m1"/><method name="m2"/>
        </interface></package>
      <sw-env><import><bindname>peer</bindname>
        <reference type="Pull" pri="1"/></import>
        <requires memory="65536"><capability name="dma"/></requires>
      </sw-env>
      <targets><device-class id="0x0001"><name>NIC</name></device-class>
        <host-fallback/></targets>
      <price bus="0.2"/></offcode>)";
    for (auto _ : state) {
        auto doc = odf::OdfDocument::parse(xml);
        benchmark::DoNotOptimize(doc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlParseOdf);

void
BM_CacheAccess(benchmark::State &state)
{
    hw::CacheModel cache(256 * 1024, 64, 8);
    hw::Addr addr = 0;
    for (auto _ : state) {
        cache.access(addr, 64, false);
        addr = (addr + 4096) % (8 * 1024 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_IlpTivoLayout(benchmark::State &state)
{
    ilp::LayoutSpec spec;
    spec.numOffcodes = 6;
    spec.numDevices = 4;
    spec.compatible = {
        {true, false, false, false}, {true, true, false, false},
        {true, false, true, false},  {true, true, false, true},
        {true, false, false, true},  {true, false, true, false},
    };
    spec.edges = {{1, 3, ilp::LayoutConstraint::Gang},
                  {1, 2, ilp::LayoutConstraint::Gang},
                  {3, 4, ilp::LayoutConstraint::Pull},
                  {2, 5, ilp::LayoutConstraint::Pull}};
    for (auto _ : state) {
        auto solution = ilp::solveLayout(spec);
        benchmark::DoNotOptimize(solution);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IlpTivoLayout);

} // namespace

BENCHMARK_MAIN();
