/**
 * @file
 * Wall-clock microbenchmarks (google-benchmark) of the framework's
 * hot primitives: event dispatch, Call marshaling, RLE codec, XML
 * parsing, cache-model accesses, and the branch-and-bound solver.
 * These guard the simulator's own performance — a 10-minute
 * evaluation run replays ~10^7 events.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/call.hh"
#include "core/executive.hh"
#include "fleet/fleet.hh"
#include "fleet/loadgen.hh"
#include "core/offcode.hh"
#include "core/providers.hh"
#include "dev/nic.hh"
#include "hw/cache.hh"
#include "hw/machine.hh"
#include "ilp/layout.hh"
#include "net/network.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "odf/odf.hh"
#include "exec/sim_executor.hh"
#include "exec/threaded_executor.hh"
#include "tivo/mpeg.hh"

namespace {

using namespace hydra;

void
BM_SimulatorDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        exec::SimExecutor sim;
        int counter = 0;
        for (int i = 0; i < 1000; ++i)
            sim.schedule(static_cast<sim::SimTime>(i), [&]() { ++counter; });
        sim.runToCompletion();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorDispatch);

void
BM_CallRoundTrip(benchmark::State &state)
{
    core::Call call;
    call.targetOffcode = Guid(1);
    call.interfaceGuid = Guid(2);
    call.method = "Decode";
    call.arguments.assign(static_cast<std::size_t>(state.range(0)), 7);
    for (auto _ : state) {
        const Payload wire = call.serialize();
        auto decoded = core::Call::deserialize(wire);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CallRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_MpegEncodeDecode(benchmark::State &state)
{
    tivo::MpegConfig config;
    tivo::SyntheticVideo source(config, 42);
    std::uint32_t seq = 0;
    tivo::MpegEncoder encoder(config);
    tivo::MpegDecoder decoder;
    for (auto _ : state) {
        auto encoded = encoder.encode(source.frame(seq++));
        auto raw = decoder.decode(encoded.value());
        benchmark::DoNotOptimize(raw);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpegEncodeDecode);

void
BM_XmlParseOdf(benchmark::State &state)
{
    const std::string xml = R"(<offcode>
      <package><bindname>bench.Offcode</bindname>
        <interface name="I"><method name="m1"/><method name="m2"/>
        </interface></package>
      <sw-env><import><bindname>peer</bindname>
        <reference type="Pull" pri="1"/></import>
        <requires memory="65536"><capability name="dma"/></requires>
      </sw-env>
      <targets><device-class id="0x0001"><name>NIC</name></device-class>
        <host-fallback/></targets>
      <price bus="0.2"/></offcode>)";
    for (auto _ : state) {
        auto doc = odf::OdfDocument::parse(xml);
        benchmark::DoNotOptimize(doc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlParseOdf);

void
BM_CacheAccess(benchmark::State &state)
{
    hw::CacheModel cache(256 * 1024, 64, 8);
    hw::Addr addr = 0;
    for (auto _ : state) {
        cache.access(addr, 64, false);
        addr = (addr + 4096) % (8 * 1024 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_IlpTivoLayout(benchmark::State &state)
{
    ilp::LayoutSpec spec;
    spec.numOffcodes = 6;
    spec.numDevices = 4;
    spec.compatible = {
        {true, false, false, false}, {true, true, false, false},
        {true, false, true, false},  {true, true, false, true},
        {true, false, false, true},  {true, false, true, false},
    };
    spec.edges = {{1, 3, ilp::LayoutConstraint::Gang},
                  {1, 2, ilp::LayoutConstraint::Gang},
                  {3, 4, ilp::LayoutConstraint::Pull},
                  {2, 5, ilp::LayoutConstraint::Pull}};
    for (auto _ : state) {
        auto solution = ilp::solveLayout(spec);
        benchmark::DoNotOptimize(solution);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IlpTivoLayout);

// ------------------------------------------------- telemetry hot path

/**
 * Cost of one Histogram::record() — the price every instrumented
 * delivery/dispatch site pays. The value stream cycles through a
 * precomputed table spanning all octaves so the bucket-index math
 * (bit_width + shift) sees realistic inputs, while the per-iteration
 * overhead beyond record() stays at one load and a mask. Gated by
 * scripts/check.sh --bench-smoke at HYDRA_HIST_RECORD_NS_MAX.
 */
void
BM_HistogramRecord(benchmark::State &state)
{
    obs::Histogram h;
    std::uint64_t values[1024];
    std::uint64_t seed = 0x2545f4914f6cdd1dull;
    for (std::uint64_t &v : values) {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        v = seed >> (seed % 48); // spread across the octave range
    }
    std::size_t i = 0;
    for (auto _ : state) {
        h.record(values[i++ & 1023]);
    }
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// --------------------------------------------------- channel data path

/** Discards deliveries; the channel machinery is what's measured. */
class SinkOffcode : public core::Offcode
{
  public:
    SinkOffcode() : Offcode("bench.Sink") {}

    void
    onData(const Payload &payload, core::ChannelHandle) override
    {
        received += 1;
        receivedBytes += payload.size();
    }

    std::uint64_t received = 0;
    std::uint64_t receivedBytes = 0;
};

/** Minimal simulated machine + NIC + executive for channel benches. */
struct ChannelBenchWorld
{
    ChannelBenchWorld()
        : machine(sim, hw::MachineConfig{}),
          net(sim, net::NetworkConfig{}),
          hostSite(machine)
    {
        nicNode = net.addNode("nic");
        nic = std::make_unique<dev::ProgrammableNic>(sim, machine.bus(),
                                                     net, nicNode);
        deviceSite = std::make_unique<core::DeviceSite>(machine, *nic);
        executive = std::make_unique<core::ChannelExecutive>(
            [this](const std::string &name) -> core::ExecutionSite * {
                if (name == hostSite.name())
                    return &hostSite;
                if (name == deviceSite->name())
                    return deviceSite.get();
                return nullptr;
            });
        executive->registerProvider(
            std::make_unique<core::LocalChannelProvider>(sim));
        executive->registerProvider(
            std::make_unique<core::DmaRingChannelProvider>(sim, false));
    }

    void
    place(core::Offcode &offcode, core::ExecutionSite &site)
    {
        core::OffcodeContext ctx;
        ctx.site = &site;
        offcode.doInitialize(ctx);
        offcode.doStart();
    }

    exec::SimExecutor sim;
    hw::Machine machine;
    net::Network net;
    net::NodeId nicNode = 0;
    std::unique_ptr<dev::ProgrammableNic> nic;
    core::HostSite hostSite;
    std::unique_ptr<core::DeviceSite> deviceSite;
    std::unique_ptr<core::ChannelExecutive> executive;
};

void
BM_ChannelThroughput(benchmark::State &state)
{
    const auto messageBytes = static_cast<std::size_t>(state.range(0));
    const bool dma = state.range(1) != 0;
    const bool copying = state.range(2) != 0;
    const bool hist = state.range(3) != 0;

    ChannelBenchWorld world;
    SinkOffcode sink;
    world.place(sink, dma ? static_cast<core::ExecutionSite &>(
                                *world.deviceSite)
                          : world.hostSite);

    core::ChannelConfig config;
    // hist:1 names the channel so every delivery records into the
    // per-channel latency histogram; hist:0 leaves it anonymous. The
    // pair isolates the telemetry overhead within one run, immune to
    // machine drift between sessions (gated by bench_gate.py).
    if (hist)
        config.name = "bench.sink";
    config.targetDevice =
        dma ? world.deviceSite->name() : world.hostSite.name();
    config.buffering = copying ? core::ChannelConfig::Buffering::Copying
                               : core::ChannelConfig::Buffering::ZeroCopy;
    config.reliable = true;
    auto channel = world.executive->createChannel(config, world.hostSite);
    channel.value()->connectOffcode(sink);

    const auto message = core::encodeData(Bytes(messageBytes, 0x5a));
    constexpr int kBatch = 64;
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i)
            channel.value()->write(message);
        world.sim.runToCompletion();
    }
    benchmark::DoNotOptimize(sink.received);
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetBytesProcessed(state.iterations() * kBatch *
                            static_cast<std::int64_t>(messageBytes));
}
BENCHMARK(BM_ChannelThroughput)
    ->ArgNames({"bytes", "dma", "copying", "hist"})
    ->Args({64, 0, 0, 0})
    ->Args({64, 0, 0, 1})
    ->Args({64, 0, 1, 0})
    ->Args({64, 0, 1, 1})
    ->Args({16384, 0, 0, 0})
    ->Args({16384, 0, 0, 1})
    ->Args({16384, 0, 1, 0})
    ->Args({16384, 0, 1, 1})
    ->Args({64, 1, 0, 0})
    ->Args({64, 1, 0, 1})
    ->Args({64, 1, 1, 0})
    ->Args({64, 1, 1, 1})
    ->Args({16384, 1, 0, 0})
    ->Args({16384, 1, 0, 1})
    ->Args({16384, 1, 1, 0})
    ->Args({16384, 1, 1, 1});

/**
 * Batched channel writes: the same 64-message burst as
 * BM_ChannelThroughput, but issued through ONE writeBatch() call per
 * iteration — one transport visit, one clock resolve, one scheduled
 * delivery event (local) or one DMA descriptor chain (ring) for the
 * whole burst. The unbatched rows above are the baseline pair.
 */
void
BM_ChannelBatchThroughput(benchmark::State &state)
{
    const auto messageBytes = static_cast<std::size_t>(state.range(0));
    const bool dma = state.range(1) != 0;

    ChannelBenchWorld world;
    SinkOffcode sink;
    world.place(sink, dma ? static_cast<core::ExecutionSite &>(
                                *world.deviceSite)
                          : world.hostSite);

    core::ChannelConfig config;
    config.targetDevice =
        dma ? world.deviceSite->name() : world.hostSite.name();
    config.reliable = true;
    auto channel = world.executive->createChannel(config, world.hostSite);
    channel.value()->connectOffcode(sink);

    const auto message = core::encodeData(Bytes(messageBytes, 0x5a));
    constexpr int kBatch = 64;
    std::vector<Payload> batch;
    for (auto _ : state) {
        batch.assign(static_cast<std::size_t>(kBatch), message);
        channel.value()->writeBatch(std::move(batch));
        world.sim.runToCompletion();
    }
    benchmark::DoNotOptimize(sink.received);
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetBytesProcessed(state.iterations() * kBatch *
                            static_cast<std::int64_t>(messageBytes));
}
BENCHMARK(BM_ChannelBatchThroughput)
    ->ArgNames({"bytes", "dma"})
    ->Args({64, 0})
    ->Args({16384, 0})
    ->Args({64, 1})
    ->Args({16384, 1});

/**
 * Low-load delivery latency, batched vs unbatched write, measured in
 * VIRTUAL time: one message in flight at a time, so there is no
 * backlog for batching to exploit — the adaptivity invariant says the
 * batched path must then cost nothing extra. Each variant records
 * into its own named channel histogram and exports the virtual-time
 * p99 as the `p99_ns` counter; bench_gate.py pairs batched:1 against
 * batched:0 (budget 1.05). Under the deterministic engine both paths
 * resolve the same clock values, so the ratio is exactly 1.0 by
 * construction — the gate exists to catch a future regression that
 * adds a wait or an extra hop to the batched path.
 */
void
BM_ChannelLowLoad(benchmark::State &state)
{
    const bool batched = state.range(0) != 0;

    ChannelBenchWorld world;
    SinkOffcode sink;
    world.place(sink, world.hostSite);

    core::ChannelConfig config;
    config.name = batched ? "bench.lowload.batched"
                          : "bench.lowload.unbatched";
    config.targetDevice = world.hostSite.name();
    config.reliable = true;
    auto channel = world.executive->createChannel(config, world.hostSite);
    channel.value()->connectOffcode(sink);

    const auto message = core::encodeData(Bytes(64, 0x5a));
    std::vector<Payload> one;
    for (auto _ : state) {
        if (batched) {
            one.assign(1, message);
            channel.value()->writeBatch(std::move(one));
        } else {
            channel.value()->write(message);
        }
        world.sim.runToCompletion();
    }
    benchmark::DoNotOptimize(sink.received);
    state.SetItemsProcessed(state.iterations());
    state.counters["p99_ns"] = benchmark::Counter(
        obs::histogram("channel.delivery_latency_ns",
                       {{"channel", config.name},
                        {"host", world.machine.name()}})
            .percentile(99.0));
}
BENCHMARK(BM_ChannelLowLoad)
    ->ArgNames({"batched"})
    ->Arg(0)
    ->Arg(1);

void
BM_MulticastFanout(benchmark::State &state)
{
    const auto messageBytes = static_cast<std::size_t>(state.range(0));
    constexpr int kEndpoints = 8;

    ChannelBenchWorld world;
    core::ChannelConfig config;
    config.type = core::ChannelConfig::Type::Multicast;
    config.targetDevice = world.deviceSite->name();
    config.reliable = true;
    auto channel = world.executive->createChannel(config, world.hostSite);

    std::vector<std::unique_ptr<SinkOffcode>> sinks;
    for (int i = 0; i < kEndpoints; ++i) {
        sinks.push_back(std::make_unique<SinkOffcode>());
        world.place(*sinks.back(), *world.deviceSite);
        channel.value()->connectOffcode(*sinks.back());
    }

    const auto message = core::encodeData(Bytes(messageBytes, 0x5a));
    constexpr int kBatch = 16;
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i)
            channel.value()->write(message);
        world.sim.runToCompletion();
    }
    benchmark::DoNotOptimize(sinks.front()->received);
    state.SetItemsProcessed(state.iterations() * kBatch * kEndpoints);
    state.SetBytesProcessed(state.iterations() * kBatch * kEndpoints *
                            static_cast<std::int64_t>(messageBytes));
}
BENCHMARK(BM_MulticastFanout)->Arg(64)->Arg(16384);

// ------------------------------------------------ executor pipelines

/**
 * TiVo-shaped stage pipeline over the executor's post() primitive:
 * each message is a refcounted Payload handed site-to-site
 * (NIC -> decode -> display in miniature), with a checksum per hop
 * standing in for stage work. Args: (sites, threaded). Under the sim
 * engine every hop is a zero-delay event through the global heap;
 * under the threaded engine each hop is an SPSC ring handoff to that
 * site's worker thread. The comparison (same site count, threaded=0
 * vs 1) isolates the per-hop dispatch cost of the two engines.
 */
struct BenchPipeline
{
    BenchPipeline(exec::Executor &engine_, int stages) : engine(engine_)
    {
        for (int i = 0; i < stages; ++i)
            sites.push_back(engine.addSite("stage-" + std::to_string(i)));
    }

    /** Publish each stage through the profiler's ActivityScope, as
     * the channel dispatch path does (BM_ProfilerOverhead). */
    void
    publishActivity()
    {
        obs::Profiler &profiler = obs::Profiler::instance();
        label = profiler.intern("bench.pipeline", "data");
        for (std::size_t i = 0; i < sites.size(); ++i)
            slots.push_back(
                profiler.slotFor("stage-" + std::to_string(i)));
    }

    void
    stage(std::size_t index, Payload message)
    {
        obs::ActivityScope activity(
            slots.empty() ? nullptr : slots[index], label);
        // Constant-time stage work: touch the buffer ends so the
        // handoff is real (the bytes must be resident and shared),
        // without per-byte work masking the dispatch cost under test.
        benchmark::DoNotOptimize(message.data()[0] +
                                 message.data()[message.size() - 1]);
        if (index + 1 < sites.size()) {
            engine.post(sites[index + 1],
                        [this, index, m = std::move(message)]() mutable {
                            stage(index + 1, std::move(m));
                        });
        } else {
            processed.fetch_add(1, std::memory_order_relaxed);
        }
    }

    void
    feed(Payload message)
    {
        engine.post(sites[0],
                    [this, m = std::move(message)]() mutable {
                        stage(0, std::move(m));
                    });
    }

    exec::Executor &engine;
    std::vector<exec::SiteId> sites;
    std::atomic<std::uint64_t> processed{0};
    std::vector<obs::SiteActivitySlot *> slots;
    const obs::ActivityLabel *label = nullptr;
};

void
BM_PipelineParallel(benchmark::State &state)
{
    const int stages = static_cast<int>(state.range(0));
    const bool threaded = state.range(1) != 0;

    std::unique_ptr<exec::Executor> engine;
    if (threaded) {
        exec::ThreadedExecutor::Config config;
        // A whole batch fits in each ring, so on few-core hosts the
        // producer enqueues a burst and each worker drains it in one
        // scheduling quantum instead of ping-ponging per message.
        config.ringCapacity = 4096;
        engine = std::make_unique<exec::ThreadedExecutor>(config);
    } else {
        engine = std::make_unique<exec::SimExecutor>();
    }
    BenchPipeline pipeline(*engine, stages);

    // Small control-plane sized message: keeps per-hop payload work
    // (the crc touch) minor so the measurement isolates dispatch cost.
    const Payload message{Bytes(64, 0x5a)};
    constexpr int kMessages = 1024;
    for (auto _ : state) {
        for (int i = 0; i < kMessages; ++i)
            pipeline.feed(message);
        engine->drain();
    }
    if (pipeline.processed.load() !=
        state.iterations() * static_cast<std::uint64_t>(kMessages))
        state.SkipWithError("pipeline lost messages");
    state.SetItemsProcessed(state.iterations() * kMessages);
    state.counters["hops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kMessages * stages,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineParallel)
    ->ArgNames({"sites", "threaded"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->UseRealTime();

/**
 * The batched hot path end to end: messages travel the same
 * site-to-site pipeline, but the handoff unit is a batch — the feeder
 * publishes every batch closure with ONE postBatch() (one ring index
 * store, at most one doorbell), and each hop forwards its whole batch
 * in one closure, the shape the channel layer's writeBatch()/
 * deliverBatchTo() produce. batch:1 degenerates to the per-message
 * pipeline (the unbatched baseline bench_gate.py pairs against);
 * items/s at sites=4 threaded=1 batch=64 versus BM_PipelineParallel
 * sites=4 threaded=1 is the headline ≥5x acceptance number.
 */
struct BatchPipeline
{
    BatchPipeline(exec::Executor &engine_, int stages) : engine(engine_)
    {
        for (int i = 0; i < stages; ++i)
            sites.push_back(engine.addSite("stage-" + std::to_string(i)));
    }

    void
    stage(std::size_t index, std::vector<Payload> batch)
    {
        for (const Payload &message : batch)
            benchmark::DoNotOptimize(
                message.data()[0] + message.data()[message.size() - 1]);
        if (index + 1 < sites.size()) {
            engine.post(sites[index + 1],
                        [this, index, b = std::move(batch)]() mutable {
                            stage(index + 1, std::move(b));
                        });
        } else {
            processed.fetch_add(batch.size(), std::memory_order_relaxed);
        }
    }

    void
    feedAll(const Payload &message, int total, int batchSize)
    {
        std::vector<exec::Executor::Callback> closures;
        closures.reserve(static_cast<std::size_t>(
            (total + batchSize - 1) / batchSize));
        for (int fed = 0; fed < total; fed += batchSize) {
            const int count = std::min(batchSize, total - fed);
            std::vector<Payload> batch(
                static_cast<std::size_t>(count), message);
            closures.push_back([this, b = std::move(batch)]() mutable {
                stage(0, std::move(b));
            });
        }
        engine.postBatch(sites[0], closures);
    }

    exec::Executor &engine;
    std::vector<exec::SiteId> sites;
    std::atomic<std::uint64_t> processed{0};
};

void
BM_BatchedPipeline(benchmark::State &state)
{
    const int stages = static_cast<int>(state.range(0));
    const bool threaded = state.range(1) != 0;
    const int batchSize = static_cast<int>(state.range(2));

    std::unique_ptr<exec::Executor> engine;
    if (threaded) {
        exec::ThreadedExecutor::Config config;
        config.ringCapacity = 4096;
        engine = std::make_unique<exec::ThreadedExecutor>(config);
    } else {
        engine = std::make_unique<exec::SimExecutor>();
    }
    BatchPipeline pipeline(*engine, stages);

    const Payload message{Bytes(64, 0x5a)};
    constexpr int kMessages = 1024;
    for (auto _ : state) {
        pipeline.feedAll(message, kMessages, batchSize);
        engine->drain();
    }
    if (pipeline.processed.load() !=
        state.iterations() * static_cast<std::uint64_t>(kMessages))
        state.SkipWithError("pipeline lost messages");
    state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_BatchedPipeline)
    ->ArgNames({"sites", "threaded", "batch"})
    ->Args({4, 0, 1})
    ->Args({4, 0, 64})
    ->Args({2, 1, 64})
    ->Args({4, 1, 1})
    ->Args({4, 1, 64})
    ->UseRealTime();

/**
 * Profiler overhead on the dispatch path: the same 2-stage pipeline
 * publishing ActivityScopes per hop, with the profiler off (the
 * scope is one relaxed load) vs on (pointer stores per hop plus one
 * sample per 1024-message batch). Gated by scripts/bench_gate.py:
 * the profile:1/profile:0 ratio must stay within the budget.
 */
void
BM_ProfilerOverhead(benchmark::State &state)
{
    const bool profile = state.range(0) != 0;
    obs::Profiler &profiler = obs::Profiler::instance();
    profiler.clear();
    if (profile)
        profiler.enable(1000);
    else
        profiler.disable();

    exec::SimExecutor engine;
    BenchPipeline pipeline(engine, 2);
    pipeline.publishActivity();

    const Payload message{Bytes(64, 0x5a)};
    constexpr int kMessages = 1024;
    std::uint64_t tick = 0;
    for (auto _ : state) {
        for (int i = 0; i < kMessages; ++i)
            pipeline.feed(message);
        engine.drain();
        if (profile)
            profiler.sample(++tick);
    }
    if (pipeline.processed.load() !=
        state.iterations() * static_cast<std::uint64_t>(kMessages))
        state.SkipWithError("pipeline lost messages");
    state.SetItemsProcessed(state.iterations() * kMessages);

    profiler.disable();
    profiler.clear();
}
BENCHMARK(BM_ProfilerOverhead)
    ->ArgNames({"profile"})
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime();

/**
 * Fleet smoke: a saturating open-loop run on 1 vs 4 hosts. real_time
 * guards the wall-clock cost of simulating a fleet (bench_compare's
 * 2x gate); the `vmsgs_per_sec` counter carries the virtual-time
 * goodput, whose hosts:4 / hosts:1 ratio bench_gate.py holds to the
 * >= 2x scaling bar. The sim engine makes the counter deterministic.
 */
void
BM_FleetOpenLoop(benchmark::State &state)
{
    const auto hosts = static_cast<std::size_t>(state.range(0));
    double goodput = 0.0;
    for (auto _ : state) {
        exec::SimExecutor sim;
        fleet::FleetConfig config;
        config.hosts = hosts;
        fleet::Fleet fleet(sim, config);

        fleet::LoadgenConfig load;
        load.streams = 500;
        load.messageBytes = 256;
        load.offeredMsgsPerSec = 5e6; // saturating for one host
        load.duration = sim::milliseconds(10);
        const fleet::LoadgenReport report =
            fleet::runOpenLoop(fleet, load);
        if (report.delivered == 0 || report.writeFailures != 0) {
            state.SkipWithError("fleet run did not deliver cleanly");
            break;
        }
        goodput = report.deliveredPerVirtualSec;
    }
    state.counters["vmsgs_per_sec"] = benchmark::Counter(goodput);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetOpenLoop)
    ->ArgNames({"hosts"})
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
