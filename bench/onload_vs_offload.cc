/**
 * @file
 * Extension bench: offloading versus "onloading" (paper Section 1.1).
 *
 * The paper discusses Piglet and Regnier et al.'s alternative of
 * dedicating a host CPU to I/O. This bench runs the video server
 * four ways — simple, onloaded (dedicated busy-polling host core),
 * offloaded (NIC firmware), and idle — and compares jitter, bus
 * traffic, application-core CPU, and the silicon burned.
 *
 * Expected shape (the paper's argument): onloading matches offload
 * jitter (no scheduler tick on a dedicated core) and frees the
 * application core, BUT the payload still crosses the host bus and
 * the shared L2, and the price is an entire host core pinned — two
 * orders of magnitude more watts than the peripheral's XScale.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace hydra;
    using namespace hydra::bench;
    using namespace hydra::tivo;

    printHeader("Extension: offloading vs onloading (Piglet-style)");

    // Use shorter default than the tables: four scenarios.
    const ScenarioResult idle =
        runScenario(ServerKind::None, ClientKind::None);
    const ScenarioResult simple =
        runScenario(ServerKind::Simple, ClientKind::Receiver);

    // Onloaded run: need access to the dedicated I/O core.
    TestbedConfig onloadConfig =
        scenarioConfig(ServerKind::Onloaded, ClientKind::Receiver);
    Testbed onloadBed(onloadConfig);
    const ScenarioResult onload = onloadBed.run();
    auto *onloadServer =
        dynamic_cast<OnloadedServer *>(onloadBed.server());
    // busyTime spans warmup + measured duration.
    const double wallSpan = static_cast<double>(
        benchDuration() + onloadConfig.warmup);
    const double ioCoreBusyPct =
        onloadServer
            ? 100.0 *
                  static_cast<double>(onloadServer->ioCpu().busyTime()) /
                  wallSpan
            : 0.0;

    const ScenarioResult offload =
        runScenario(ServerKind::Offloaded, ClientKind::Receiver);

    std::printf("%-12s %10s %10s %12s %12s %14s %10s\n", "server",
                "med ms", "std ms", "app cpu %", "io-core %",
                "bus crossings", "watts*");
    auto row = [&](const char *name, const ScenarioResult &r,
                   double ioCore, double watts) {
        std::printf("%-12s %10.3f %10.4f %12.2f %12.1f %14llu %10.1f\n",
                    name,
                    r.interarrivalMs.empty() ? 0.0
                                             : r.interarrivalMs.median(),
                    r.interarrivalMs.empty() ? 0.0
                                             : r.interarrivalMs.stddev(),
                    r.serverCpuPct.mean(), ioCore,
                    static_cast<unsigned long long>(r.serverBusCrossings),
                    watts);
    };
    // *active silicon beyond idle: P4 core 68 W, XScale 0.5 W (paper
    // Section 1.1 argument #3).
    row("idle", idle, 0.0, 0.0);
    row("simple", simple, 0.0, 68.0 * 0.046); // ~4.6 % of a core
    row("onloaded", onload, ioCoreBusyPct, 68.0);
    row("offloaded", offload, 0.0, 0.5);

    std::printf("\nshape checks:\n");
    std::printf("  onloaded jitter ~ offloaded jitter: %s (%.4f vs "
                "%.4f ms std)\n",
                onload.interarrivalMs.stddev() <
                        3.0 * offload.interarrivalMs.stddev()
                    ? "yes"
                    : "NO",
                onload.interarrivalMs.stddev(),
                offload.interarrivalMs.stddev());
    std::printf("  onloaded still crosses the bus per packet, "
                "offloaded never: %llu vs %llu\n",
                static_cast<unsigned long long>(onload.serverBusCrossings),
                static_cast<unsigned long long>(
                    offload.serverBusCrossings));
    std::printf("  power argument: offload does the job for 0.5 W "
                "where onload pins a 68 W core\n");
    return 0;
}
