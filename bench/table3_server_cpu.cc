/**
 * @file
 * Reproduces Table 3: server-side CPU utilization (sampled every
 * 5 s over the run) for the idle system and the three Video Server
 * implementations.
 *
 * Paper values:      median  average  stddev
 *   Idle               2.90%    2.86%   0.09%
 *   Simple Server      7.50%    7.50%   0.12%
 *   Sendfile Server    5.90%    6.20%   0.08%
 *   Offloaded Server   2.90%    2.86%   0.09%
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace hydra;
    using namespace hydra::bench;
    using namespace hydra::tivo;

    printHeader("Table 3: server-side CPU utilization (%)");

    const ScenarioResult idle =
        runScenario(ServerKind::None, ClientKind::None);
    const ScenarioResult simple =
        runScenario(ServerKind::Simple, ClientKind::Receiver);
    const ScenarioResult sendfile =
        runScenario(ServerKind::Sendfile, ClientKind::Receiver);
    const ScenarioResult offloaded =
        runScenario(ServerKind::Offloaded, ClientKind::Receiver);

    std::printf("%-18s %-28s %-28s\n", "Scenario",
                "   paper (med avg std)", "  measured (med avg std)");
    printStatRow("Idle", 2.90, 2.86, 0.09, idle.serverCpuPct);
    printStatRow("Simple Server", 7.50, 7.50, 0.12, simple.serverCpuPct);
    printStatRow("Sendfile Server", 5.90, 6.20, 0.08,
                 sendfile.serverCpuPct);
    printStatRow("Offloaded Server", 2.90, 2.86, 0.09,
                 offloaded.serverCpuPct);

    std::printf("\nshape checks:\n");
    std::printf("  offloaded == idle (host oblivious): %s "
                "(delta %.3f%%)\n",
                std::abs(offloaded.serverCpuPct.mean() -
                         idle.serverCpuPct.mean()) < 0.05
                    ? "yes"
                    : "NO",
                offloaded.serverCpuPct.mean() - idle.serverCpuPct.mean());
    std::printf("  simple > sendfile > idle: %s\n",
                simple.serverCpuPct.mean() > sendfile.serverCpuPct.mean() &&
                        sendfile.serverCpuPct.mean() >
                            idle.serverCpuPct.mean() + 1.0
                    ? "yes"
                    : "NO");
    return 0;
}
