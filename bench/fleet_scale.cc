/**
 * @file
 * Fleet scale bench (DESIGN.md §14): what the multi-host refactor
 * buys and what wall it removed.
 *
 * Three measurements:
 *
 *  1. Scale ladder — 4 hosts on the *threaded* executor, 10k -> 100k
 *     (-> 1M with --full) concurrent streams at a fixed offered rate,
 *     reporting delivery p50/p99/p999 and per-host CPU. The point is
 *     that stream count is a memory axis, not a latency axis: the
 *     wire fabric demuxes by ChannelId, so percentiles stay flat as
 *     the ladder climbs.
 *
 *  2. Host scaling — virtual-time goodput of 1 host vs 4 hosts at
 *     the same (saturating) offered load and stream count. The fleet
 *     acceptance bar is >= 2x for 4 hosts; measured deterministic
 *     under the sim engine, so this is a property of the model, not
 *     of the machine running the bench.
 *
 *  3. Registry wall — the first wall an earlier revision hit: the
 *     executive registry was an unordered vector searched by pointer,
 *     so destroying one channel under churn cost a scan of every
 *     live channel. The executive is id-indexed now; the "legacy"
 *     column re-creates the old cost by running the same churn loop
 *     against a vector<ChannelId> mirror (find + erase) on top of
 *     the indexed destroy, which isolates exactly the removed scan.
 *
 * Usage: fleet_scale [--full] [--json FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "exec/executor.hh"
#include "fleet/fleet.hh"
#include "fleet/loadgen.hh"

using namespace hydra;

namespace {

double
wallMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// ------------------------------------------------------ scale ladder

fleet::LoadgenReport
ladderRun(std::size_t streams)
{
    auto executor = exec::makeExecutor(exec::ExecutorKind::Threaded);
    fleet::FleetConfig config;
    config.hosts = 4;
    fleet::Fleet fleet(*executor, config);

    fleet::LoadgenConfig load;
    load.streams = streams;
    load.messageBytes = 256;
    load.offeredMsgsPerSec = 2e6;
    load.duration = sim::milliseconds(20);
    return runOpenLoop(fleet, load);
}

void
printLadderRow(const fleet::LoadgenReport &report)
{
    double cpuLo = 1e18;
    double cpuHi = 0.0;
    for (const auto &slice : report.perHost) {
        const double pct = 100.0 * static_cast<double>(slice.busyNs) /
                           static_cast<double>(report.elapsed);
        cpuLo = std::min(cpuLo, pct);
        cpuHi = std::max(cpuHi, pct);
    }
    std::printf("%9zu %10llu %10llu %9.1f %9.1f %9.1f %7.0f-%-4.0f %9.0f\n",
                report.streams,
                static_cast<unsigned long long>(report.offered),
                static_cast<unsigned long long>(report.delivered),
                report.latency.p50 / 1e3, report.latency.p99 / 1e3,
                report.latency.p999 / 1e3, cpuLo, cpuHi, report.wallMs);
}

// ------------------------------------------------------ host scaling

fleet::LoadgenReport
scalingRun(std::size_t hosts)
{
    auto executor = exec::makeExecutor(exec::ExecutorKind::Sim);
    fleet::FleetConfig config;
    config.hosts = hosts;
    fleet::Fleet fleet(*executor, config);

    fleet::LoadgenConfig load;
    load.streams = 1000;
    load.messageBytes = 256;
    load.offeredMsgsPerSec = 5e6; // saturating: ~4x 1-host capacity
    load.duration = sim::milliseconds(20);
    return runOpenLoop(fleet, load);
}

// ----------------------------------------------------- registry wall

struct ChurnResult
{
    std::size_t population = 0;
    double indexedNsPerOp = 0.0;
    double legacyNsPerOp = 0.0;
};

/**
 * Time @p ops destroy+recreate cycles against a population of
 * @p population live cross-host channels. With @p legacyScan, each
 * destroy first pays the old registry's cost: a linear find + erase
 * in an id vector mirroring the whole population.
 */
ChurnResult
churnRun(std::size_t population, std::size_t ops)
{
    auto executor = exec::makeExecutor(exec::ExecutorKind::Sim);
    fleet::FleetConfig fleetConfig;
    fleetConfig.hosts = 2;
    fleet::Fleet fleet(*executor, fleetConfig);
    fleet::Host &home = fleet.host(0);
    fleet::Host &target = fleet.host(1);

    core::ChannelConfig config;
    config.name = "bench.churn";
    config.targetDevice = target.nic().name();

    const auto create = [&]() -> core::ChannelId {
        auto created = home.executive().createChannel(
            config, home.runtime().hostSite(), 256);
        if (!created.ok())
            return core::kInvalidChannel;
        auto endpoint = created.value()->connectSite(
            *target.runtime().siteByName(config.targetDevice));
        (void)endpoint;
        return created.value()->id();
    };

    std::vector<core::ChannelId> ids;
    ids.reserve(population);
    for (std::size_t i = 0; i < population; ++i)
        ids.push_back(create());
    executor->drain();

    ChurnResult result;
    result.population = population;

    const auto churn = [&](bool legacyScan) {
        // The legacy registry: an unordered vector scanned per
        // destroy, exactly what ChannelExecutive used to keep.
        std::vector<core::ChannelId> legacy;
        if (legacyScan)
            legacy = ids;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t k = 0; k < ops; ++k) {
            const std::size_t slot = (k * 7919) % ids.size();
            const core::ChannelId victim = ids[slot];
            if (legacyScan) {
                auto it = std::find(legacy.begin(), legacy.end(), victim);
                if (it != legacy.end())
                    legacy.erase(it);
            }
            home.executive().destroyChannelById(victim);
            ids[slot] = create();
            if (legacyScan)
                legacy.push_back(ids[slot]);
            if (k % 512 == 511)
                executor->drain();
        }
        const double ms = wallMsSince(start);
        executor->drain();
        return ms * 1e6 / static_cast<double>(ops);
    };

    result.indexedNsPerOp = churn(false);
    result.legacyNsPerOp = churn(true);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bool full = false;
    std::string jsonOut;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            full = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonOut = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--full] [--json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    // 1. Scale ladder (threaded executor, 4 hosts).
    std::printf("== scale ladder: 4 hosts, threaded executor, "
                "2M msgs/s offered, 20 ms window ==\n");
    std::printf("%9s %10s %10s %9s %9s %9s %12s %9s\n", "streams",
                "offered", "delivered", "p50-us", "p99-us", "p999-us",
                "cpu%lo-hi", "wall-ms");
    std::vector<fleet::LoadgenReport> ladder;
    std::vector<std::size_t> rungs{10000, 100000};
    if (full)
        rungs.push_back(1000000);
    for (std::size_t streams : rungs) {
        ladder.push_back(ladderRun(streams));
        printLadderRow(ladder.back());
        if (ladder.back().delivered == 0 ||
            ladder.back().writeFailures != 0) {
            std::fprintf(stderr, "ladder rung %zu did not run cleanly\n",
                         streams);
            return 1;
        }
    }

    // 2. Host scaling (sim executor, deterministic).
    const fleet::LoadgenReport one = scalingRun(1);
    const fleet::LoadgenReport four = scalingRun(4);
    const double ratio =
        one.deliveredPerVirtualSec > 0.0
            ? four.deliveredPerVirtualSec / one.deliveredPerVirtualSec
            : 0.0;
    std::printf("\n== host scaling: saturating open loop, "
                "1000 streams, sim executor ==\n");
    std::printf("1 host:  %12.0f msgs/virtual-sec\n",
                one.deliveredPerVirtualSec);
    std::printf("4 hosts: %12.0f msgs/virtual-sec\n",
                four.deliveredPerVirtualSec);
    std::printf("scaling: %.2fx (acceptance >= 2x)\n", ratio);

    // 3. Registry wall (churn before/after the id-indexed registry).
    std::printf("\n== registry wall: destroy+create under churn, "
                "2 hosts, cross-host streams ==\n");
    std::printf("%10s %16s %16s %9s\n", "population", "legacy-ns/op",
                "indexed-ns/op", "speedup");
    std::vector<ChurnResult> walls;
    for (std::size_t population : {10000ul, 100000ul}) {
        walls.push_back(churnRun(population, 2000));
        const ChurnResult &wall = walls.back();
        std::printf("%10zu %16.0f %16.0f %8.1fx\n", wall.population,
                    wall.legacyNsPerOp, wall.indexedNsPerOp,
                    wall.legacyNsPerOp /
                        std::max(wall.indexedNsPerOp, 1.0));
    }

    if (!jsonOut.empty()) {
        std::ofstream out(jsonOut);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonOut.c_str());
            return 1;
        }
        char stamp[64] = "";
        const std::time_t now = std::time(nullptr);
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%S%z",
                      std::localtime(&now));
        out << "{\n  \"bench\": \"fleet_scale\",\n  \"date\": \"" << stamp
            << "\",\n";
        out << "  \"scale_ladder\": [";
        for (std::size_t i = 0; i < ladder.size(); ++i) {
            const auto &r = ladder[i];
            out << (i ? "," : "") << "\n    {\"hosts\": " << r.hosts
                << ", \"streams\": " << r.streams
                << ", \"offered\": " << r.offered
                << ", \"delivered\": " << r.delivered
                << ", \"p50_ns\": " << r.latency.p50
                << ", \"p99_ns\": " << r.latency.p99
                << ", \"p999_ns\": " << r.latency.p999
                << ", \"wall_ms\": " << r.wallMs << ", \"per_host\": [";
            for (std::size_t h = 0; h < r.perHost.size(); ++h)
                out << (h ? "," : "") << "{\"host\": \""
                    << r.perHost[h].host
                    << "\", \"busy_ns\": " << r.perHost[h].busyNs
                    << ", \"delivered\": " << r.perHost[h].delivered
                    << "}";
            out << "]}";
        }
        out << "\n  ],\n";
        out << "  \"host_scaling\": {\"one_host_vmsgs_per_sec\": "
            << one.deliveredPerVirtualSec
            << ", \"four_host_vmsgs_per_sec\": "
            << four.deliveredPerVirtualSec << ", \"ratio\": " << ratio
            << ", \"acceptance_min\": 2.0},\n";
        out << "  \"registry_wall\": {\n"
            << "    \"description\": \"Churn cost of the executive "
               "registry. 'legacy' re-creates the pre-refactor "
               "unordered-vector registry (linear find + erase per "
               "destroy) on top of the indexed destroy; 'indexed' is "
               "the shipped id-keyed map. The scan cost grows with "
               "the live-channel population; the indexed cost does "
               "not.\",\n    \"churn_ops\": 2000,\n    \"rows\": [";
        for (std::size_t i = 0; i < walls.size(); ++i)
            out << (i ? "," : "") << "\n      {\"population\": "
                << walls[i].population << ", \"legacy_ns_per_op\": "
                << walls[i].legacyNsPerOp << ", \"indexed_ns_per_op\": "
                << walls[i].indexedNsPerOp << ", \"speedup\": "
                << walls[i].legacyNsPerOp /
                       std::max(walls[i].indexedNsPerOp, 1.0)
                << "}";
        out << "\n    ]\n  }\n}\n";
        std::printf("\n(wrote %s)\n", jsonOut.c_str());
    }

    if (ratio < 2.0) {
        std::fprintf(stderr,
                     "fleet_scale: 4-host scaling %.2fx below 2x bar\n",
                     ratio);
        return 1;
    }
    return 0;
}
